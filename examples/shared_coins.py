#!/usr/bin/env python3
"""Shared randomness: constant-size certificates (a Section 6 open question).

The paper proves (Theorem 4.7) that edge-independent randomized schemes for
MST need Omega(log log n)-bit certificates, and asks what happens if nodes
share randomness.  This example answers by running the public-coin compiler:
with shared coins, the equality sub-protocol inside Theorem 3.1 collapses to
GF(2) inner-product parities — t bits per certificate, for any n.

Run:  python examples/shared_coins.py
"""

from repro.core.compiler import FingerprintCompiledRPLS
from repro.core.shared import SharedCoinsCompiledRPLS
from repro.core.verifier import estimate_acceptance, verify_randomized
from repro.graphs.generators import corrupt_mst_swap, mst_configuration
from repro.schemes.mst import MSTPLS


def main() -> None:
    print("MST certification, three models, growing n:\n")
    print(f"{'n':>5}  {'det labels':>10}  {'private coins':>13}  {'shared coins':>12}")
    for n in (32, 128, 512):
        network = mst_configuration(n, seed=n)
        base = MSTPLS()
        private = FingerprintCompiledRPLS(base)
        shared = SharedCoinsCompiledRPLS(base, repetitions=3)
        print(
            f"{n:>5}  {base.verification_complexity(network):>10}"
            f"  {private.verification_complexity(network):>13}"
            f"  {shared.verification_complexity(network):>12}"
        )

    print(
        "\nprivate-coin certificates obey the paper's Omega(log log n) floor;"
        "\nshared-coin certificates are a constant 3 bits — Theorem 4.7's"
        "\nedge-independence hypothesis is essential.\n"
    )

    network = mst_configuration(128, seed=1)
    shared = SharedCoinsCompiledRPLS(MSTPLS(), repetitions=3)
    run = verify_randomized(shared, network, seed=0, randomness="shared")
    print(f"legal MST accepted under shared coins: {run.accepted}")

    corrupted = corrupt_mst_swap(network, seed=2)
    estimate = estimate_acceptance(
        shared,
        corrupted,
        trials=50,
        labels=shared.prover(corrupted),
        randomness="shared",
    )
    print(f"corrupted MST acceptance (3-bit certificates!): {estimate}")


if __name__ == "__main__":
    main()
