#!/usr/bin/env python3
"""MST certification with O(log log n)-bit certificates (Theorem 5.1).

The headline concrete result of the paper: minimum spanning trees — which
need Omega(log^2 n)-bit labels deterministically [29, 31] — can be verified
randomized with certificates of O(log log n) bits.  This example builds a
weighted network, certifies its MST both ways, and shows the subtle
corruption (swap a tree edge for a heavier chord: still a spanning tree, no
longer minimum) being caught.

Run:  python examples/mst_verification.py
"""

from repro.core.verifier import estimate_acceptance, verify_deterministic, verify_randomized
from repro.graphs.generators import corrupt_mst_swap, mst_configuration
from repro.schemes.mst import MSTPLS, mst_rpls


def main() -> None:
    print(f"{'n':>6} {'det label bits':>15} {'rand cert bits':>15}")
    for node_count in (16, 32, 64, 128, 256):
        configuration = mst_configuration(node_count, seed=node_count)
        deterministic = MSTPLS()
        randomized = mst_rpls()
        det_bits = deterministic.verification_complexity(configuration)
        rand_bits = randomized.verification_complexity(configuration)
        print(f"{node_count:>6} {det_bits:>15} {rand_bits:>15}")

    print()
    configuration = mst_configuration(96, seed=1)
    scheme = mst_rpls()

    legal = verify_randomized(scheme, configuration, seed=0)
    print(f"legal MST accepted: {legal.accepted} "
          f"({legal.max_certificate_bits}-bit certificates)")

    corrupted = corrupt_mst_swap(configuration, seed=2)
    print("corruption: swapped one tree edge for a strictly heavier chord "
          "(still a spanning tree, not minimum)")

    deterministic_check = verify_deterministic(
        MSTPLS(), corrupted, labels=MSTPLS().prover(corrupted)
    )
    print(f"deterministic scheme rejects it: {not deterministic_check.accepted}")

    estimate = estimate_acceptance(
        scheme, corrupted, trials=40, labels=scheme.prover(corrupted)
    )
    print(f"randomized acceptance on corrupted MST: {estimate}")


if __name__ == "__main__":
    main()
