#!/usr/bin/env python3
"""The crossing lower bound, live (Section 4, Figure 1).

Theorem 4.4 says: with ``r`` independent isomorphic single-edge gadgets, any
proof-labeling scheme using fewer than ``log2(r)/2`` bits can be *crossed* —
two gadgets must carry identical labels, and swapping their edges changes
the graph (here: turns a path into a path plus a cycle) without changing
anything any verifier can see.

This example pits truncated acyclicity schemes of increasing label width
against the attack on a 300-node path and shows the exact bit threshold at
which the attack stops working.

Run:  python examples/crossing_lowerbound.py
"""

from repro.graphs.generators import line_configuration
from repro.lowerbounds.bounds import deterministic_crossing_threshold
from repro.lowerbounds.crossing_attack import deterministic_crossing_attack, path_gadgets
from repro.lowerbounds.truncation import ModularAcyclicityPLS
from repro.schemes.acyclicity import AcyclicityPLS, AcyclicityPredicate


def main() -> None:
    configuration = line_configuration(300)
    gadgets = path_gadgets(configuration)
    gadgets.validate()
    threshold = deterministic_crossing_threshold(gadgets.r, gadgets.s)
    print(f"path with n={configuration.node_count}, r={gadgets.r} gadgets, "
          f"s={gadgets.s} edge each")
    print(f"Theorem 4.4 threshold: schemes below {threshold:.2f} bits are crossable\n")

    print(f"{'label bits':>10} {'collision':>10} {'crossed accepted':>17} {'fooled':>7}")
    for bits in (2, 3, 4, 5, 6, 7, 8):
        scheme = ModularAcyclicityPLS(bits)
        result = deterministic_crossing_attack(scheme, gadgets)
        crossed = result.crossed_accepted if result.collision_found else "-"
        print(f"{bits:>10} {str(result.collision_found):>10} {str(crossed):>17} "
              f"{str(result.fooled):>7}")
        if result.fooled:
            assert not AcyclicityPredicate().holds(result.crossed_configuration)

    print("\nfull Theta(log n) scheme (labels are exact distances):")
    result = deterministic_crossing_attack(AcyclicityPLS(), gadgets)
    print(f"  collision found: {result.collision_found} "
          f"(distances along a path are all distinct — the attack has nothing to cross)")


if __name__ == "__main__":
    main()
