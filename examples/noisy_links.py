#!/usr/bin/env python3
"""Verification over unreliable links: two-sided error and majority voting.

The paper's concrete schemes are one-sided — legal configurations are never
rejected.  Real links flip bits.  This example pushes a randomized scheme's
certificates through a binary symmetric channel, watches completeness decay
to the paper's two-sided regime, and then applies footnote 1: repeat the
round ``t`` times and take the majority, driving the error down
exponentially on both sides.

Run:  python examples/noisy_links.py
"""

from repro.core.boosting import majority_decision
from repro.core.compiler import FingerprintCompiledRPLS
from repro.core.noise import NoisyChannelRPLS, flip_probability_for_completeness
from repro.core.verifier import estimate_acceptance
from repro.graphs.generators import (
    corrupt_spanning_tree,
    spanning_tree_configuration,
)
from repro.schemes.spanning_tree import SpanningTreePLS


def main() -> None:
    configuration = spanning_tree_configuration(node_count=48, extra_edges=20, seed=2)
    corrupted = corrupt_spanning_tree(configuration, seed=9)
    base = FingerprintCompiledRPLS(SpanningTreePLS())

    bits = NoisyChannelRPLS(base, 0.0).round_bits(configuration)
    print(f"one verification round ships {bits} certificate bits in total")

    print("\ncompleteness decay with channel noise:")
    for p in (0.0, 0.001, 0.01, 0.05):
        noisy = NoisyChannelRPLS(base, p)
        rate = estimate_acceptance(noisy, configuration, trials=60).probability
        print(f"  flip probability {p:<6} -> accept legal with prob ~{rate:.2f}")

    # Calibrate the channel to the paper's two-sided regime (accept >= 3/4).
    p = flip_probability_for_completeness(0.75, bits)
    noisy = NoisyChannelRPLS(base, p)
    print(f"\ncalibrated flip probability for 3/4 completeness: {p:.6f}")

    print("\nfootnote 1 — majority over t repetitions (20 trials each):")
    stale = base.prover(configuration)
    for t in (1, 3, 7, 15):
        legal = sum(
            majority_decision(noisy, configuration, repetitions=t, seed=s)
            for s in range(20)
        )
        illegal = sum(
            majority_decision(noisy, corrupted, repetitions=t, seed=s, labels=stale)
            for s in range(20)
        )
        print(f"  t={t:>2}: legal accepted {legal}/20, corrupted accepted {illegal}/20")

    print("\nmajority voting recovers reliable verification from lossy links.")


if __name__ == "__main__":
    main()
