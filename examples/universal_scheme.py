#!/usr/bin/env python3
"""Any predicate, O(log n + log k) random bits (Lemma 3.3 / Corollary 3.4).

The universal construction certifies *every* (decidable) predicate: the
label is a full description of the configuration, checked locally for
consistency and globally for the predicate.  Deterministically that costs
configuration-sized labels; the Theorem 3.1 compiler shrinks the traffic to
O(log n + log k) bits.

This example certifies a predicate with no bespoke scheme anywhere in the
library — "the graph is symmetric" (Sym, Figures 3-4) — and reports both
sizes on gadget graphs where Sym's truth is controlled by construction.

Run:  python examples/universal_scheme.py
"""

from repro.core.bitstrings import BitString
from repro.core.verifier import estimate_acceptance, verify_deterministic, verify_randomized
from repro.graphs.generators import sym_pair_configuration
from repro.schemes.symmetry import SymPredicate, sym_universal_rpls, sym_universal_scheme


def main() -> None:
    word = BitString.from_int(0b10110, 5)
    twisted = BitString.from_int(0b10111, 5)

    symmetric, _cut, _a, _b = sym_pair_configuration(word, word)
    asymmetric, *_ = sym_pair_configuration(word, twisted)
    predicate = SymPredicate()
    print(f"G(z, z) satisfies Sym:  {predicate.holds(symmetric)}")
    print(f"G(z, z') satisfies Sym: {predicate.holds(asymmetric)} (Claim C.2)\n")

    pls = sym_universal_scheme()
    run = verify_deterministic(pls, symmetric)
    print(f"universal PLS accepts G(z, z): {run.accepted}")
    print(f"  label size: {run.max_label_bits} bits "
          f"(the label is the whole configuration, n={symmetric.node_count})")

    rpls = sym_universal_rpls()
    random_run = verify_randomized(rpls, symmetric, seed=0)
    print(f"universal RPLS accepts G(z, z): {random_run.accepted}")
    print(f"  certificate size: {random_run.max_certificate_bits} bits — "
          f"O(log n + log k), Corollary 3.4\n")

    # Soundness: try to pass the asymmetric gadget off with the labels of the
    # symmetric one (they describe a different graph, so consistency breaks).
    estimate = estimate_acceptance(
        rpls, asymmetric, trials=30, labels=rpls.prover(asymmetric)
    )
    print(f"universal RPLS acceptance on G(z, z'): {estimate}")


if __name__ == "__main__":
    main()
