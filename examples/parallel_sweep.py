#!/usr/bin/env python3
"""Sharded estimation and a small experiment campaign (PR 4's subsystem).

Three stops: (1) one sharded estimate whose merged counts are *identical*
to the single-process run — the seed-partition contract; (2) the same
estimate with a Wilson early exit cancelling outstanding shards; (3) a
declarative campaign sweeping workloads x rng modes x budgets over one
worker pool, streamed into an in-memory sink (swap in ``JsonlSink(path)``
for a resumable on-disk log, or drive the same sweep from the shell via
``python -m repro.parallel.cli``).

Run:  python examples/parallel_sweep.py
"""

from repro.engine import estimate_acceptance_fast
from repro.parallel import (
    Campaign,
    MemorySink,
    estimate_acceptance_sharded,
    run_campaign,
    workload_spec,
)


def main() -> None:
    # A picklable workload spec: the factory reference + arguments workers
    # use to rebuild (and cache) the compiled plan on their side.
    spec = workload_spec(
        "spanning-tree", rng_mode="vector", node_count=48, extra_edges=12, seed=7
    )

    # --- 1. sharded == single-process, count for count
    single = estimate_acceptance_fast(spec.resolve(), 2000, seed=0)
    sharded = estimate_acceptance_sharded(
        spec, 2000, seed=0, executor="thread", workers=2, shard_count=8
    )
    print(f"single process : {single}")
    print(f"sharded        : {sharded}")
    print(f"identical merge: {sharded.estimate == single}")

    # --- 2. cooperative early exit: confident after a fraction of the budget
    stopped = estimate_acceptance_sharded(
        spec, 50_000, seed=0, executor="thread", workers=2,
        stop_halfwidth=0.02, min_trials=200,
    )
    print(
        f"early exit     : {stopped.estimate.trials} of 50000 trials ran "
        f"(stopped_early={stopped.stopped_early})"
    )

    # --- 3. a campaign: workloads x rng modes x budgets over one pool
    campaign = Campaign.sweep(
        "example-sweep",
        [
            ("spanning-tree", {"node_count": 32, "extra_edges": 8}),
            ("shared-coins", {"node_count": 32, "extra_edges": 8}),
        ],
        rng_modes=("fast", "vector"),
        trial_budgets=(256,),
    )
    records = run_campaign(campaign, executor="serial", sink=MemorySink())
    print(f"\ncampaign {campaign.name!r}: {len(records)} cells")
    for record in records:
        print(
            f"  {record['cell']:44s} p={record['probability']:.3f} "
            f"[{record['wilson_low']:.3f}, {record['wilson_high']:.3f}] "
            f"{record['elapsed_sec'] * 1000:.0f} ms"
        )


if __name__ == "__main__":
    main()
