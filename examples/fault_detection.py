#!/usr/bin/env python3
"""Fault detection and recovery — the paper's motivating application.

Proof-labeling schemes come from self-stabilization ([1], [30], [9]): a
network periodically re-verifies its distributed data structure; any node
that outputs FALSE triggers recovery.  This example simulates that loop with
the randomized MST scheme:

1. a network maintains an MST with labels from the honest prover;
2. a transient fault silently corrupts the tree marking at runtime;
3. periodic randomized verification (tiny certificates!) detects it —
   with boosting, the detection probability per round is driven toward 1;
4. recovery recomputes the MST and fresh labels; verification goes green.

Run:  python examples/fault_detection.py
"""

from repro.core.boosting import BoostedRPLS, repetitions_for_delta
from repro.core.verifier import estimate_acceptance, verify_randomized
from repro.graphs.generators import corrupt_mst_swap, mst_configuration
from repro.schemes.mst import mst_rpls


def main() -> None:
    network = mst_configuration(80, seed=11)
    scheme = mst_rpls()
    labels = scheme.prover(network)
    print("phase 1: steady state")
    print(f"  verification round: accepted={verify_randomized(scheme, network, seed=1, labels=labels).accepted}")

    print("phase 2: transient fault corrupts the tree marking")
    faulty = corrupt_mst_swap(network, seed=5)
    single = estimate_acceptance(scheme, faulty, trials=60, labels=labels, seed=2)
    print(f"  single-round acceptance of faulty state: {single}")
    print(f"  (each accept is a missed detection; one-sided schemes never false-alarm)")

    target_miss = 1e-4
    repetitions = repetitions_for_delta(target_miss)
    boosted = BoostedRPLS(scheme, repetitions=repetitions)
    boosted_estimate = estimate_acceptance(
        boosted, faulty, trials=60, labels=labels, seed=3
    )
    print(f"phase 3: boosted verification ({repetitions} repetitions, "
          f"{boosted.verification_complexity(network)}-bit certificates)")
    print(f"  boosted acceptance of faulty state: {boosted_estimate} "
          f"(bound {boosted.error_upper_bound():.2e})")

    print("phase 4: recovery — recompute MST and labels")
    # Recovery: recompute the MST from scratch (generator with same seed
    # rebuilds the correct marking for this topology+weights).
    recovered = mst_configuration(80, seed=11)
    fresh_labels = scheme.prover(recovered)
    print(f"  verification round after recovery: "
          f"accepted={verify_randomized(scheme, recovered, seed=4, labels=fresh_labels).accepted}")


if __name__ == "__main__":
    main()
