#!/usr/bin/env python3
"""Quickstart: certify a spanning tree, deterministically and randomized.

The introduction's motivating example: a distributed algorithm computed a
spanning tree (every node knows its parent), and the network wants to verify
the result locally — one communication round, small messages.

Run:  python examples/quickstart.py
"""

from repro.core.compiler import FingerprintCompiledRPLS
from repro.core.verifier import estimate_acceptance, verify_deterministic, verify_randomized
from repro.graphs.generators import corrupt_spanning_tree, spanning_tree_configuration
from repro.schemes.spanning_tree import SpanningTreePLS


def main() -> None:
    # A random 64-node connected network whose state claims a BFS spanning tree.
    configuration = spanning_tree_configuration(node_count=64, extra_edges=30, seed=7)

    # --- deterministic proof-labeling scheme (the classic (root, dist) labels)
    pls = SpanningTreePLS()
    run = verify_deterministic(pls, configuration)
    print(f"deterministic scheme accepts legal tree: {run.accepted}")
    print(f"  label size: {run.max_label_bits} bits "
          f"(total traffic {run.round_stats.total_bits} bits)")

    # --- the same scheme compiled into a randomized one (Theorem 3.1)
    rpls = FingerprintCompiledRPLS(pls)
    random_run = verify_randomized(rpls, configuration, seed=0)
    print(f"randomized scheme accepts legal tree: {random_run.accepted}")
    print(f"  certificate size: {random_run.max_certificate_bits} bits "
          f"(exponentially smaller than the labels)")

    # --- soundness: corrupt the tree, keep the old labels, and watch it burn
    corrupted = corrupt_spanning_tree(configuration, seed=3)
    forged = verify_deterministic(pls, corrupted, labels=pls.prover(configuration))
    print(f"deterministic scheme rejects corrupted tree: {not forged.accepted} "
          f"(rejecting nodes: {list(forged.rejecting_nodes)[:4]} ...)")

    estimate = estimate_acceptance(
        rpls, corrupted, trials=50, labels=rpls.prover(configuration)
    )
    print(f"randomized scheme acceptance on corrupted tree: {estimate} "
          f"(one-sided error: legal instances are never rejected)")


if __name__ == "__main__":
    main()
