#!/usr/bin/env python3
"""Radius-t local checking: when no labels are needed at all.

The paper's related work ([21], locally checkable proofs) lets nodes see
their radius-t neighborhood.  "Forbidden-substructure" predicates — proper
coloring, maximal independent set, girth bounds — then verify with zero
label bits: a violation is a radius-t object, and its center sees it.

The example also re-runs the paper's introductory locality argument: an
existential predicate (acyclicity) cannot be checked this way at any fixed
radius, because a big cycle's neighborhoods look exactly like a big path's.
That gap is precisely what proof labels buy.

Run:  python examples/local_checking.py
"""

from repro.core.local import (
    GirthAtLeastChecker,
    MISChecker,
    ProperColoringChecker,
    verify_locally,
)
from repro.graphs.generators import colored_configuration, cycle_configuration
from repro.graphs.workloads import (
    corrupt_girth,
    corrupt_mis_independence,
    high_girth_configuration,
    mis_configuration,
)
from repro.substrates.cycles import girth


def main() -> None:
    print("zero-label verification of forbidden-substructure predicates:\n")

    coloring = colored_configuration(60, 6, proper=True, seed=1)
    accepted, _ = verify_locally(coloring, ProperColoringChecker())
    print(f"proper coloring (radius 1, 0 label bits): accepted={accepted}")
    broken = colored_configuration(60, 6, proper=False, seed=1)
    accepted, rejecting = verify_locally(broken, ProperColoringChecker())
    print(f"  planted conflict detected by nodes {rejecting[:2]}: accepted={accepted}")

    mis = mis_configuration(60, 30, seed=2)
    accepted, _ = verify_locally(mis, MISChecker())
    print(f"maximal independent set (radius 1): accepted={accepted}")
    accepted, rejecting = verify_locally(
        corrupt_mis_independence(mis, seed=3), MISChecker()
    )
    print(f"  adjacent marked pair detected: accepted={accepted}")

    g = 6
    high_girth = high_girth_configuration(60, g, extra_edges=10, seed=4)
    checker = GirthAtLeastChecker(g)
    accepted, _ = verify_locally(high_girth, checker)
    print(f"girth >= {g} (radius {checker.radius}): accepted={accepted}")
    short = corrupt_girth(high_girth, g, seed=5)
    accepted, rejecting = verify_locally(short, checker)
    print(
        f"  chord closed a {girth(short.graph)}-cycle; its members "
        f"{sorted(rejecting, key=repr)[:3]}... reject: accepted={accepted}"
    )

    print("\nthe locality wall (why proofs exist):")
    from repro.core.local import BallChecker

    class AcyclicBall(BallChecker):
        name = "acyclic-ball"
        radius = 2

        def check_ball(self, ball):
            return girth(ball.graph) is None

    checker = AcyclicBall()
    from repro.graphs.generators import line_configuration

    path_ok, _ = verify_locally(line_configuration(40), checker)
    cycle_ok, _ = verify_locally(cycle_configuration(40), checker)
    print(f"  radius-2 'acyclicity' checker on a 40-path:  accepted={path_ok}")
    print(f"  the same checker on a 40-cycle:              accepted={cycle_ok}")
    print(
        "  the cycle is illegal yet accepted — no fixed radius distinguishes\n"
        "  them, which is the paper's opening argument for proof labels."
    )


if __name__ == "__main__":
    main()
