#!/usr/bin/env python3
"""Certifying shortest-path distances (a routing-table audit).

Scenario: a routing layer computed, at every node, its weighted distance to
a gateway.  Before trusting the tables, the network audits them locally —
one round, small messages.  The SSSP certification scheme labels each node
with ``(gateway id, claimed distance)`` and checks the Lipschitz + progress
conditions; the Theorem 3.1 compiler shrinks the exchanged messages to
``O(log log n)`` bits.

Run:  python examples/distance_certification.py
"""

from repro.core.verifier import (
    estimate_acceptance,
    verify_deterministic,
    verify_randomized,
)
from repro.graphs.workloads import corrupt_distance, distance_configuration
from repro.schemes.distance import DistancePLS, distance_rpls


def main() -> None:
    # A 96-node weighted network; node 0 is the gateway, and every node's
    # state carries its true Dijkstra distance.
    configuration = distance_configuration(
        node_count=96, extra_edges=40, seed=11, weighted=True
    )

    pls = DistancePLS(weighted=True)
    run = verify_deterministic(pls, configuration)
    print(f"deterministic audit accepts correct tables: {run.accepted}")
    print(f"  label size: {run.max_label_bits} bits")

    rpls = distance_rpls(weighted=True)
    random_run = verify_randomized(rpls, configuration, seed=0)
    print(f"randomized audit accepts correct tables: {random_run.accepted}")
    print(f"  certificate size: {random_run.max_certificate_bits} bits")

    # A single stale entry — one node's distance off by one hop-weight.
    corrupted = corrupt_distance(configuration, seed=5)
    stale = verify_deterministic(pls, corrupted, labels=pls.prover(corrupted))
    print(f"deterministic audit flags the stale entry: {not stale.accepted}")
    print(f"  first detecting nodes: {list(stale.rejecting_nodes)[:4]}")

    estimate = estimate_acceptance(
        rpls, corrupted, trials=60, labels=rpls.prover(corrupted)
    )
    print(f"randomized audit acceptance on stale tables: {estimate}")
    print("  (soundness >= 1/2 per round; repeat or boost to taste)")


if __name__ == "__main__":
    main()
