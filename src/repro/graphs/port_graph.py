"""Port-numbered undirected graphs.

This is the network substrate of the whole library.  Each node has ports
``0..deg(v)-1``; port ``i`` of ``v`` is attached to exactly one edge, whose
other endpoint is some node ``w`` at some port ``j`` — and reciprocally,
port ``j`` of ``w`` leads back to ``(v, i)``.  An edge is therefore the pair
of half-edges ``(v, i) <-> (w, j)``.

Why ports and not plain adjacency: the crossing operation of Definition 4.2
rewires edges *while preserving port numbers at the surviving endpoints*, and
the verifier's input is ordered by port (Section 2.2: "the ordered set
{l(w_i) | i = 1..deg(v)}").  Port identity is observable to the algorithms we
verify, so it must be first-class in the substrate.

The class supports multi-edges structurally (two ports of ``v`` may both lead
to ``w``) because crossing arbitrary edge pairs can create them; the paper's
gadgets never do (independence of the crossed subgraphs rules it out), and
:meth:`PortGraph.validate` can assert simplicity.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

Node = Hashable
HalfEdge = Tuple[Node, int]


class PortGraph:
    """An undirected graph with explicit, reciprocal port numbering."""

    def __init__(self) -> None:
        # _ports[v][i] == (w, j)  <=>  port i of v is wired to port j of w.
        self._ports: Dict[Node, List[HalfEdge]] = {}

    # -- construction --------------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Register an isolated node (idempotent)."""
        if node not in self._ports:
            self._ports[node] = []

    def add_edge(self, u: Node, v: Node) -> Tuple[int, int]:
        """Wire a new edge using the next free port at each endpoint.

        Returns the pair ``(port_at_u, port_at_v)``.  Port numbers are
        assigned in insertion order, which is how the generators build the
        "consistently ordered" cycles and paths the lower-bound gadgets need.
        """
        if u == v:
            raise ValueError(f"self-loop at {u!r} not allowed (Section 2.1)")
        self.add_node(u)
        self.add_node(v)
        port_u = len(self._ports[u])
        port_v = len(self._ports[v])
        self._ports[u].append((v, port_v))
        self._ports[v].append((u, port_u))
        return port_u, port_v

    @staticmethod
    def from_edges(
        edges: Iterable[Tuple[Node, Node]], nodes: Iterable[Node] = ()
    ) -> "PortGraph":
        """Build a graph from an edge list (ports follow insertion order)."""
        graph = PortGraph()
        for node in nodes:
            graph.add_node(node)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    @staticmethod
    def from_port_spec(spec: Dict[Node, Sequence[HalfEdge]]) -> "PortGraph":
        """Build a graph from an explicit port wiring.

        ``spec[v][i] == (w, j)`` wires port ``i`` of ``v`` to port ``j`` of
        ``w``.  The wiring is validated for reciprocity — this is how the
        universal scheme reconstructs a graph from its encoded representation,
        and a forged representation must fail loudly here.
        """
        graph = PortGraph()
        graph._ports = {node: list(half_edges) for node, half_edges in spec.items()}
        graph.validate(allow_multi_edges=True)
        return graph

    def copy(self) -> "PortGraph":
        """An independent structural copy."""
        clone = PortGraph()
        clone._ports = {node: list(half_edges) for node, half_edges in self._ports.items()}
        return clone

    # -- basic queries --------------------------------------------------------

    @property
    def nodes(self) -> List[Node]:
        """All nodes, sorted by repr for deterministic iteration."""
        return sorted(self._ports, key=repr)

    @property
    def node_count(self) -> int:
        return len(self._ports)

    @property
    def edge_count(self) -> int:
        return sum(len(half_edges) for half_edges in self._ports.values()) // 2

    def __contains__(self, node: Node) -> bool:
        return node in self._ports

    def degree(self, node: Node) -> int:
        """Number of ports (= incident edges) at ``node``."""
        return len(self._ports[node])

    @property
    def max_degree(self) -> int:
        if not self._ports:
            return 0
        return max(len(half_edges) for half_edges in self._ports.values())

    def neighbor(self, node: Node, port: int) -> Node:
        """The node reached through ``port`` of ``node``."""
        return self._ports[node][port][0]

    def reverse_port(self, node: Node, port: int) -> int:
        """The port number this edge carries at the *other* endpoint."""
        return self._ports[node][port][1]

    def half_edge(self, node: Node, port: int) -> HalfEdge:
        """``(neighbor, reverse_port)`` for a port."""
        return self._ports[node][port]

    def neighbors(self, node: Node) -> List[Node]:
        """Neighbors in port order (repeats possible for multi-edges)."""
        return [half_edge[0] for half_edge in self._ports[node]]

    def ports(self, node: Node) -> Iterator[Tuple[int, Node, int]]:
        """Iterate ``(port, neighbor, reverse_port)`` triples in port order."""
        for port, (neighbor, reverse_port) in enumerate(self._ports[node]):
            yield port, neighbor, reverse_port

    def port_to(self, node: Node, neighbor: Node) -> Optional[int]:
        """The first port of ``node`` leading to ``neighbor`` (None if absent)."""
        for port, (other, _reverse) in enumerate(self._ports[node]):
            if other == neighbor:
                return port
        return None

    def has_edge(self, u: Node, v: Node) -> bool:
        return self.port_to(u, v) is not None

    def edges(self) -> List[Tuple[Node, int, Node, int]]:
        """Every edge once, as ``(u, port_u, v, port_v)``.

        The representative orientation puts the endpoint with the smaller
        ``repr`` first (ties broken by port), so the list is deterministic.
        """
        seen: Set[Tuple[Node, int]] = set()
        result = []
        for u in self.nodes:
            for port_u, (v, port_v) in enumerate(self._ports[u]):
                if (u, port_u) in seen:
                    continue
                seen.add((u, port_u))
                seen.add((v, port_v))
                result.append((u, port_u, v, port_v))
        return result

    def edge_set(self) -> Set[FrozenSet[Node]]:
        """Node-pair view of the edges (collapses multi-edges)."""
        return {frozenset((u, v)) for u, _pu, v, _pv in self.edges()}

    # -- integrity -------------------------------------------------------------

    def validate(self, allow_multi_edges: bool = False) -> None:
        """Assert structural invariants; raise :class:`ValueError` on violation.

        Checks reciprocity (``v.port[i] == (w, j)`` implies
        ``w.port[j] == (v, i)``), absence of self-loops, and — unless
        ``allow_multi_edges`` — simplicity.
        """
        for v, half_edges in self._ports.items():
            neighbor_multiset: Dict[Node, int] = {}
            for i, (w, j) in enumerate(half_edges):
                if w == v:
                    raise ValueError(f"self-loop at {v!r}")
                if w not in self._ports:
                    raise ValueError(f"dangling edge {v!r}->{w!r}")
                if j >= len(self._ports[w]):
                    raise ValueError(f"port {j} out of range at {w!r}")
                back_node, back_port = self._ports[w][j]
                if (back_node, back_port) != (v, i):
                    raise ValueError(
                        f"reciprocity broken: {v!r}.{i} -> {w!r}.{j} "
                        f"but {w!r}.{j} -> {back_node!r}.{back_port}"
                    )
                neighbor_multiset[w] = neighbor_multiset.get(w, 0) + 1
            if not allow_multi_edges:
                for w, count in neighbor_multiset.items():
                    if count > 1:
                        raise ValueError(f"multi-edge between {v!r} and {w!r}")

    # -- traversal --------------------------------------------------------------

    def bfs_distances(self, source: Node) -> Dict[Node, int]:
        """Hop distance from ``source`` to every reachable node."""
        distances = {source: 0}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for neighbor in self.neighbors(current):
                if neighbor not in distances:
                    distances[neighbor] = distances[current] + 1
                    queue.append(neighbor)
        return distances

    def connected_components(self) -> List[Set[Node]]:
        """The node sets of the connected components (deterministic order)."""
        remaining = set(self._ports)
        components = []
        for node in self.nodes:
            if node not in remaining:
                continue
            reached = set(self.bfs_distances(node))
            components.append(reached)
            remaining -= reached
        return components

    def is_connected(self) -> bool:
        """True for the empty graph and any single-component graph."""
        if not self._ports:
            return True
        return len(self.bfs_distances(self.nodes[0])) == self.node_count

    # -- surgery (used by crossing) ----------------------------------------------

    def graft(self, other: "PortGraph") -> None:
        """Copy a node-disjoint graph into this one, wiring preserved verbatim.

        Used to assemble gadget families (e.g. the Figure 5 chain of cycles)
        from carefully port-numbered blocks without disturbing their port
        conventions.
        """
        overlap = set(self._ports) & set(other._ports)
        if overlap:
            raise ValueError(f"graft requires disjoint node sets; shared: {overlap}")
        for node, half_edges in other._ports.items():
            self._ports[node] = list(half_edges)

    def rewire(self, node: Node, port: int, new_neighbor: Node, new_reverse_port: int) -> None:
        """Point ``(node, port)`` at ``(new_neighbor, new_reverse_port)``.

        Low-level: callers are responsible for restoring reciprocity before
        the graph is used (``cross_edge_pairs`` always does).
        """
        self._ports[node][port] = (new_neighbor, new_reverse_port)

    def induced_edges(self, nodes: Set[Node]) -> List[Tuple[Node, int, Node, int]]:
        """Edges with *both* endpoints inside ``nodes``."""
        return [
            (u, pu, v, pv)
            for u, pu, v, pv in self.edges()
            if u in nodes and v in nodes
        ]

    def boundary_edges(self, nodes: Set[Node]) -> List[Tuple[Node, int, Node, int]]:
        """Edges with exactly one endpoint inside ``nodes``."""
        return [
            (u, pu, v, pv)
            for u, pu, v, pv in self.edges()
            if (u in nodes) != (v in nodes)
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PortGraph(n={self.node_count}, m={self.edge_count})"


def path_graph(length: int, offset: int = 0) -> PortGraph:
    """A path ``offset, offset+1, ..., offset+length-1`` with consistent ports.

    Interior nodes use port 0 for the predecessor and port 1 for the
    successor, which makes any two interior edges port-preserving isomorphic —
    the property the Theorem 5.1 lower-bound gadget needs.
    """
    graph = PortGraph()
    for i in range(length):
        graph.add_node(offset + i)
    for i in range(length - 1):
        graph.add_edge(offset + i, offset + i + 1)
    return graph


def cycle_graph(length: int, offset: int = 0) -> PortGraph:
    """A cycle on ``length >= 3`` nodes with consistently ordered ports.

    Every node uses port 0 for its predecessor and port 1 for its successor
    (node 0's "predecessor" is node ``length-1``), the paper's "port numbers
    consistently ordered" convention for Figures 2 and 5.
    """
    if length < 3:
        raise ValueError("a cycle needs at least 3 nodes")
    graph = PortGraph()
    for i in range(length):
        graph.add_node(offset + i)
    # Wire the wrap-around edge first so node 0 sees its predecessor on port 0.
    graph.add_edge(offset, offset + length - 1)
    for i in range(length - 1):
        graph.add_edge(offset + i, offset + i + 1)
    # Node 0 now has ports (predecessor, successor); every other node i got its
    # predecessor edge before its successor edge, so the convention holds
    # everywhere except that node length-1's ports are (successor, predecessor).
    # Normalize node length-1 by swapping its two ports.
    last = offset + length - 1
    _swap_ports(graph, last, 0, 1)
    return graph


def _swap_ports(graph: PortGraph, node: Node, port_a: int, port_b: int) -> None:
    """Exchange two ports of ``node``, fixing reciprocal references."""
    half_a = graph.half_edge(node, port_a)
    half_b = graph.half_edge(node, port_b)
    graph.rewire(node, port_a, *half_b)
    graph.rewire(node, port_b, *half_a)
    neighbor_b, reverse_b = half_b
    neighbor_a, reverse_a = half_a
    graph.rewire(neighbor_b, reverse_b, node, port_a)
    graph.rewire(neighbor_a, reverse_a, node, port_b)
