"""Port-numbered network model and the crossing machinery of Section 4.

The paper's model (Section 2.1): a network is a connected graph without
self-loops or multi-edges, where the edges incident to a node ``v`` are
numbered ``1..deg(v)`` (here 0-based).  An edge may carry *different* port
numbers at its two endpoints.  :class:`repro.graphs.PortGraph` implements
exactly this, with reciprocity invariants, and
:mod:`repro.graphs.crossing` implements Definition 4.2's edge-crossing
operation σ⋈(G) used by every lower bound in the paper.

Workload generation lives in two modules: :mod:`repro.graphs.generators`
builds the paper's gadget families (Figures 2-5) and the Section 5
workloads; :mod:`repro.graphs.workloads` builds the planted workloads for
the extension schemes (distances, leader, bipartiteness, MIS, Eulerian,
Hamiltonian).
"""

from repro.graphs.port_graph import PortGraph
from repro.graphs.crossing import (
    cross_edge_pairs,
    cross_subgraphs,
    subgraphs_independent,
)
from repro.graphs.isomorphism import (
    is_port_preserving_isomorphism,
    find_port_preserving_isomorphisms,
)

__all__ = [
    "PortGraph",
    "cross_edge_pairs",
    "cross_subgraphs",
    "find_port_preserving_isomorphisms",
    "is_port_preserving_isomorphism",
    "subgraphs_independent",
]
