"""Workload generators for the extension schemes.

:mod:`repro.graphs.generators` builds the paper's own gadget families; this
module builds the planted workloads for the schemes the library adds on top
of them (distance certification, leader agreement, bipartiteness, MIS,
Eulerian circuits, Hamiltonicity).  The same conventions apply: generators
return :class:`~repro.core.configuration.Configuration` objects with planted
witnesses, and every legal generator has corruption helpers producing the
matching illegal instances for soundness experiments.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.core.configuration import Configuration, NodeState, simple_states
from repro.graphs.generators import random_connected_graph
from repro.graphs.port_graph import Node, PortGraph, cycle_graph
from repro.substrates.bfs import bfs_layers, dijkstra, is_bipartite

# ---------------------------------------------------------------------------
# single-source distances (schemes.distance)
# ---------------------------------------------------------------------------


def distance_configuration(
    node_count: int,
    extra_edges: int = 0,
    seed: int = 0,
    weighted: bool = False,
    max_weight: int = 9,
) -> Configuration:
    """A random connected graph with true ``dist`` fields from node 0.

    ``weighted=True`` draws symmetric integer edge weights in
    ``[1, max_weight]`` and plants Dijkstra distances; otherwise hop
    distances.
    """
    rng = random.Random(seed)
    graph = random_connected_graph(node_count, extra_edges, rng)
    weights: Optional[Dict[Node, List[int]]] = None
    if weighted:
        weights = {node: [0] * graph.degree(node) for node in graph.nodes}
        for u, pu, v, pv in graph.edges():
            w = rng.randint(1, max_weight)
            weights[u][pu] = w
            weights[v][pv] = w
        dist = dijkstra(graph, 0, weights).dist
    else:
        dist = bfs_layers(graph, 0).dist
    states = {}
    for node in graph.nodes:
        fields = {"source": node == 0, "dist": dist[node]}
        if weights is not None:
            fields["weights"] = tuple(weights[node])
        states[node] = NodeState(node, fields)
    return Configuration(graph, states)


def corrupt_distance(configuration: Configuration, seed: int = 0) -> Configuration:
    """Perturb one non-source node's ``dist`` claim by +-1 (never to the truth)."""
    rng = random.Random(seed)
    nodes = [
        node
        for node in configuration.graph.nodes
        if not configuration.state(node).get("source")
    ]
    victim = nodes[rng.randrange(len(nodes))]
    state = configuration.state(victim)
    claimed = state.get("dist")
    delta = 1 if claimed == 0 or rng.random() < 0.5 else -1
    states = dict(configuration.states)
    states[victim] = state.with_fields(dist=claimed + delta)
    return Configuration(configuration.graph, states)


def corrupt_distance_second_source(
    configuration: Configuration, seed: int = 0
) -> Configuration:
    """Mark a second node as source (breaks source uniqueness)."""
    rng = random.Random(seed)
    nodes = [
        node
        for node in configuration.graph.nodes
        if not configuration.state(node).get("source")
    ]
    victim = nodes[rng.randrange(len(nodes))]
    states = dict(configuration.states)
    states[victim] = configuration.state(victim).with_fields(source=True)
    return Configuration(configuration.graph, states)


# ---------------------------------------------------------------------------
# leader agreement (schemes.leader)
# ---------------------------------------------------------------------------


def leader_configuration(
    node_count: int, extra_edges: int = 0, seed: int = 0
) -> Configuration:
    """A random connected graph where every node names the max id as leader."""
    rng = random.Random(seed)
    graph = random_connected_graph(node_count, extra_edges, rng)
    leader_id = max(node for node in graph.nodes)
    states = {
        node: NodeState(node, {"leader": leader_id}) for node in graph.nodes
    }
    return Configuration(graph, states)


def corrupt_leader_disagreement(
    configuration: Configuration, seed: int = 0
) -> Configuration:
    """One node names a different (existing) leader."""
    rng = random.Random(seed)
    nodes = configuration.graph.nodes
    victim = nodes[rng.randrange(len(nodes))]
    current = configuration.state(victim).get("leader")
    other = next(
        configuration.node_id(node)
        for node in nodes
        if configuration.node_id(node) != current
    )
    states = dict(configuration.states)
    states[victim] = configuration.state(victim).with_fields(leader=other)
    return Configuration(configuration.graph, states)


def corrupt_leader_phantom(configuration: Configuration) -> Configuration:
    """Every node names an id no node holds — the locally invisible violation."""
    phantom = 1 + max(
        configuration.node_id(node) for node in configuration.graph.nodes
    )
    states = {
        node: configuration.state(node).with_fields(leader=phantom)
        for node in configuration.graph.nodes
    }
    return Configuration(configuration.graph, states)


# ---------------------------------------------------------------------------
# bipartiteness (schemes.bipartiteness)
# ---------------------------------------------------------------------------


def random_bipartite_configuration(
    left: int, right: int, extra_edges: int = 0, seed: int = 0
) -> Configuration:
    """A connected random bipartite graph on ``left + right`` nodes.

    A random recursive tree alternating sides guarantees connectivity: each
    new node attaches to a random *already-attached* node of the other side.
    Extra edges are drawn across the bipartition only.
    """
    if left < 1 or right < 1:
        raise ValueError("both sides need at least one node")
    rng = random.Random(seed)
    left_nodes = list(range(left))
    right_nodes = list(range(left, left + right))
    graph = PortGraph()
    graph.add_edge(left_nodes[0], right_nodes[0])
    attached = {0: [left_nodes[0]], 1: [right_nodes[0]]}
    pending = [(0, node) for node in left_nodes[1:]] + [
        (1, node) for node in right_nodes[1:]
    ]
    rng.shuffle(pending)
    for side, node in pending:
        anchor = attached[side ^ 1][rng.randrange(len(attached[side ^ 1]))]
        graph.add_edge(node, anchor)
        attached[side].append(node)
    attempts = 0
    added = 0
    while added < extra_edges and attempts < 50 * (extra_edges + 1):
        attempts += 1
        u = left_nodes[rng.randrange(left)]
        v = right_nodes[rng.randrange(right)]
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
            added += 1
    return Configuration(graph, simple_states(graph))


def odd_cycle_configuration(node_count: int, seed: int = 0) -> Configuration:
    """A non-bipartite graph: an odd cycle with random trees hanging off it."""
    if node_count < 3:
        raise ValueError("need at least 3 nodes")
    cycle_len = node_count if node_count % 2 == 1 else node_count - 1
    rng = random.Random(seed)
    graph = cycle_graph(cycle_len)
    for node in range(cycle_len, node_count):
        graph.add_edge(node, rng.randrange(node))
    return Configuration(graph, simple_states(graph))


# ---------------------------------------------------------------------------
# maximal independent set (schemes.mis)
# ---------------------------------------------------------------------------


def mis_configuration(
    node_count: int, extra_edges: int = 0, seed: int = 0
) -> Configuration:
    """A random connected graph with a greedy (hence maximal) independent set."""
    rng = random.Random(seed)
    graph = random_connected_graph(node_count, extra_edges, rng)
    marked = set()
    order = list(graph.nodes)
    rng.shuffle(order)
    for node in order:
        if not any(neighbor in marked for neighbor in graph.neighbors(node)):
            marked.add(node)
    states = {
        node: NodeState(node, {"in_mis": node in marked}) for node in graph.nodes
    }
    return Configuration(graph, states)


def corrupt_mis_independence(
    configuration: Configuration, seed: int = 0
) -> Configuration:
    """Mark a neighbor of a marked node (breaks independence)."""
    rng = random.Random(seed)
    graph = configuration.graph
    candidates = [
        (node, neighbor)
        for node in graph.nodes
        if configuration.state(node).get("in_mis")
        for neighbor in graph.neighbors(node)
        if not configuration.state(neighbor).get("in_mis")
    ]
    if not candidates:
        raise ValueError("no marked node with an unmarked neighbor")
    _, victim = candidates[rng.randrange(len(candidates))]
    states = dict(configuration.states)
    states[victim] = configuration.state(victim).with_fields(in_mis=True)
    return Configuration(graph, states)


def corrupt_mis_maximality(
    configuration: Configuration, seed: int = 0
) -> Configuration:
    """Unmark one marked node (its unmarked neighbors lose coverage...).

    Note unmarking can leave the set maximal when every former neighbor has
    another marked neighbor; the helper unmarks a node at least one of whose
    neighbors has no other marked neighbor, so the result always violates
    maximality (that neighbor — or the victim itself — ends uncovered).
    """
    rng = random.Random(seed)
    graph = configuration.graph
    marked = {
        node for node in graph.nodes if configuration.state(node).get("in_mis")
    }
    victims = []
    for node in marked:
        # Unmarking `node` leaves `node` itself uncovered unless it has a
        # marked neighbor — impossible in an independent set.  So any marked
        # node works: after unmarking, no neighbor of `node` is marked
        # (independence), so `node` is unmarked with no marked neighbor.
        victims.append(node)
    victim = sorted(victims, key=repr)[rng.randrange(len(victims))]
    states = dict(configuration.states)
    states[victim] = configuration.state(victim).with_fields(in_mis=False)
    return Configuration(graph, states)


# ---------------------------------------------------------------------------
# Eulerian circuits (schemes.eulerian)
# ---------------------------------------------------------------------------


def eulerian_configuration(node_count: int, seed: int = 0) -> Configuration:
    """A connected graph where every degree is even.

    Built as a union of edge-disjoint cycles sharing nodes: start from one
    cycle over all nodes, then superpose random cycles — each superposition
    keeps all degrees even.
    """
    if node_count < 3:
        raise ValueError("need at least 3 nodes")
    rng = random.Random(seed)
    graph = cycle_graph(node_count)
    # Superpose a few random simple cycles (node sequences without repeats,
    # avoiding existing edges so the graph stays simple).
    for _attempt in range(node_count // 3):
        length = rng.randrange(3, max(4, node_count // 2 + 1))
        members = rng.sample(range(node_count), min(length, node_count))
        closed = members + [members[0]]
        if all(
            not graph.has_edge(closed[i], closed[i + 1])
            for i in range(len(members))
        ):
            for i in range(len(members)):
                graph.add_edge(closed[i], closed[i + 1])
    return Configuration(graph, simple_states(graph))


def non_eulerian_configuration(node_count: int, seed: int = 0) -> Configuration:
    """An Eulerian configuration spoiled by one extra edge (two odd degrees)."""
    base = eulerian_configuration(node_count, seed)
    graph = base.graph.copy()
    rng = random.Random(seed + 1)
    attempts = 0
    while attempts < 200:
        attempts += 1
        u = rng.randrange(node_count)
        v = rng.randrange(node_count)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            return Configuration(graph, simple_states(graph))
    raise ValueError("could not find a non-edge to add")


# ---------------------------------------------------------------------------
# girth (core.local radius-t checking)
# ---------------------------------------------------------------------------


def high_girth_configuration(
    node_count: int, girth: int, extra_edges: int = 0, seed: int = 0
) -> Configuration:
    """A connected graph with no simple cycle shorter than ``girth``.

    A random tree plus chords added only between nodes at hop distance
    ``>= girth - 1`` (a chord closes a cycle of exactly that distance + 1).
    """
    if girth < 3:
        raise ValueError("girth bounds below 3 are vacuous")
    rng = random.Random(seed)
    graph = random_connected_graph(node_count, 0, rng)
    added = 0
    attempts = 0
    while added < extra_edges and attempts < 100 * (extra_edges + 1):
        attempts += 1
        u = rng.randrange(node_count)
        v = rng.randrange(node_count)
        if u == v or graph.has_edge(u, v):
            continue
        dist = bfs_layers(graph, u).dist.get(v)
        if dist is not None and dist >= girth - 1:
            graph.add_edge(u, v)
            added += 1
    return Configuration(graph, simple_states(graph))


def corrupt_girth(configuration: Configuration, girth: int, seed: int = 0) -> Configuration:
    """Add one chord closing a cycle shorter than ``girth``."""
    rng = random.Random(seed)
    graph = configuration.graph.copy()
    nodes = graph.nodes
    for _attempt in range(500):
        u = nodes[rng.randrange(len(nodes))]
        dist = bfs_layers(graph, u).dist
        candidates = [
            v
            for v in nodes
            if v != u
            and not graph.has_edge(u, v)
            and 2 <= dist.get(v, girth) <= girth - 2
        ]
        if candidates:
            v = candidates[rng.randrange(len(candidates))]
            graph.add_edge(u, v)
            return Configuration(graph, dict(configuration.states))
    raise ValueError("could not find a short-cycle chord")


# ---------------------------------------------------------------------------
# Hamiltonicity (schemes.hamiltonicity)
# ---------------------------------------------------------------------------


def hamiltonian_configuration(
    node_count: int, extra_edges: int = 0, seed: int = 0
) -> Tuple[Configuration, List[Node]]:
    """A Hamiltonian graph with its witness cycle.

    A random permutation cycle over all nodes is planted, then chords are
    added; the witness (in cycle order) is returned so provers skip the
    NP-hard search.
    """
    if node_count < 3:
        raise ValueError("need at least 3 nodes")
    rng = random.Random(seed)
    order = list(range(node_count))
    rng.shuffle(order)
    graph = PortGraph()
    for position, node in enumerate(order):
        graph.add_node(node)
    for position, node in enumerate(order):
        graph.add_edge(node, order[(position + 1) % node_count])
    attempts = 0
    added = 0
    while added < extra_edges and attempts < 50 * (extra_edges + 1):
        attempts += 1
        u = rng.randrange(node_count)
        v = rng.randrange(node_count)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            added += 1
    return Configuration(graph, simple_states(graph)), order


# ---------------------------------------------------------------------------
# fault-arrival patterns (simulation.self_stabilization workloads)
# ---------------------------------------------------------------------------
#
# The self-stabilization loop takes its faults as a {round: injector}
# schedule plus injector callables.  The helpers below build the arrival
# patterns real systems see — uniform background noise, bursts, and
# hotspot-skewed victim selection (cf. the UniformRandom/Hotspot/Bursty
# workload generators of fabric/storage simulators) — so detection latency
# and availability can be measured under realistic fault traffic, sweepable
# as campaign cells across the parallel worker pool.
#
# Structural aliases (duplicated from repro.simulation.self_stabilization
# to keep the dependency pointing simulation -> graphs, not back):
#   FaultInjector       = Callable[[Configuration, int], Configuration]
#   LabelFaultInjector  = Callable[[labels, Configuration, int], labels]


def uniform_random_fault_schedule(
    injector, total_rounds: int, rate: float, seed: int = 0, start: int = 0
) -> Dict[int, object]:
    """Independent per-round fault arrivals: each round faults w.p. ``rate``.

    The memoryless background-noise model — every round in
    ``[start, total_rounds)`` is hit independently, so inter-fault gaps are
    geometric.  Deterministic in ``seed``.

    >>> schedule = uniform_random_fault_schedule(lambda c, r: c, 100, 0.2, seed=1)
    >>> all(0 <= r < 100 for r in schedule)
    True
    """
    if not 0 <= rate <= 1:
        raise ValueError("rate must lie in [0, 1]")
    if total_rounds < 0:
        raise ValueError("total_rounds must be non-negative")
    rng = random.Random(f"uniform-faults|{seed}")
    return {
        round_index: injector
        for round_index in range(start, total_rounds)
        if rng.random() < rate
    }


def bursty_fault_schedule(
    injector,
    total_rounds: int,
    burst_length: int,
    period: int,
    start: int = 0,
    jitter: int = 0,
    seed: int = 0,
) -> Dict[int, object]:
    """Faults arriving in bursts: ``burst_length`` consecutive hits every
    ``period`` rounds, the burst start offset by up to ``jitter`` rounds.

    The correlated-failure model (a power event, a flaky switch): detection
    must fire *inside* a burst window, and availability degrades
    super-linearly with burst length — the shape the campaign sweeps probe.

    >>> sorted(bursty_fault_schedule(lambda c, r: c, 20, 2, 10))
    [0, 1, 10, 11]
    """
    if burst_length < 1:
        raise ValueError("burst_length must be positive")
    if period < burst_length:
        raise ValueError("period must cover the burst")
    if jitter < 0:
        raise ValueError("jitter must be non-negative")
    rng = random.Random(f"bursty-faults|{seed}")
    schedule: Dict[int, object] = {}
    burst_start = start
    while burst_start < total_rounds:
        offset = rng.randrange(jitter + 1) if jitter else 0
        for step in range(burst_length):
            round_index = burst_start + offset + step
            if round_index < total_rounds:
                schedule[round_index] = injector
        burst_start += period
    return schedule


def hotspot_victims(nodes: List[Node], hotspot_fraction: float, seed: int = 0) -> List[Node]:
    """The deterministic hot subset of a node list (at least one node).

    The subset is a seeded sample, so two processes materializing the same
    workload agree on which nodes are hot — a requirement for campaign
    cells that shard a hotspot run across workers.
    """
    if not 0 < hotspot_fraction <= 1:
        raise ValueError("hotspot_fraction must lie in (0, 1]")
    if not nodes:
        raise ValueError("need at least one node")
    count = max(1, round(hotspot_fraction * len(nodes)))
    rng = random.Random(f"hotspot-subset|{seed}")
    return sorted(rng.sample(list(nodes), count), key=repr)


def hotspot_injector(
    corrupt_victim,
    hotspot_fraction: float = 0.1,
    hotspot_weight: float = 0.9,
    seed: int = 0,
):
    """Skew fault locations onto a small hot subset of nodes.

    ``corrupt_victim(configuration, victim, rng)`` applies one fault at the
    chosen node; the returned injector picks the victim from the hot subset
    with probability ``hotspot_weight`` and uniformly from the cold rest
    otherwise (falling back to the hot set when every node is hot).  Victim
    choice is a pure function of ``(seed, round_index)``, never of shared
    RNG state, so schedules replay identically across processes.
    """
    if not 0 <= hotspot_weight <= 1:
        raise ValueError("hotspot_weight must lie in [0, 1]")

    def inject(configuration: Configuration, round_index: int) -> Configuration:
        victim, rng = _pick_hotspot_victim(
            list(configuration.graph.nodes),
            hotspot_fraction,
            hotspot_weight,
            seed,
            round_index,
            "hotspot-fault",
        )
        return corrupt_victim(configuration, victim, rng)

    return inject


def _pick_hotspot_victim(
    nodes: List[Node],
    hotspot_fraction: float,
    hotspot_weight: float,
    seed: int,
    round_index: int,
    tag: str,
):
    """The shared skew policy of the two hotspot injectors.

    Returns ``(victim, rng)`` — the rng is handed back so the caller can
    draw the fault's *content* from the same per-round stream.  Victim
    choice is a pure function of ``(tag, seed, round_index)``; the hot
    subset itself is a pure function of ``(nodes, fraction, seed)``.
    """
    hot = hotspot_victims(nodes, hotspot_fraction, seed)
    hot_set = set(hot)
    cold = [node for node in nodes if node not in hot_set]
    rng = random.Random(f"{tag}|{seed}|{round_index}")
    pool = hot if (not cold or rng.random() < hotspot_weight) else cold
    return pool[rng.randrange(len(pool))], rng


def hotspot_label_injector(
    flips: int = 1,
    hotspot_fraction: float = 0.1,
    hotspot_weight: float = 0.9,
    seed: int = 0,
):
    """A hotspot-skewed memory-fault model for *labels* (the stored proof).

    The label-fault counterpart of :func:`hotspot_injector`: flips
    ``flips`` random bits in the chosen victim's label, leaving the output
    legal — detectable only through the randomized consistency checks, so
    repeated hits on the same hot node probe exactly the detection-latency
    trade boosting buys.  Signature matches
    ``repro.simulation.self_stabilization.LabelFaultInjector``.
    """
    if flips < 1:
        raise ValueError("flips must be positive")

    def inject(labels, configuration: Configuration, round_index: int):
        from repro.core.bitstrings import BitString

        victim, rng = _pick_hotspot_victim(
            list(configuration.graph.nodes),
            hotspot_fraction,
            hotspot_weight,
            seed,
            round_index,
            "hotspot-label-fault",
        )
        label = labels[victim]
        if label.length == 0:
            return labels
        value = label.value
        for _ in range(flips):
            value ^= 1 << rng.randrange(label.length)
        mutated = dict(labels)
        mutated[victim] = BitString(value, label.length)
        return mutated

    return inject
