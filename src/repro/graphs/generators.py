"""Configuration generators: the paper's gadget families and the workloads.

Every figure in the paper is a *construction*; this module builds them all,
plus the randomized workloads the benchmarks sweep:

- lines and cycles (family ``F`` in the Theorem 5.1 lower bound);
- the cycle-with-chords graph of Figure 2 (Theorems 5.2 and 5.4);
- the chain of cycles of Figure 5 (Theorem 5.6);
- the symmetry gadgets ``G(z)`` and ``G(z, z')`` of Figures 3–4
  (Lemma C.1 / Theorem 3.5);
- the two-node ``Unif`` gadget of Lemma C.3;
- random spanning-tree / MST / biconnectivity / flow / coloring workloads
  with *planted witnesses* (so provers never need NP-hard search), plus
  corruption helpers that produce predicate-violating variants for soundness
  experiments.

Generators return :class:`repro.core.configuration.Configuration` objects
(states included); functions that plant a witness also return it.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.bitstrings import BitString
from repro.core.configuration import Configuration, NodeState, simple_states
from repro.graphs.port_graph import Node, PortGraph, cycle_graph, path_graph
from repro.substrates.mst import kruskal

# ---------------------------------------------------------------------------
# basic families
# ---------------------------------------------------------------------------


def line_configuration(length: int) -> Configuration:
    """A path on ``length`` nodes with consistent ports (acyclic, connected)."""
    graph = path_graph(length)
    return Configuration(graph, simple_states(graph))


def cycle_configuration(length: int) -> Configuration:
    """A cycle with consistently ordered ports (the illegal case of acyclicity)."""
    graph = cycle_graph(length)
    return Configuration(graph, simple_states(graph))


def random_connected_graph(
    node_count: int, extra_edges: int, rng: random.Random
) -> PortGraph:
    """A uniform random recursive tree plus ``extra_edges`` random chords."""
    graph = PortGraph()
    graph.add_node(0)
    for node in range(1, node_count):
        graph.add_edge(node, rng.randrange(node))
    attempts = 0
    added = 0
    while added < extra_edges and attempts < 50 * (extra_edges + 1):
        attempts += 1
        u = rng.randrange(node_count)
        v = rng.randrange(node_count)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            added += 1
    return graph


def random_connected_configuration(
    node_count: int, extra_edges: int = 0, seed: int = 0
) -> Configuration:
    """A random connected configuration with identity-only states."""
    graph = random_connected_graph(node_count, extra_edges, random.Random(seed))
    return Configuration(graph, simple_states(graph))


# ---------------------------------------------------------------------------
# spanning trees (intro scheme) and MSTs (Theorem 5.1)
# ---------------------------------------------------------------------------


def _mark_tree_ports(
    graph: PortGraph, tree_edges: Set[frozenset]
) -> Dict[Node, Tuple[int, ...]]:
    """Per-node 0/1 port tuples marking membership in ``tree_edges``."""
    marks: Dict[Node, Tuple[int, ...]] = {}
    for node in graph.nodes:
        marks[node] = tuple(
            1 if frozenset((node, graph.neighbor(node, port))) in tree_edges else 0
            for port in range(graph.degree(node))
        )
    return marks


def _bfs_parents(
    graph: PortGraph, root: Node, allowed_edges: Optional[Set[frozenset]] = None
) -> Dict[Node, Optional[int]]:
    """Parent ports of a BFS tree from ``root`` (restricted to allowed edges)."""
    from collections import deque

    parent_port: Dict[Node, Optional[int]] = {root: None}
    queue = deque([root])
    while queue:
        current = queue.popleft()
        for port, neighbor, reverse_port in graph.ports(current):
            if neighbor in parent_port:
                continue
            if allowed_edges is not None and frozenset(
                (current, neighbor)
            ) not in allowed_edges:
                continue
            parent_port[neighbor] = reverse_port
            queue.append(neighbor)
    return parent_port


def spanning_tree_configuration(
    node_count: int, extra_edges: int = 0, seed: int = 0
) -> Configuration:
    """A random connected graph whose state claims a (correct) BFS spanning tree.

    State fields: ``parent_port`` (None at the root, node 0) and the symmetric
    ``tree`` port marking — the output the intro's spanning-tree scheme
    verifies.
    """
    graph = random_connected_graph(node_count, extra_edges, random.Random(seed))
    parent_port = _bfs_parents(graph, 0)
    tree_edges = {
        frozenset((node, graph.neighbor(node, port)))
        for node, port in (
            (node, port) for node, port in parent_port.items() if port is not None
        )
    }
    marks = _mark_tree_ports(graph, tree_edges)
    states = {
        node: NodeState(
            node,
            {
                "parent_port": parent_port[node],
                "tree": marks[node],
            },
        )
        for node in graph.nodes
    }
    return Configuration(graph, states)


def corrupt_spanning_tree(configuration: Configuration, seed: int = 0) -> Configuration:
    """Break the claimed tree: re-point one node's parent into its own subtree.

    Re-pointing ``v``'s parent at one of ``v``'s *descendants* closes a cycle
    in the parent pointers (and orphans that whole subtree from the root), so
    the spanning-tree predicate is guaranteed false while every local field
    still looks plausible.
    """
    from repro.schemes.spanning_tree import SpanningTreePredicate

    rng = random.Random(seed)
    graph = configuration.graph
    predicate = SpanningTreePredicate()
    candidates = []
    for node in graph.nodes:
        current = configuration.state(node).get("parent_port")
        if current is None:
            continue
        for port in range(graph.degree(node)):
            if port != current:
                candidates.append((node, port))
    rng.shuffle(candidates)
    for node, port in candidates:
        corrupted = configuration.with_state(
            node, configuration.state(node).with_fields(parent_port=port)
        )
        if predicate.holds(corrupted):
            continue  # the re-pointed edge happened to form another tree
        # Re-derive the symmetric tree marking from the (now broken) parents.
        tree_edges = set()
        for v in graph.nodes:
            parent_port = corrupted.state(v).get("parent_port")
            if parent_port is not None:
                tree_edges.add(frozenset((v, graph.neighbor(v, parent_port))))
        marks = _mark_tree_ports(graph, tree_edges)
        states = {
            v: corrupted.state(v).with_fields(tree=marks[v]) for v in graph.nodes
        }
        return Configuration(graph, states)
    raise ValueError("every alternative parent pointer still forms a spanning tree")


def mst_configuration(
    node_count: int,
    extra_edges: Optional[int] = None,
    max_weight: int = 64,
    seed: int = 0,
) -> Configuration:
    """A random weighted connected graph with its (unique) MST marked.

    Weights are symmetric per edge and tie-broken by endpoint identities
    (see :meth:`Configuration.weight_key`), so the marked tree is the one
    every correct MST algorithm must produce.
    """
    rng = random.Random(seed)
    if extra_edges is None:
        extra_edges = node_count // 2
    graph = random_connected_graph(node_count, extra_edges, rng)
    edge_weight: Dict[frozenset, int] = {
        frozenset((u, v)): rng.randrange(1, max_weight + 1)
        for u, _pu, v, _pv in graph.edges()
    }
    weights = {
        node: tuple(
            edge_weight[frozenset((node, graph.neighbor(node, port)))]
            for port in range(graph.degree(node))
        )
        for node in graph.nodes
    }
    # Temporary configuration to expose weight_key for Kruskal.
    provisional = Configuration(
        graph,
        {
            node: NodeState(node, {"weights": weights[node]})
            for node in graph.nodes
        },
    )
    tree = kruskal(graph, provisional.weight_key)
    marks = _mark_tree_ports(graph, tree)
    states = {
        node: NodeState(node, {"weights": weights[node], "tree": marks[node]})
        for node in graph.nodes
    }
    return Configuration(graph, states)


def corrupt_mst_swap(configuration: Configuration, seed: int = 0) -> Configuration:
    """Swap one tree edge for a strictly heavier non-tree edge.

    The marking stays a spanning tree, but by the cycle property it is no
    longer minimum — the subtle corruption the MST scheme must catch (a
    non-spanning corruption would already be caught by the spanning-tree
    layer).
    """
    rng = random.Random(seed)
    graph = configuration.graph
    tree = {frozenset((u, v)) for u, _pu, v, _pv in configuration.tree_edges()}
    non_tree = [
        (u, pu, v, pv)
        for u, pu, v, pv in graph.edges()
        if frozenset((u, v)) not in tree
    ]
    if not non_tree:
        raise ValueError("the graph is itself a tree; no swap is possible")
    u, pu, v, _pv = rng.choice(non_tree)
    heavy_key = configuration.weight_key(u, pu)
    # Tree path between u and v: every edge on it is lighter than the chord
    # (cycle property of the unique MST).
    parent = _tree_path_parents(configuration, tree, u)
    path_edges = []
    current = v
    while current != u:
        nxt = parent[current]
        path_edges.append(frozenset((current, nxt)))
        current = nxt
    drop = rng.choice(path_edges)
    new_tree = (tree - {drop}) | {frozenset((u, v))}
    marks = _mark_tree_ports(graph, new_tree)
    states = {
        node: configuration.state(node).with_fields(tree=marks[node])
        for node in graph.nodes
    }
    corrupted = Configuration(graph, states)
    # Sanity: the swap must strictly increase weight (cycle property).
    drop_nodes = tuple(drop)
    drop_port = graph.port_to(drop_nodes[0], drop_nodes[1])
    if configuration.weight_key(drop_nodes[0], drop_port) > heavy_key:
        raise AssertionError("swap did not increase the tree weight")
    return corrupted


def _tree_path_parents(
    configuration: Configuration, tree: Set[frozenset], root: Node
) -> Dict[Node, Node]:
    """Parents of every node in the marked tree, rooted at ``root``."""
    from collections import deque

    graph = configuration.graph
    parent: Dict[Node, Node] = {}
    seen = {root}
    queue = deque([root])
    while queue:
        current = queue.popleft()
        for _port, neighbor, _reverse in graph.ports(current):
            if neighbor in seen or frozenset((current, neighbor)) not in tree:
                continue
            parent[neighbor] = current
            seen.add(neighbor)
            queue.append(neighbor)
    return parent


def unmark_tree_edge(configuration: Configuration, seed: int = 0) -> Configuration:
    """Remove one marked edge — the marking no longer spans (gross corruption)."""
    rng = random.Random(seed)
    graph = configuration.graph
    tree = {frozenset((u, v)) for u, _pu, v, _pv in configuration.tree_edges()}
    if not tree:
        raise ValueError("no tree edges to unmark")
    drop = rng.choice(sorted(tree, key=sorted))
    new_tree = tree - {drop}
    marks = _mark_tree_ports(graph, new_tree)
    states = {
        node: configuration.state(node).with_fields(tree=marks[node])
        for node in graph.nodes
    }
    return Configuration(graph, states)


# ---------------------------------------------------------------------------
# Figure 2: cycle with chords (Theorems 5.2 / 5.4)
# ---------------------------------------------------------------------------


def cycle_with_chords_configuration(node_count: int) -> Configuration:
    """Figure 2(a) for Theorem 5.2: an ``n``-cycle plus chords ``{v0, vj}``.

    Chords run from ``v0`` to every ``vj``, ``j = 2..n-2`` — the graph is
    vertex-biconnected, and crossing any two independent cycle edges creates
    an articulation point at ``v0``.
    """
    if node_count < 5:
        raise ValueError("the Figure 2 gadget needs at least 5 nodes")
    graph = cycle_graph(node_count)
    for j in range(2, node_count - 1):
        graph.add_edge(0, j)
    return Configuration(graph, simple_states(graph))


def long_cycle_with_spokes_configuration(
    node_count: int, cycle_length: int
) -> Tuple[Configuration, List[Node]]:
    """The Theorem 5.4 gadget: a ``c``-cycle plus ``v0`` joined to all others.

    ``G = ({v0..v_{n-1}}, Ec ∪ E0)`` with ``Ec`` the cycle on the first ``c``
    nodes (ports consistently ordered) and ``E0 = {{v0, vj} : j = 2..n-1,
    j != c-1}``.  Satisfies cycle-at-least-c; returns the planted cycle.
    """
    c = cycle_length
    if c < 5 or node_count < c:
        raise ValueError("need n >= c >= 5")
    graph = cycle_graph(c)
    for j in range(c, node_count):
        graph.add_node(j)
    for j in range(2, node_count):
        if j == c - 1:
            continue
        graph.add_edge(0, j)
    config = Configuration(graph, simple_states(graph))
    return config, list(range(c))


def two_blocks_configuration(block_size: int) -> Configuration:
    """Two cycles sharing a single cut vertex — *not* biconnected."""
    if block_size < 3:
        raise ValueError("blocks must be cycles of >= 3 nodes")
    graph = PortGraph()
    # First block: 0 .. block_size-1; second: 0, block_size .. 2*block_size-2.
    for i in range(block_size):
        graph.add_node(i)
    for i in range(block_size):
        graph.add_edge(i, (i + 1) % block_size)
    previous = 0
    for j in range(block_size, 2 * block_size - 1):
        graph.add_node(j)
        graph.add_edge(previous, j)
        previous = j
    graph.add_edge(previous, 0)
    return Configuration(graph, simple_states(graph))


def random_biconnected_configuration(node_count: int, seed: int = 0) -> Configuration:
    """A random biconnected graph: a Hamiltonian cycle plus random chords."""
    rng = random.Random(seed)
    graph = cycle_graph(node_count)
    for _ in range(max(1, node_count // 3)):
        u = rng.randrange(node_count)
        v = rng.randrange(node_count)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return Configuration(graph, simple_states(graph))


# ---------------------------------------------------------------------------
# Figure 5: chain of cycles (Theorem 5.6) and planted long cycles (Thm 5.3)
# ---------------------------------------------------------------------------


def chain_of_cycles_configuration(
    node_count: int, cycle_length: int
) -> Configuration:
    """Figure 5(a): ``ceil(n/c)`` disjoint ``c``-cycles chained by single edges.

    Every simple cycle has exactly ``c`` nodes (the chaining edges are
    bridges), so cycle-at-most-c holds; crossing edges of two *different*
    cycles merges them into one long cycle and breaks the predicate.
    """
    c = cycle_length
    if c < 3:
        raise ValueError("cycles need at least 3 nodes")
    cycle_count = max(1, (node_count + c - 1) // c)
    graph = PortGraph()
    for index in range(cycle_count):
        # graft() preserves each block's pred/succ port convention exactly,
        # which the port-preserving isomorphisms between cycles rely on.
        graph.graft(cycle_graph(c, offset=index * c))
    for index in range(cycle_count - 1):
        # Connect consecutive cycles: last node of one to first of the next.
        graph.add_edge(index * c + c - 1, (index + 1) * c)
    return Configuration(graph, simple_states(graph))


def planted_cycle_configuration(
    node_count: int, cycle_length: int, seed: int = 0
) -> Tuple[Configuration, List[Node]]:
    """A graph whose longest simple cycle has exactly ``cycle_length`` nodes.

    The cycle ``0..c-1`` is planted; all remaining nodes hang off it in
    random trees (bridges create no new cycles).  Returns the witness cycle
    in order, so provers need no NP-hard search.
    """
    c = cycle_length
    if c < 3 or node_count < c:
        raise ValueError("need n >= c >= 3")
    rng = random.Random(seed)
    graph = cycle_graph(c)
    for node in range(c, node_count):
        graph.add_edge(node, rng.randrange(node))
    config = Configuration(graph, simple_states(graph))
    return config, list(range(c))


def tree_only_configuration(node_count: int, seed: int = 0) -> Configuration:
    """A random tree — contains no cycle at all (cycle-at-least-c is false)."""
    graph = random_connected_graph(node_count, 0, random.Random(seed))
    return Configuration(graph, simple_states(graph))


# ---------------------------------------------------------------------------
# Figures 3-4: the symmetry gadgets of Appendix C
# ---------------------------------------------------------------------------


def sym_gadget_edges(z: BitString, side: int) -> Tuple[List[Node], List[Tuple[Node, Node]]]:
    """Nodes and edges of ``G(z)`` with names tagged by ``side`` (0 or 1).

    Per Appendix C: a path ``U`` of ``lam`` nodes, flag nodes ``W``, a
    triangle ``T``, the anchor edge ``{t0, u0}``, and ``w_i`` attached to
    ``u_i`` when ``z_i = 1`` or to ``t1`` when ``z_i = 0``.
    """
    lam = z.length
    bits = z.bits()
    u = [(side, "u", i) for i in range(lam)]
    w = [(side, "w", i) for i in range(lam)]
    t = [(side, "t", i) for i in range(3)]
    nodes: List[Node] = u + w + t
    edges: List[Tuple[Node, Node]] = []
    edges.extend((u[i], u[i + 1]) for i in range(lam - 1))
    edges.extend([(t[0], t[1]), (t[0], t[2]), (t[1], t[2])])
    edges.append((t[0], u[0]))
    for i in range(lam):
        edges.append((w[i], u[i]) if bits[i] == 1 else (w[i], t[1]))
    return nodes, edges


def sym_pair_configuration(
    x: BitString, y: BitString
) -> Tuple[Configuration, Tuple[Node, Node], Set[Node], Set[Node]]:
    """Figure 4: ``G(x, y)`` — two gadgets joined by one cut edge.

    Returns ``(configuration, cut_edge, alice_nodes, bob_nodes)``.  By
    Claim C.2, the configuration satisfies ``Sym`` iff ``x == y``, which is
    what turns any RPLS for ``Sym`` into a 2-party EQ protocol.
    """
    if x.length != y.length or x.length < 1:
        raise ValueError("x and y must be equal-length, non-empty bit strings")
    nodes0, edges0 = sym_gadget_edges(x, side=0)
    nodes1, edges1 = sym_gadget_edges(y, side=1)
    lam = x.length
    cut = ((0, "u", lam - 1), (1, "u", lam - 1))
    graph = PortGraph.from_edges(
        edges0 + edges1 + [cut], nodes=nodes0 + nodes1
    )
    ids = {node: index for index, node in enumerate(sorted(nodes0 + nodes1, key=repr))}
    states = {node: NodeState(ids[node]) for node in graph.nodes}
    config = Configuration(graph, states)
    return config, cut, set(nodes0), set(nodes1)


# ---------------------------------------------------------------------------
# Unif (Lemma C.3) and coloring (intro)
# ---------------------------------------------------------------------------


def uniform_configuration(
    node_count: int,
    payload_bits: int,
    equal: bool = True,
    seed: int = 0,
    extra_edges: int = 0,
) -> Configuration:
    """A random connected graph whose nodes carry ``payload`` state strings.

    ``equal=True`` gives every node the same payload (``Unif`` holds);
    otherwise exactly one node differs in one bit — the hardest violation.
    """
    rng = random.Random(seed)
    graph = random_connected_graph(node_count, extra_edges, rng)
    payload = BitString(rng.getrandbits(payload_bits) if payload_bits else 0, payload_bits)
    states = {}
    deviant = rng.randrange(node_count) if not equal else None
    for node in graph.nodes:
        value = payload
        if node == deviant:
            if payload_bits == 0:
                raise ValueError("cannot build an unequal 0-bit payload family")
            flip = 1 << rng.randrange(payload_bits)
            value = BitString(payload.value ^ flip, payload_bits)
        states[node] = NodeState(node, {"payload": value})
    return Configuration(graph, states)


def two_node_configuration(x: BitString, y: BitString) -> Configuration:
    """Lemma C.3's graph: a single edge whose endpoints hold ``x`` and ``y``."""
    graph = PortGraph.from_edges([(1, 2)])
    states = {
        1: NodeState(1, {"payload": x}),
        2: NodeState(2, {"payload": y}),
    }
    return Configuration(graph, states)


def colored_configuration(
    node_count: int,
    colors: int,
    proper: bool = True,
    seed: int = 0,
    extra_edges: Optional[int] = None,
) -> Configuration:
    """A random graph with a greedy proper coloring (or one planted conflict)."""
    rng = random.Random(seed)
    if extra_edges is None:
        extra_edges = node_count
    graph = random_connected_graph(node_count, extra_edges, rng)
    coloring: Dict[Node, int] = {}
    for node in graph.nodes:
        used = {coloring[nb] for nb in graph.neighbors(node) if nb in coloring}
        color = next(c for c in range(colors + graph.max_degree + 1) if c not in used)
        coloring[node] = color
    if not proper:
        u, _pu, v, _pv = graph.edges()[rng.randrange(graph.edge_count)]
        coloring[v] = coloring[u]
    states = {
        node: NodeState(node, {"color": coloring[node]}) for node in graph.nodes
    }
    return Configuration(graph, states)


# ---------------------------------------------------------------------------
# k-flow workloads (Section 5.2)
# ---------------------------------------------------------------------------


def flow_configuration(
    path_count: int,
    path_length: int = 3,
    decoy_edges: int = 0,
    seed: int = 0,
) -> Configuration:
    """A graph whose ``s``–``t`` max flow (unit capacities) is exactly ``k``.

    ``k = path_count`` edge-disjoint paths of ``path_length`` interior nodes
    each run from ``s`` to ``t``; ``deg(s) = k`` pins the max flow to exactly
    ``k`` no matter which decoy edges are added among non-source nodes.
    State fields: ``source`` / ``target`` flags and the target value ``k``.
    """
    if path_count < 1 or path_length < 1:
        raise ValueError("need at least one path with one interior node")
    rng = random.Random(seed)
    graph = PortGraph()
    source = 0
    sink = 1
    graph.add_node(source)
    graph.add_node(sink)
    next_node = 2
    interiors: List[Node] = []
    for _ in range(path_count):
        previous = source
        for _ in range(path_length):
            graph.add_node(next_node)
            graph.add_edge(previous, next_node)
            interiors.append(next_node)
            previous = next_node
            next_node += 1
        graph.add_edge(previous, sink)
    added = 0
    attempts = 0
    while added < decoy_edges and attempts < 50 * (decoy_edges + 1):
        attempts += 1
        u = rng.choice(interiors)
        v = rng.choice(interiors + [sink])
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            added += 1
    states = {
        node: NodeState(
            node,
            {
                "source": node == source,
                "target": node == sink,
                "k": path_count,
            },
        )
        for node in graph.nodes
    }
    return Configuration(graph, states)


def vertex_connectivity_configuration(
    path_count: int,
    path_length: int = 2,
    decoy_edges: int = 0,
    seed: int = 0,
) -> Configuration:
    """A graph whose s-t *vertex* connectivity is exactly ``k = path_count``.

    ``k`` internally disjoint paths with ``path_length >= 1`` interior nodes
    each; ``s`` and ``t`` are non-adjacent and ``deg(s) = k``, so the
    neighborhood of ``s`` is a vertex cut of size ``k`` no matter which decoy
    edges are added among non-source nodes.
    """
    if path_count < 1 or path_length < 1:
        raise ValueError("need at least one path with one interior node")
    rng = random.Random(seed)
    graph = PortGraph()
    source, sink = 0, 1
    graph.add_node(source)
    graph.add_node(sink)
    next_node = 2
    interiors: List[Node] = []
    for _ in range(path_count):
        previous = source
        for _ in range(path_length):
            graph.add_node(next_node)
            graph.add_edge(previous, next_node)
            interiors.append(next_node)
            previous = next_node
            next_node += 1
        graph.add_edge(previous, sink)
    added = 0
    attempts = 0
    while added < decoy_edges and attempts < 50 * (decoy_edges + 1):
        attempts += 1
        u = rng.choice(interiors)
        v = rng.choice(interiors + [sink])
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            added += 1
    states = {
        node: NodeState(
            node,
            {
                "source": node == source,
                "target": node == sink,
                "k": path_count,
            },
        )
        for node in graph.nodes
    }
    return Configuration(graph, states)


def corrupt_claimed_k(configuration: Configuration) -> Configuration:
    """Bump every node's claimed ``k`` by one — the value-fault workload.

    For the flow and vertex-connectivity configurations (both carry the
    target value ``k`` in every node state) this claims one more unit of
    flow / one more disjoint path than the graph provides, over the same
    node set — so honest labels can be replayed against it.
    """
    states = {
        node: configuration.state(node).with_fields(
            k=configuration.state(node).get("k", 0) + 1
        )
        for node in configuration.graph.nodes
    }
    return Configuration(configuration.graph, states)


def reindex_ids(configuration: Configuration, offset: int) -> Configuration:
    """Shift every identity by ``offset`` (distinctness experiments)."""
    states = {
        node: NodeState(state.node_id + offset, dict(state.fields))
        for node, state in configuration.states.items()
    }
    return Configuration(configuration.graph, states)
