"""Edge crossing — Definition 4.2 and Figure 1.

Given two independent, port-preserving-isomorphic subgraphs ``H1, H2`` of
``G`` with isomorphism ``sigma``, the crossing ``sigma ⋈ (G)`` replaces every
pair of edges ``{u, v} in E1`` and ``{sigma(u), sigma(v)} in E2`` by the pair
``{u, sigma(v)}`` and ``{sigma(u), v}``.  Crucially, every surviving endpoint
keeps its original port number: node ``u`` still talks on the same port, it
just now reaches ``sigma(v)`` instead of ``v``.  That is exactly why a
verifier whose messages collide on ``H1`` and ``H2`` cannot tell ``G`` from
the crossed graph — the information arriving at every port is unchanged.

This module is pure graph surgery; the pigeonhole search that decides *which*
pair to cross lives in :mod:`repro.lowerbounds.crossing_attack`.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Set, Tuple

from repro.graphs.port_graph import Node, PortGraph

EdgePair = Tuple[Tuple[Node, Node], Tuple[Node, Node]]


def subgraphs_independent(
    graph: PortGraph, nodes1: Set[Node], nodes2: Set[Node]
) -> bool:
    """Definition 4.1: disjoint node sets with no edge of ``G`` between them."""
    if nodes1 & nodes2:
        return False
    for u in nodes1:
        for neighbor in graph.neighbors(u):
            if neighbor in nodes2:
                return False
    return True


def cross_edge_pairs(graph: PortGraph, pairs: Sequence[EdgePair]) -> PortGraph:
    """Return a new graph with every listed edge pair crossed.

    Each element of ``pairs`` is ``((u, v), (u2, v2))`` where ``u2 = sigma(u)``
    and ``v2 = sigma(v)``; the edges ``{u, v}`` and ``{u2, v2}`` are replaced
    by ``{u, v2}`` and ``{u2, v}`` with all four port numbers preserved.

    Raises :class:`ValueError` if a listed edge is missing.  The input graph
    is not modified.
    """
    result = graph.copy()
    for (u, v), (u2, v2) in pairs:
        port_u = result.port_to(u, v)
        port_u2 = result.port_to(u2, v2)
        if port_u is None:
            raise ValueError(f"edge {{{u!r}, {v!r}}} not in graph")
        if port_u2 is None:
            raise ValueError(f"edge {{{u2!r}, {v2!r}}} not in graph")
        port_v = result.reverse_port(u, port_u)
        port_v2 = result.reverse_port(u2, port_u2)
        # {u, v} + {u2, v2}  ->  {u, v2} + {u2, v}, ports kept at each endpoint.
        result.rewire(u, port_u, v2, port_v2)
        result.rewire(v2, port_v2, u, port_u)
        result.rewire(u2, port_u2, v, port_v)
        result.rewire(v, port_v, u2, port_u2)
    return result


def cross_subgraphs(
    graph: PortGraph,
    sigma: Mapping[Node, Node],
    edges1: Iterable[Tuple[Node, Node]],
) -> PortGraph:
    """Apply Definition 4.2 for a subgraph isomorphism.

    ``sigma`` maps ``V(H1)`` onto ``V(H2)`` and ``edges1`` lists ``E1``; every
    ``{u, v}`` in ``E1`` is crossed with ``{sigma(u), sigma(v)}``.
    """
    pairs: List[EdgePair] = [((u, v), (sigma[u], sigma[v])) for u, v in edges1]
    return cross_edge_pairs(graph, pairs)


def crossing_is_involution(
    graph: PortGraph,
    sigma: Mapping[Node, Node],
    edges1: Sequence[Tuple[Node, Node]],
) -> bool:
    """Check that crossing the same pair of subgraphs twice restores ``G``.

    Used by property tests: crossing swaps two half-edge attachments, so doing
    it twice must be the identity.
    """
    crossed = cross_subgraphs(graph, sigma, edges1)
    # After the first crossing, {u, v} became {u, sigma(v)}; crossing the
    # *images* back requires pairing {u, sigma(v)} with {sigma(u), v}.
    pairs: List[EdgePair] = [
        ((u, sigma[v]), (sigma[u], v)) for u, v in edges1
    ]
    restored = cross_edge_pairs(crossed, pairs)
    return _same_wiring(graph, restored)


def _same_wiring(a: PortGraph, b: PortGraph) -> bool:
    """Exact equality of the port wiring of two graphs."""
    if set(a.nodes) != set(b.nodes):
        return False
    for node in a.nodes:
        if a.degree(node) != b.degree(node):
            return False
        for port in range(a.degree(node)):
            if a.half_edge(node, port) != b.half_edge(node, port):
                return False
    return True
