"""Port-preserving subgraph isomorphisms.

Section 4 crosses subgraphs related by a *port-preserving* isomorphism: the
image of an edge must carry the same port number at the image endpoint as the
original edge does at the original endpoint.  That is what makes the crossed
graph indistinguishable to the verifier — messages arrive on the same ports.

Functions here validate a candidate ``sigma`` and (for tests and small
gadgets) enumerate all valid ones by brute force.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.graphs.port_graph import Node, PortGraph


def edge_ports(graph: PortGraph, u: Node, v: Node) -> Tuple[int, int]:
    """The ports ``(at u, at v)`` of the (unique, simple) edge ``{u, v}``."""
    port_u = graph.port_to(u, v)
    if port_u is None:
        raise ValueError(f"edge {{{u!r}, {v!r}}} not in graph")
    return port_u, graph.reverse_port(u, port_u)


def is_port_preserving_isomorphism(
    graph: PortGraph,
    edges1: Iterable[Tuple[Node, Node]],
    sigma: Mapping[Node, Node],
) -> bool:
    """True if ``sigma`` maps the subgraph with edges ``edges1`` port-preservingly.

    For every ``{u, v}`` in ``edges1`` with ports ``(a, b)``, the graph must
    contain ``{sigma(u), sigma(v)}`` wired on port ``a`` of ``sigma(u)`` and
    port ``b`` of ``sigma(v)``.  ``sigma`` must be injective.
    """
    values = list(sigma.values())
    if len(set(values)) != len(values):
        return False
    for u, v in edges1:
        if u not in sigma or v not in sigma:
            return False
        port_u, port_v = edge_ports(graph, u, v)
        image_u, image_v = sigma[u], sigma[v]
        if graph.degree(image_u) <= port_u:
            return False
        if graph.neighbor(image_u, port_u) != image_v:
            return False
        if graph.reverse_port(image_u, port_u) != port_v:
            return False
    return True


def find_port_preserving_isomorphisms(
    graph: PortGraph,
    nodes1: Sequence[Node],
    nodes2: Sequence[Node],
    edges1: Sequence[Tuple[Node, Node]],
) -> Iterator[Dict[Node, Node]]:
    """Enumerate every port-preserving isomorphism ``V1 -> V2`` (brute force).

    Intended for small gadgets and tests; the benchmark attacks construct
    their isomorphisms directly from the gadget layout instead.
    """
    nodes1 = list(nodes1)
    for image in permutations(nodes2, len(nodes1)):
        sigma = dict(zip(nodes1, image))
        if is_port_preserving_isomorphism(graph, edges1, sigma):
            yield sigma


def graphs_isomorphic(a: PortGraph, b: PortGraph) -> bool:
    """Unlabeled (port-oblivious) graph isomorphism, exact.

    Used by the ``Sym`` predicate (Theorem 3.5 / Appendix C): a graph is
    *symmetric* when deleting some edge splits it into two isomorphic halves.
    The algorithm is Weisfeiler–Leman color refinement to prune, followed by
    backtracking over color-respecting bijections — amply fast for the gadget
    sizes the paper's constructions use.
    """
    if a.node_count != b.node_count or a.edge_count != b.edge_count:
        return False
    colors_a = _refined_colors(a)
    colors_b = _refined_colors(b)
    histogram_a = sorted(colors_a.values())
    histogram_b = sorted(colors_b.values())
    if histogram_a != histogram_b:
        return False

    order = sorted(a.nodes, key=lambda node: (colors_a[node], repr(node)))
    candidates: Dict[Node, List[Node]] = {
        node: [
            other
            for other in b.nodes
            if colors_b[other] == colors_a[node]
        ]
        for node in order
    }
    mapping: Dict[Node, Node] = {}
    used: set = set()

    def backtrack(index: int) -> bool:
        if index == len(order):
            return True
        node = order[index]
        for image in candidates[node]:
            if image in used:
                continue
            consistent = True
            for neighbor in a.neighbors(node):
                if neighbor in mapping and not b.has_edge(image, mapping[neighbor]):
                    consistent = False
                    break
            if consistent:
                # Also forbid extra edges: mapped neighbors of the image must
                # correspond to neighbors of node.
                for mapped_node, mapped_image in mapping.items():
                    if b.has_edge(image, mapped_image) != a.has_edge(node, mapped_node):
                        consistent = False
                        break
            if not consistent:
                continue
            mapping[node] = image
            used.add(image)
            if backtrack(index + 1):
                return True
            del mapping[node]
            used.discard(image)
        return False

    return backtrack(0)


def _refined_colors(graph: PortGraph) -> Dict[Node, int]:
    """1-dimensional Weisfeiler-Leman colors (stable refinement of degrees)."""
    colors: Dict[Node, int] = {node: graph.degree(node) for node in graph.nodes}
    for _ in range(graph.node_count):
        signatures = {
            node: (colors[node], tuple(sorted(colors[nb] for nb in graph.neighbors(node))))
            for node in graph.nodes
        }
        palette = {sig: idx for idx, sig in enumerate(sorted(set(signatures.values())))}
        new_colors = {node: palette[signatures[node]] for node in graph.nodes}
        if new_colors == colors:
            break
        colors = new_colors
    return colors


def translation_isomorphism(offset_nodes: Sequence[Node], image_nodes: Sequence[Node]) -> Dict[Node, Node]:
    """The positional map ``offset_nodes[i] -> image_nodes[i]``.

    Convenience for gadget families where copies are translates of each other
    (paths, cycles), so the isomorphism is "shift by 3i" as in the proofs of
    Theorems 5.1, 5.2 and 5.4.
    """
    if len(offset_nodes) != len(image_nodes):
        raise ValueError("node sequences must have equal length")
    return dict(zip(offset_nodes, image_nodes))
