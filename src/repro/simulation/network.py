"""One synchronous communication round with exact bit accounting.

Verification in the paper's model is a single round: every node places one
message on each of its ports; the message placed on port ``i`` of ``v`` is
delivered to port ``j`` of the neighbor ``w`` wired to it.  The round
statistics — total bits, largest single message — are what the benchmarks
report, since *verification complexity is the size of the largest message a
legal run ships* (labels for a PLS, certificates for an RPLS).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.core.bitstrings import BitString
from repro.graphs.port_graph import Node, PortGraph

HalfEdgeKey = Tuple[Node, int]


@dataclass
class RoundStats:
    """Measurements of one communication round."""

    message_count: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    sent_bits_per_node: Dict[Node, int] = field(default_factory=dict)

    def record(self, sender: Node, message: BitString) -> None:
        self.message_count += 1
        self.total_bits += message.length
        self.max_message_bits = max(self.max_message_bits, message.length)
        self.sent_bits_per_node[sender] = (
            self.sent_bits_per_node.get(sender, 0) + message.length
        )


def exchange_messages(
    graph: PortGraph, outbox: Mapping[HalfEdgeKey, BitString]
) -> Tuple[Dict[HalfEdgeKey, BitString], RoundStats]:
    """Deliver one message per half-edge and account for every bit.

    ``outbox[(v, i)]`` is the message node ``v`` places on its port ``i``;
    the result maps ``(v, i)`` to the message *received* there, i.e. the one
    the neighbor placed on the other end of the edge.

    Raises :class:`ValueError` if any half-edge is missing a message — the
    model has no silent ports.
    """
    inbox: Dict[HalfEdgeKey, BitString] = {}
    stats = RoundStats()
    for node in graph.nodes:
        for port in range(graph.degree(node)):
            if (node, port) not in outbox:
                raise ValueError(f"no outgoing message on port {port} of {node!r}")
    for node in graph.nodes:
        for port, neighbor, reverse_port in graph.ports(node):
            message = outbox[(node, port)]
            stats.record(node, message)
            inbox[(neighbor, reverse_port)] = message
    return inbox, stats
