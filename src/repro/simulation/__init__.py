"""Distributed-execution substrate: one-round message passing, adversaries,
Monte-Carlo experiment drivers, and measurement helpers.

Proof-labeling schemes act "in one synchronous round of communication and
computation" (Section 2.1).  :mod:`repro.simulation.network` implements that
round with per-message bit accounting;
:mod:`repro.simulation.adversary` produces the forged label assignments the
soundness condition quantifies over; :mod:`repro.simulation.runner` drives
repeated randomized runs and estimates acceptance probabilities;
:mod:`repro.simulation.metrics` supplies the statistics (Wilson intervals,
shape fits) benchmarks report; :mod:`repro.simulation.self_stabilization`
closes the loop the paper motivates — periodic verification as the local
detector of a self-stabilizing system, with fault injection (state and
label memory), detection-latency measurement, and recovery.
"""

from repro.simulation.network import RoundStats, exchange_messages
from repro.simulation.metrics import AcceptanceEstimate, wilson_interval
from repro.simulation.self_stabilization import (
    StabilizationTrace,
    run_self_stabilization,
)

__all__ = [
    "AcceptanceEstimate",
    "RoundStats",
    "StabilizationTrace",
    "exchange_messages",
    "run_self_stabilization",
    "wilson_interval",
]
