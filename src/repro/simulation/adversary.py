"""Adversarial label assignments.

Soundness (Section 2.2) quantifies over *every* label assignment: "for every
illegal state, and for every label assignment, the verifier rejects...".
Tests cannot enumerate all assignments on real instances, so they attack from
three directions:

- :func:`honest_labels_on` — the honest prover run on a *different* (legal)
  configuration, or on the corrupted one; catches schemes that only compare
  labels to each other and never to the ground truth;
- :func:`random_labels` / :func:`perturb_labels` — random and
  mutation-based forgeries;
- :func:`exhaustive_forgery_search` — on tiny instances, literally every
  label assignment up to a bit budget, making the "for every" quantifier
  real where it is computable.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterator, Optional

from repro.core.bitstrings import BitString
from repro.core.configuration import Configuration
from repro.core.scheme import ProofLabelingScheme
from repro.core.verifier import verify_deterministic
from repro.graphs.port_graph import Node


def honest_labels_on(
    scheme, donor_configuration: Configuration
) -> Dict[Node, BitString]:
    """The honest prover's labels for a donor configuration.

    Useful when the corrupted configuration shares the donor's node set: the
    labels are perfectly self-consistent, so only checks grounded in the
    actual states/graph can reject.
    """
    return scheme.prover(donor_configuration)


def random_labels(
    configuration: Configuration, bits: int, seed: int = 0
) -> Dict[Node, BitString]:
    """Uniformly random ``bits``-bit labels."""
    rng = random.Random(seed)
    return {
        node: BitString(rng.getrandbits(bits) if bits else 0, bits)
        for node in configuration.graph.nodes
    }


def perturb_labels(
    labels: Dict[Node, BitString], flips: int = 1, seed: int = 0
) -> Dict[Node, BitString]:
    """Flip ``flips`` random bits somewhere in the label assignment."""
    rng = random.Random(seed)
    mutable = dict(labels)
    nodes_with_bits = [node for node, label in mutable.items() if label.length > 0]
    if not nodes_with_bits:
        return mutable
    for _ in range(flips):
        node = rng.choice(nodes_with_bits)
        label = mutable[node]
        position = rng.randrange(label.length)
        mask = 1 << (label.length - 1 - position)
        mutable[node] = BitString(label.value ^ mask, label.length)
    return mutable


def all_labels_up_to(bits: int) -> Iterator[BitString]:
    """Every bit string of length 0..bits, shortest first."""
    for length in range(bits + 1):
        for value in range(1 << length):
            yield BitString(value, length)


def exhaustive_forgery_search(
    scheme: ProofLabelingScheme,
    configuration: Configuration,
    max_bits: int,
    limit: Optional[int] = None,
) -> Optional[Dict[Node, BitString]]:
    """Search *every* label assignment (labels up to ``max_bits`` bits each)
    for one the verifier accepts.

    Returns an accepting assignment (a soundness **counterexample** when the
    configuration is illegal) or None if all assignments are rejected.  The
    space has ``(2^(max_bits+1) - 1)^n`` points; ``limit`` caps the search
    for safety and raises :class:`RuntimeError` when exhausted.
    """
    nodes = configuration.graph.nodes
    alphabet = list(all_labels_up_to(max_bits))
    examined = 0
    for combination in itertools.product(alphabet, repeat=len(nodes)):
        examined += 1
        if limit is not None and examined > limit:
            raise RuntimeError(f"exhausted the {limit}-assignment search budget")
        labels = dict(zip(nodes, combination))
        if verify_deterministic(scheme, configuration, labels=labels).accepted:
            return labels
    return None
