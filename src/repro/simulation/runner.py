"""Experiment drivers shared by the test suite and the benchmark harness.

These functions wrap the verification engines into the experiment shapes the
paper's results call for: completeness/soundness summaries per scheme,
verification-complexity sweeps over growing instances, and boosting curves.
Benchmarks print the rows; tests assert the qualitative claims.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.configuration import Configuration
from repro.core.scheme import ProofLabelingScheme, RandomizedScheme
from repro.core.verifier import verify_deterministic
from repro.simulation.metrics import AcceptanceEstimate


@dataclass
class SoundnessReport:
    """Completeness and soundness evidence for one scheme on one family."""

    scheme_name: str
    legal_accepted: bool
    illegal_results: List[Tuple[str, bool]]  # (attack name, rejected?)

    @property
    def all_illegal_rejected(self) -> bool:
        return all(rejected for _name, rejected in self.illegal_results)


def deterministic_soundness_report(
    scheme: ProofLabelingScheme,
    legal: Configuration,
    attacks: Dict[str, Dict],
) -> SoundnessReport:
    """Run a PLS against a legal configuration and a dict of forged runs.

    ``attacks`` maps attack names to ``{"configuration": ..., "labels": ...}``
    (labels optional; default honest prover on that configuration).
    """
    legal_run = verify_deterministic(scheme, legal)
    results = []
    for name, attack in attacks.items():
        configuration = attack["configuration"]
        labels = attack.get("labels")
        if labels is None:
            try:
                labels = scheme.prover(configuration)
            except ValueError:
                # The prover cannot even produce labels for this (illegal)
                # configuration — that counts as a detection.
                results.append((name, True))
                continue
        run = verify_deterministic(scheme, configuration, labels=labels)
        results.append((name, not run.accepted))
    return SoundnessReport(
        scheme_name=scheme.name,
        legal_accepted=legal_run.accepted,
        illegal_results=results,
    )


@dataclass
class ComplexityRow:
    """One row of a verification-complexity sweep."""

    parameter: int
    deterministic_bits: Optional[int]
    randomized_bits: Optional[int]

    @property
    def compression(self) -> Optional[float]:
        if not self.deterministic_bits or not self.randomized_bits:
            return None
        return self.deterministic_bits / self.randomized_bits


def complexity_sweep(
    parameters: Sequence[int],
    make_configuration: Callable[[int], Configuration],
    make_pls: Optional[Callable[[int], ProofLabelingScheme]] = None,
    make_rpls: Optional[Callable[[int], RandomizedScheme]] = None,
) -> List[ComplexityRow]:
    """Measure label/certificate bits across a parameter sweep.

    Factories take the parameter so witness-carrying schemes can be rebuilt
    per instance.
    """
    rows = []
    for parameter in parameters:
        configuration = make_configuration(parameter)
        det_bits = (
            make_pls(parameter).verification_complexity(configuration)
            if make_pls is not None
            else None
        )
        rand_bits = (
            make_rpls(parameter).verification_complexity(configuration)
            if make_rpls is not None
            else None
        )
        rows.append(
            ComplexityRow(
                parameter=parameter,
                deterministic_bits=det_bits,
                randomized_bits=rand_bits,
            )
        )
    return rows


def grows_like_log(parameters: Sequence[int], values: Sequence[float], slack: float = 4.0) -> bool:
    """Heuristic shape check: values bounded by ``slack * log2(parameter) + slack``.

    Used by benchmark assertions; deliberately generous (constants are
    implementation artifacts) while still separating ``log`` from ``poly``.
    """
    return all(
        value <= slack * math.log2(max(parameter, 2)) + slack
        for parameter, value in zip(parameters, values)
    )


def grows_like_loglog(
    parameters: Sequence[int], values: Sequence[float], slack: float = 8.0
) -> bool:
    """Shape check against ``slack * log2(log2(parameter)) + slack``."""
    return all(
        value <= slack * math.log2(max(math.log2(max(parameter, 4)), 2.0)) + slack
        for parameter, value in zip(parameters, values)
    )


@dataclass
class BoostingRow:
    """One row of a boosting sweep: repetitions vs measured error."""

    repetitions: int
    certificate_bits: int
    empirical_error: float
    theoretical_bound: float


def boosting_sweep(
    make_boosted: Callable[[int], RandomizedScheme],
    illegal: Configuration,
    labels_factory: Callable[[RandomizedScheme], Dict],
    repetitions_list: Sequence[int],
    trials: int,
    seed: int = 0,
) -> List[BoostingRow]:
    """Measure the false-accept rate of boosted schemes on an illegal instance.

    Estimation routes through the batched engine (identical per-trial
    decisions to :func:`estimate_acceptance`, far more trials per second).
    """
    from repro.engine import estimate_acceptance_batched  # lazy: import cycle

    rows = []
    for repetitions in repetitions_list:
        scheme = make_boosted(repetitions)
        labels = labels_factory(scheme)
        estimate = estimate_acceptance_batched(
            scheme, illegal, trials=trials, seed=seed, labels=labels
        )
        rows.append(
            BoostingRow(
                repetitions=repetitions,
                certificate_bits=scheme.verification_complexity(illegal),
                empirical_error=estimate.probability,
                theoretical_bound=0.5**repetitions,
            )
        )
    return rows


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Monospace table rendering for benchmark output."""
    columns = [
        [str(header)] + [str(row[index]) for row in rows]
        for index, header in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = "  ".join(
        str(headers[i]).ljust(widths[i]) for i in range(len(headers))
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(str(row[i]).ljust(widths[i]) for i in range(len(headers)))
        )
    return "\n".join(lines)
