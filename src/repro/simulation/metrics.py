"""Statistics for Monte-Carlo verification experiments.

The randomized verifier is a Monte-Carlo algorithm, so benchmarks report
estimated acceptance probabilities with confidence intervals rather than bare
frequencies.  The Wilson score interval is used because acceptance
probabilities sit near 0 and 1 (one-sided schemes), where the normal
approximation interval degenerates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    >>> low, high = wilson_interval(90, 100)
    >>> 0.8 < low < 0.9 < high < 0.96
    True
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    proportion = successes / trials
    denominator = 1 + z * z / trials
    center = (proportion + z * z / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(
            proportion * (1 - proportion) / trials + z * z / (4 * trials * trials)
        )
        / denominator
    )
    return max(0.0, center - margin), min(1.0, center + margin)


@dataclass(frozen=True)
class AcceptanceEstimate:
    """A Monte-Carlo estimate of ``Pr[verifier accepts]``.

    The zero-trial estimate is a legitimate value, not an error: a
    cooperative stop that fires before a shard's first chunk reports
    ``AcceptanceEstimate(0, 0)`` (see :mod:`repro.parallel`), and merging
    treats it as the identity.  Its ``probability`` and ``interval`` are
    *undefined* rather than exceptional — they return ``nan`` /
    ``(nan, nan)``, which propagates honestly through records and
    formatting (every comparison with ``nan`` is false, so
    ``at_least``/``at_most`` decline to certify anything).
    """

    accepted: int
    trials: int

    @property
    def probability(self) -> float:
        if self.trials == 0:
            return float("nan")
        return self.accepted / self.trials

    @property
    def interval(self) -> Tuple[float, float]:
        if self.trials == 0:
            return (float("nan"), float("nan"))
        return wilson_interval(self.accepted, self.trials)

    def at_least(self, threshold: float) -> bool:
        """True if the upper confidence bound clears ``threshold``.

        Appropriate for asserting completeness-style guarantees
        (``p_accept >= 2/3``) without flaking on sampling noise.  A
        zero-trial estimate certifies nothing (``nan >= x`` is false).
        """
        return self.interval[1] >= threshold

    def at_most(self, threshold: float) -> bool:
        """True if the lower confidence bound stays under ``threshold``."""
        return self.interval[0] <= threshold

    @classmethod
    def merge(cls, estimates: Iterable["AcceptanceEstimate"]) -> "AcceptanceEstimate":
        """Pool estimates of the *same* acceptance probability into one.

        Counts simply add, so the merge is exact (not an approximation):
        merging the per-shard estimates of a partition of ``[0, trials)``
        reproduces the single-process estimate of the whole range, because
        each trial's verdict is a pure function of its trial seed.  Addition
        makes the operation associative and order-independent by
        construction — the sharded executor (:mod:`repro.parallel`) relies
        on both, since its shards complete in nondeterministic order.

        Zero-trial estimates (a shard cancelled before its first chunk) are
        legitimate identity elements; merging an empty iterable yields the
        empty estimate, whose ``probability``/``interval`` are ``nan`` /
        ``(nan, nan)`` until real trials are merged in.

        >>> AcceptanceEstimate.merge(
        ...     [AcceptanceEstimate(3, 4), AcceptanceEstimate(1, 6)]
        ... )
        AcceptanceEstimate(accepted=4, trials=10)
        """
        accepted = 0
        trials = 0
        for estimate in estimates:
            accepted += estimate.accepted
            trials += estimate.trials
        return cls(accepted=accepted, trials=trials)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        low, high = self.interval
        return f"{self.probability:.3f} [{low:.3f}, {high:.3f}] ({self.trials} trials)"


def doubling_ratio(values: Sequence[float]) -> float:
    """Mean ratio ``values[i+1] / values[i]`` — crude growth-shape probe.

    Benchmarks use this on bit counts measured at geometrically spaced ``n``:
    logarithmic growth gives ratios tending to 1, linear growth gives ratios
    near the spacing factor.
    """
    if len(values) < 2:
        raise ValueError("need at least two values")
    ratios = []
    for left, right in zip(values, values[1:]):
        if left <= 0:
            raise ValueError("values must be positive")
        ratios.append(right / left)
    return sum(ratios) / len(ratios)
