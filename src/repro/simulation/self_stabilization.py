"""The self-stabilization loop: periodic verification, detection, recovery.

Proof-labeling schemes were born in the self-stabilization literature the
paper builds on ([1] local detection, [9] PLS vs silent self-stabilization,
[30] fast MST fault detection): a network maintains a distributed data
structure, transient faults silently corrupt it, and a periodic *local
detection* round — exactly one PLS/RPLS verification — triggers recovery.

This module simulates that loop faithfully and measures what a systems
operator would: **detection latency** (rounds from fault to first FALSE),
**false alarms** (FALSE on a legal state — provably zero for one-sided
schemes), and **availability** (fraction of rounds spent in a legal state).

The moving parts:

- the *detector* is any :class:`~repro.core.scheme.RandomizedScheme`;
  boosting it (:class:`~repro.core.boosting.BoostedRPLS`) trades certificate
  bits for detection latency — benchmark E19 sweeps that trade;
- the *fault injector* corrupts the configuration at scheduled rounds
  (states only — labels go stale, which is precisely what makes the fault
  detectable);
- the *recovery* procedure rebuilds a legal configuration and fresh labels,
  modeling the "launch a recovery procedure" reaction the paper describes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.bitstrings import BitString
from repro.core.configuration import Configuration
from repro.core.scheme import RandomizedScheme
from repro.graphs.port_graph import Node

FaultInjector = Callable[[Configuration, int], Configuration]
LabelFaultInjector = Callable[
    [Dict[Node, BitString], Configuration, int], Dict[Node, BitString]
]
Recovery = Callable[[Configuration], Tuple[Configuration, Dict[Node, BitString]]]


@dataclass
class RoundRecord:
    """What happened in one simulated round."""

    round_index: int
    fault_injected: bool
    legal: bool
    detected: bool
    recovered: bool


@dataclass
class StabilizationTrace:
    """The full history of one simulation run."""

    records: List[RoundRecord] = field(default_factory=list)
    detection_latencies: List[int] = field(default_factory=list)
    false_alarms: int = 0
    undetected_faults: int = 0

    @property
    def rounds(self) -> int:
        return len(self.records)

    @property
    def availability(self) -> float:
        """Fraction of rounds spent in a legal state."""
        if not self.records:
            return 1.0
        return sum(1 for r in self.records if r.legal) / len(self.records)

    @property
    def mean_detection_latency(self) -> Optional[float]:
        if not self.detection_latencies:
            return None
        return sum(self.detection_latencies) / len(self.detection_latencies)


def run_self_stabilization(
    scheme: RandomizedScheme,
    configuration: Configuration,
    recovery: Recovery,
    fault_rounds: Dict[int, FaultInjector],
    total_rounds: int,
    seed: int = 0,
    label_fault_rounds: Optional[Dict[int, LabelFaultInjector]] = None,
    randomness: str = "edge",
    rng_mode: str = "compat",
    plan_cache: Optional["PlanCache"] = None,
) -> StabilizationTrace:
    """Simulate ``total_rounds`` of the verify-detect-recover loop.

    Two fault models, matching the transient-memory-fault setting of the
    self-stabilization literature:

    - ``fault_rounds`` corrupt the *output* (node states).  Labels are not
      refreshed — they were computed for the pre-fault state, which is what
      detection exploits.
    - ``label_fault_rounds`` corrupt the *proof* (stored labels) while the
      output stays legal.  These are only detectable through the randomized
      consistency checks (fingerprint/parity mismatches), so detection is
      probabilistic per round — the latency-vs-boosting trade lives here.

    Every round runs one randomized verification with a fresh seed (the
    SplitMix64 per-round derivation of :mod:`repro.core.seeding`).  On a
    FALSE at any node, recovery runs immediately (the repaired state is in
    force from the next round on).

    ``rng_mode`` selects the per-round coin derivation (``"compat"``,
    ``"fast"``, or the counter-based ``"vector"`` — see
    :mod:`repro.engine.plan`); it compiles into the plans this loop
    resolves, and the cache keys on it, so runs sharing one ``plan_cache``
    across modes can never serve each other's coin streams.

    Verification rounds run over a compiled
    :class:`~repro.engine.plan.VerificationPlan`, resolved through a
    value-keyed :class:`~repro.engine.cache.PlanCache` whenever a fault or
    recovery may have changed the configuration or the labels.  The
    fault/recovery cycle revisits the same handful of states (the legal
    state, each recurring corruption, the repaired state), so after the
    first cycle nearly every re-resolution is a cache hit and the loop pays
    just the per-round randomized work plus one value-key computation.
    Pass ``plan_cache`` to share compiled plans across runs (e.g. a
    boosting sweep over one workload); by default each run gets its own.
    """
    # Local imports: repro.core.verifier / repro.engine pull in
    # repro.simulation.metrics, so module-level imports here would close an
    # import cycle.
    from repro.core.seeding import derive_trial_seed
    from repro.engine.cache import PlanCache
    from repro.engine.plan import VerificationPlan

    cache = plan_cache if plan_cache is not None else PlanCache(maxsize=8)
    trace = StabilizationTrace()
    current = configuration
    labels = scheme.prover(configuration)
    fault_pending_since: Optional[int] = None
    label_fault_rounds = label_fault_rounds or {}
    plan: Optional[VerificationPlan] = None
    plan_stale = True

    for round_index in range(total_rounds):
        injected = False
        if round_index in fault_rounds:
            current = fault_rounds[round_index](current, round_index)
            if fault_pending_since is None:
                fault_pending_since = round_index
            injected = True
        if round_index in label_fault_rounds:
            labels = label_fault_rounds[round_index](labels, current, round_index)
            if fault_pending_since is None:
                fault_pending_since = round_index
            injected = True

        legal = scheme.predicate.holds(current)
        # Any injector or recovery run marks the plan stale — injectors and
        # recovery procedures are user-supplied callables with no purity
        # contract, so even one that mutates in place and returns the same
        # object triggers a re-resolution.  The cache key is computed from
        # the *current* values, so an in-place mutation changes the key and
        # compiles, while a state the loop has seen before (recovery
        # rebuilding the legal configuration, a recurring fault pattern)
        # hits and skips the compile entirely.
        if plan is None or plan_stale or injected:
            plan = cache.get(
                scheme,
                current,
                labels=labels,
                randomness=randomness,
                rng_mode=rng_mode,
            )
            plan_stale = False
        detected = not plan.run_trial(derive_trial_seed(seed, round_index))

        recovered = False
        if detected:
            if legal and fault_pending_since is None:
                trace.false_alarms += 1
            if fault_pending_since is not None:
                trace.detection_latencies.append(round_index - fault_pending_since)
                fault_pending_since = None
            current, labels = recovery(current)
            plan_stale = True
            recovered = True

        trace.records.append(
            RoundRecord(
                round_index=round_index,
                fault_injected=injected,
                legal=legal,
                detected=detected,
                recovered=recovered,
            )
        )

    if fault_pending_since is not None:
        trace.undetected_faults += 1
    return trace


@dataclass(frozen=True)
class StabilizationSummary:
    """The operator-facing metrics of one replica of the loop.

    The picklable digest a parallel replica ships back to the coordinator —
    a full :class:`StabilizationTrace` would drag every per-round record
    through the process boundary for no analytical gain.
    """

    run_index: int
    seed: int
    rounds: int
    availability: float
    detections: int
    mean_detection_latency: Optional[float]
    false_alarms: int
    undetected_faults: int


def summarize_trace(
    trace: StabilizationTrace, run_index: int = 0, seed: int = 0
) -> StabilizationSummary:
    """Collapse a trace into its :class:`StabilizationSummary`."""
    return StabilizationSummary(
        run_index=run_index,
        seed=seed,
        rounds=trace.rounds,
        availability=trace.availability,
        detections=len(trace.detection_latencies),
        mean_detection_latency=trace.mean_detection_latency,
        false_alarms=trace.false_alarms,
        undetected_faults=trace.undetected_faults,
    )


def _replica_worker(payload, should_stop) -> StabilizationSummary:
    """One replica of the loop — runs on any repro.parallel backend."""
    setup, run_index, run_seed = payload
    kwargs = dict(setup(run_index, run_seed))
    kwargs.setdefault("seed", run_seed)
    trace = run_self_stabilization(**kwargs)
    return summarize_trace(trace, run_index=run_index, seed=kwargs["seed"])


def run_stabilization_replicas(
    setup: Callable[[int, int], Dict],
    runs: int,
    seed: int = 0,
    executor: object = "serial",
    workers: Optional[int] = None,
) -> List[StabilizationSummary]:
    """Run independent fault/recovery replicas across a worker pool.

    Detection latency and availability are random variables of the round
    coins and the fault pattern, so tight confidence intervals need many
    independent replicas — which are embarrassingly parallel.  ``setup``
    maps ``(run_index, run_seed)`` to the keyword arguments of
    :func:`run_self_stabilization` (anything omitted gets ``seed=run_seed``);
    per-replica seeds derive from the master ``seed`` through the SplitMix64
    trial mix, so replica ``i`` is the same run on every backend and worker
    count.  Results return sorted by ``run_index``.

    ``executor`` accepts the same name-or-instance argument as
    :func:`repro.parallel.estimate_acceptance_sharded`.  For the process
    backend ``setup`` must be a module-level callable building the whole
    workload in the worker (schemes, recovery procedures, and fault
    schedules are not shipped across the boundary — same rule as
    :class:`repro.parallel.PlanSpec` factories).
    """
    # Local import: repro.parallel is a downstream consumer of this module's
    # sibling metrics — importing it lazily keeps simulation importable
    # without the parallel subsystem in the loop.
    from repro.core.seeding import derive_trial_seed
    from repro.parallel.executors import resolve_executor

    if runs < 1:
        raise ValueError("runs must be positive")
    payloads = [
        (setup, run_index, derive_trial_seed(seed, run_index))
        for run_index in range(runs)
    ]
    instance, owned = resolve_executor(executor, workers)
    try:
        summaries = list(instance.run(_replica_worker, payloads))
    finally:
        if owned:
            instance.close()
    return sorted(summaries, key=lambda summary: summary.run_index)


def periodic_faults(
    injector: FaultInjector, period: int, total_rounds: int, start: int = 0
) -> Dict[int, FaultInjector]:
    """A fault schedule hitting every ``period`` rounds."""
    if period < 1:
        raise ValueError("period must be positive")
    return {r: injector for r in range(start, total_rounds, period)}


def seeded_injector(
    corrupt: Callable[[Configuration, int], Configuration]
) -> FaultInjector:
    """Adapt a ``corrupt(configuration, seed)`` helper into an injector that
    uses the round index as its seed (distinct faults each time)."""

    def inject(configuration: Configuration, round_index: int) -> Configuration:
        return corrupt(configuration, round_index)

    return inject


def bit_flip_label_injector(flips: int = 1) -> LabelFaultInjector:
    """A memory-fault model: flip ``flips`` random bits in one node's label."""

    def inject(
        labels: Dict[Node, BitString],
        configuration: Configuration,
        round_index: int,
    ) -> Dict[Node, BitString]:
        rng = random.Random(round_index)
        nodes = configuration.graph.nodes
        victim = nodes[rng.randrange(len(nodes))]
        label = labels[victim]
        if label.length == 0:
            return labels
        value = label.value
        for _ in range(flips):
            value ^= 1 << rng.randrange(label.length)
        mutated = dict(labels)
        mutated[victim] = BitString(value, label.length)
        return mutated

    return inject
