"""Max-flow machinery for the k-flow scheme of Section 5.2.

The paper notes an ``O(k log n)`` deterministic PLS for deciding whether the
maximum ``s``–``t`` flow equals ``k`` ([31]), hence an
``O(log k + log log n)`` RPLS via Theorem 3.1.  On simple undirected graphs
with unit capacities, max-flow equals the number of edge-disjoint ``s``–``t``
paths (Menger), which is the setting our scheme certifies with two witnesses:

- ``k`` edge-disjoint paths (flow feasibility: ``maxflow >= k``), found by
  Edmonds–Karp plus flow decomposition;
- the set of nodes reachable from ``s`` in the *residual* graph, which must
  exclude ``t`` (maximality: ``maxflow <= k``) — a locally checkable
  reachability certificate.

The module implements Edmonds–Karp on arbitrary integer-capacity digraphs,
the undirected unit-capacity reduction, flow decomposition into simple
edge-disjoint paths, vertex-disjoint paths via node splitting (Menger's
vertex form, used by the s-t vertex-connectivity discussion of Section 5.2),
and residual reachability.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.graphs.port_graph import Node, PortGraph

Arcs = Dict[Hashable, Dict[Hashable, int]]


def max_flow(capacities: Arcs, source: Hashable, sink: Hashable) -> Tuple[int, Arcs]:
    """Edmonds–Karp maximum flow on an integer-capacity digraph.

    ``capacities[u][v]`` is the capacity of arc ``(u, v)`` (absent = 0).
    Returns ``(value, flow)`` with ``flow[u][v] >= 0`` and skew-symmetry
    handled implicitly (flow is stored on forward arcs only; pushing along a
    residual reverse arc cancels stored flow).
    """
    if source == sink:
        raise ValueError("source and sink must differ")
    flow: Arcs = {u: {v: 0 for v in targets} for u, targets in capacities.items()}

    def residual(u: Hashable, v: Hashable) -> int:
        forward = capacities.get(u, {}).get(v, 0) - flow.get(u, {}).get(v, 0)
        backward = flow.get(v, {}).get(u, 0)
        return forward + backward

    def neighbors(u: Hashable) -> Set[Hashable]:
        out = set(capacities.get(u, {}))
        incoming = {w for w, targets in capacities.items() if u in targets}
        return out | incoming

    value = 0
    while True:
        # BFS for a shortest augmenting path in the residual graph.
        parent: Dict[Hashable, Hashable] = {source: source}
        queue = deque([source])
        while queue and sink not in parent:
            u = queue.popleft()
            for v in neighbors(u):
                if v not in parent and residual(u, v) > 0:
                    parent[v] = u
                    queue.append(v)
        if sink not in parent:
            return value, flow
        # Bottleneck along the path.
        bottleneck = None
        v = sink
        while v != source:
            u = parent[v]
            r = residual(u, v)
            bottleneck = r if bottleneck is None else min(bottleneck, r)
            v = u
        # Augment.
        v = sink
        while v != source:
            u = parent[v]
            cancel = min(bottleneck, flow.get(v, {}).get(u, 0))
            if cancel:
                flow[v][u] -= cancel
            remainder = bottleneck - cancel
            if remainder:
                flow.setdefault(u, {}).setdefault(v, 0)
                flow[u][v] += remainder
            v = u
        value += bottleneck


def unit_capacity_arcs(graph: PortGraph) -> Arcs:
    """Each undirected edge becomes two unit-capacity arcs."""
    arcs: Arcs = {node: {} for node in graph.nodes}
    for u, _pu, v, _pv in graph.edges():
        arcs[u][v] = 1
        arcs[v][u] = 1
    return arcs


def net_unit_flow(graph: PortGraph, flow: Arcs) -> Dict[Tuple[Node, Node], int]:
    """Collapse a unit flow on antiparallel arcs into a net orientation.

    Returns ``{(u, v): 1}`` for every edge carrying net flow from ``u`` to
    ``v``; edges with cancelled or zero flow are omitted.
    """
    oriented: Dict[Tuple[Node, Node], int] = {}
    for u, _pu, v, _pv in graph.edges():
        net = flow.get(u, {}).get(v, 0) - flow.get(v, {}).get(u, 0)
        if net > 0:
            oriented[(u, v)] = net
        elif net < 0:
            oriented[(v, u)] = -net
    return oriented


def edge_disjoint_paths(
    graph: PortGraph, source: Node, sink: Node
) -> List[List[Node]]:
    """A maximum set of edge-disjoint ``source``–``sink`` paths (Menger).

    Paths are node sequences starting at ``source`` and ending at ``sink``;
    their count equals the unit-capacity max-flow value.
    """
    value, flow = max_flow(unit_capacity_arcs(graph), source, sink)
    remaining = dict(net_unit_flow(graph, flow))
    out_arcs: Dict[Node, List[Node]] = {}
    for (u, v), units in remaining.items():
        if units != 1:
            raise AssertionError("unit-capacity flow must orient edges 0/1")
        out_arcs.setdefault(u, []).append(v)
    _cancel_flow_cycles(out_arcs)

    paths: List[List[Node]] = []
    for _ in range(value):
        path = [source]
        current = source
        visited_arcs: Set[Tuple[Node, Node]] = set()
        while current != sink:
            candidates = out_arcs.get(current, [])
            if not candidates:
                raise AssertionError("flow decomposition ran out of arcs")
            nxt = candidates.pop()
            visited_arcs.add((current, nxt))
            path.append(nxt)
            current = nxt
            if len(path) > graph.edge_count + 1:
                raise AssertionError("flow decomposition found a cycle")
        paths.append(path)
    return paths


def _cancel_flow_cycles(out_arcs: Dict[Node, List[Node]]) -> None:
    """Remove directed cycles from a unit net flow, in place.

    A feasible flow may contain circulation cycles that carry no value;
    cancelling them makes the arc set acyclic so decomposition yields
    *simple* paths — which the k-flow scheme's position counters require.
    """
    while True:
        cycle = _find_arc_cycle(out_arcs)
        if cycle is None:
            return
        for u, v in cycle:
            out_arcs[u].remove(v)


def _find_arc_cycle(
    out_arcs: Dict[Node, List[Node]]
) -> Optional[List[Tuple[Node, Node]]]:
    """One directed cycle in an arc multiset, or None (iterative DFS)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[Node, int] = {}
    for start in list(out_arcs):
        if color.get(start, WHITE) != WHITE:
            continue
        stack: List[Tuple[Node, int]] = [(start, 0)]
        path: List[Node] = [start]
        color[start] = GRAY
        while stack:
            node, index = stack[-1]
            successors = out_arcs.get(node, [])
            if index < len(successors):
                stack[-1] = (node, index + 1)
                nxt = successors[index]
                state = color.get(nxt, WHITE)
                if state == GRAY:
                    position = path.index(nxt)
                    cycle_nodes = path[position:] + [nxt]
                    return list(zip(cycle_nodes, cycle_nodes[1:]))
                if state == WHITE:
                    color[nxt] = GRAY
                    path.append(nxt)
                    stack.append((nxt, 0))
            else:
                color[node] = BLACK
                stack.pop()
                path.pop()
    return None


def vertex_disjoint_paths(
    graph: PortGraph, source: Node, sink: Node
) -> List[List[Node]]:
    """A maximum set of internally vertex-disjoint paths, via node splitting.

    Every node ``v`` other than the terminals becomes ``(v, 'in') ->
    (v, 'out')`` with capacity 1; edges get capacity 1 in both directions.
    """
    def node_in(v: Node):
        return (v, "in") if v not in (source, sink) else v

    def node_out(v: Node):
        return (v, "out") if v not in (source, sink) else v

    arcs: Arcs = {}
    big = graph.edge_count + 1
    for v in graph.nodes:
        if v not in (source, sink):
            arcs.setdefault(node_in(v), {})[node_out(v)] = 1
    for u, _pu, v, _pv in graph.edges():
        arcs.setdefault(node_out(u), {})[node_in(v)] = 1
        arcs.setdefault(node_out(v), {})[node_in(u)] = 1
    value, flow = max_flow(arcs, source, sink)

    # Decompose on the split graph, then strip the in/out bookkeeping.
    oriented: Dict[Hashable, List[Hashable]] = {}
    for u, targets in flow.items():
        for v, units in targets.items():
            net = units - flow.get(v, {}).get(u, 0)
            if net > 0:
                oriented.setdefault(u, []).extend([v] * net)
    paths: List[List[Node]] = []
    for _ in range(value):
        split_path = [source]
        current: Hashable = source
        while current != sink:
            candidates = oriented.get(current, [])
            if not candidates:
                raise AssertionError("vertex decomposition ran out of arcs")
            current = candidates.pop()
            split_path.append(current)
            if len(split_path) > 4 * (graph.edge_count + graph.node_count) + 4:
                raise AssertionError("vertex decomposition found a cycle")
        path = [
            step for step in split_path
            if not (isinstance(step, tuple) and len(step) == 2 and step[1] == "in")
        ]
        path = [
            step[0] if isinstance(step, tuple) and len(step) == 2 and step[1] == "out"
            else step
            for step in path
        ]
        paths.append(path)
    return paths


def residual_reachable(
    graph: PortGraph,
    oriented_flow: Dict[Tuple[Node, Node], int],
    source: Node,
) -> Dict[Node, int]:
    """BFS layers of the residual graph of a unit flow, from ``source``.

    Residual arcs of an undirected unit-capacity edge ``{u, v}``:

    - unused edge: both ``u -> v`` and ``v -> u``;
    - edge carrying net flow ``u -> v``: only the reverse arc ``v -> u``.

    Returns ``{node: layer}`` for reachable nodes.  In a maximum flow the
    sink is unreachable, and that fact — checkable edge-by-edge — is the
    local certificate that no augmenting path exists (``flow <= k``).
    """
    arcs: Dict[Node, Set[Node]] = {node: set() for node in graph.nodes}
    for u, _pu, v, _pv in graph.edges():
        if oriented_flow.get((u, v), 0) > 0:
            arcs[v].add(u)
        elif oriented_flow.get((v, u), 0) > 0:
            arcs[u].add(v)
        else:
            arcs[u].add(v)
            arcs[v].add(u)
    layers = {source: 0}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for nxt in arcs[current]:
            if nxt not in layers:
                layers[nxt] = layers[current] + 1
                queue.append(nxt)
    return layers
