"""Arithmetic over the prime field ``GF(p)``.

The fingerprint protocol of Lemma A.1 interprets a bit string
``a = a_0 a_1 ... a_{lam-1}`` as the polynomial

    A(x) = a_0 + a_1 * x + ... + a_{lam-1} * x^{lam-1}  (mod p)

and exchanges ``(x, A(x))`` for a uniformly random ``x in GF(p)``.  Two
distinct polynomials of degree ``< lam`` agree on at most ``lam - 1`` points,
which is the entire soundness argument.  This module provides the small,
carefully tested field layer those statements rest on.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.substrates.primes import is_prime


class PrimeField:
    """The field ``GF(p)`` for a prime ``p``.

    Instances are tiny and immutable; they exist so schemes can pass a single
    object around rather than a bare modulus, and so that the modulus is
    validated exactly once.

    >>> field = PrimeField(7)
    >>> field.add(5, 4)
    2
    >>> field.mul(3, 5)
    1
    >>> field.inv(3)
    5
    """

    __slots__ = ("p",)

    def __init__(self, p: int):
        if not is_prime(p):
            raise ValueError(f"{p} is not prime")
        self.p = p

    def __repr__(self) -> str:
        return f"PrimeField({self.p})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("PrimeField", self.p))

    @property
    def order(self) -> int:
        """Number of field elements."""
        return self.p

    def element(self, value: int) -> int:
        """Reduce an arbitrary integer into ``[0, p)``."""
        return value % self.p

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.p

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.p

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def neg(self, a: int) -> int:
        return (-a) % self.p

    def inv(self, a: int) -> int:
        """Multiplicative inverse via Fermat's little theorem."""
        a %= self.p
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(p)")
        return pow(a, self.p - 2, self.p)

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inv(b))

    def pow(self, a: int, e: int) -> int:
        return pow(a % self.p, e, self.p)

    def poly_eval(self, coefficients: Sequence[int], x: int) -> int:
        """Evaluate ``sum(c_i * x^i)`` by Horner's rule.

        Coefficients are in *ascending* degree order, matching the paper's
        ``A(x) = a_0 + a_1 x + ...`` convention.

        >>> PrimeField(7).poly_eval([1, 2, 3], 2)  # 1 + 4 + 12 = 17 = 3 mod 7
        3
        """
        accumulator = 0
        for coefficient in reversed(coefficients):
            accumulator = (accumulator * x + coefficient) % self.p
        return accumulator

    def poly_eval_many(self, coefficients: Sequence[int], xs: Iterable[int]) -> List[int]:
        """Evaluate one polynomial at many points.

        Semantically ``[self.poly_eval(coefficients, x) for x in xs]``, but
        the coefficient sequence is reversed once for all evaluations and the
        Horner recurrence runs over locals — the shape the fingerprint layer
        needs when a ``t``-repetition certificate (or a whole batch of
        Monte-Carlo trials) evaluates the same label polynomial at many
        random points.

        >>> PrimeField(7).poly_eval_many([1, 2, 3], [2, 0])
        [3, 1]
        """
        p = self.p
        highest_first = tuple(reversed(coefficients))
        results = []
        append = results.append
        for x in xs:
            accumulator = 0
            for coefficient in highest_first:
                accumulator = (accumulator * x + coefficient) % p
            append(accumulator)
        return results

    def poly_from_bits(self, bits: Iterable[int]) -> List[int]:
        """Coefficients (ascending) of the polynomial encoding a bit string."""
        coefficients = []
        for bit in bits:
            if bit not in (0, 1):
                raise ValueError(f"bit string may only contain 0/1, got {bit}")
            coefficients.append(bit)
        return coefficients


def poly_equal_points(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> int:
    """Count points of ``GF(p)`` where polynomials ``a`` and ``b`` agree.

    Brute force — used only by tests to validate the ``(lam-1)/p`` collision
    bound on small fields.
    """
    return sum(
        1 for x in range(field.p) if field.poly_eval(a, x) == field.poly_eval(b, x)
    )
