"""Arithmetic over the prime field ``GF(p)``.

The fingerprint protocol of Lemma A.1 interprets a bit string
``a = a_0 a_1 ... a_{lam-1}`` as the polynomial

    A(x) = a_0 + a_1 * x + ... + a_{lam-1} * x^{lam-1}  (mod p)

and exchanges ``(x, A(x))`` for a uniformly random ``x in GF(p)``.  Two
distinct polynomials of degree ``< lam`` agree on at most ``lam - 1`` points,
which is the entire soundness argument.  This module provides the small,
carefully tested field layer those statements rest on.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.substrates.primes import is_prime

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - the image ships numpy
    _np = None

# The vectorized kernels run Horner steps ``acc * x + c`` on int64 lanes;
# exactness requires ``p * p + p < 2**63``, which every fingerprint prime
# (``p < 6 * lam``) satisfies by orders of magnitude.  The bound is still
# enforced so a hypothetical giant field falls back to exact Python ints.
_VECTOR_PRIME_LIMIT = 1 << 31


def numpy_available() -> bool:
    """True when the optional numpy backend can be used."""
    return _np is not None


def vectorizable_prime(p: int) -> bool:
    """True when ``GF(p)`` arithmetic is exact on int64 numpy lanes."""
    return p < _VECTOR_PRIME_LIMIT


class PrimeField:
    """The field ``GF(p)`` for a prime ``p``.

    Instances are tiny and immutable; they exist so schemes can pass a single
    object around rather than a bare modulus, and so that the modulus is
    validated exactly once.

    >>> field = PrimeField(7)
    >>> field.add(5, 4)
    2
    >>> field.mul(3, 5)
    1
    >>> field.inv(3)
    5
    """

    __slots__ = ("p",)

    def __init__(self, p: int):
        if not is_prime(p):
            raise ValueError(f"{p} is not prime")
        self.p = p

    def __repr__(self) -> str:
        return f"PrimeField({self.p})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("PrimeField", self.p))

    @property
    def order(self) -> int:
        """Number of field elements."""
        return self.p

    def element(self, value: int) -> int:
        """Reduce an arbitrary integer into ``[0, p)``."""
        return value % self.p

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.p

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.p

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def neg(self, a: int) -> int:
        return (-a) % self.p

    def inv(self, a: int) -> int:
        """Multiplicative inverse via Fermat's little theorem."""
        a %= self.p
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(p)")
        return pow(a, self.p - 2, self.p)

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inv(b))

    def pow(self, a: int, e: int) -> int:
        return pow(a % self.p, e, self.p)

    def poly_eval(self, coefficients: Sequence[int], x: int) -> int:
        """Evaluate ``sum(c_i * x^i)`` by Horner's rule.

        Coefficients are in *ascending* degree order, matching the paper's
        ``A(x) = a_0 + a_1 x + ...`` convention.

        >>> PrimeField(7).poly_eval([1, 2, 3], 2)  # 1 + 4 + 12 = 17 = 3 mod 7
        3
        """
        accumulator = 0
        for coefficient in reversed(coefficients):
            accumulator = (accumulator * x + coefficient) % self.p
        return accumulator

    def poly_eval_many(self, coefficients: Sequence[int], xs: Iterable[int]) -> List[int]:
        """Evaluate one polynomial at many points.

        Semantically ``[self.poly_eval(coefficients, x) for x in xs]``, but
        the coefficient sequence is reversed once for all evaluations and the
        Horner recurrence runs over locals — the shape the fingerprint layer
        needs when a ``t``-repetition certificate (or a whole batch of
        Monte-Carlo trials) evaluates the same label polynomial at many
        random points.

        >>> PrimeField(7).poly_eval_many([1, 2, 3], [2, 0])
        [3, 1]
        """
        p = self.p
        highest_first = tuple(reversed(coefficients))
        results = []
        append = results.append
        for x in xs:
            accumulator = 0
            for coefficient in highest_first:
                accumulator = (accumulator * x + coefficient) % p
            append(accumulator)
        return results

    def poly_eval_chunk(
        self, coefficients: Sequence[int], xs, descending: bool = False
    ) -> "object":
        """Evaluate one polynomial at a whole chunk of points, vectorized.

        The numpy backend of :meth:`poly_eval_many`: ``xs`` may be any
        array-like (including multi-dimensional arrays — e.g. a
        ``(trials, repetitions)`` matrix of fingerprint query points), and
        the result is an int64 array of the same shape holding
        ``poly_eval(coefficients, x)`` for each entry.  One Horner pass runs
        over the entire chunk: ``deg`` fused multiply-add-mod steps on numpy
        lanes instead of ``deg * len(xs)`` interpreted steps.

        Coefficients are ascending-degree like :meth:`poly_eval`; callers
        that already hold the highest-degree-first shape (the fingerprint
        layer's cached form) pass ``descending=True`` and skip the reversal.

        Exact by construction — intermediate values stay below ``p**2 + p``,
        within int64 for every :func:`vectorizable_prime` — and therefore
        bit-identical to the scalar evaluation.  Raises :class:`RuntimeError`
        when numpy is unavailable or the modulus is out of int64 range; use
        :func:`numpy_available` / :func:`vectorizable_prime` to gate.

        >>> PrimeField(7).poly_eval_chunk([1, 2, 3], [2, 0]).tolist()
        [3, 1]
        """
        if _np is None:
            raise RuntimeError("numpy backend requested but numpy is unavailable")
        if not vectorizable_prime(self.p):
            raise RuntimeError(f"modulus {self.p} exceeds the int64-exact range")
        highest_first = (
            coefficients if descending else tuple(reversed(coefficients))
        )
        return _poly_eval_chunk(
            _np.asarray(highest_first, dtype=_np.int64),
            _np.asarray(xs, dtype=_np.int64),
            self.p,
        )

    def poly_from_bits(self, bits: Iterable[int]) -> List[int]:
        """Coefficients (ascending) of the polynomial encoding a bit string."""
        coefficients = []
        for bit in bits:
            if bit not in (0, 1):
                raise ValueError(f"bit string may only contain 0/1, got {bit}")
            coefficients.append(bit)
        return coefficients


def _poly_eval_chunk(highest_first, xs, p: int):
    """One polynomial over an arbitrary-shape chunk: a 1-row :func:`poly_eval_rows`."""
    return poly_eval_rows(
        highest_first.reshape(1, -1), xs.reshape(1, -1), p
    ).reshape(xs.shape)


def poly_eval_rows(highest_first_rows, xs_rows, p: int):
    """Evaluate many polynomials, each at its own chunk of points, at once.

    ``highest_first_rows`` is an int64 matrix whose row ``i`` holds the
    (highest-degree-first) coefficients of polynomial ``i``; ``xs_rows`` is
    an int64 matrix whose row ``i`` holds the query points for polynomial
    ``i``.  Returns the matching matrix of evaluations over ``GF(p)``.

    This is the batched-engine shape: one row per half-edge (or per
    verifier-side stored replica), one column per (trial, repetition) query
    point — the whole Monte-Carlo chunk's fingerprint arithmetic collapses
    to ``deg`` numpy passes regardless of how many rows share the field.
    Callers group rows by ``(p, degree)`` first; see
    :mod:`repro.engine.kernels`.
    """
    if _np is None:  # pragma: no cover - callers gate on numpy_available
        raise RuntimeError("numpy backend requested but numpy is unavailable")
    accumulator = _np.zeros_like(xs_rows)
    for j in range(highest_first_rows.shape[1]):
        accumulator *= xs_rows
        accumulator += highest_first_rows[:, j : j + 1]
        accumulator %= p
    return accumulator


# -- GF(2) packed-word kernels ---------------------------------------------------
#
# The shared-coins compiler's certificates are random inner products over
# GF(2): parity(value & mask).  Packed into 64-bit words, one inner product
# is the XOR-fold of the per-word popcount parities, so a whole Monte-Carlo
# chunk of parity checks collapses to a few uint64 array ops — the GF(2)
# analogue of poly_eval_rows above.

WORD_BITS = 64
_WORD_MASK = (1 << WORD_BITS) - 1


def pack_value_words(value: int, width: int) -> List[int]:
    """Split a ``width``-bit integer into little-endian 64-bit words.

    Word ``j`` holds bits ``[64j, 64j + 64)`` — the layout
    :meth:`repro.core.seeding.CounterRng.getrandbits` assembles masks in,
    so packed values and packed masks AND together positionally.

    >>> pack_value_words(0b101, 3)
    [5]
    >>> pack_value_words((1 << 64) | 1, 65)
    [1, 1]
    """
    if width < 0:
        raise ValueError("width must be non-negative")
    if value < 0 or value >> width:
        raise ValueError(f"value does not fit in {width} bits")
    return [
        (value >> (WORD_BITS * j)) & _WORD_MASK
        for j in range((width + WORD_BITS - 1) // WORD_BITS)
    ]


def parity_words(words: "object") -> "object":
    """Elementwise bit-parity (popcount mod 2) of a ``uint64`` array.

    Uses the hardware popcount (``numpy.bitwise_count``) where the numpy
    build ships it, else the log-depth XOR fold; both are exact, so the
    choice never affects a decision.
    """
    if _np is None:  # pragma: no cover - callers gate on numpy_available
        raise RuntimeError("numpy backend requested but numpy is unavailable")
    words = _np.asarray(words, dtype=_np.uint64)
    count = getattr(_np, "bitwise_count", None)
    if count is not None:
        return (count(words) & _np.uint64(1)).astype(_np.uint64)
    for shift in (32, 16, 8, 4, 2, 1):  # pragma: no cover - numpy >= 2 has bitwise_count
        words = words ^ (words >> _np.uint64(shift))
    return words & _np.uint64(1)  # pragma: no cover


def gf2_inner_parities(value_words: "object", mask_words: "object") -> "object":
    """Batched GF(2) inner products ``parity(value & mask)``.

    ``value_words`` is a ``(rows, words)`` uint64 matrix of packed values;
    ``mask_words`` any ``(..., words)`` stack of packed masks.  Returns a
    ``(..., rows)`` array of 0/1 parities: entry ``[..., r]`` is the inner
    product of value row ``r`` with the corresponding mask — each result a
    single AND + XOR-reduce + popcount-parity over uint64 lanes.

    >>> import numpy
    >>> gf2_inner_parities(
    ...     numpy.asarray([[0b110], [0b011]], dtype=numpy.uint64),
    ...     numpy.asarray([[0b010], [0b111]], dtype=numpy.uint64),
    ... ).tolist()
    [[1, 1], [0, 0]]
    """
    if _np is None:  # pragma: no cover - callers gate on numpy_available
        raise RuntimeError("numpy backend requested but numpy is unavailable")
    values = _np.asarray(value_words, dtype=_np.uint64)
    masks = _np.asarray(mask_words, dtype=_np.uint64)
    anded = values & masks[..., None, :]
    return parity_words(_np.bitwise_xor.reduce(anded, axis=-1))


def poly_equal_points(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> int:
    """Count points of ``GF(p)`` where polynomials ``a`` and ``b`` agree.

    Brute force — used only by tests to validate the ``(lam-1)/p`` collision
    bound on small fields.
    """
    return sum(
        1 for x in range(field.p) if field.poly_eval(a, x) == field.poly_eval(b, x)
    )
