"""Disjoint-set union (union-find) with union by rank and path compression.

Used by Kruskal and Borůvka (:mod:`repro.substrates.mst`), by connectivity
predicates, and by the crossing machinery when it needs component counts of a
crossed graph without going through a full graph object.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set


class UnionFind:
    """Classic DSU over arbitrary hashable elements.

    Elements are registered lazily on first use, or eagerly via the
    constructor / :meth:`add`.

    >>> uf = UnionFind([1, 2, 3])
    >>> uf.union(1, 2)
    True
    >>> uf.connected(1, 2)
    True
    >>> uf.connected(1, 3)
    False
    >>> uf.component_count()
    2
    """

    def __init__(self, elements: Iterable[Hashable] = ()):
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        self._components = 0
        for element in elements:
            self.add(element)

    def add(self, element: Hashable) -> None:
        """Register ``element`` as its own singleton component (idempotent)."""
        if element not in self._parent:
            self._parent[element] = element
            self._rank[element] = 0
            self._components += 1

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, element: Hashable) -> Hashable:
        """Return the canonical representative, compressing the path."""
        self.add(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the components of ``a`` and ``b``.

        Returns True if a merge happened, False if they were already joined.
        """
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1
        self._components -= 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """True if ``a`` and ``b`` are in the same component."""
        return self.find(a) == self.find(b)

    def component_count(self) -> int:
        """Number of distinct components among registered elements."""
        return self._components

    def components(self) -> List[Set[Hashable]]:
        """Materialize the partition as a list of sets (sorted by repr for determinism)."""
        groups: Dict[Hashable, Set[Hashable]] = {}
        for element in self._parent:
            groups.setdefault(self.find(element), set()).add(element)
        return [groups[key] for key in sorted(groups, key=repr)]
