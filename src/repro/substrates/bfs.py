"""Breadth-first search layers and single-source shortest paths.

The spanning-tree and leader-agreement schemes only need *some* rooted tree,
but certifying distances ("every node's ``dist`` field is its true graph
distance to the source") needs the genuine shortest-path metric.  This module
provides:

- :func:`bfs_layers` — hop distances and a parent-port BFS tree, exploring in
  port order so results are deterministic;
- :func:`dijkstra` — weighted single-source distances using the per-port
  ``weights`` convention of :mod:`repro.core.configuration`;
- :func:`eccentricity` / :func:`graph_diameter` — reference metrics used by
  tests and the benchmark workload generators.

Everything is iterative and dependency-free, like the rest of
:mod:`repro.substrates`.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graphs.port_graph import Node, PortGraph


@dataclass
class BFSTree:
    """Hop distances plus the tree realizing them.

    ``parent_port[v]`` is the port *at v* leading to its BFS parent
    (``None`` at the root), matching the ``parent_port`` state-field
    convention so generators can plant the tree directly.
    """

    root: Node
    dist: Dict[Node, int] = field(default_factory=dict)
    parent: Dict[Node, Optional[Node]] = field(default_factory=dict)
    parent_port: Dict[Node, Optional[int]] = field(default_factory=dict)
    order: List[Node] = field(default_factory=list)

    def layer(self, depth: int) -> List[Node]:
        """All nodes at hop distance exactly ``depth``, in visit order."""
        return [node for node in self.order if self.dist[node] == depth]


def bfs_layers(graph: PortGraph, root: Node) -> BFSTree:
    """Hop distances from ``root`` over its connected component."""
    tree = BFSTree(root=root)
    tree.dist[root] = 0
    tree.parent[root] = None
    tree.parent_port[root] = None
    tree.order.append(root)
    queue = deque([root])
    while queue:
        current = queue.popleft()
        for port, neighbor, reverse_port in graph.ports(current):
            if neighbor in tree.dist:
                continue
            tree.dist[neighbor] = tree.dist[current] + 1
            tree.parent[neighbor] = current
            tree.parent_port[neighbor] = reverse_port
            tree.order.append(neighbor)
            queue.append(neighbor)
    return tree


@dataclass
class ShortestPathTree:
    """Weighted distances plus a tree realizing them (Dijkstra output)."""

    root: Node
    dist: Dict[Node, int] = field(default_factory=dict)
    parent: Dict[Node, Optional[Node]] = field(default_factory=dict)
    parent_port: Dict[Node, Optional[int]] = field(default_factory=dict)


def dijkstra(
    graph: PortGraph,
    root: Node,
    weights: Dict[Node, Sequence[int]],
) -> ShortestPathTree:
    """Single-source shortest paths under non-negative per-port weights.

    ``weights[v][i]`` is the weight of the edge on port ``i`` of ``v``; both
    endpoints of an edge must agree on its weight (the symmetric ``weights``
    state convention).  Ties are broken by visit order, which is
    deterministic because the heap holds ``(dist, insertion counter)`` pairs.
    """
    tree = ShortestPathTree(root=root)
    tree.dist[root] = 0
    tree.parent[root] = None
    tree.parent_port[root] = None
    counter = 0
    heap: List[Tuple[int, int, Node]] = [(0, counter, root)]
    settled: Dict[Node, bool] = {}
    while heap:
        dist, _tiebreak, current = heapq.heappop(heap)
        if settled.get(current):
            continue
        settled[current] = True
        for port, neighbor, reverse_port in graph.ports(current):
            weight = weights[current][port]
            if weight < 0:
                raise ValueError(f"negative weight {weight} at ({current!r}, port {port})")
            candidate = dist + weight
            if neighbor not in tree.dist or candidate < tree.dist[neighbor]:
                tree.dist[neighbor] = candidate
                tree.parent[neighbor] = current
                tree.parent_port[neighbor] = reverse_port
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbor))
    return tree


def eccentricity(graph: PortGraph, node: Node) -> int:
    """The maximum hop distance from ``node`` (graph must be connected)."""
    tree = bfs_layers(graph, node)
    if len(tree.dist) != graph.node_count:
        raise ValueError("eccentricity requires a connected graph")
    return max(tree.dist.values())


def graph_diameter(graph: PortGraph) -> int:
    """Exact diameter by all-sources BFS (quadratic; fine at test scale)."""
    return max(eccentricity(graph, node) for node in graph.nodes)


def is_bipartite(graph: PortGraph) -> Tuple[bool, Dict[Node, int]]:
    """2-colorability check by BFS parity.

    Returns ``(True, sides)`` with a witness 0/1 side per node, or
    ``(False, partial)`` when an odd cycle makes 2-coloring impossible
    (``partial`` is the coloring built before the conflict — useful for
    locating the violated edge in tests).
    """
    sides: Dict[Node, int] = {}
    for start in graph.nodes:
        if start in sides:
            continue
        sides[start] = 0
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for _port, neighbor, _reverse in graph.ports(current):
                if neighbor not in sides:
                    sides[neighbor] = sides[current] ^ 1
                    queue.append(neighbor)
                elif sides[neighbor] == sides[current]:
                    return False, sides
    return True, sides


def odd_cycle(graph: PortGraph) -> Optional[List[Node]]:
    """A witness odd cycle when the graph is not bipartite, else ``None``.

    Found by BFS parity: the first edge joining two same-parity nodes closes
    an odd cycle through their lowest common BFS ancestor.
    """
    bipartite, _sides = is_bipartite(graph)
    if bipartite:
        return None
    for start in graph.nodes:
        tree = bfs_layers(graph, start)
        for u, _pu, v, _pv in graph.edges():
            if u not in tree.dist or v not in tree.dist:
                continue
            if (tree.dist[u] + tree.dist[v]) % 2 == 0:
                # Walk both endpoints up to their common ancestor.
                path_u = _root_path(tree, u)
                path_v = _root_path(tree, v)
                common = 0
                while (
                    common < len(path_u)
                    and common < len(path_v)
                    and path_u[common] == path_v[common]
                ):
                    common += 1
                cycle = path_u[common - 1 :] + list(reversed(path_v[common:]))
                if len(cycle) % 2 == 1:
                    return cycle
    return None


def _root_path(tree: BFSTree, node: Node) -> List[Node]:
    """The root-to-node path along BFS parents."""
    path = []
    current: Optional[Node] = node
    while current is not None:
        path.append(current)
        current = tree.parent[current]
    path.reverse()
    return path
