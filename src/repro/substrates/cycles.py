"""Simple-cycle search for the cycle-length predicates of Section 5.3.

``cycle-at-least-c`` asks whether a graph contains a simple cycle with at
least ``c`` nodes; ``cycle-at-most-c`` is its complement shifted by one.
Deciding them is NP-hard in general (the paper notes cycle-at-most-(n-1) is
co-Hamiltonicity), so:

- generators *plant* witnesses and hand them to provers;
- the centralized predicate evaluation here uses exact backtracking with a
  step budget — exact on the gadget families and test sizes this library
  uses, and failing loudly (:class:`SearchBudgetExceeded`) rather than
  silently wrong if pointed at something huge.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.graphs.port_graph import Node, PortGraph


class SearchBudgetExceeded(RuntimeError):
    """Raised when the exact cycle search exceeds its step budget."""


def find_cycle_at_least(
    graph: PortGraph, length: int, step_budget: int = 2_000_000
) -> Optional[List[Node]]:
    """Return a simple cycle with ``>= length`` nodes, or None if none exists.

    Exact backtracking over simple paths, anchored at each node in turn; a
    path may only close back to its anchor, and anchors are retired after
    exploration (any cycle has a unique lowest-ordered node, which serves as
    its anchor).  The step budget bounds worst-case blow-up.
    """
    if length < 3:
        raise ValueError("simple cycles have at least 3 nodes")
    order = {node: index for index, node in enumerate(graph.nodes)}
    steps = 0

    for anchor in graph.nodes:
        path: List[Node] = [anchor]
        on_path: Set[Node] = {anchor}
        # Each stack frame mirrors path: the next port to try at that node.
        stack: List[int] = [0]
        while stack:
            steps += 1
            if steps > step_budget:
                raise SearchBudgetExceeded(
                    f"cycle search exceeded {step_budget} steps"
                )
            node = path[-1]
            port = stack[-1]
            if port >= graph.degree(node):
                stack.pop()
                on_path.discard(path.pop())
                continue
            stack[-1] += 1
            neighbor = graph.neighbor(node, port)
            if order[neighbor] < order[anchor]:
                continue  # cycles through earlier nodes were already explored
            if neighbor == anchor:
                if len(path) >= length and len(path) >= 3:
                    return list(path)
                continue
            if neighbor in on_path:
                continue
            path.append(neighbor)
            on_path.add(neighbor)
            stack.append(0)
    return None


def has_cycle_at_least(
    graph: PortGraph, length: int, step_budget: int = 2_000_000
) -> bool:
    """``cycle-at-least-c``: does a simple cycle with >= ``length`` nodes exist?"""
    return find_cycle_at_least(graph, length, step_budget) is not None


def has_cycle_at_most(
    graph: PortGraph, length: int, step_budget: int = 2_000_000
) -> bool:
    """``cycle-at-most-c``: no simple cycle has more than ``length`` nodes."""
    return not has_cycle_at_least(graph, length + 1, step_budget)


def girth_and_circumference(
    graph: PortGraph, step_budget: int = 2_000_000
) -> Dict[str, Optional[int]]:
    """Shortest and longest simple cycle lengths (None if acyclic).

    Exhaustive; intended for tests on small graphs.
    """
    longest: Optional[int] = None
    for candidate in range(3, graph.node_count + 1):
        if has_cycle_at_least(graph, candidate, step_budget):
            longest = candidate
        else:
            break
    if longest is None:
        return {"girth": None, "circumference": None}
    return {"girth": _girth_bfs(graph), "circumference": longest}


def girth(graph: PortGraph) -> Optional[int]:
    """The length of a shortest simple cycle, or ``None`` if acyclic.

    BFS from every root; the minimum over non-tree edges of
    ``dist(u) + dist(v) + 1`` is exact once all roots are tried (validated
    against networkx in the test suite).
    """
    return _girth_bfs(graph)


def _girth_bfs(graph: PortGraph) -> Optional[int]:
    """Shortest cycle length via BFS from every node (simple graphs)."""
    from collections import deque

    best: Optional[int] = None
    for root in graph.nodes:
        distance = {root: 0}
        parent = {root: None}
        queue = deque([root])
        while queue:
            current = queue.popleft()
            for neighbor in graph.neighbors(current):
                if neighbor not in distance:
                    distance[neighbor] = distance[current] + 1
                    parent[neighbor] = current
                    queue.append(neighbor)
                elif parent[current] != neighbor:
                    cycle_length = distance[current] + distance[neighbor] + 1
                    if best is None or cycle_length < best:
                        best = cycle_length
    return best
