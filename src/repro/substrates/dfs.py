"""DFS trees with preorder numbers, subtree spans and lowpoints.

The biconnectivity scheme of Theorem 5.2 (Appendix E) labels every node with
data from a depth-first search tree, following Hopcroft–Tarjan [22] and
Tarjan's analysis [37]:

- ``preorder(v)`` — visit number of ``v`` in the DFS traversal;
- ``span(v)`` — the (contiguous) interval of preorder numbers of the subtree
  rooted at ``v``, *including* ``v`` itself;
- ``lowpoint(v)`` — per the paper's predicate P7:
  ``min(childmin(v), neighbormin(v))`` where ``childmin`` is the minimum
  lowpoint among the children of ``v`` and ``neighbormin`` the minimum
  preorder among *all* neighbors of ``v`` (including its parent — see the
  note in :func:`articulation_points` for why that convention still yields
  the correct articulation test).

The implementation is iterative (no recursion limits on large graphs) and
deterministic: neighbors are explored in port order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.graphs.port_graph import Node, PortGraph


@dataclass
class DFSTree:
    """The annotated result of one depth-first search."""

    root: Node
    parent: Dict[Node, Optional[Node]] = field(default_factory=dict)
    parent_port: Dict[Node, Optional[int]] = field(default_factory=dict)
    depth: Dict[Node, int] = field(default_factory=dict)
    preorder: Dict[Node, int] = field(default_factory=dict)
    span: Dict[Node, Tuple[int, int]] = field(default_factory=dict)
    lowpoint: Dict[Node, int] = field(default_factory=dict)
    children: Dict[Node, List[Node]] = field(default_factory=dict)
    order: List[Node] = field(default_factory=list)

    def subtree_size(self, node: Node) -> int:
        low, high = self.span[node]
        return high - low + 1

    def is_ancestor(self, ancestor: Node, descendant: Node) -> bool:
        """True if ``descendant`` lies in the subtree of ``ancestor``."""
        low, high = self.span[ancestor]
        return low <= self.preorder[descendant] <= high


def dfs_tree(graph: PortGraph, root: Node) -> DFSTree:
    """Run an iterative DFS from ``root`` over the component containing it."""
    tree = DFSTree(root=root)
    tree.parent[root] = None
    tree.parent_port[root] = None
    tree.depth[root] = 0
    tree.children[root] = []

    counter = 0
    # Stack holds (node, iterator position over ports).
    stack: List[Tuple[Node, int]] = [(root, 0)]
    tree.preorder[root] = counter
    tree.order.append(root)
    counter += 1

    while stack:
        node, next_port = stack[-1]
        if next_port < graph.degree(node):
            stack[-1] = (node, next_port + 1)
            neighbor = graph.neighbor(node, next_port)
            if neighbor in tree.preorder:
                continue
            tree.parent[neighbor] = node
            tree.parent_port[neighbor] = graph.reverse_port(node, next_port)
            tree.depth[neighbor] = tree.depth[node] + 1
            tree.children.setdefault(node, []).append(neighbor)
            tree.children.setdefault(neighbor, [])
            tree.preorder[neighbor] = counter
            tree.order.append(neighbor)
            counter += 1
            stack.append((neighbor, 0))
        else:
            stack.pop()

    # Subtree spans and lowpoints in reverse preorder (children before parents).
    max_pre: Dict[Node, int] = {}
    for node in reversed(tree.order):
        high = tree.preorder[node]
        for child in tree.children[node]:
            high = max(high, max_pre[child])
        max_pre[node] = high
        tree.span[node] = (tree.preorder[node], high)

        neighbor_min = min(
            (tree.preorder[neighbor] for neighbor in graph.neighbors(node)
             if neighbor in tree.preorder),
            default=tree.preorder[node],
        )
        child_min = min(
            (tree.lowpoint[child] for child in tree.children[node]),
            default=neighbor_min,
        )
        tree.lowpoint[node] = min(neighbor_min, child_min)

    return tree


def articulation_points(graph: PortGraph) -> Set[Node]:
    """Articulation points of a connected graph, via the lowpoint test.

    With the paper's lowpoint convention (``neighbormin`` ranges over *all*
    neighbors, parent included) the classical conditions still hold:

    - the root is an articulation point iff it has >= 2 DFS children;
    - a non-root ``v`` is an articulation point iff some child ``u`` has
      ``lowpoint(u) >= preorder(v)``.  A back edge from ``u``'s subtree to
      ``v`` itself, or the tree edge to the parent ``v``, contributes exactly
      ``preorder(v)`` — which does *not* satisfy the strict inequality of the
      escape condition, so it correctly fails to clear ``v``.
    """
    if graph.node_count == 0:
        return set()
    root = graph.nodes[0]
    tree = dfs_tree(graph, root)
    if len(tree.preorder) != graph.node_count:
        raise ValueError("articulation_points requires a connected graph")
    cut_vertices: Set[Node] = set()
    if len(tree.children[root]) >= 2:
        cut_vertices.add(root)
    for node in tree.order:
        if node == root:
            continue
        for child in tree.children[node]:
            if tree.lowpoint[child] >= tree.preorder[node]:
                cut_vertices.add(node)
                break
    return cut_vertices


def is_biconnected(graph: PortGraph) -> bool:
    """The paper's ``v2con``: removing any single node leaves the graph connected.

    Equivalent, for a connected graph, to having no articulation points.
    (Under this definition the single edge ``K2`` *is* biconnected: deleting
    either endpoint leaves a one-node graph, which is connected.)
    """
    if not graph.is_connected():
        return False
    if graph.node_count <= 2:
        return True
    return not articulation_points(graph)


def brute_force_articulation_points(graph: PortGraph) -> Set[Node]:
    """Reference implementation: delete each node and test connectivity.

    Quadratic; used by tests to validate :func:`articulation_points`.
    """
    cut_vertices: Set[Node] = set()
    all_nodes = graph.nodes
    if len(all_nodes) <= 2:
        return cut_vertices
    for candidate in all_nodes:
        remaining = [node for node in all_nodes if node != candidate]
        survivor_edges = [
            (u, v)
            for u, _pu, v, _pv in graph.edges()
            if u != candidate and v != candidate
        ]
        reduced = PortGraph.from_edges(survivor_edges, nodes=remaining)
        if not reduced.is_connected():
            cut_vertices.add(candidate)
    return cut_vertices
