"""Primality testing and prime selection.

The fingerprint construction of Lemma A.1 views a ``lam``-bit label as a
polynomial over ``GF(p)`` for a prime ``3*lam < p < 6*lam``.  Such a prime
always exists by Bertrand's postulate (the interval ``(x, 2x)`` contains a
prime for every ``x >= 1``, and ``(3*lam, 6*lam)`` is exactly such an
interval).  This module supplies the machinery to find it:

- :func:`primes_up_to` — a plain sieve of Eratosthenes for small ranges.
- :func:`is_prime` — deterministic Miller–Rabin, exact for every integer
  below 3.3 * 10**24 (and therefore for every input this library ever
  produces; label lengths are far below 2**64).
- :func:`prime_in_range` / :func:`next_prime` — prime selection helpers.

Everything here is pure Python with no dependencies; determinism matters
because the prime choice is part of a scheme's public description, not of its
randomness.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

# Witnesses that make Miller-Rabin deterministic for all n < 3,317,044,064,679,887,385,961,981.
_MILLER_RABIN_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def primes_up_to(limit: int) -> List[int]:
    """Return all primes ``<= limit`` via the sieve of Eratosthenes.

    >>> primes_up_to(20)
    [2, 3, 5, 7, 11, 13, 17, 19]
    """
    if limit < 2:
        return []
    sieve = bytearray([1]) * (limit + 1)
    sieve[0] = sieve[1] = 0
    p = 2
    while p * p <= limit:
        if sieve[p]:
            sieve[p * p :: p] = bytearray(len(sieve[p * p :: p]))
        p += 1
    return [i for i, flag in enumerate(sieve) if flag]


def _miller_rabin_round(n: int, d: int, r: int, witness: int) -> bool:
    """One Miller-Rabin round: return True if ``witness`` certifies n composite."""
    x = pow(witness, d, n)
    if x == 1 or x == n - 1:
        return False
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def is_prime(n: int) -> bool:
    """Deterministic primality test.

    Uses trial division by small primes, then Miller-Rabin with a witness set
    that is provably exact for every ``n < 3.3e24``.

    >>> is_prime(97)
    True
    >>> is_prime(91)
    False
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n - 1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for witness in _MILLER_RABIN_WITNESSES:
        if witness % n == 0:
            continue
        if _miller_rabin_round(n, d, r, witness):
            return False
    return True


def next_prime(n: int) -> int:
    """Return the smallest prime strictly greater than ``n``.

    >>> next_prime(10)
    11
    """
    candidate = max(n + 1, 2)
    while not is_prime(candidate):
        candidate += 1
    return candidate


def prime_in_range(lo: int, hi: int) -> int:
    """Return the smallest prime ``p`` with ``lo <= p <= hi``.

    Raises :class:`ValueError` if the interval contains no prime.  The
    fingerprint module calls this with ``(3*lam + 1, 6*lam - 1)``, an interval
    guaranteed non-empty by Bertrand's postulate for ``lam >= 1``.

    >>> prime_in_range(4, 6)
    5
    """
    if lo > hi:
        raise ValueError(f"empty interval [{lo}, {hi}]")
    candidate = next_prime(lo - 1)
    if candidate > hi:
        raise ValueError(f"no prime in [{lo}, {hi}]")
    return candidate


@lru_cache(maxsize=4096)
def fingerprint_prime(lam: int) -> int:
    """Return the canonical fingerprint prime for a ``lam``-bit string.

    Lemma A.1 requires ``3*lam < p < 6*lam``.  For degenerate ``lam`` (0 or 1)
    the open interval is empty or too small, so we clamp to the smallest field
    that still satisfies the soundness computation ``(lam - 1) / p < 1/3``:
    ``p = 5`` suffices for ``lam <= 1``.

    The result is memoized: the prime is a pure function of ``lam``, and
    schemes that build a fingerprinter per node (or per verification trial)
    must not re-run the Miller-Rabin search each time.

    >>> fingerprint_prime(10)
    31
    >>> 3 * 100 < fingerprint_prime(100) < 6 * 100
    True
    """
    if lam <= 1:
        return 5
    return prime_in_range(3 * lam + 1, 6 * lam - 1)
