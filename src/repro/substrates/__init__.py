"""Classical-algorithm substrates used by the proof-labeling schemes.

Every scheme in :mod:`repro.schemes` sits on top of one of these from-scratch
implementations:

- :mod:`repro.substrates.primes` — primality testing and prime selection for
  the fingerprint field (Lemma A.1 needs a prime in ``(3*lam, 6*lam)``).
- :mod:`repro.substrates.gf` — arithmetic over ``GF(p)`` and polynomial
  evaluation (Horner) for fingerprints.
- :mod:`repro.substrates.union_find` — disjoint-set union used by Kruskal,
  Borůvka and connectivity predicates.
- :mod:`repro.substrates.dfs` — DFS trees with preorder, subtree spans and
  lowpoint values (Hopcroft–Tarjan), used by the biconnectivity scheme.
- :mod:`repro.substrates.bfs` — BFS layers, Dijkstra shortest paths,
  bipartiteness/odd-cycle witnesses, used by the distance-certification and
  bipartiteness schemes.
- :mod:`repro.substrates.mst` — Kruskal, Prim and a trace-recording Borůvka
  used by the MST proof-labeling scheme of Theorem 5.1.
- :mod:`repro.substrates.flow` — Edmonds–Karp max-flow, flow decomposition and
  residual layering used by the k-flow scheme of Section 5.2.
- :mod:`repro.substrates.comm` — a two-party communication-complexity
  framework (Alice/Bob, transcripts, bit accounting) with the randomized EQ
  protocol of Lemma 3.2, used by the lower-bound reductions of Theorem 3.5.
"""

from repro.substrates.primes import is_prime, next_prime, prime_in_range, primes_up_to
from repro.substrates.union_find import UnionFind

__all__ = [
    "UnionFind",
    "is_prime",
    "next_prime",
    "prime_in_range",
    "primes_up_to",
]
