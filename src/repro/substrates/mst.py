"""Minimum spanning trees: Kruskal, Prim, and a trace-recording Borůvka.

The MST proof-labeling scheme of Theorem 5.1 (the ``O(log^2 n)`` upper bound
of Korman–Kutten–Peleg [31]) certifies a Borůvka execution: the label of a
node describes, for each of the ``<= ceil(log2 n)`` merge phases, the node's
fragment, its position inside the fragment tree, and the fragment's
minimum-weight outgoing edge (MWOE).  :func:`boruvka` therefore records the
*entire* phase history, not just the final tree.

Edge weights are compared through a caller-supplied total order
``weight_key(node, port) -> key`` (by convention the tie-broken triple
``(w, min_id, max_id)`` from :meth:`repro.core.configuration.Configuration.weight_key`);
distinct keys make the MST unique, so Kruskal, Prim and Borůvka must agree
exactly — a property the test suite checks, alongside agreement with
networkx.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.graphs.port_graph import Node, PortGraph
from repro.substrates.union_find import UnionFind

WeightKey = Tuple[int, int, int]
WeightFunction = Callable[[Node, int], WeightKey]
EdgeKey = FrozenSet[Node]


def _edge_key(u: Node, v: Node) -> EdgeKey:
    return frozenset((u, v))


def kruskal(graph: PortGraph, weight_key: WeightFunction) -> Set[EdgeKey]:
    """The unique MST under a strict weight order, as a set of node pairs."""
    edges = sorted(
        ((weight_key(u, pu), u, v) for u, pu, v, _pv in graph.edges()),
    )
    forest = UnionFind(graph.nodes)
    tree: Set[EdgeKey] = set()
    for _key, u, v in edges:
        if forest.union(u, v):
            tree.add(_edge_key(u, v))
    return tree


def prim(graph: PortGraph, weight_key: WeightFunction) -> Set[EdgeKey]:
    """Prim's algorithm from an arbitrary start node (same unique MST)."""
    import heapq

    if graph.node_count == 0:
        return set()
    start = graph.nodes[0]
    visited: Set[Node] = {start}
    tree: Set[EdgeKey] = set()
    heap: List[Tuple[WeightKey, Node, Node]] = []
    for port, neighbor, _reverse in graph.ports(start):
        heapq.heappush(heap, (weight_key(start, port), start, neighbor))
    while heap and len(visited) < graph.node_count:
        key, u, v = heapq.heappop(heap)
        if v in visited:
            continue
        visited.add(v)
        tree.add(_edge_key(u, v))
        for port, neighbor, _reverse in graph.ports(v):
            if neighbor not in visited:
                heapq.heappush(heap, (weight_key(v, port), v, neighbor))
    return tree


def total_weight(
    graph: PortGraph, weight_key: WeightFunction, tree: Set[EdgeKey]
) -> int:
    """Sum of the raw weights of a set of edges (first key component)."""
    weight = 0
    for u, pu, v, _pv in graph.edges():
        if _edge_key(u, v) in tree:
            weight += weight_key(u, pu)[0]
    return weight


@dataclass
class FragmentStructure:
    """One phase's fragment forest: a rooted spanning tree per fragment."""

    root: Dict[Node, Node] = field(default_factory=dict)
    parent: Dict[Node, Optional[Node]] = field(default_factory=dict)
    depth: Dict[Node, int] = field(default_factory=dict)


@dataclass
class BoruvkaPhase:
    """Everything the MST scheme needs to certify one merge round.

    ``subtree_min[v]`` is the minimum weight key among *outgoing* edges (to
    other fragments) incident to the fragment-subtree rooted at ``v`` — the
    convergecast value the verifier checks bottom-up.  ``chosen[r]`` is the
    MWOE of the fragment rooted at ``r``: by construction
    ``chosen[r] == subtree_min[r]``.
    """

    structure: FragmentStructure
    subtree_min: Dict[Node, Optional[WeightKey]] = field(default_factory=dict)
    chosen: Dict[Node, WeightKey] = field(default_factory=dict)


@dataclass
class BoruvkaTrace:
    """The full phase history of one Borůvka run."""

    phases: List[BoruvkaPhase]
    final_structure: FragmentStructure
    tree_edges: Set[EdgeKey]
    merge_phase: Dict[EdgeKey, int]

    @property
    def phase_count(self) -> int:
        return len(self.phases)


def _fragment_structure(
    graph: PortGraph,
    tree_adjacency: Dict[Node, List[Node]],
    forest: UnionFind,
) -> FragmentStructure:
    """Root every fragment at its minimum node and BFS the fragment tree."""
    structure = FragmentStructure()
    groups: Dict[Node, List[Node]] = {}
    for node in graph.nodes:
        groups.setdefault(forest.find(node), []).append(node)
    for members in groups.values():
        root = min(members)  # node keys double as identities in this library
        structure.root.update({member: root for member in members})
        structure.parent[root] = None
        structure.depth[root] = 0
        queue = deque([root])
        seen = {root}
        while queue:
            current = queue.popleft()
            for neighbor in tree_adjacency.get(current, ()):
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                structure.parent[neighbor] = current
                structure.depth[neighbor] = structure.depth[current] + 1
                queue.append(neighbor)
        if len(seen) != len(members):
            raise AssertionError("fragment tree does not span its fragment")
    return structure


def boruvka(graph: PortGraph, weight_key: WeightFunction) -> BoruvkaTrace:
    """Run Borůvka's algorithm, recording every phase.

    Requires a connected graph and a strict total order on edge weights.
    Each phase: every fragment selects its minimum-weight outgoing edge; all
    selected edges join the tree; fragments merge.  With ``n`` nodes the
    number of phases is at most ``ceil(log2 n)`` because every fragment at
    least doubles.
    """
    if not graph.is_connected():
        raise ValueError("boruvka requires a connected graph")

    forest = UnionFind(graph.nodes)
    tree_adjacency: Dict[Node, List[Node]] = {node: [] for node in graph.nodes}
    tree_edges: Set[EdgeKey] = set()
    merge_phase: Dict[EdgeKey, int] = {}
    phases: List[BoruvkaPhase] = []

    phase_index = 0
    while forest.component_count() > 1:
        structure = _fragment_structure(graph, tree_adjacency, forest)

        # Convergecast of minimum outgoing weight keys, leaves to roots.
        children: Dict[Node, List[Node]] = {node: [] for node in graph.nodes}
        for node, parent in structure.parent.items():
            if parent is not None:
                children[parent].append(node)
        order = sorted(graph.nodes, key=lambda v: -structure.depth[v])
        subtree_min: Dict[Node, Optional[WeightKey]] = {}
        for node in order:
            best: Optional[WeightKey] = None
            for port, neighbor, _reverse in graph.ports(node):
                if forest.find(neighbor) != forest.find(node):
                    key = weight_key(node, port)
                    if best is None or key < best:
                        best = key
            for child in children[node]:
                child_best = subtree_min[child]
                if child_best is not None and (best is None or child_best < best):
                    best = child_best
            subtree_min[node] = best

        chosen: Dict[Node, WeightKey] = {}
        for node in graph.nodes:
            if structure.parent[node] is None:
                mwoe = subtree_min[node]
                if mwoe is None:
                    raise AssertionError(
                        "a non-final fragment must have an outgoing edge"
                    )
                chosen[structure.root[node]] = mwoe

        phases.append(
            BoruvkaPhase(structure=structure, subtree_min=subtree_min, chosen=chosen)
        )

        # Materialize the chosen MWOEs (dedup: two fragments may pick the
        # same edge) and merge.
        selected: Dict[WeightKey, Tuple[Node, Node]] = {}
        chosen_keys = set(chosen.values())
        for u, pu, v, _pv in graph.edges():
            key = weight_key(u, pu)
            if key in chosen_keys:
                selected[key] = (u, v)
        if len(selected) != len(chosen_keys):
            raise AssertionError("a chosen MWOE key matched no edge")
        for key, (u, v) in sorted(selected.items()):
            edge = _edge_key(u, v)
            if edge in tree_edges:
                continue
            tree_edges.add(edge)
            merge_phase[edge] = phase_index
            tree_adjacency[u].append(v)
            tree_adjacency[v].append(u)
            forest.union(u, v)
        phase_index += 1
        if phase_index > graph.node_count:
            raise AssertionError("boruvka failed to converge")

    final_structure = _fragment_structure(graph, tree_adjacency, forest)
    return BoruvkaTrace(
        phases=phases,
        final_structure=final_structure,
        tree_edges=tree_edges,
        merge_phase=merge_phase,
    )
