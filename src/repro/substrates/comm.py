"""Two-party communication complexity — the substrate behind Lemma 3.2.

The paper's upper bound (Theorem 3.1) and its matching lower bound
(Theorem 3.5) both run through the equality problem ``EQ``: Alice holds a
``lam``-bit string ``x``, Bob holds ``y``, and they must decide ``x == y``.

- Randomized communication complexity of ``EQ`` is ``Theta(log lam)``
  (Lemma 3.2, [33]); the protocol achieving it (Lemma A.1) is the polynomial
  fingerprint exchange implemented by :class:`RandomizedEqualityProtocol`.
- Deterministically ``EQ`` costs ``lam`` bits
  (:class:`DeterministicEqualityProtocol` is the trivial upper bound).

The framework is tiny but honest: protocols move :class:`BitString`
messages through a :class:`Transcript` that accounts every bit, so benchmark
E2's "communication vs input length" table measures real traffic.  The
RPLS-to-EQ reductions of Lemmas C.1 and C.3 (benchmark E5) reuse the same
transcript type to price the certificates crossing the Alice/Bob cut.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.bitstrings import BitReader, BitString, BitWriter
from repro.core.fingerprint import Fingerprinter
from repro.core.seeding import derive_trial_seed


@dataclass
class Transcript:
    """A record of every message exchanged by a two-party protocol."""

    messages: List[Tuple[str, BitString]] = field(default_factory=list)

    def send(self, sender: str, message: BitString) -> BitString:
        if sender not in ("alice", "bob"):
            raise ValueError("sender must be 'alice' or 'bob'")
        self.messages.append((sender, message))
        return message

    @property
    def total_bits(self) -> int:
        return sum(message.length for _sender, message in self.messages)

    def bits_from(self, sender: str) -> int:
        return sum(
            message.length for who, message in self.messages if who == sender
        )


class TwoPartyProtocol(ABC):
    """A protocol computing a boolean function of ``(x, y)``."""

    name: str = "protocol"

    @abstractmethod
    def run(
        self, x: BitString, y: BitString, rng: random.Random
    ) -> Tuple[bool, Transcript]:
        """Execute once; returns (output, transcript)."""


class DeterministicEqualityProtocol(TwoPartyProtocol):
    """The trivial EQ protocol: Alice ships her whole input (``lam`` bits).

    This is also optimal: deterministic EQ needs ``lam`` bits (fooling-set
    argument), which is the gap Lemma 3.2 randomizes away.
    """

    name = "eq-deterministic"

    def run(
        self, x: BitString, y: BitString, rng: random.Random
    ) -> Tuple[bool, Transcript]:
        transcript = Transcript()
        received = transcript.send("alice", x)
        return received == y, transcript


class RandomizedEqualityProtocol(TwoPartyProtocol):
    """Lemma A.1: fingerprint exchange deciding EQ in ``O(log lam)`` bits.

    One-sided: equal inputs are always accepted; unequal inputs are accepted
    with probability below ``(1/3)^repetitions``.
    """

    name = "eq-randomized"

    def __init__(self, lam: int, repetitions: int = 1):
        self.lam = lam
        self.fingerprinter = Fingerprinter(lam, repetitions=repetitions)

    def run(
        self, x: BitString, y: BitString, rng: random.Random
    ) -> Tuple[bool, Transcript]:
        if x.length != self.lam or y.length != self.lam:
            raise ValueError(f"inputs must be {self.lam}-bit strings")
        transcript = Transcript()
        fingerprint = transcript.send("alice", self.fingerprinter.make(x, rng))
        return self.fingerprinter.check(y, fingerprint), transcript

    @property
    def communication_bits(self) -> int:
        """Exact cost per run — ``2 * ceil(log2 p) * repetitions``."""
        return self.fingerprinter.certificate_bits


def estimate_error(
    protocol: TwoPartyProtocol,
    x: BitString,
    y: BitString,
    trials: int,
    seed: int = 0,
) -> float:
    """Fraction of trials on which the protocol answers ``EQ(x, y)`` wrongly."""
    truth = x == y
    wrong = 0
    for trial in range(trials):
        output, _transcript = protocol.run(
            x, y, random.Random(derive_trial_seed(seed, trial))
        )
        if output != truth:
            wrong += 1
    return wrong / trials


def random_bitstring(lam: int, rng: random.Random) -> BitString:
    """A uniformly random ``lam``-bit string."""
    return BitString(rng.getrandbits(lam) if lam else 0, lam)


def flip_one_bit(data: BitString, position: int) -> BitString:
    """``data`` with the bit at ``position`` flipped — worst-case EQ inputs.

    Strings at Hamming distance 1 are the hardest to distinguish for hashing
    protocols, so error-rate experiments use them rather than random pairs.
    """
    if not 0 <= position < data.length:
        raise ValueError("position out of range")
    mask = 1 << (data.length - 1 - position)
    return BitString(data.value ^ mask, data.length)
