"""``python -m repro.benchhistory`` — record / diff / gate.

- ``record``  append the current ``BENCH_engine.json`` snapshot to the
  ``benchmarks/history/`` store as a per-commit profile (``make bench``
  does this automatically through :mod:`benchmarks.bench_engine`; the
  subcommand exists to (re-)record any snapshot file by hand).
- ``diff``    compare two recorded profiles — by default the latest
  against the one before it, or ``--input`` (a snapshot file) against the
  gate's baseline — and print the kernel + integral report.
- ``gate``    the regression gate: compare the current snapshot against
  the last recorded profile of a *different* commit and exit non-zero if
  any kernel's trials/sec, or any speedup-column integral, degraded beyond
  its noise-aware threshold.  The gate *skips* (exit 0, with a reason)
  when there is nothing sound to compare: no snapshot, no recorded
  baseline, or a cpu_count mismatch between the machines that produced the
  two profiles (the established bench posture — hardware-dependent bars
  only apply where the hardware matches; pass ``--any-machine`` to compare
  anyway).

Exit codes: 0 = ok or skipped, 1 = degradation detected, 2 = bad usage.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.benchhistory.detect import (
    DEFAULT_INTEGRAL_DROP,
    DEFAULT_MIN_REL_DROP,
    DEFAULT_NOISE_MULTIPLIER,
)
from repro.benchhistory.report import diff_profiles, format_diff, select_baseline
from repro.benchhistory.store import (
    DEFAULT_HISTORY_DIR,
    DEFAULT_SNAPSHOT,
    HistoryStore,
    Profile,
    current_commit,
    profile_from_snapshot,
)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--history",
        type=Path,
        default=DEFAULT_HISTORY_DIR,
        help=f"history directory (default: {DEFAULT_HISTORY_DIR})",
    )


def _add_thresholds(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--min-rel-drop",
        type=float,
        default=DEFAULT_MIN_REL_DROP,
        help="smallest per-kernel trials/sec drop ever flagged "
        f"(default: {DEFAULT_MIN_REL_DROP})",
    )
    parser.add_argument(
        "--noise-multiplier",
        type=float,
        default=DEFAULT_NOISE_MULTIPLIER,
        help="factor on the per-kernel repeat-variance noise floor "
        f"(default: {DEFAULT_NOISE_MULTIPLIER})",
    )
    parser.add_argument(
        "--integral-drop",
        type=float,
        default=DEFAULT_INTEGRAL_DROP,
        help="speedup-column integral drop that counts as degradation "
        f"(default: {DEFAULT_INTEGRAL_DROP})",
    )


def _snapshot_profile(args, parser) -> Optional[Profile]:
    """The --input snapshot as an unrecorded in-memory profile."""
    path = Path(args.input)
    if not path.exists():
        return None
    try:
        snapshot = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        parser.error(f"unreadable snapshot {path}: {exc}")
    commit = args.commit if args.commit else current_commit(path.parent)
    profile_id, records = profile_from_snapshot(snapshot, commit=commit)
    return Profile(profile_id=f"snapshot:{profile_id}", records=tuple(records))


def _cmd_record(args, parser) -> int:
    profile = _snapshot_profile(args, parser)
    if profile is None:
        print(f"record: no snapshot at {args.input}", file=sys.stderr)
        return 2
    store = HistoryStore(args.history)
    profile_id = store.record(
        profile.records, profile_id=args.profile_id
    )
    print(
        f"recorded profile {profile_id} ({len(profile.records)} kernel records, "
        f"commit {profile.commit}) in {store.root}"
    )
    return 0


def _cmd_diff(args, parser) -> int:
    store = HistoryStore(args.history)
    ids = store.profile_ids()
    if args.baseline and args.current:
        baseline, current = store.load(args.baseline), store.load(args.current)
    elif args.input is not None:
        current = _snapshot_profile(args, parser)
        if current is None:
            print(f"diff: no snapshot at {args.input}", file=sys.stderr)
            return 2
        baseline = (
            store.load(args.baseline)
            if args.baseline
            else select_baseline(store, current.commit)
        )
        if baseline is None:
            print(f"diff: no recorded profiles in {store.root}")
            return 0
    else:
        if len(ids) < 2:
            print(
                f"diff: need two recorded profiles in {store.root} "
                f"(have {len(ids)}); record more or pass --input"
            )
            return 0
        baseline, current = store.load(ids[-2]), store.load(ids[-1])
    diff = diff_profiles(
        baseline,
        current,
        min_rel_drop=args.min_rel_drop,
        noise_multiplier=args.noise_multiplier,
        integral_drop=args.integral_drop,
    )
    print(format_diff(diff))
    return 0


def _cmd_gate(args, parser) -> int:
    def skip(reason: str) -> int:
        print(f"gate: skipped ({reason})")
        return 0

    current = _snapshot_profile(args, parser)
    if current is None:
        return skip(f"no snapshot at {args.input}")
    store = HistoryStore(args.history)
    baseline = (
        store.load(args.baseline)
        if args.baseline
        else select_baseline(store, current.commit)
    )
    if baseline is None:
        return skip(f"no recorded baseline profile in {store.root}")
    if baseline.torn_lines:
        print(
            f"gate: baseline {baseline.profile_id} had {baseline.torn_lines} "
            "torn record(s); comparing the intact ones",
            file=sys.stderr,
        )
    diff = diff_profiles(
        baseline,
        current,
        min_rel_drop=args.min_rel_drop,
        noise_multiplier=args.noise_multiplier,
        integral_drop=args.integral_drop,
    )
    if not diff.machine_match and not args.any_machine:
        return skip(
            f"cpu_count mismatch (baseline {baseline.cpu_count}, "
            f"current {current.cpu_count}); recorded throughput is only "
            "comparable on matching hardware — pass --any-machine to force"
        )
    print(format_diff(diff))
    if diff.ok:
        print(
            f"\ngate: ok — no kernel degraded beyond its noise threshold "
            f"vs {baseline.profile_id}"
        )
        return 0
    names = ", ".join(
        f"{k.workload}/{k.mode}/{k.backend}" for k in diff.degradations
    ) or ", ".join(f"integral({i.mode})" for i in diff.integral_degradations)
    print(f"\ngate: FAILED — degraded beyond noise threshold: {names}")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.benchhistory", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="append a snapshot to the history store")
    _add_common(record)
    record.add_argument("--input", type=Path, default=DEFAULT_SNAPSHOT)
    record.add_argument("--commit", help="override the commit tag (default: git HEAD)")
    record.add_argument("--profile-id", help="override the generated profile id")
    record.set_defaults(func=_cmd_record)

    diff = sub.add_parser("diff", help="compare two profiles (default: last two)")
    _add_common(diff)
    _add_thresholds(diff)
    diff.add_argument("baseline", nargs="?", help="baseline profile id")
    diff.add_argument("current", nargs="?", help="current profile id")
    diff.add_argument(
        "--input", type=Path, default=None,
        help="compare this snapshot file (as current) against the baseline",
    )
    diff.add_argument("--commit", help="commit tag for --input (default: git HEAD)")
    diff.set_defaults(func=_cmd_diff)

    gate = sub.add_parser(
        "gate", help="fail (exit 1) if the snapshot degraded a recorded kernel"
    )
    _add_common(gate)
    _add_thresholds(gate)
    gate.add_argument("--input", type=Path, default=DEFAULT_SNAPSHOT)
    gate.add_argument("--commit", help="override the commit tag (default: git HEAD)")
    gate.add_argument("--baseline", help="gate against this profile id")
    gate.add_argument(
        "--any-machine", action="store_true",
        help="compare even when the baseline's cpu_count differs",
    )
    gate.set_defaults(func=_cmd_gate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "diff" and bool(args.baseline) != bool(args.current):
        if args.input is None:
            parser.error("diff takes zero or two profile ids (or --input)")
    return args.func(args, parser)
