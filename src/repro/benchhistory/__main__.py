"""Entry point: ``python -m repro.benchhistory {record,diff,gate} ...``."""

import sys

from repro.benchhistory.cli import main

if __name__ == "__main__":
    sys.exit(main())
