"""The append-only benchmark-profile store under ``benchmarks/history/``.

A *profile* is one bench run flattened into kernel records: one record per
workload x mode x backend, each tagged with the commit, cpu_count, python
version, and timestamp of the run.  Profiles are stored one JSON-lines
file per profile id — files are only ever *added*, so the store is
append-only and the full perf trajectory of the repository survives every
PR (the single ``BENCH_engine.json`` snapshot remains as the convenient
"latest" view, now written atomically).

Records are written through the campaign
:class:`~repro.parallel.campaign.JsonlSink`, which buys the history the
same robustness the campaign logs have: append-only JSON lines, and
torn-line tolerance on reload (a process killed mid-write, or a crashed
filesystem tearing a line mid-file, costs exactly the torn records — every
intact record survives and is counted in ``Profile.torn_lines``).
Finalization is atomic: the sink writes to a dot-prefixed temp file in the
same directory and the finished profile is ``os.replace``-d into place, so
a reader can never observe a half-written *new* profile file (dot-prefixed
temp files are ignored on listing).
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.parallel.campaign import JsonlSink

DEFAULT_HISTORY_DIR = Path("benchmarks") / "history"
DEFAULT_SNAPSHOT = Path("BENCH_engine.json")

#: The kernel identity within a profile: (workload, mode, backend).
KernelKey = Tuple[str, str, str]

# Snapshot columns -> history modes: (mode, trials/sec field, speedup field).
# ``legacy`` is the reference oracle, so its speedup is identically 1.
_SNAPSHOT_MODES = (
    ("legacy", "legacy_trials_per_sec", None),
    ("engine-compat", "engine_compat_trials_per_sec", "speedup_compat"),
    ("engine-fast", "engine_fast_trials_per_sec", "speedup_fast"),
    ("engine-fast+numpy", "engine_vector_trials_per_sec", "speedup_vector"),
    ("engine-vector", "engine_vector_rng_trials_per_sec", "speedup_vector_rng"),
)


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp file + ``os.replace``.

    An interrupt mid-write can tear a plain ``open().write()`` — fatal for
    files a regression gate reads.  The temp file lives next to the target
    (same filesystem, so the replace is atomic) and is cleaned up on any
    failure.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        with tmp.open("w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # replace failed (or never ran): don't litter
            tmp.unlink()


def current_commit(cwd: Union[str, Path, None] = None) -> str:
    """The short commit hash profiles are tagged with; ``unknown`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else "unknown"


def _utc_timestamp() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def _profile_id(commit: str, timestamp: str) -> str:
    # Lexicographic order == chronological order, commit kept for humans.
    compact = timestamp.replace("-", "").replace(":", "")
    return f"{compact}-{commit}"


def profile_from_snapshot(
    snapshot: Dict,
    commit: Optional[str] = None,
    timestamp: Optional[str] = None,
    profile_id: Optional[str] = None,
) -> Tuple[str, List[Dict]]:
    """Flatten a ``BENCH_engine.json`` payload into history kernel records.

    Returns ``(profile_id, records)`` — one record per workload x mode x
    backend, each carrying the profile tags.  ``results`` rows produce one
    record per execution mode (``backend="single"``); ``sharded_results``
    rows produce one ``backend="sharded(<executor>)"`` record whose speedup
    column is the sharded-vs-single ratio; ``adaptive_results`` rows
    produce a rate-less ``mode="adaptive"`` record whose speedup column is
    the fixed-provision-vs-adaptive trial ratio — with no ``trials_per_sec``
    the per-kernel check reports ``new`` (non-gating) and the integral
    check gates the speedup column.  Per-repeat throughput samples
    (``samples`` sub-dicts, recorded since the history subsystem landed)
    ride along so the detectors can estimate each kernel's noise floor;
    older snapshots without them fall back to the default floor.
    """
    commit = commit if commit is not None else current_commit()
    timestamp = timestamp if timestamp is not None else _utc_timestamp()
    profile = profile_id if profile_id is not None else _profile_id(commit, timestamp)
    tags = {
        "profile": profile,
        "commit": commit,
        "timestamp": timestamp,
        "cpu_count": snapshot.get("cpu_count"),
        "python": snapshot.get("python"),
    }
    records: List[Dict] = []
    for row in snapshot.get("results", ()):
        samples = row.get("samples") or {}
        for mode, rate_field, speedup_field in _SNAPSHOT_MODES:
            if rate_field not in row:
                continue
            records.append(
                {
                    **tags,
                    "workload": row["scheme"],
                    "mode": mode,
                    "backend": "single",
                    "trials_per_sec": row[rate_field],
                    "speedup": 1.0 if speedup_field is None else row[speedup_field],
                    "samples": samples.get(mode, []),
                }
            )
    for row in snapshot.get("sharded_results", ()):
        records.append(
            {
                **tags,
                "workload": row["scheme"],
                "mode": "vector",
                "backend": f"sharded({row.get('executor', 'process')})",
                "trials_per_sec": row["sharded_trials_per_sec"],
                "speedup": row["sharded_speedup"],
                "samples": row.get("samples", {}).get("sharded", []),
                "workers": row.get("workers"),
            }
        )
    for row in snapshot.get("adaptive_results", ()):
        records.append(
            {
                **tags,
                "workload": row["scheme"],
                "mode": "adaptive",
                "backend": f"campaign({row.get('executor', 'process')})",
                "speedup": row["speedup"],
                "samples": [],
                "workers": row.get("workers"),
            }
        )
    return profile, records


@dataclass(frozen=True)
class Profile:
    """One recorded bench profile: its id, tags, and kernel records."""

    profile_id: str
    records: Tuple[Dict, ...]
    path: Optional[Path] = None
    torn_lines: int = 0

    def _tag(self, name: str):
        return self.records[0].get(name) if self.records else None

    @property
    def commit(self) -> Optional[str]:
        return self._tag("commit")

    @property
    def timestamp(self) -> Optional[str]:
        return self._tag("timestamp")

    @property
    def cpu_count(self) -> Optional[int]:
        return self._tag("cpu_count")

    def kernels(self) -> Dict[KernelKey, Dict]:
        """The profile's records keyed by (workload, mode, backend)."""
        return {
            (r["workload"], r["mode"], r["backend"]): r
            for r in self.records
            if "workload" in r and "mode" in r and "backend" in r
        }

    def __len__(self) -> int:
        return len(self.records)


class HistoryStore:
    """The ``benchmarks/history/`` directory of per-commit profiles.

    ``record`` appends a new profile (never rewrites an existing one);
    ``load`` / ``latest`` / ``profile_ids`` read the trajectory back with
    the :class:`~repro.parallel.campaign.JsonlSink` torn-line tolerance.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_HISTORY_DIR):
        self.root = Path(root)

    def _path(self, profile_id: str) -> Path:
        return self.root / f"{profile_id}.jsonl"

    def profile_ids(self) -> List[str]:
        """All recorded profile ids, oldest first (lexicographic == time)."""
        if not self.root.is_dir():
            return []
        return sorted(
            path.stem
            for path in self.root.glob("*.jsonl")
            if not path.name.startswith(".")
        )

    def record(self, records: Sequence[Dict], profile_id: Optional[str] = None) -> str:
        """Append one profile atomically; returns its id.

        The records stream through a :class:`JsonlSink` into a dot-prefixed
        temp file (invisible to :meth:`profile_ids`), which is fsynced and
        ``os.replace``-d to its final name — a torn *new* profile file is
        impossible; only records torn by forces after finalization (crashed
        filesystems) remain, and those reload tolerantly.
        """
        records = list(records)
        if not records:
            raise ValueError("a profile needs at least one kernel record")
        if profile_id is None:
            profile_id = records[0].get("profile") or _profile_id(
                records[0].get("commit", "unknown"), _utc_timestamp()
            )
        final = self._path(profile_id)
        serial = 2
        while final.exists():  # append-only: never overwrite a recorded profile
            final = self._path(f"{profile_id}.{serial}")
            serial += 1
        tmp = final.parent / f".{final.name}.tmp.{os.getpid()}"
        try:
            sink = JsonlSink(tmp, resume=False)
            for record in records:
                sink.write(record)
            with tmp.open("a") as handle:
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, final)
        finally:
            if tmp.exists():
                tmp.unlink()
        return final.stem

    def load(self, profile_id: str) -> Profile:
        """Reload one profile; torn lines are skipped and counted, not fatal."""
        path = self._path(profile_id)
        if not path.exists():
            raise FileNotFoundError(f"no recorded profile {profile_id!r} in {self.root}")
        sink = JsonlSink(path, resume=True)
        return Profile(
            profile_id=profile_id,
            records=tuple(sink.records),
            path=path,
            torn_lines=sink.torn_lines,
        )

    def latest(self, exclude: Iterable[str] = ()) -> Optional[Profile]:
        """The newest recorded profile (ids in ``exclude`` skipped), if any."""
        excluded = set(exclude)
        for profile_id in reversed(self.profile_ids()):
            if profile_id not in excluded:
                return self.load(profile_id)
        return None
