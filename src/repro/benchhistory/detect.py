"""Noise-aware degradation detectors over benchmark-history profiles.

Two checks, miniatures of the perun ``check`` family:

- :func:`average_amount_threshold` — per-kernel: the relative change of
  trials/sec between the baseline and current record, judged against a
  *noise-aware* drop threshold.  The noise floor of a kernel is estimated
  from its per-repeat throughput samples (the best-of-N repeats the bench
  harness records): a kernel whose three repeats already spread 12% apart
  cannot be gated at 10%.  The applied threshold is
  ``max(min_rel_drop, noise_multiplier * max(noise(baseline), noise(current)))``.
- :func:`integral_comparison` — per mode x backend column: the sum of the
  speedup-over-legacy values across the workloads both profiles share (the
  discrete integral of the speedup curve).  Single-kernel jitter averages
  out in the integral, so a smaller relative drop is meaningful here; a
  real regression in a shared kernel (the Horner pass, the popcount
  kernel) drags the whole column down and is caught even when each
  individual workload's drop hides inside its own noise.

Both detectors are pure functions of their record inputs — a gate verdict
is a deterministic function of the two profiles, which is what lets the
tier-1 smoke assertion run them without flaking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.benchhistory.store import KernelKey

#: Minimum relative trials/sec drop that is ever flagged, noise aside.
DEFAULT_MIN_REL_DROP = 0.15
#: The noise floor is scaled by this before gating (2 sigma-ish posture).
DEFAULT_NOISE_MULTIPLIER = 2.0
#: Assumed per-kernel relative noise when no repeat samples were recorded.
DEFAULT_NOISE_FLOOR = 0.05
#: Relative drop of a speedup-column integral that counts as degradation.
DEFAULT_INTEGRAL_DROP = 0.15


def relative_spread(samples: Sequence[float]) -> float:
    """``(max - min) / max`` of the positive samples; 0.0 when < 2 remain.

    >>> round(relative_spread([90.0, 100.0, 95.0]), 2)
    0.1
    >>> relative_spread([100.0])
    0.0
    """
    positive = [s for s in samples if s > 0]
    if len(positive) < 2:
        return 0.0
    top = max(positive)
    return (top - min(positive)) / top


def noise_floor(record: Dict, default: float = DEFAULT_NOISE_FLOOR) -> float:
    """A kernel record's relative noise estimate, never below ``default``.

    Uses the per-repeat throughput samples when the record carries them
    (``samples``: the raw trials/sec of each best-of-N repeat); records
    from before samples were stored get the default floor.
    """
    return max(relative_spread(record.get("samples") or ()), default)


@dataclass(frozen=True)
class KernelComparison:
    """The average-amount verdict for one workload x mode x backend kernel.

    ``change`` is the relative throughput change (negative = slower);
    ``threshold`` is the noise-aware drop bound that was applied.  The
    verdict is ``degraded`` / ``improved`` when ``change`` clears the
    threshold in either direction, ``ok`` inside the noise band, and
    ``new`` / ``missing`` when only one profile has the kernel (neither
    gates — a new kernel has no baseline to lose, and a removed workload
    is a bench-suite change, not a perf regression).
    """

    workload: str
    mode: str
    backend: str
    baseline: Optional[float]
    current: Optional[float]
    change: float
    threshold: float
    verdict: str

    @property
    def key(self) -> KernelKey:
        return (self.workload, self.mode, self.backend)

    def describe(self) -> str:
        if self.verdict in ("new", "missing"):
            return self.verdict
        return f"{self.change:+.1%} (gate at -{self.threshold:.0%})"


def average_amount_threshold(
    baseline: Optional[Dict],
    current: Optional[Dict],
    min_rel_drop: float = DEFAULT_MIN_REL_DROP,
    noise_multiplier: float = DEFAULT_NOISE_MULTIPLIER,
    noise_default: float = DEFAULT_NOISE_FLOOR,
) -> KernelComparison:
    """Compare one kernel's trials/sec across two profiles (perun's
    average-amount check, with the repeat-variance noise floor)."""
    record = current if current is not None else baseline
    if record is None:
        raise ValueError("at least one of baseline/current must be a record")
    workload, mode, backend = record["workload"], record["mode"], record["backend"]
    base_rate = baseline.get("trials_per_sec") if baseline is not None else None
    cur_rate = current.get("trials_per_sec") if current is not None else None
    if base_rate is None or cur_rate is None:
        return KernelComparison(
            workload=workload, mode=mode, backend=backend,
            baseline=base_rate, current=cur_rate,
            change=0.0, threshold=0.0,
            verdict="new" if base_rate is None else "missing",
        )
    noise = max(
        noise_floor(baseline, noise_default), noise_floor(current, noise_default)
    )
    threshold = max(min_rel_drop, noise_multiplier * noise)
    change = (cur_rate - base_rate) / base_rate if base_rate > 0 else 0.0
    if change < -threshold:
        verdict = "degraded"
    elif change > threshold:
        verdict = "improved"
    else:
        verdict = "ok"
    return KernelComparison(
        workload=workload, mode=mode, backend=backend,
        baseline=base_rate, current=cur_rate,
        change=change, threshold=threshold, verdict=verdict,
    )


@dataclass(frozen=True)
class IntegralComparison:
    """The integral verdict for one mode x backend speedup column."""

    mode: str
    backend: str
    baseline_integral: float
    current_integral: float
    change: float
    threshold: float
    workloads: int  # how many shared workloads the integral covers
    verdict: str

    def describe(self) -> str:
        return (
            f"{self.baseline_integral:.1f} -> {self.current_integral:.1f} "
            f"({self.change:+.1%} over {self.workloads} workloads)"
        )


def integral_comparison(
    baseline_kernels: Dict[KernelKey, Dict],
    current_kernels: Dict[KernelKey, Dict],
    threshold: float = DEFAULT_INTEGRAL_DROP,
) -> Tuple[IntegralComparison, ...]:
    """Compare the speedup-column integrals of two profiles.

    For every ``(mode, backend)`` column present in both profiles, sums the
    ``speedup`` values over the shared workloads and judges the relative
    change of the sums.  The ``legacy`` mode is excluded (its speedup is
    identically 1 — the column the others are measured against).
    """
    columns: Dict[Tuple[str, str], Tuple[float, float, int]] = {}
    for key, base in baseline_kernels.items():
        workload, mode, backend = key
        if mode == "legacy":
            continue
        cur = current_kernels.get(key)
        if cur is None:
            continue
        base_speedup = base.get("speedup")
        cur_speedup = cur.get("speedup")
        if base_speedup is None or cur_speedup is None:
            continue
        total_base, total_cur, count = columns.get((mode, backend), (0.0, 0.0, 0))
        columns[(mode, backend)] = (
            total_base + base_speedup, total_cur + cur_speedup, count + 1
        )
    results = []
    for (mode, backend), (total_base, total_cur, count) in sorted(columns.items()):
        change = (total_cur - total_base) / total_base if total_base > 0 else 0.0
        if change < -threshold:
            verdict = "degraded"
        elif change > threshold:
            verdict = "improved"
        else:
            verdict = "ok"
        results.append(
            IntegralComparison(
                mode=mode, backend=backend,
                baseline_integral=total_base, current_integral=total_cur,
                change=change, threshold=threshold,
                workloads=count, verdict=verdict,
            )
        )
    return tuple(results)
