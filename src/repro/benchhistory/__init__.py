"""Benchmark history + noise-aware regression gating (perun-style, in miniature).

``BENCH_engine.json`` is a single latest-run snapshot: any regression a PR
introduces is silently recorded *over* the numbers it regressed.  This
package makes the speed wins un-losable:

- :mod:`repro.benchhistory.store` — an append-only ``benchmarks/history/``
  store of per-commit bench *profiles* (one JSON-lines file per profile,
  written through the campaign :class:`~repro.parallel.campaign.JsonlSink`
  and finalized atomically), one record per workload x mode x backend,
  tagged with commit, cpu_count, and timestamp;
- :mod:`repro.benchhistory.detect` — noise-aware degradation detectors:
  an average-amount threshold on trials/sec with a per-kernel noise floor
  estimated from repeat variance, and an integral comparison over the
  speedup columns (the two checks borrowed from perun's ``check`` family);
- :mod:`repro.benchhistory.report` — the ``bench-diff`` report comparing
  any two profiles, and the gate verdict built from it;
- :mod:`repro.benchhistory.cli` — ``python -m repro.benchhistory`` with
  ``record`` / ``diff`` / ``gate`` subcommands (``gate`` exits non-zero on
  a degradation beyond the noise threshold; see ``docs/engine.md``).
"""

from repro.benchhistory.detect import (
    IntegralComparison,
    KernelComparison,
    average_amount_threshold,
    integral_comparison,
    noise_floor,
    relative_spread,
)
from repro.benchhistory.report import BenchDiff, diff_profiles, format_diff, select_baseline
from repro.benchhistory.store import (
    DEFAULT_HISTORY_DIR,
    DEFAULT_SNAPSHOT,
    HistoryStore,
    Profile,
    atomic_write_text,
    current_commit,
    profile_from_snapshot,
)

__all__ = [
    "BenchDiff",
    "DEFAULT_HISTORY_DIR",
    "DEFAULT_SNAPSHOT",
    "HistoryStore",
    "IntegralComparison",
    "KernelComparison",
    "Profile",
    "atomic_write_text",
    "average_amount_threshold",
    "current_commit",
    "diff_profiles",
    "format_diff",
    "integral_comparison",
    "noise_floor",
    "profile_from_snapshot",
    "relative_spread",
    "select_baseline",
]
