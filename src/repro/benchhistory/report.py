"""The ``bench-diff`` report: two profiles, every detector, one verdict.

:func:`diff_profiles` runs both detectors of
:mod:`repro.benchhistory.detect` across two profiles and folds the results
into a :class:`BenchDiff`; :func:`format_diff` renders it as the familiar
monospace tables.  The regression *gate* is ``diff.ok`` plus the
machine-match guard — throughput recorded on a 1-CPU container is not
comparable to an 8-core box, so a cpu_count mismatch makes the gate *skip*
(the established bench posture: hardware-dependent bars apply only where
the hardware matches), never fail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.benchhistory.detect import (
    DEFAULT_INTEGRAL_DROP,
    DEFAULT_MIN_REL_DROP,
    DEFAULT_NOISE_MULTIPLIER,
    IntegralComparison,
    KernelComparison,
    average_amount_threshold,
    integral_comparison,
)
from repro.benchhistory.store import HistoryStore, Profile
from repro.simulation.runner import format_table


@dataclass(frozen=True)
class BenchDiff:
    """Everything the detectors concluded about ``baseline -> current``."""

    baseline_id: str
    current_id: str
    kernels: Tuple[KernelComparison, ...]
    integrals: Tuple[IntegralComparison, ...]
    machine_match: bool

    def _with_verdict(self, verdict: str) -> Tuple[KernelComparison, ...]:
        return tuple(k for k in self.kernels if k.verdict == verdict)

    @property
    def degradations(self) -> Tuple[KernelComparison, ...]:
        return self._with_verdict("degraded")

    @property
    def improvements(self) -> Tuple[KernelComparison, ...]:
        return self._with_verdict("improved")

    @property
    def integral_degradations(self) -> Tuple[IntegralComparison, ...]:
        return tuple(i for i in self.integrals if i.verdict == "degraded")

    @property
    def ok(self) -> bool:
        """No kernel and no speedup-column integral degraded past its
        threshold.  New/missing kernels never gate."""
        return not self.degradations and not self.integral_degradations


def diff_profiles(
    baseline: Profile,
    current: Profile,
    min_rel_drop: float = DEFAULT_MIN_REL_DROP,
    noise_multiplier: float = DEFAULT_NOISE_MULTIPLIER,
    integral_drop: float = DEFAULT_INTEGRAL_DROP,
) -> BenchDiff:
    """Run both detectors over every kernel the two profiles mention."""
    base_kernels = baseline.kernels()
    cur_kernels = current.kernels()
    comparisons = []
    for key in sorted(set(base_kernels) | set(cur_kernels)):
        comparisons.append(
            average_amount_threshold(
                base_kernels.get(key),
                cur_kernels.get(key),
                min_rel_drop=min_rel_drop,
                noise_multiplier=noise_multiplier,
            )
        )
    integrals = integral_comparison(base_kernels, cur_kernels, threshold=integral_drop)
    machine_match = (
        baseline.cpu_count is None
        or current.cpu_count is None
        or baseline.cpu_count == current.cpu_count
    )
    return BenchDiff(
        baseline_id=baseline.profile_id,
        current_id=current.profile_id,
        kernels=tuple(comparisons),
        integrals=integrals,
        machine_match=machine_match,
    )


def format_diff(diff: BenchDiff) -> str:
    """The human-facing bench-diff report (kernel table + integral table)."""
    def rate(value: Optional[float]) -> str:
        return f"{value:.1f}" if value is not None else "-"

    kernel_rows = [
        [
            comparison.workload,
            comparison.mode,
            comparison.backend,
            rate(comparison.baseline),
            rate(comparison.current),
            comparison.describe(),
            comparison.verdict,
        ]
        for comparison in diff.kernels
    ]
    text = (
        f"bench-diff: {diff.baseline_id} -> {diff.current_id}\n\n"
        + format_table(
            ["workload", "mode", "backend", "base/s", "cur/s", "change", "verdict"],
            kernel_rows,
        )
    )
    if diff.integrals:
        integral_rows = [
            [i.mode, i.backend, i.describe(), f"-{i.threshold:.0%}", i.verdict]
            for i in diff.integrals
        ]
        text += "\n\n" + format_table(
            ["speedup integral (mode)", "backend", "change", "gate", "verdict"],
            integral_rows,
        )
    if not diff.machine_match:
        text += "\n\nnote: profiles were recorded on different cpu_counts"
    counts = (
        f"{len(diff.degradations)} degraded, {len(diff.improvements)} improved, "
        f"{sum(1 for k in diff.kernels if k.verdict in ('new', 'missing'))} new/missing, "
        f"{len(diff.integral_degradations)} integral degradations"
    )
    return text + f"\n\n{counts}"


def select_baseline(
    store: HistoryStore, current_commit: Optional[str] = None
) -> Optional[Profile]:
    """The profile a gate run should compare against.

    The newest recorded profile whose commit differs from
    ``current_commit`` — gating a commit against its *own* freshly recorded
    profile would compare a file with itself.  When every recorded profile
    is from the current commit (first record, or a re-record of the same
    bench run), the newest one is returned: an identical re-record passes
    the gate by construction, which is the intended behavior.
    """
    ids = store.profile_ids()
    if not ids:
        return None
    if current_commit is not None:
        for profile_id in reversed(ids):
            profile = store.load(profile_id)
            if profile.commit != current_commit:
                return profile
    return store.load(ids[-1])
