"""repro — a reproduction of *Randomized Proof-Labeling Schemes* (PODC 2015).

Baruch, Fraigniaud and Patt-Shamir introduce randomized proof-labeling
schemes (RPLS): distributed certification where nodes hold private labels and
exchange only short randomized certificates.  This package implements the
full system the paper describes:

- the port-numbered network model and configurations (:mod:`repro.graphs`,
  :mod:`repro.core.configuration`);
- deterministic and randomized proof-labeling schemes with exact bit-level
  verification-complexity accounting (:mod:`repro.core`);
- the Theorem 3.1 compiler (PLS -> RPLS with ``O(log kappa)`` certificates),
  the universal schemes of Lemma 3.3 / Corollary 3.4, and error boosting;
- the Section 4 crossing lower-bound machinery, run as constructive attacks
  (:mod:`repro.lowerbounds`);
- concrete schemes for the Section 5 predicates — MST, biconnectivity,
  cycle length, flow, symmetry, uniformity (:mod:`repro.schemes`);
- the classical substrates these need, from scratch
  (:mod:`repro.substrates`), and a Monte-Carlo simulation harness
  (:mod:`repro.simulation`);
- a batched verification engine for repeated (Monte-Carlo) verification of
  one ``(scheme, configuration)`` pair — precompiled plans, multi-point
  fingerprint evaluation, and a fast acceptance estimator, decision-exact
  against the one-shot engine (:mod:`repro.engine`).

Quickstart::

    from repro.core import verify_deterministic, verify_randomized
    from repro.core.compiler import FingerprintCompiledRPLS
    from repro.graphs.generators import spanning_tree_configuration
    from repro.schemes.spanning_tree import SpanningTreePLS

    config = spanning_tree_configuration(node_count=64, seed=1)
    pls = SpanningTreePLS()
    assert verify_deterministic(pls, config).accepted

    rpls = FingerprintCompiledRPLS(pls)
    assert verify_randomized(rpls, config, seed=0).accepted
"""

__version__ = "1.0.0"

__all__ = [
    "core",
    "engine",
    "graphs",
    "lowerbounds",
    "schemes",
    "simulation",
    "substrates",
]
