"""Offline trace analysis: load a trace directory and roll it up.

A trace directory holds one ``trace-<pid>.jsonl`` file per process that
wrote into the trace.  Loading is torn-line tolerant with the same
contract as the campaign :class:`~repro.parallel.campaign.JsonlSink`: a
line that fails to parse (a process died mid-write) is counted and
skipped, never fatal.

The rollup walks the span tree bottom-up: every span and event is
attributed to its enclosing *run* span (one sharded estimate) by following
``parent`` ids, and runs are attributed to their *cell* / *campaign* spans
the same way.  Supervision events (``supervision.dispatch`` /
``supervision.failure`` / ``supervision.retry`` / ``supervision.quarantine``)
and chaos events (``chaos.inject``) reconstruct the full attempt history
per run — the flight-recorder view the supervisor's in-memory
:class:`~repro.parallel.supervision.RunReport` gives up when the process
exits.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.metrics import merge_snapshots


class Trace:
    """One loaded trace: parsed records plus the span/parent index."""

    def __init__(self, records: List[Dict], torn_lines: int = 0, files: int = 0):
        self.records = records
        self.torn_lines = torn_lines
        self.files = files
        self.spans = [r for r in records if r.get("kind") == "span"]
        self.events = [r for r in records if r.get("kind") == "event"]
        self.metrics_records = [r for r in records if r.get("kind") == "metrics"]
        self.by_id: Dict[str, Dict] = {
            r["id"]: r for r in self.spans if r.get("id") is not None
        }

    def ancestor(self, record: Dict, name: str) -> Optional[Dict]:
        """The nearest enclosing span named ``name`` (following parents).

        Checks the record itself first, so a run span is its own "run"
        ancestor.  A missing parent (open span lost to a crash, or a torn
        line) ends the walk.
        """
        seen = set()
        current: Optional[Dict] = record
        while current is not None:
            if current.get("kind") == "span" and current.get("name") == name:
                return current
            parent = current.get("parent")
            if parent is None or parent in seen:
                return None
            seen.add(parent)
            current = self.by_id.get(parent)
        return None

    def named(self, name: str) -> List[Dict]:
        return [s for s in self.spans if s.get("name") == name]

    def merged_metrics(self) -> Dict:
        merged: Dict = {}
        for record in self.metrics_records:
            merged = merge_snapshots(merged, record.get("metrics"))
        return merged


def load_trace(path) -> Trace:
    """Load every ``trace-*.jsonl`` file under ``path``, skipping torn lines."""
    directory = Path(path)
    if not directory.is_dir():
        raise FileNotFoundError(f"trace directory not found: {directory}")
    records: List[Dict] = []
    torn = 0
    files = 0
    for trace_file in sorted(directory.glob("trace-*.jsonl")):
        files += 1
        with trace_file.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    torn += 1
                    continue
                if isinstance(record, dict) and record.get("kind"):
                    records.append(record)
                else:
                    torn += 1
    records.sort(key=lambda r: r.get("ts", 0.0))
    return Trace(records, torn_lines=torn, files=files)


def _run_label(trace: Trace, run_span: Dict) -> str:
    cell = trace.ancestor(run_span, "cell")
    if cell is not None:
        key = (cell.get("attrs") or {}).get("key")
        if key:
            return str(key)
    run_id = (run_span.get("attrs") or {}).get("run_id")
    return f"run#{run_id}" if run_id is not None else run_span.get("id", "?")


def summarize_runs(trace: Trace) -> List[Dict]:
    """Per-run rollup: attempts, retries, faults, chunk timing.

    Each entry describes one *run* span.  Attempt history comes from
    parent-side supervision events (crash-proof); chunk statistics from
    the worker-side chunk spans; injected faults from the chaos events.
    """
    rollups: Dict[str, Dict] = {}
    order: List[str] = []
    for run_span in trace.named("run"):
        run_id = run_span["id"]
        attrs = run_span.get("attrs") or {}
        rollups[run_id] = {
            "label": _run_label(trace, run_span),
            "span_id": run_id,
            "status": run_span.get("status", "ok"),
            "duration_sec": run_span.get("dur", 0.0),
            "executor": attrs.get("executor"),
            "shards": attrs.get("shards"),
            "trials": attrs.get("trials_run", attrs.get("trials")),
            "accepted": attrs.get("accepted"),
            "dispatches": 0,
            "retries": 0,
            "timeouts": 0,
            "quarantined": 0,
            "heartbeat_misses": 0,
            "pool_repairs": 0,
            "failures": [],
            "faults": {},
            "attempts": [],
            "chunks": 0,
            "chunk_trials": 0,
            "chunk_time_sec": 0.0,
        }
        order.append(run_id)

    for event in trace.events:
        run = trace.ancestor(event, "run")
        if run is None or run["id"] not in rollups:
            continue
        rollup = rollups[run["id"]]
        name = event.get("name")
        attrs = event.get("attrs") or {}
        if name == "supervision.dispatch":
            rollup["dispatches"] += 1
            rollup["attempts"].append(
                {
                    "shard": attrs.get("shard"),
                    "attempt": attrs.get("attempt"),
                    "ts": event.get("ts"),
                }
            )
            if attrs.get("attempt", 0) > 0:
                rollup["retries"] += 1
        elif name == "supervision.failure":
            rollup["failures"].append(
                {
                    "shard": attrs.get("shard"),
                    "attempt": attrs.get("attempt"),
                    "kind": attrs.get("fail_kind"),
                    "elapsed_sec": attrs.get("elapsed_sec"),
                }
            )
            if attrs.get("fail_kind") == "timeout":
                # A supervision timeout *is* a missed heartbeat deadline.
                rollup["timeouts"] += 1
                rollup["heartbeat_misses"] += 1
        elif name == "supervision.quarantine":
            rollup["quarantined"] += 1
        elif name == "supervision.pool_repair":
            rollup["pool_repairs"] += 1
        elif name == "chaos.inject":
            fault = attrs.get("fault", "?")
            rollup["faults"][fault] = rollup["faults"].get(fault, 0) + 1

    for chunk in trace.named("chunk"):
        run = trace.ancestor(chunk, "run")
        if run is None or run["id"] not in rollups:
            continue
        rollup = rollups[run["id"]]
        rollup["chunks"] += 1
        rollup["chunk_trials"] += (chunk.get("attrs") or {}).get("chunk_trials", 0)
        rollup["chunk_time_sec"] += chunk.get("dur", 0.0)

    for rollup in rollups.values():
        rollup["attempts"].sort(
            key=lambda a: (a.get("shard") or 0, a.get("attempt") or 0)
        )
    return [rollups[run_id] for run_id in order]


def slowest_spans(trace: Trace, top: int = 10, name: Optional[str] = None) -> List[Dict]:
    spans = trace.spans if name is None else trace.named(name)
    return sorted(spans, key=lambda s: s.get("dur", 0.0), reverse=True)[:top]


def to_chrome_trace(trace: Trace) -> Dict:
    """Render as Chrome trace-event JSON (the ``about://tracing`` format).

    Spans become complete ``"X"`` events (microsecond ``ts``/``dur``),
    point events become instant ``"i"`` events; pids/tids map directly.
    """
    trace_events: List[Dict] = []
    for span in trace.spans:
        trace_events.append(
            {
                "name": span.get("name", "?"),
                "cat": "span",
                "ph": "X",
                "ts": span.get("ts", 0.0) * 1e6,
                "dur": span.get("dur", 0.0) * 1e6,
                "pid": span.get("pid", 0),
                "tid": span.get("tid", 0),
                "args": dict(
                    span.get("attrs") or {},
                    status=span.get("status", "ok"),
                    span_id=span.get("id"),
                    parent=span.get("parent"),
                ),
            }
        )
    for event in trace.events:
        trace_events.append(
            {
                "name": event.get("name", "?"),
                "cat": "event",
                "ph": "i",
                "s": "t",
                "ts": event.get("ts", 0.0) * 1e6,
                "pid": event.get("pid", 0),
                "tid": event.get("tid", 0),
                "args": dict(event.get("attrs") or {}, parent=event.get("parent")),
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}
