"""Trace spans: the span model, recorders, and the JSONL trace writer.

One *trace* is a directory of append-only JSON-lines files, one file per
process (``trace-<pid>.jsonl``), each line one record:

- ``kind="span"`` — a named, timed interval with a ``parent`` id, a
  ``status`` and structured ``attrs``.  Spans are written *at end* in a
  single line, so a crashed worker loses only its open spans (the
  supervisor's parent-side events recover the attempt history) and a torn
  tail line costs exactly that record — the reader skips torn lines the
  same way the campaign :class:`~repro.parallel.campaign.JsonlSink` does.
- ``kind="event"`` — a point-in-time marker (retry decisions, injected
  faults, executor dispatches).
- ``kind="metrics"`` — a :class:`~repro.obs.metrics.MetricsRegistry`
  snapshot.

Timing is **monotonic-clock** based: durations are differences of
``time.monotonic()`` and cannot be disturbed by wall-clock steps.  For
cross-process alignment each writer records a one-shot anchor pair
(``wall0``, ``mono0``) at creation and renders every timestamp as
``wall0 + (mono - mono0)`` — a wall-anchored monotonic time, comparable
across the processes of one run without inheriting wall-clock jumps.

The span identity model mirrors the execution tree: *run* spans (one
sharded estimate) parent *shard* spans (one shard attempt, possibly
retried), which parent *chunk* spans (one engine chunk, emitted through the
observational ``progress`` seam of
:func:`~repro.engine.montecarlo.estimate_acceptance_fast` — tracing never
adds a hook to the engine loop itself).  Campaign traces add *campaign* and
*cell* spans above the runs.  Span ids embed the writing pid, so ids are
unique across the worker processes of a trace without coordination.

The off path is an always-on no-op: :data:`NULL_RECORDER` answers every
recorder call with constant no-ops (``enabled`` is False, ``span()``
returns a shared null span, ``spec()`` returns ``None``), so instrumented
code runs with zero allocation and no branching beyond one attribute
check.  Traced runs are *observational by contract*: every instrumentation
point only reads values the computation already produced — the trace-off
bit-identity suite (``tests/test_obs_identity.py``) pins this per trial.

Crossing the pickle boundary works like plans do
(:mod:`repro.parallel.spec`): a compiled recorder never pickles; workers
receive a tiny :class:`TraceSpec` (directory, trace id, parent span id)
and rebuild — or memo-hit — a process-local recorder from it.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional


class TraceWriter:
    """Per-process appender for one trace directory.

    One writer per directory per process (see :meth:`for_dir`); the writer
    owns ``<dir>/trace-<pid>.jsonl`` and re-opens under the current pid on
    first write after a fork, so a forked worker never appends to its
    parent's file.  Every record is one ``write()`` of one line, flushed —
    the torn-line-tolerant reader contract needs nothing stronger.
    """

    _registry: Dict[str, "TraceWriter"] = {}
    _registry_lock = threading.Lock()

    def __init__(self, path):
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        # The wall/monotonic anchor pair: monotonic offsets render as
        # wall-anchored timestamps without wall-clock step sensitivity.
        self.wall0 = time.time()
        self.mono0 = time.monotonic()
        self._pid: Optional[int] = None
        self._handle = None
        self._lock = threading.Lock()

    @classmethod
    def for_dir(cls, path) -> "TraceWriter":
        key = str(Path(path))
        with cls._registry_lock:
            writer = cls._registry.get(key)
            if writer is None:
                writer = cls(key)
                cls._registry[key] = writer
            return writer

    def anchored(self, mono: float) -> float:
        """Render a monotonic reading as a wall-anchored timestamp."""
        return self.wall0 + (mono - self.mono0)

    def _ensure_handle(self):
        pid = os.getpid()
        if pid != self._pid:
            if self._handle is not None:
                try:
                    self._handle.close()
                except Exception:  # pragma: no cover - inherited fd races
                    pass
            self._handle = (self.path / f"trace-{pid}.jsonl").open("a")
            self._pid = pid
        return self._handle

    def write(self, record: Dict) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            handle = self._ensure_handle()
            handle.write(line + "\n")
            handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                finally:
                    self._handle = None
                    self._pid = None


@dataclass(frozen=True)
class TraceSpec:
    """The picklable recipe a worker rebuilds its recorder from.

    Exactly like :class:`~repro.parallel.spec.PlanSpec` never ships a
    compiled plan, a run never ships a recorder: the spec carries the trace
    directory, the trace id, and the parent (run-) span id, and the worker
    side memoizes one recorder per ``(path, trace_id)`` per process.
    """

    path: str
    trace_id: str
    parent: Optional[str] = None

    def recorder(self) -> "TraceRecorder":
        from repro.obs.runtime import recorder_for_spec  # avoid import cycle

        return recorder_for_spec(self)


class Span:
    """One open span; written as a single record when it ends."""

    __slots__ = ("name", "span_id", "parent_id", "attrs", "status", "start_mono", "_recorder")

    def __init__(self, recorder, name, span_id, parent_id, attrs):
        self._recorder = recorder
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = dict(attrs) if attrs else {}
        self.status = "ok"
        self.start_mono = time.monotonic()

    def set(self, key: str, value) -> None:
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", repr(exc))
        self._recorder._end_span(self)


class _NullSpan:
    """The shared no-op span of the disabled path."""

    __slots__ = ()
    span_id = None
    parent_id = None
    name = None
    status = "ok"

    def set(self, key, value) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The always-on no-op recorder: every call is a constant no-op.

    Instrumentation sites hold a recorder unconditionally and guard any
    non-trivial attribute construction behind ``recorder.enabled`` — with
    this recorder installed (the default), the traced code path costs one
    attribute read per site.
    """

    enabled = False
    path = None
    trace_id = None

    def span(self, name, attrs=None, parent=None) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name, attrs=None, parent=None) -> None:
        pass

    def metrics(self, snapshot) -> None:
        pass

    def spec(self, parent=None) -> None:
        return None

    def current_span_id(self) -> None:
        return None

    def close(self) -> None:
        pass


NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """Record spans, events and metrics snapshots into a trace directory.

    Thread-safe: the span *stack* (which span is "current", for implicit
    parenting) is thread-local, so concurrent campaign cells on separate
    threads nest their spans correctly; the writer serializes record
    appends under its own lock.
    """

    enabled = True

    def __init__(self, path, trace_id: Optional[str] = None):
        self.path = str(Path(path))
        self.trace_id = trace_id if trace_id else os.urandom(6).hex()
        self._writer = TraceWriter.for_dir(self.path)
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- identity ----------------------------------------------------------

    def _new_id(self) -> str:
        return f"{os.getpid():x}-{next(self._ids):x}"

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span_id(self) -> Optional[str]:
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def spec(self, parent: Optional[str] = None) -> TraceSpec:
        """The picklable worker-side handle onto this trace."""
        if parent is None:
            parent = self.current_span_id()
        return TraceSpec(path=self.path, trace_id=self.trace_id, parent=parent)

    # -- recording ---------------------------------------------------------

    def span(self, name: str, attrs=None, parent: Optional[str] = None) -> Span:
        if parent is None:
            parent = self.current_span_id()
        span = Span(self, name, self._new_id(), parent, attrs)
        self._stack().append(span)
        return span

    def _end_span(self, span: Span) -> None:
        stack = self._stack()
        if span in stack:
            # Pop through (tolerates a caller that leaked an inner span).
            while stack and stack.pop() is not span:
                pass
        end = time.monotonic()
        self.write_span(
            span.name,
            start=span.start_mono,
            end=end,
            parent=span.parent_id,
            attrs=span.attrs,
            status=span.status,
            span_id=span.span_id,
        )

    def write_span(
        self,
        name: str,
        start: float,
        end: float,
        parent: Optional[str] = None,
        attrs=None,
        status: str = "ok",
        span_id: Optional[str] = None,
    ) -> None:
        """Write one already-timed span record (monotonic start/end)."""
        self._writer.write(
            {
                "kind": "span",
                "trace": self.trace_id,
                "id": span_id if span_id else self._new_id(),
                "parent": parent,
                "name": name,
                "ts": self._writer.anchored(start),
                "dur": max(0.0, end - start),
                "status": status,
                "attrs": attrs or {},
                "pid": os.getpid(),
                "tid": threading.get_ident(),
            }
        )

    def event(self, name: str, attrs=None, parent: Optional[str] = None) -> None:
        if parent is None:
            parent = self.current_span_id()
        self._writer.write(
            {
                "kind": "event",
                "trace": self.trace_id,
                "id": self._new_id(),
                "parent": parent,
                "name": name,
                "ts": self._writer.anchored(time.monotonic()),
                "attrs": attrs or {},
                "pid": os.getpid(),
                "tid": threading.get_ident(),
            }
        )

    def metrics(self, snapshot) -> None:
        """Write a metrics-registry snapshot record."""
        self._writer.write(
            {
                "kind": "metrics",
                "trace": self.trace_id,
                "ts": self._writer.anchored(time.monotonic()),
                "pid": os.getpid(),
                "metrics": snapshot,
            }
        )

    def close(self) -> None:
        self._writer.close()


class ChunkProgress:
    """Per-chunk spans over the engine's observational ``progress`` seam.

    Wraps the cumulative ``(accepted, trials)`` callback of
    :func:`~repro.engine.montecarlo.estimate_acceptance_fast`: every real
    update closes one *chunk* span covering the interval since the previous
    boundary, carrying both the cumulative counts and the chunk's own
    deltas.  The inner callback (the streaming publish channel) is always
    forwarded unchanged — tracing adds information, never filters it.

    Regressive updates (cumulative trials going backwards — only the chaos
    harness's torn fault produces them) and zero-trial liveness pings are
    forwarded but get no span: a span for a non-chunk would make the trace
    lie about the trial sequence.
    """

    __slots__ = ("_recorder", "_parent", "_inner", "_last", "_prev")

    def __init__(self, recorder, parent: Optional[str], inner=None):
        self._recorder = recorder
        self._parent = parent
        self._inner = inner
        self._last = time.monotonic()
        self._prev = (0, 0)

    def __call__(self, accepted: int, trials: int) -> None:
        now = time.monotonic()
        prev_accepted, prev_trials = self._prev
        if trials >= prev_trials and (accepted, trials) != (0, 0):
            self._recorder.write_span(
                "chunk",
                start=self._last,
                end=now,
                parent=self._parent,
                attrs={
                    "accepted": accepted,
                    "trials": trials,
                    "chunk_accepted": accepted - prev_accepted,
                    "chunk_trials": trials - prev_trials,
                },
            )
            self._prev = (accepted, trials)
            self._last = now
        if self._inner is not None:
            self._inner(accepted, trials)
