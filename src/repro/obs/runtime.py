"""Process-global recorder/metrics state and the ``tracing()`` context.

This is the seam every instrumented layer talks to: ``get_recorder()``
returns the process's active recorder (the :data:`~repro.obs.trace.NULL_RECORDER`
no-op unless a trace is running) and ``get_metrics()`` the process's
:class:`~repro.obs.metrics.MetricsRegistry`.  Both are module-level on
purpose — instrumentation sites must not thread a recorder through seven
layers of call signatures, and the off path must stay a single attribute
read.

Worker processes never see ``set_recorder``: they rebuild recorders from
pickled :class:`~repro.obs.trace.TraceSpec` values via
:func:`recorder_for_spec`, which memoizes per ``(path, trace_id)`` per
process — and short-circuits to the installed global recorder when the
spec describes it, so in-process backends (serial/thread) never open a
second writer onto their own trace file.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Optional, Tuple

from repro.obs.metrics import (
    MetricsFlush,
    MetricsRegistry,
    diff_snapshots,
    snapshot_empty,
)
from repro.obs.trace import NULL_RECORDER, TraceRecorder, TraceSpec

_STATE_LOCK = threading.Lock()
_RECORDER = NULL_RECORDER
_METRICS = MetricsRegistry()
_SPEC_RECORDERS: Dict[Tuple[str, str], TraceRecorder] = {}


def get_recorder():
    """The process's active recorder (the shared no-op when tracing is off)."""
    return _RECORDER


def set_recorder(recorder) -> None:
    """Install ``recorder`` (or the null recorder when ``None``) globally."""
    global _RECORDER
    with _STATE_LOCK:
        _RECORDER = recorder if recorder is not None else NULL_RECORDER


def get_metrics() -> MetricsRegistry:
    """The process's metrics registry."""
    return _METRICS


def reset_metrics() -> None:
    """Zero the registry — pool initializers call this so forked workers
    don't re-flush counts inherited from the parent process."""
    _METRICS.clear()


def record_event(name: str, attrs=None, parent: Optional[str] = None) -> None:
    """Emit an event on the active recorder (no-op when tracing is off)."""
    recorder = _RECORDER
    if recorder.enabled:
        recorder.event(name, attrs, parent)


def recorder_for_spec(spec: TraceSpec):
    """Rebuild (or memo-hit) the recorder a :class:`TraceSpec` describes.

    If the spec points at the recorder already installed in this process
    (the serial/thread backends hand workers the parent's own spec), the
    global recorder is returned directly; otherwise one recorder per
    ``(path, trace_id)`` is built and cached for the process lifetime,
    sharing the per-directory :class:`~repro.obs.trace.TraceWriter`.
    """
    active = _RECORDER
    if active.enabled and active.trace_id == spec.trace_id and active.path == spec.path:
        return active
    key = (spec.path, spec.trace_id)
    with _STATE_LOCK:
        recorder = _SPEC_RECORDERS.get(key)
        if recorder is None:
            recorder = TraceRecorder(spec.path, trace_id=spec.trace_id)
            _SPEC_RECORDERS[key] = recorder
        return recorder


def take_metrics_flush(run_id: int) -> Optional[MetricsFlush]:
    """Drain this process's metrics delta as a queue-ready flush item.

    Returns ``None`` when there is nothing to report, so untraced runs
    put zero extra items on the progress queue.  The payload is the delta
    from the empty snapshot — long-lived zero-valued instruments (cleared
    counters a previous run registered) are pruned, keeping the queue item
    minimal.
    """
    snapshot = diff_snapshots(None, _METRICS.snapshot_and_reset())
    if snapshot_empty(snapshot):
        return None
    return MetricsFlush(run_id=run_id, metrics=snapshot)


@contextmanager
def tracing(path, trace_id: Optional[str] = None):
    """Install a recorder for the duration of a ``with`` block.

    On exit the block's metrics *delta* (counters/histograms accrued while
    the trace was live) is written into the trace as a ``kind="metrics"``
    record, the previous recorder is restored, and the trace file handle
    is closed.  Nesting restores correctly but writes into the same
    process-wide metrics registry.
    """
    recorder = TraceRecorder(path, trace_id=trace_id)
    previous = _RECORDER
    set_recorder(recorder)
    baseline = _METRICS.snapshot()
    try:
        yield recorder
    finally:
        delta = diff_snapshots(baseline, _METRICS.snapshot())
        if not snapshot_empty(delta):
            recorder.metrics(delta)
        set_recorder(previous)
        recorder.close()
