"""Runtime telemetry: trace spans, a metrics registry, and trace readers.

The package splits along the import-cycle boundary:

- :mod:`repro.obs.trace` / :mod:`repro.obs.metrics` — stdlib-only span and
  metric primitives.
- :mod:`repro.obs.runtime` — the process-global recorder/metrics seam every
  instrumented layer calls (``get_recorder()``, ``get_metrics()``,
  ``tracing()``).
- :mod:`repro.obs.reader` / :mod:`repro.obs.cli` — offline trace analysis
  (``python -m repro.obs report|slow|export``); leaf modules, deliberately
  **not** imported here so instrumented code never pays for them.

The obs package never imports ``repro.engine`` or ``repro.parallel`` —
those layers import *us*, which is what keeps instrumentation one-way.
"""

from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    MetricsFlush,
    MetricsRegistry,
    diff_snapshots,
    merge_snapshots,
    snapshot_empty,
)
from repro.obs.runtime import (
    get_metrics,
    get_recorder,
    record_event,
    recorder_for_spec,
    reset_metrics,
    set_recorder,
    take_metrics_flush,
    tracing,
)
from repro.obs.trace import (
    NULL_RECORDER,
    ChunkProgress,
    NullRecorder,
    Span,
    TraceRecorder,
    TraceSpec,
    TraceWriter,
)

__all__ = [
    "DEFAULT_BOUNDS",
    "MetricsFlush",
    "MetricsRegistry",
    "diff_snapshots",
    "merge_snapshots",
    "snapshot_empty",
    "get_metrics",
    "get_recorder",
    "record_event",
    "recorder_for_spec",
    "reset_metrics",
    "set_recorder",
    "take_metrics_flush",
    "tracing",
    "NULL_RECORDER",
    "ChunkProgress",
    "NullRecorder",
    "Span",
    "TraceRecorder",
    "TraceSpec",
    "TraceWriter",
]
