"""A process-safe metrics registry: counters, gauges, fixed-bucket histograms.

Each process owns one registry (``repro.obs.runtime.get_metrics()``);
process safety comes from *merging snapshots*, not shared memory: worker
processes accumulate locally and flush a :class:`MetricsFlush` (a plain
picklable snapshot tagged with the run id) through the executor's existing
progress queue, where the parent-side
:class:`~repro.parallel.progress.ProgressRouter` merges it — per run id,
and into the parent's global registry.  In-process backends skip the
queue entirely: their "workers" already increment the parent registry.

Instruments are *stable objects*: :meth:`MetricsRegistry.clear` and
:meth:`MetricsRegistry.snapshot_and_reset` zero the recorded values but
never drop the instrument, so a caller that cached
``registry.counter("plan_cache.hits")`` keeps a live handle across
flushes.  Counters and histograms reset to zero (flushes carry deltas);
gauges are level values and survive a reset (a flush reports the current
level, merging is last-write-wins).

Snapshots are JSON-friendly dicts — they ride the progress queue, land in
trace files as ``kind="metrics"`` records, and diff/merge with plain
functions (:func:`merge_snapshots`, :func:`diff_snapshots`), which is what
lets ``repro.obs report`` roll up cache and supervision counters without
importing any executor machinery.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (seconds-flavoured; callers pin
#: their own).  The last implicit bucket is +inf.
DEFAULT_BOUNDS: Tuple[float, ...] = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


class Counter:
    """A monotonically increasing integer (within one flush window)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock):
        self._lock = lock
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A level value: last write wins, survives resets."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock):
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """A fixed-bucket histogram: counts per bound plus an overflow bucket."""

    __slots__ = ("_lock", "bounds", "counts", "sum", "count")

    def __init__(self, lock, bounds: Sequence[float]):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a non-empty sorted sequence")
        self._lock = lock
        self.bounds = tuple(float(bound) for bound in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            index = len(self.bounds)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    index = i
                    break
            self.counts[index] += 1
            self.sum += value
            self.count += 1


class MetricsRegistry:
    """Named instruments behind one lock; snapshot/merge value semantics."""

    def __init__(self):
        self._lock = threading.RLock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = Counter(self._lock)
                self._counters[name] = instrument
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = Gauge(self._lock)
                self._gauges[name] = instrument
            return instrument

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = Histogram(self._lock, bounds)
                self._histograms[name] = instrument
            return instrument

    # -- value semantics ---------------------------------------------------

    def snapshot(self) -> Dict:
        """A JSON-friendly copy of every instrument's current value."""
        with self._lock:
            return {
                "counters": {
                    name: counter.value for name, counter in self._counters.items()
                },
                "gauges": {name: gauge.value for name, gauge in self._gauges.items()},
                "histograms": {
                    name: {
                        "bounds": list(hist.bounds),
                        "counts": list(hist.counts),
                        "sum": hist.sum,
                        "count": hist.count,
                    }
                    for name, hist in self._histograms.items()
                },
            }

    def _reset_values(self) -> None:
        for counter in self._counters.values():
            counter.value = 0
        for hist in self._histograms.values():
            hist.counts = [0] * (len(hist.bounds) + 1)
            hist.sum = 0.0
            hist.count = 0

    def snapshot_and_reset(self) -> Dict:
        """Snapshot, then zero counters/histograms (gauges keep their level).

        The flush primitive: consecutive calls partition the counted
        activity, so merging every flush reconstructs the exact totals.
        """
        with self._lock:
            snapshot = self.snapshot()
            self._reset_values()
            return snapshot

    def clear(self) -> None:
        """Zero every instrument (values only — cached handles stay live)."""
        with self._lock:
            self._reset_values()
            for gauge in self._gauges.values():
                gauge.value = 0.0

    def merge(self, snapshot: Optional[Dict]) -> None:
        """Fold a snapshot in: counters/histograms add, gauges overwrite."""
        if not snapshot:
            return
        with self._lock:
            for name, value in (snapshot.get("counters") or {}).items():
                self.counter(name).value += value
            for name, value in (snapshot.get("gauges") or {}).items():
                self.gauge(name).value = value
            for name, data in (snapshot.get("histograms") or {}).items():
                hist = self.histogram(name, data.get("bounds") or DEFAULT_BOUNDS)
                counts = data.get("counts") or []
                if list(hist.bounds) == list(data.get("bounds") or ()) and len(
                    counts
                ) == len(hist.counts):
                    hist.counts = [a + b for a, b in zip(hist.counts, counts)]
                # Mismatched bounds still contribute to the sum/count
                # moments — coarser, never silently dropped.
                hist.sum += data.get("sum", 0.0)
                hist.count += data.get("count", 0)


@dataclass(frozen=True)
class MetricsFlush:
    """One worker's metrics delta, riding the progress queue by run id."""

    run_id: int
    metrics: Dict


def snapshot_empty(snapshot: Optional[Dict]) -> bool:
    """Whether a snapshot carries no information worth flushing."""
    if not snapshot:
        return True
    if any((snapshot.get("counters") or {}).values()):
        return False
    if snapshot.get("gauges"):
        return False
    for data in (snapshot.get("histograms") or {}).values():
        if data.get("count"):
            return False
    return True


def merge_snapshots(base: Optional[Dict], extra: Optional[Dict]) -> Dict:
    """Pure-dict merge of two snapshots (same rules as registry merge)."""
    registry = MetricsRegistry()
    registry.merge(base)
    registry.merge(extra)
    return registry.snapshot()


def diff_snapshots(before: Optional[Dict], after: Optional[Dict]) -> Dict:
    """``after - before`` for counters/histograms; gauges take ``after``.

    Used by the :func:`~repro.obs.runtime.tracing` context to write a
    per-trace metrics record from a process-lifetime registry.
    """
    before = before or {}
    after = after or {}
    counters = {}
    for name, value in (after.get("counters") or {}).items():
        delta = value - (before.get("counters") or {}).get(name, 0)
        if delta:
            counters[name] = delta
    histograms = {}
    for name, data in (after.get("histograms") or {}).items():
        prior = (before.get("histograms") or {}).get(name)
        if prior and list(prior.get("bounds") or ()) == list(data.get("bounds") or ()):
            counts = [
                a - b for a, b in zip(data.get("counts") or [], prior.get("counts") or [])
            ]
            entry = {
                "bounds": list(data.get("bounds") or ()),
                "counts": counts,
                "sum": data.get("sum", 0.0) - prior.get("sum", 0.0),
                "count": data.get("count", 0) - prior.get("count", 0),
            }
        else:
            entry = dict(data)
        if entry.get("count"):
            histograms[name] = entry
    return {
        "counters": counters,
        "gauges": dict(after.get("gauges") or {}),
        "histograms": histograms,
    }
