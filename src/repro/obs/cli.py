"""``python -m repro.obs`` — read traces back: report, slow spans, export.

Subcommands:

- ``report <dir>`` — per-run rollup (attempts, retries, timeouts,
  quarantines, injected faults, chunk timing) plus merged metrics.
- ``slow <dir> [--top K] [--name N]`` — the K longest spans.
- ``export <dir> --chrome [-o out.json]`` — Chrome trace-event JSON for
  ``about://tracing`` / Perfetto.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.reader import load_trace, slowest_spans, summarize_runs, to_chrome_trace


def _cmd_report(ns) -> int:
    trace = load_trace(ns.trace_dir)
    print(
        f"trace: {ns.trace_dir}  files={trace.files}  records={len(trace.records)}"
        f"  torn_lines={trace.torn_lines}"
    )
    runs = summarize_runs(trace)
    if not runs:
        print("no run spans recorded")
    for run in runs:
        faults = (
            " faults=" + ",".join(f"{k}:{v}" for k, v in sorted(run["faults"].items()))
            if run["faults"]
            else ""
        )
        print(
            f"run {run['label']}: status={run['status']}"
            f" dur={run['duration_sec']:.3f}s shards={run['shards']}"
            f" trials={run['trials']} accepted={run['accepted']}"
        )
        print(
            f"  attempts={run['dispatches']} retries={run['retries']}"
            f" timeouts={run['timeouts']} heartbeat_misses={run['heartbeat_misses']}"
            f" quarantined={run['quarantined']} pool_repairs={run['pool_repairs']}"
            f"{faults}"
        )
        if ns.attempts:
            for attempt in run["attempts"]:
                print(f"    shard {attempt['shard']} attempt {attempt['attempt']}")
            for failure in run["failures"]:
                print(
                    f"    failure shard {failure['shard']}"
                    f" attempt {failure['attempt']} kind={failure['kind']}"
                )
        if run["chunks"]:
            print(
                f"  chunks={run['chunks']} chunk_trials={run['chunk_trials']}"
                f" chunk_time={run['chunk_time_sec']:.3f}s"
            )
    merged = trace.merged_metrics()
    counters = merged.get("counters") or {}
    if counters:
        print("metrics:")
        for name in sorted(counters):
            print(f"  {name} = {counters[name]}")
    for name, data in sorted((merged.get("histograms") or {}).items()):
        count = data.get("count", 0)
        if count:
            mean = data.get("sum", 0.0) / count
            print(f"  {name}: count={count} mean={mean:.4f}s")
    return 0


def _cmd_slow(ns) -> int:
    trace = load_trace(ns.trace_dir)
    spans = slowest_spans(trace, top=ns.top, name=ns.name)
    if not spans:
        print("no spans recorded")
        return 0
    for span in spans:
        print(
            f"{span.get('dur', 0.0):>9.4f}s  {span.get('name', '?'):<12}"
            f" id={span.get('id')} status={span.get('status', 'ok')}"
            f" pid={span.get('pid')}"
        )
    return 0


def _cmd_export(ns) -> int:
    trace = load_trace(ns.trace_dir)
    if not ns.chrome:
        print("export: specify a format (--chrome)", file=sys.stderr)
        return 2
    payload = json.dumps(to_chrome_trace(trace), sort_keys=True)
    if ns.out:
        with open(ns.out, "w") as handle:
            handle.write(payload + "\n")
        print(f"wrote {ns.out}")
    else:
        print(payload)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description="Trace reader for --trace output"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="per-run latency/retry/fault rollup")
    report.add_argument("trace_dir", help="trace directory (from --trace DIR)")
    report.add_argument(
        "--attempts", action="store_true", help="list every shard attempt and failure"
    )
    report.set_defaults(func=_cmd_report)

    slow = sub.add_parser("slow", help="top-k slowest spans")
    slow.add_argument("trace_dir")
    slow.add_argument("--top", type=int, default=10)
    slow.add_argument("--name", default=None, help="restrict to spans named N")
    slow.set_defaults(func=_cmd_slow)

    export = sub.add_parser("export", help="export the trace for external viewers")
    export.add_argument("trace_dir")
    export.add_argument(
        "--chrome", action="store_true", help="Chrome trace-event JSON (about://tracing)"
    )
    export.add_argument("-o", "--out", default=None, help="output path (default stdout)")
    export.set_defaults(func=_cmd_export)
    return parser


def main(argv=None) -> int:
    ns = build_parser().parse_args(argv)
    try:
        return ns.func(ns)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
