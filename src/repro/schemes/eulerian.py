"""Eulerian-circuit feasibility — the zero-bit proof-labeling scheme.

A connected graph admits an Eulerian circuit iff every node has even degree
(Euler's theorem).  Degree parity is a function of the node's *own* local
input, so over the family ``Fcon`` of connected configurations this
predicate is verifiable with **empty labels**: verification complexity 0,
the absolute floor of the hierarchy.

The scheme earns its keep in the test and benchmark suites as an edge case:
``kappa = 0`` exercises the Theorem 3.1 compiler, the universal scheme, and
the bit-accounting machinery at their degenerate boundary (fingerprinting a
zero-length replica, ``log kappa`` of zero, empty-certificate exchange).
"""

from __future__ import annotations

from typing import Dict

from repro.core.bitstrings import BitString
from repro.core.configuration import Configuration
from repro.core.predicate import Predicate
from repro.core.scheme import ProofLabelingScheme, VerifierView
from repro.graphs.port_graph import Node


class EulerianPredicate(Predicate):
    """Every node has even degree (Eulerian circuit over ``Fcon``)."""

    name = "eulerian"

    def holds(self, configuration: Configuration) -> bool:
        graph = configuration.graph
        return all(graph.degree(node) % 2 == 0 for node in graph.nodes)


class EulerianPLS(ProofLabelingScheme):
    """Empty labels; each node checks its own degree parity."""

    name = "eulerian-pls"

    def __init__(self) -> None:
        super().__init__(EulerianPredicate())

    def prover(self, configuration: Configuration) -> Dict[Node, BitString]:
        return {node: BitString.empty() for node in configuration.graph.nodes}

    def verify_at(self, view: VerifierView) -> bool:
        if view.own_label.length != 0:
            return False
        if any(message.length != 0 for message in view.messages):
            return False
        return view.degree % 2 == 0
