"""Maximal-independent-set certification — a locally checkable output.

The configuration's output is a boolean ``in_mis`` state field.  The
predicate asks that the marked set is an *independent set* (no two adjacent
marked nodes) that is *maximal* (every unmarked node has a marked neighbor).

MIS is the textbook example of a **locally checkable labeling**: both
conditions only mention a node and its direct neighbors.  The PLS therefore
needs just one bit — the label republishes the node's own ``in_mis`` bit so
neighbors can read it (the model exchanges labels, not states), and the
verifier checks the label against the state and the two conditions.  This is
the floor of the complexity landscape the benchmarks sweep: verification
complexity 1, independent of ``n``, against which the Theta(log n) and
Theta(log log n) schemes are contrasted.

Soundness needs the label-equals-state check: without it a marked node could
advertise "unmarked" to hide a conflict.  With it, any accepted run's labels
*are* the real marks, and both MIS conditions are evaluated on the truth.
"""

from __future__ import annotations

from typing import Dict

from repro.core.bitstrings import BitString
from repro.core.configuration import Configuration
from repro.core.predicate import Predicate
from repro.core.scheme import ProofLabelingScheme, VerifierView
from repro.graphs.port_graph import Node


class MISPredicate(Predicate):
    """The ``in_mis`` marks form a maximal independent set."""

    name = "maximal-independent-set"

    def holds(self, configuration: Configuration) -> bool:
        graph = configuration.graph
        marked = {
            node
            for node in graph.nodes
            if configuration.state(node).get("in_mis")
        }
        for u, _pu, v, _pv in graph.edges():
            if u in marked and v in marked:
                return False  # not independent
        for node in graph.nodes:
            if node in marked:
                continue
            if not any(neighbor in marked for neighbor in graph.neighbors(node)):
                return False  # not maximal
        return True


class MISPLS(ProofLabelingScheme):
    """One-bit labels republishing ``in_mis``; verification complexity 1."""

    name = "mis-pls"

    def __init__(self) -> None:
        super().__init__(MISPredicate())

    def prover(self, configuration: Configuration) -> Dict[Node, BitString]:
        return {
            node: BitString.from_int(
                1 if configuration.state(node).get("in_mis") else 0, 1
            )
            for node in configuration.graph.nodes
        }

    def verify_at(self, view: VerifierView) -> bool:
        if view.own_label.length != 1:
            return False
        in_mis = bool(view.own_label.value)
        if in_mis != bool(view.state.get("in_mis")):
            return False
        if any(message.length != 1 for message in view.messages):
            return False
        marked_neighbors = sum(message.value for message in view.messages)
        if in_mis:
            return marked_neighbors == 0
        return marked_neighbors >= 1
