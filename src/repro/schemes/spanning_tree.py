"""The introduction's spanning-tree scheme.

The configuration's output is a parent pointer per node (``parent_port``
state field; ``None`` at the claimed root).  As observed since [7, 23], the
certificate that the pointers form a spanning tree is the pair

    l(v) = (id(r), d(v))

— the root's identity and the node's tree distance to it.  Verification at
``v``: all neighbors agree on ``id(r)``; if ``v`` is the root
(``parent_port = None``) then ``d(v) = 0`` and ``id(r) = Id(v)``; otherwise
``d(p(v)) = d(v) - 1``.

Soundness: distances strictly decrease along parent pointers, so every
pointer chain reaches a node with ``d = 0``; such a node proves
``id(r) = Id(v)``, identities are unique, and all nodes agree on ``id(r)`` —
hence there is exactly one root and no pointer cycle, i.e. the 1-factor is a
spanning tree.  No forged labels can beat this, which is the Theta(log n)
upper bound the paper's introduction quotes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.bitstrings import BitReader, BitString, BitWriter
from repro.core.configuration import Configuration
from repro.core.predicate import Predicate
from repro.core.scheme import ProofLabelingScheme, VerifierView
from repro.graphs.port_graph import Node
from repro.substrates.union_find import UnionFind


class SpanningTreePredicate(Predicate):
    """True iff the ``parent_port`` pointers form a spanning tree.

    Exactly one node is a root (``parent_port is None``); the parent edges,
    viewed undirected, connect all nodes without a cycle.
    """

    name = "spanning-tree"

    def holds(self, configuration: Configuration) -> bool:
        graph = configuration.graph
        roots = [
            node
            for node in graph.nodes
            if configuration.state(node).get("parent_port") is None
        ]
        if len(roots) != 1:
            return False
        forest = UnionFind(graph.nodes)
        for node in graph.nodes:
            port = configuration.state(node).get("parent_port")
            if port is None:
                continue
            if not 0 <= port < graph.degree(node):
                return False
            parent = graph.neighbor(node, port)
            if not forest.union(node, parent):
                return False  # a merge that fails closes a cycle
        return forest.component_count() == 1


def _pack(root_id: int, distance: int) -> BitString:
    writer = BitWriter()
    writer.write_varuint(root_id)
    writer.write_varuint(distance)
    return writer.finish()


def _unpack(label: BitString) -> tuple:
    reader = BitReader(label)
    root_id = reader.read_varuint()
    distance = reader.read_varuint()
    reader.expect_exhausted()
    return root_id, distance


class SpanningTreePLS(ProofLabelingScheme):
    """``l(v) = (id(root), dist(v))`` — the classic Theta(log n) scheme."""

    name = "spanning-tree-pls"

    def __init__(self) -> None:
        super().__init__(SpanningTreePredicate())

    def prover(self, configuration: Configuration) -> Dict[Node, BitString]:
        graph = configuration.graph
        root: Optional[Node] = None
        for node in graph.nodes:
            if configuration.state(node).get("parent_port") is None:
                root = node
        if root is None:
            raise ValueError("configuration claims no root")
        distances: Dict[Node, int] = {}

        def distance(node: Node) -> int:
            chain = []
            current = node
            while current not in distances:
                port = configuration.state(current).get("parent_port")
                if port is None:
                    distances[current] = 0
                    break
                chain.append(current)
                current = graph.neighbor(current, port)
                if len(chain) > graph.node_count:
                    raise ValueError("parent pointers contain a cycle")
            for member in reversed(chain):
                port = configuration.state(member).get("parent_port")
                distances[member] = distances[graph.neighbor(member, port)] + 1
            return distances[node]

        root_id = configuration.node_id(root)
        return {
            node: _pack(root_id, distance(node)) for node in graph.nodes
        }

    def verify_at(self, view: VerifierView) -> bool:
        root_id, dist = _unpack(view.own_label)
        neighbor_labels = [_unpack(message) for message in view.messages]
        for neighbor_root, _neighbor_dist in neighbor_labels:
            if neighbor_root != root_id:
                return False
        parent_port = view.state.get("parent_port")
        if parent_port is None:
            return dist == 0 and root_id == view.state.node_id
        if not 0 <= parent_port < view.degree:
            return False
        _parent_root, parent_dist = neighbor_labels[parent_port]
        return parent_dist == dist - 1
