"""Concrete proof-labeling schemes for the paper's predicates.

Every deterministic scheme here is paired with its compiled RPLS (Theorem
3.1), and every RPLS in this package is **one-sided** and
**edge-independent** — matching the paper's remark that all of its Section 5
upper bounds have both properties.

==========================  ===============================  =========================
module                      predicate                        bounds reproduced
==========================  ===============================  =========================
coloring                    proper c-coloring                intro warm-up, O(log c)
spanning_tree               "is a spanning tree"             intro, Theta(log n)
acyclicity                  graph is a forest                [31], Theta(log n) /
                                                             Theta(log log n) (Thm 5.1 lb)
mst                         marked tree is the MST           Thm 5.1: O(log^2 n) /
                                                             Theta(log log n)
biconnectivity              vertex biconnectivity            Thm 5.2: Theta(log n) /
                                                             Theta(log log n)
cycle_length                cycle-at-least-c / at-most-c     Thms 5.3-5.6
flow                        s-t max flow equals k            Sect 5.2: O(k log n) /
                                                             O(log k + log log n)
symmetry                    Sym (Figures 3-4)                Thm 3.5 lower bound
uniformity                  Unif (all payloads equal)        Lemma C.3, direct O(log k)
==========================  ===============================  =========================

Extension schemes beyond the paper's own list (same machinery, used to map
out the complexity landscape the benchmarks sweep):

==========================  ===============================  =========================
module                      predicate                        verification complexity
==========================  ===============================  =========================
eulerian                    all degrees even                 0 bits (the floor)
mis                         marked set is a maximal IS       1 bit (republished output)
bipartiteness               graph is 2-colorable             1 bit (planted witness)
distance                    dist fields are the SSSP metric  Theta(log n) / O(log log n)
leader                      agreed leader exists             Theta(log n) / O(log log n)
hamiltonicity               cycle-at-least-n                 O(log n) / O(log log n)
==========================  ===============================  =========================

Every scheme in both tables is registered as a ``VerdictSpec`` in
:mod:`repro.engine.specs` (kernel family fingerprint / parity /
threshold), which puts it on the batched engine's fast path and into the
registry-generated differential identity matrix
(``tests/test_verdict_specs.py``) pinning its per-trial decisions to the
one-shot reference oracle.
"""

from repro.schemes.coloring import ColoringPLS, ProperColoringPredicate
from repro.schemes.spanning_tree import SpanningTreePLS, SpanningTreePredicate
from repro.schemes.acyclicity import AcyclicityPLS, AcyclicityPredicate
from repro.schemes.uniformity import DirectUnifRPLS, UnifPLS, UnifPredicate
from repro.schemes.bipartiteness import (
    BipartitenessPLS,
    BipartitenessPredicate,
    bipartiteness_rpls,
)
from repro.schemes.distance import DistancePLS, DistancePredicate, distance_rpls
from repro.schemes.eulerian import EulerianPLS, EulerianPredicate
from repro.schemes.hamiltonicity import (
    HamiltonicityPLS,
    HamiltonicityPredicate,
    hamiltonicity_rpls,
)
from repro.schemes.leader import (
    LeaderAgreementPLS,
    LeaderAgreementPredicate,
    leader_rpls,
)
from repro.schemes.mis import MISPLS, MISPredicate

__all__ = [
    "AcyclicityPLS",
    "AcyclicityPredicate",
    "BipartitenessPLS",
    "BipartitenessPredicate",
    "ColoringPLS",
    "DirectUnifRPLS",
    "DistancePLS",
    "DistancePredicate",
    "EulerianPLS",
    "EulerianPredicate",
    "HamiltonicityPLS",
    "HamiltonicityPredicate",
    "LeaderAgreementPLS",
    "LeaderAgreementPredicate",
    "MISPLS",
    "MISPredicate",
    "ProperColoringPredicate",
    "SpanningTreePLS",
    "SpanningTreePredicate",
    "UnifPLS",
    "UnifPredicate",
    "bipartiteness_rpls",
    "distance_rpls",
    "hamiltonicity_rpls",
    "leader_rpls",
]
