"""Bipartiteness — a constant-size proof-labeling scheme.

``Bip``: the graph is 2-colorable.  The witness is a proper 2-coloring, so a
*single bit* per node certifies the predicate: ``l(v)`` is ``v``'s side, and
the verifier rejects iff some neighbor shows the same side.  Verification
complexity is exactly 1 bit — a useful extreme point in the benchmark
tables: the Theorem 3.1 compiler *cannot* help here (``O(log kappa)`` of a
constant is a constant, and the compiler's field-element framing makes the
randomized certificates strictly larger, as benchmark E1 shows for
coloring).

This is the ``c = 2`` case of proper coloring, but with the color planted by
the prover rather than read from the state: the predicate is a property of
the *graph*, not of a claimed output, so the prover runs the BFS parity
algorithm itself (:func:`repro.substrates.bfs.is_bipartite`).

Soundness is information-theoretic: any label assignment is *some* 0/1
side assignment, and if the graph has an odd cycle, every 0/1 assignment
makes two adjacent nodes on that cycle agree — some verifier rejects.
"""

from __future__ import annotations

from typing import Dict

from repro.core.bitstrings import BitString
from repro.core.compiler import FingerprintCompiledRPLS
from repro.core.configuration import Configuration
from repro.core.predicate import Predicate
from repro.core.scheme import ProofLabelingScheme, VerifierView
from repro.graphs.port_graph import Node
from repro.substrates.bfs import is_bipartite


class BipartitenessPredicate(Predicate):
    """True iff the graph is 2-colorable (no odd cycle)."""

    name = "bipartite"

    def holds(self, configuration: Configuration) -> bool:
        bipartite, _sides = is_bipartite(configuration.graph)
        return bipartite


class BipartitenessPLS(ProofLabelingScheme):
    """One-bit labels: ``l(v)`` is the side of ``v`` in a 2-coloring."""

    name = "bipartite-pls"

    def __init__(self) -> None:
        super().__init__(BipartitenessPredicate())

    def prover(self, configuration: Configuration) -> Dict[Node, BitString]:
        bipartite, sides = is_bipartite(configuration.graph)
        if not bipartite:
            raise ValueError("graph is not bipartite")
        return {
            node: BitString.from_int(sides[node], 1)
            for node in configuration.graph.nodes
        }

    def verify_at(self, view: VerifierView) -> bool:
        if view.own_label.length != 1:
            return False
        side = view.own_label.value
        return all(message.length == 1 and message.value != side for message in view.messages)


def bipartiteness_rpls(repetitions: int = 1) -> FingerprintCompiledRPLS:
    """The compiled RPLS — deliberately *larger* than the 1-bit PLS.

    Kept for the benchmark tables: it demonstrates the regime where
    Theorem 3.1's exponential compression buys nothing because ``kappa`` is
    already constant.
    """
    return FingerprintCompiledRPLS(BipartitenessPLS(), repetitions=repetitions)
