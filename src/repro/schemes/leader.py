"""Leader-agreement certification.

A classic target for distributed verification (and the canonical example of
an output that is *not* locally checkable): every node holds a ``leader``
state field naming the id of the elected leader, and the predicate asks that

1. all nodes name the *same* leader, and
2. the named leader actually exists — some node ``v`` has
   ``Id(v) = leader``.

Agreement alone is locally checkable by comparing with neighbors, but
existence is not: a network where everyone names a phantom id is locally
indistinguishable from a legal one.  The standard ``Theta(log n)`` PLS roots
a spanning tree at the leader: ``l(v) = (leader_id, dist(v))`` where ``dist``
is the hop distance to the leader.  Verification at ``v``:

- all neighbors carry the same ``leader_id``, which equals the state's
  ``leader`` claim;
- ``dist(v) = 0`` iff ``Id(v) = leader_id`` (the leader is where the
  distances bottom out);
- ``dist(v) > 0`` requires a neighbor with ``dist(v) - 1`` (progress: every
  node has a descending path, so a ``dist = 0`` node — the leader — exists).

The Theorem 3.1 compiler yields an ``O(log log n)``-bit RPLS
(:func:`leader_rpls`).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.bitstrings import BitReader, BitString, BitWriter
from repro.core.compiler import FingerprintCompiledRPLS
from repro.core.configuration import Configuration
from repro.core.predicate import Predicate
from repro.core.scheme import ProofLabelingScheme, VerifierView
from repro.graphs.port_graph import Node
from repro.substrates.bfs import bfs_layers


class LeaderAgreementPredicate(Predicate):
    """All nodes agree on ``leader``, and a node with that id exists."""

    name = "leader-agreement"

    def holds(self, configuration: Configuration) -> bool:
        claims = {
            configuration.state(node).get("leader")
            for node in configuration.graph.nodes
        }
        if len(claims) != 1:
            return False
        (leader_id,) = claims
        if leader_id is None:
            return False
        return any(
            configuration.node_id(node) == leader_id
            for node in configuration.graph.nodes
        )


def _pack(leader_id: int, dist: int) -> BitString:
    writer = BitWriter()
    writer.write_varuint(leader_id)
    writer.write_varuint(dist)
    return writer.finish()


def _unpack(label: BitString) -> tuple:
    reader = BitReader(label)
    leader_id = reader.read_varuint()
    dist = reader.read_varuint()
    reader.expect_exhausted()
    return leader_id, dist


class LeaderAgreementPLS(ProofLabelingScheme):
    """``l(v) = (leader_id, dist-to-leader)`` — Theta(log n)."""

    name = "leader-agreement-pls"

    def __init__(self) -> None:
        super().__init__(LeaderAgreementPredicate())

    def prover(self, configuration: Configuration) -> Dict[Node, BitString]:
        graph = configuration.graph
        leader: Optional[Node] = None
        claimed = configuration.state(graph.nodes[0]).get("leader")
        for node in graph.nodes:
            if configuration.node_id(node) == claimed:
                leader = node
        if leader is None:
            raise ValueError(f"no node has the claimed leader id {claimed!r}")
        tree = bfs_layers(graph, leader)
        if len(tree.dist) != graph.node_count:
            raise ValueError("graph must be connected")
        return {
            node: _pack(claimed, tree.dist[node]) for node in graph.nodes
        }

    def verify_at(self, view: VerifierView) -> bool:
        leader_id, dist = _unpack(view.own_label)
        if view.state.get("leader") != leader_id:
            return False
        neighbor_labels = [_unpack(message) for message in view.messages]
        for neighbor_leader, _ in neighbor_labels:
            if neighbor_leader != leader_id:
                return False
        if (view.state.node_id == leader_id) != (dist == 0):
            return False
        if dist > 0:
            if not any(neighbor_dist == dist - 1 for _, neighbor_dist in neighbor_labels):
                return False
        return True


def leader_rpls(repetitions: int = 1) -> FingerprintCompiledRPLS:
    """The compiled ``O(log log n)``-bit randomized scheme (Theorem 3.1)."""
    return FingerprintCompiledRPLS(LeaderAgreementPLS(), repetitions=repetitions)
