"""Hamiltonicity — the extreme point of cycle-at-least-c.

Section 5.3 defines Hamiltonian graphs (a simple cycle visiting every node)
and builds ``cycle-at-least-c`` around them; Hamiltonicity is exactly
``cycle-at-least-n``.  This module specializes the Theorem 5.3 machinery:

- :class:`HamiltonicityPredicate` — ``cycle-at-least-n`` with ``c`` bound to
  the instance size at evaluation time (the predicate family is indexed by
  the configuration, not a fixed constant);
- :class:`HamiltonicityPLS` — the witness-marking scheme with a
  simplification Hamiltonicity allows: *every* node is on the cycle, so the
  ``dist`` field collapses and labels are a bare position index,
  ``O(log n)`` bits;
- :func:`hamiltonicity_rpls` — the compiled ``O(log log n)`` RPLS.

Finding the witness is NP-hard, so provers expect a planted cycle
(:func:`repro.graphs.generators.hamiltonian_configuration` supplies one) and
fall back to exact search on small graphs — the prover is an oracle in the
model (see DESIGN.md, Substitutions).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.bitstrings import BitReader, BitString, BitWriter
from repro.core.compiler import FingerprintCompiledRPLS
from repro.core.configuration import Configuration
from repro.core.predicate import Predicate
from repro.core.scheme import ProofLabelingScheme, VerifierView
from repro.graphs.port_graph import Node
from repro.substrates.cycles import find_cycle_at_least


class HamiltonicityPredicate(Predicate):
    """Some simple cycle visits all ``n`` nodes."""

    name = "hamiltonian"

    def __init__(self, step_budget: int = 2_000_000):
        self.step_budget = step_budget

    def holds(self, configuration: Configuration) -> bool:
        n = configuration.node_count
        if n < 3:
            return False
        cycle = find_cycle_at_least(configuration.graph, n, self.step_budget)
        return cycle is not None


def _pack(index: int) -> BitString:
    writer = BitWriter()
    writer.write_varuint(index)
    return writer.finish()


def _unpack(label: BitString) -> int:
    reader = BitReader(label)
    index = reader.read_varuint()
    reader.expect_exhausted()
    return index


class HamiltonicityPLS(ProofLabelingScheme):
    """``l(v) = position of v on the witness cycle`` — ``O(log n)`` bits.

    Verification at ``v`` with index ``i``: exactly two neighbors carry the
    cyclically adjacent indices ``i - 1`` and ``i + 1`` (indices mod the
    *family-known* ``n``).  Soundness: following successor indices walks
    ``0, 1, 2, ...`` and can only close consistently after all ``n``
    distinct indices appear — a cycle through every node.
    """

    name = "hamiltonian-pls"

    def __init__(self, witness: Optional[Sequence[Node]] = None):
        super().__init__(HamiltonicityPredicate())
        self.witness = list(witness) if witness is not None else None

    def _find_cycle(self, configuration: Configuration) -> List[Node]:
        if self.witness is not None:
            return self.witness
        cycle = find_cycle_at_least(configuration.graph, configuration.node_count)
        if cycle is None:
            raise ValueError("configuration is not Hamiltonian")
        return cycle

    def prover(self, configuration: Configuration) -> Dict[Node, BitString]:
        graph = configuration.graph
        cycle = self._find_cycle(configuration)
        if len(cycle) != graph.node_count or len(set(cycle)) != len(cycle):
            raise ValueError("witness must visit every node exactly once")
        for position, node in enumerate(cycle):
            successor = cycle[(position + 1) % len(cycle)]
            if not graph.has_edge(node, successor):
                raise ValueError("witness cycle uses a non-edge")
        return {node: _pack(position) for position, node in enumerate(cycle)}

    def verify_at(self, view: VerifierView) -> bool:
        n = view.params.node_count
        index = _unpack(view.own_label)
        if not 0 <= index < n:
            return False
        neighbor_indices = [_unpack(message) for message in view.messages]
        successor = (index + 1) % n
        predecessor = (index - 1) % n
        return successor in neighbor_indices and predecessor in neighbor_indices


def hamiltonicity_rpls(
    witness: Optional[Sequence[Node]] = None, repetitions: int = 1
) -> FingerprintCompiledRPLS:
    """The compiled ``O(log log n)``-bit randomized scheme."""
    return FingerprintCompiledRPLS(HamiltonicityPLS(witness=witness), repetitions=repetitions)
