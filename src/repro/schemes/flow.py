"""The k-flow scheme — Section 5.2's closing remark.

Predicate: the maximum ``s``–``t`` flow of the (unit-capacity, simple,
undirected) graph equals ``k``.  [31] gives an ``O(k log n)``-bit PLS;
Theorem 3.1 then yields an ``O(log k + log log n)``-bit RPLS, which this
module reproduces.

The label of ``v`` certifies two facts at once:

- **feasibility** (``maxflow >= k``): ``k`` edge-disjoint simple paths.
  ``v`` stores one entry per path through it: ``(path_id, prev_id, next_id,
  position)`` with identities of the neighboring path hops.  Entries chain —
  a hop's successor must acknowledge it with ``position + 1`` — so accepted
  labelings contain ``k`` genuinely disjoint source→target paths (positions
  strictly increase, so chains cannot loop; edge-disjointness is the
  distinctness of the neighbor identities used across a node's entries).
  A node lies on at most ``min(deg/2, k)`` paths, so labels are
  ``O(k log n)`` bits.
- **maximality** (``maxflow <= k``): a one-bit ``reachable`` flag marking a
  superset of the nodes reachable from ``s`` in the residual graph of the
  claimed flow.  The flag must propagate along residual arcs (which ``v``
  derives from its own entries), ``s`` must be flagged and ``t`` must not —
  so no augmenting path exists.  If the true max flow exceeded ``k``, an
  augmenting path would force the flag all the way to ``t`` and some node
  would reject.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from repro.core.bitstrings import BitReader, BitString, BitWriter
from repro.core.configuration import Configuration
from repro.core.predicate import Predicate
from repro.core.scheme import ProofLabelingScheme, VerifierView
from repro.graphs.port_graph import Node
from repro.substrates.flow import (
    edge_disjoint_paths,
    max_flow,
    net_unit_flow,
    residual_reachable,
    unit_capacity_arcs,
)


def _terminals(configuration: Configuration) -> Tuple[Node, Node, int]:
    source = sink = None
    k = None
    for node in configuration.graph.nodes:
        state = configuration.state(node)
        if state.get("source"):
            source = node
        if state.get("target"):
            sink = node
        if state.get("k") is not None:
            k = state.get("k")
    if source is None or sink is None or k is None:
        raise ValueError("flow configurations need 'source', 'target' and 'k' fields")
    return source, sink, k


class KFlowPredicate(Predicate):
    """True iff the unit-capacity max ``s``–``t`` flow equals ``k``."""

    name = "k-flow"

    def holds(self, configuration: Configuration) -> bool:
        source, sink, k = _terminals(configuration)
        value, _flow = max_flow(
            unit_capacity_arcs(configuration.graph), source, sink
        )
        return value == k


@dataclasses.dataclass
class _PathEntry:
    path_id: int
    prev_id: Optional[int]
    next_id: Optional[int]
    position: int


@dataclasses.dataclass
class _FlowLabel:
    node_id: int
    reachable: bool
    entries: List[_PathEntry]


def _pack(label: _FlowLabel) -> BitString:
    writer = BitWriter()
    writer.write_varuint(label.node_id)
    writer.write_flag(label.reachable)
    writer.write_varuint(len(label.entries))
    for entry in label.entries:
        writer.write_varuint(entry.path_id)
        writer.write_flag(entry.prev_id is not None)
        if entry.prev_id is not None:
            writer.write_varuint(entry.prev_id)
        writer.write_flag(entry.next_id is not None)
        if entry.next_id is not None:
            writer.write_varuint(entry.next_id)
        writer.write_varuint(entry.position)
    return writer.finish()


def _unpack(label: BitString) -> _FlowLabel:
    reader = BitReader(label)
    node_id = reader.read_varuint()
    reachable = reader.read_flag()
    count = reader.read_varuint()
    if count > 4096:
        raise ValueError("implausible path-entry count")
    entries = []
    for _ in range(count):
        path_id = reader.read_varuint()
        prev_id = reader.read_varuint() if reader.read_flag() else None
        next_id = reader.read_varuint() if reader.read_flag() else None
        position = reader.read_varuint()
        entries.append(_PathEntry(path_id, prev_id, next_id, position))
    reader.expect_exhausted()
    return _FlowLabel(node_id=node_id, reachable=reachable, entries=entries)


class KFlowPLS(ProofLabelingScheme):
    """The ``O(k log n)`` k-flow scheme (disjoint paths + residual flags)."""

    name = "k-flow-pls"

    def __init__(self) -> None:
        super().__init__(KFlowPredicate())

    def prover(self, configuration: Configuration) -> Dict[Node, BitString]:
        graph = configuration.graph
        source, sink, _k = _terminals(configuration)
        paths = edge_disjoint_paths(graph, source, sink)
        value, flow = max_flow(unit_capacity_arcs(graph), source, sink)
        reachable = set(
            residual_reachable(graph, net_unit_flow(graph, flow), source)
        )

        entries: Dict[Node, List[_PathEntry]] = {node: [] for node in graph.nodes}
        for path_id, path in enumerate(paths):
            for position, node in enumerate(path):
                prev_node = path[position - 1] if position > 0 else None
                next_node = path[position + 1] if position + 1 < len(path) else None
                entries[node].append(
                    _PathEntry(
                        path_id=path_id,
                        prev_id=None
                        if prev_node is None
                        else configuration.node_id(prev_node),
                        next_id=None
                        if next_node is None
                        else configuration.node_id(next_node),
                        position=position,
                    )
                )
        return {
            node: _pack(
                _FlowLabel(
                    node_id=configuration.node_id(node),
                    reachable=node in reachable,
                    entries=entries[node],
                )
            )
            for node in graph.nodes
        }

    def verify_at(self, view: VerifierView) -> bool:
        mine = _unpack(view.own_label)
        neighbors = [_unpack(message) for message in view.messages]
        if mine.node_id != view.state.node_id:
            return False
        is_source = bool(view.state.get("source"))
        is_sink = bool(view.state.get("target"))
        k = view.state.get("k")

        # Locate neighbors by identity (identities are authenticated at the
        # neighbor by the same check above).
        port_of_id: Dict[int, int] = {}
        for port, nb in enumerate(neighbors):
            if nb.node_id in port_of_id:
                return False  # simple graphs cannot see one id on two ports
            port_of_id[nb.node_id] = port

        # --- path entries: local shape ------------------------------------
        path_ids = [entry.path_id for entry in mine.entries]
        if len(set(path_ids)) != len(path_ids):
            return False
        used_edge_ids: List[int] = []
        for entry in mine.entries:
            if entry.prev_id is None:
                if not is_source or entry.position != 0:
                    return False
            else:
                used_edge_ids.append(entry.prev_id)
                if entry.position == 0:
                    return False
            if entry.next_id is None:
                if not is_sink:
                    return False
            else:
                used_edge_ids.append(entry.next_id)
        if len(set(used_edge_ids)) != len(used_edge_ids):
            return False  # an edge carries at most one path hop

        if is_source and (
            len(mine.entries) != k
            or any(entry.prev_id is not None for entry in mine.entries)
        ):
            return False
        if is_sink and (
            len(mine.entries) != k
            or any(entry.next_id is not None for entry in mine.entries)
        ):
            return False

        # --- path entries: chaining with neighbors -------------------------
        for entry in mine.entries:
            if entry.prev_id is not None:
                port = port_of_id.get(entry.prev_id)
                if port is None:
                    return False
                match = [
                    other
                    for other in neighbors[port].entries
                    if other.path_id == entry.path_id
                ]
                if len(match) != 1:
                    return False
                if match[0].next_id != mine.node_id:
                    return False
                if match[0].position != entry.position - 1:
                    return False
            if entry.next_id is not None:
                port = port_of_id.get(entry.next_id)
                if port is None:
                    return False
                match = [
                    other
                    for other in neighbors[port].entries
                    if other.path_id == entry.path_id
                ]
                if len(match) != 1:
                    return False
                if match[0].prev_id != mine.node_id:
                    return False
                if match[0].position != entry.position + 1:
                    return False

        # --- residual reachability ------------------------------------------
        if is_source and not mine.reachable:
            return False
        if is_sink and mine.reachable:
            return False
        if mine.reachable:
            next_ids = {
                entry.next_id for entry in mine.entries if entry.next_id is not None
            }
            for port, nb in enumerate(neighbors):
                # Residual arc v -> w exists unless the edge carries a path
                # hop *out* of v (saturated forward arc, nothing to cancel).
                if nb.node_id in next_ids:
                    continue
                if not nb.reachable:
                    return False
        return True


def k_flow_rpls(repetitions: int = 1):
    """Section 5.2's randomized bound: ``O(log k + log log n)`` certificates."""
    from repro.core.compiler import FingerprintCompiledRPLS

    return FingerprintCompiledRPLS(KFlowPLS(), repetitions=repetitions)


def k_flow_engine_plan(
    configuration: Configuration,
    repetitions: int = 1,
    labels: Optional[Dict[Node, BitString]] = None,
    randomness: str = "edge",
):
    """A batched-engine :class:`~repro.engine.plan.VerificationPlan` for
    the Section 5.2 k-flow RPLS.

    The path-chaining base verifier runs once per node at compile time
    (through the fingerprint compiler's engine hooks); per-trial work is
    fingerprint arithmetic only, eligible for the numpy chunk kernel.
    Estimate with :func:`repro.engine.estimate_acceptance_fast` on the
    returned plan instead of looping ``verify_randomized``.
    """
    from repro.engine.plan import compile_fast_plan

    return compile_fast_plan(
        k_flow_rpls(repetitions), configuration, labels=labels, randomness=randomness
    )
