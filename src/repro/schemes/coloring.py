"""Proper coloring — the introduction's warm-up predicate.

"Deciding the correctness of the predicate stating that the nodes are
properly colored is straightforward: every node collects the colors of its
neighbors, and returns TRUE iff each differs from its own."

In the proof-labeling formalism the verifier sees neighbor *labels*, not
neighbor states, so the ``O(log C)``-bit label is simply the node's own
color; the verifier checks that the label is truthful (equals the color in
its state) and conflicts with no neighbor's label.  This is the smallest
non-trivial scheme in the library and doubles as the framework's hello-world.
"""

from __future__ import annotations

from typing import Dict

from repro.core.bitstrings import BitString, BitWriter, BitReader
from repro.core.configuration import Configuration
from repro.core.predicate import Predicate
from repro.core.scheme import ProofLabelingScheme, VerifierView
from repro.graphs.port_graph import Node


class ProperColoringPredicate(Predicate):
    """True iff adjacent nodes never share the ``color`` state field."""

    name = "proper-coloring"

    def holds(self, configuration: Configuration) -> bool:
        graph = configuration.graph
        for u, _pu, v, _pv in graph.edges():
            if configuration.state(u).get("color") == configuration.state(v).get(
                "color"
            ):
                return False
        return True


class ColoringPLS(ProofLabelingScheme):
    """Label = own color (varuint).  Verification complexity ``O(log C)``."""

    name = "coloring-pls"

    def __init__(self) -> None:
        super().__init__(ProperColoringPredicate())

    def prover(self, configuration: Configuration) -> Dict[Node, BitString]:
        labels = {}
        for node in configuration.graph.nodes:
            writer = BitWriter()
            writer.write_varuint(configuration.state(node).get("color", 0))
            labels[node] = writer.finish()
        return labels

    def verify_at(self, view: VerifierView) -> bool:
        own_color = BitReader(view.own_label).read_varuint()
        if own_color != view.state.get("color", 0):
            return False
        for message in view.messages:
            if BitReader(message).read_varuint() == own_color:
                return False
        return True
