"""Acyclicity — the Theta(log n) scheme of [31], and the Theorem 5.1 anchor.

Predicate: the graph is a forest.  The paper's Theorem 5.1 lower bound works
on the family of lines and cycles and shows that even this "simple" predicate
needs ``Omega(log log n)``-bit certificates randomizedly (hence so does MST,
which subsumes it).

Scheme ([31]): root every tree at a canonical node; the label of ``v`` is its
tree distance ``d(v)`` to its root.  Verification at ``v``:

- ``d(v) = 0``: every neighbor ``w`` must have ``d(w) = 1``;
- ``d(v) > 0``: exactly one neighbor has ``d(v) - 1`` and every other
  neighbor has ``d(v) + 1``.

Soundness: the checks force adjacent labels to differ by exactly one, and on
any cycle a maximal-label node would see two neighbors at ``d - 1`` —
rejected whether it is a local maximum or a zero (a zero with a non-one
neighbor also rejects).  Forests with honest distances pass, so verification
complexity is ``Theta(log n)``; the matching ``Omega(log n)`` is by crossing
(Theorem 4.4 on a path), reproduced in benchmark E6.
"""

from __future__ import annotations

from typing import Dict

from repro.core.bitstrings import BitReader, BitString, BitWriter
from repro.core.configuration import Configuration
from repro.core.predicate import Predicate
from repro.core.scheme import ProofLabelingScheme, VerifierView
from repro.graphs.port_graph import Node
from repro.substrates.union_find import UnionFind


class AcyclicityPredicate(Predicate):
    """True iff the graph contains no cycle (each component is a tree)."""

    name = "acyclicity"

    def holds(self, configuration: Configuration) -> bool:
        forest = UnionFind(configuration.graph.nodes)
        for u, _pu, v, _pv in configuration.graph.edges():
            if not forest.union(u, v):
                return False
        return True


class AcyclicityPLS(ProofLabelingScheme):
    """Label = distance to the component's root; Theta(log n) bits."""

    name = "acyclicity-pls"

    def __init__(self) -> None:
        super().__init__(AcyclicityPredicate())

    def prover(self, configuration: Configuration) -> Dict[Node, BitString]:
        graph = configuration.graph
        labels: Dict[Node, BitString] = {}
        assigned: Dict[Node, int] = {}
        for root in graph.nodes:
            if root in assigned:
                continue
            for node, depth in graph.bfs_distances(root).items():
                assigned[node] = depth
        for node, depth in assigned.items():
            writer = BitWriter()
            writer.write_varuint(depth)
            labels[node] = writer.finish()
        return labels

    def verify_at(self, view: VerifierView) -> bool:
        own = BitReader(view.own_label).read_varuint()
        neighbor_depths = [
            BitReader(message).read_varuint() for message in view.messages
        ]
        if own == 0:
            return all(depth == 1 for depth in neighbor_depths)
        below = sum(1 for depth in neighbor_depths if depth == own - 1)
        above = sum(1 for depth in neighbor_depths if depth == own + 1)
        return below == 1 and below + above == len(neighbor_depths)
