"""Cycle-length predicates — Section 5.3 (Theorems 5.3–5.6).

``cycle-at-least-c``: some simple cycle has at least ``c`` nodes.  Upper
bounds (Theorem 5.3): mark a witness cycle with ``O(log n)``-bit labels —
distance to the cycle plus a position index — giving a deterministic scheme,
and the Theorem 3.1 compiler gives ``O(log log n)`` randomized certificates.
Lower bounds of ``Omega(log c)`` / ``Omega(log log c)`` (Theorem 5.4) come
from crossing the Figure 2 gadget; benchmark E10 runs that attack, and
benchmark E11 runs the *iterated* crossing of Theorem 5.5.

``cycle-at-most-c``: no simple cycle exceeds ``c`` nodes.  The paper shows no
polynomial-verifier PLS can exist unless NP = co-NP, so the only scheme
offered is the universal one (:func:`cycle_at_most_universal_scheme`); the
``Omega(log n/c)`` / ``Omega(log log n/c)`` lower bounds on the Figure 5
chain of cycles are reproduced in benchmark E12.

Verifier for cycle-at-least-c — the disjunction of the paper's P1 / P2 at
each node ``v`` with label ``(dist(v), index(v))``:

- **P1** (on-cycle): ``dist(v) = 0``, exactly two neighbors carry
  ``dist = 0``, one of them at index ``i + 1`` (or ``0`` if ``i >= c - 1``),
  the other at ``i - 1`` (or ``>= c - 1`` if ``i = 0``);
- **P2** (off-cycle): ``dist(v) > 0`` and some neighbor has
  ``dist(v) - 1``.

Soundness: P2 chains force a node with ``dist = 0`` to exist; P1 then walks
an infinite index sequence ``..., 0, 1, ..., c1, 0, 1, ...`` with every
wrap-around index ``>= c - 1``; finiteness closes it into a cycle of length
``>= c``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence

from repro.core.bitstrings import BitReader, BitString, BitWriter
from repro.core.configuration import Configuration
from repro.core.predicate import Predicate
from repro.core.scheme import ProofLabelingScheme, VerifierView
from repro.core.universal import UniversalPLS, UniversalRPLS
from repro.graphs.port_graph import Node
from repro.substrates.cycles import find_cycle_at_least, has_cycle_at_least


class CycleAtLeastPredicate(Predicate):
    """``cycle-at-least-c``: a simple cycle with >= ``c`` nodes exists."""

    def __init__(self, c: int, step_budget: int = 2_000_000):
        if c < 3:
            raise ValueError("c must be at least 3")
        self.c = c
        self.step_budget = step_budget
        self.name = f"cycle-at-least-{c}"

    def holds(self, configuration: Configuration) -> bool:
        return has_cycle_at_least(configuration.graph, self.c, self.step_budget)


class CycleAtMostPredicate(Predicate):
    """``cycle-at-most-c``: every simple cycle has <= ``c`` nodes.

    co-NP-hard in general (``c = n - 1`` is co-Hamiltonicity); evaluated by
    exact search, which is fine on the paper's gadget families.
    """

    def __init__(self, c: int, step_budget: int = 2_000_000):
        if c < 3:
            raise ValueError("c must be at least 3")
        self.c = c
        self.step_budget = step_budget
        self.name = f"cycle-at-most-{c}"

    def holds(self, configuration: Configuration) -> bool:
        return not has_cycle_at_least(configuration.graph, self.c + 1, self.step_budget)


def _pack(dist: int, index: int) -> BitString:
    writer = BitWriter()
    writer.write_varuint(dist)
    writer.write_varuint(index)
    return writer.finish()


def _unpack(label: BitString):
    reader = BitReader(label)
    dist = reader.read_varuint()
    index = reader.read_varuint()
    reader.expect_exhausted()
    return dist, index


class CycleAtLeastPLS(ProofLabelingScheme):
    """The Theorem 5.3 upper bound: mark a witness cycle, ``O(log n)`` bits.

    The prover needs a witness cycle; pass one (``witness``) when the
    configuration was generated with a planted cycle, otherwise an exact
    (exponential in the worst case) search runs — the prover is an oracle in
    the model, so this is faithful, but planting keeps benchmarks fast.
    """

    name = "cycle-at-least-pls"

    def __init__(self, c: int, witness: Optional[Sequence[Node]] = None):
        super().__init__(CycleAtLeastPredicate(c))
        self.c = c
        self.witness = list(witness) if witness is not None else None

    def _find_cycle(self, configuration: Configuration) -> List[Node]:
        if self.witness is not None:
            return self.witness
        cycle = find_cycle_at_least(configuration.graph, self.c)
        if cycle is None:
            raise ValueError(f"no simple cycle of length >= {self.c} exists")
        return cycle

    def prover(self, configuration: Configuration) -> Dict[Node, BitString]:
        graph = configuration.graph
        cycle = self._find_cycle(configuration)
        if len(cycle) < self.c:
            raise ValueError("witness cycle is shorter than c")
        on_cycle = set(cycle)
        if len(on_cycle) != len(cycle):
            raise ValueError("witness cycle revisits a node")
        for position, node in enumerate(cycle):
            successor = cycle[(position + 1) % len(cycle)]
            if not graph.has_edge(node, successor):
                raise ValueError("witness cycle uses a non-edge")
        index = {node: position for position, node in enumerate(cycle)}
        # Multi-source BFS for distance to the cycle.
        dist: Dict[Node, int] = {node: 0 for node in cycle}
        queue = deque(cycle)
        while queue:
            current = queue.popleft()
            for neighbor in graph.neighbors(current):
                if neighbor not in dist:
                    dist[neighbor] = dist[current] + 1
                    queue.append(neighbor)
        if len(dist) != graph.node_count:
            raise ValueError("prover requires a connected configuration")
        return {
            node: _pack(dist[node], index.get(node, 0)) for node in graph.nodes
        }

    def verify_at(self, view: VerifierView) -> bool:
        dist, index = _unpack(view.own_label)
        neighbors = [_unpack(message) for message in view.messages]
        if dist == 0:
            on_cycle = [(d, i) for d, i in neighbors if d == 0]
            if len(on_cycle) != 2:
                return False
            indices = [i for _d, i in on_cycle]
            successor_ok = [
                i == index + 1 or (index >= self.c - 1 and i == 0) for i in indices
            ]
            predecessor_ok = [
                i == index - 1 or (index == 0 and i >= self.c - 1) for i in indices
            ]
            # One neighbor must be the successor, the other the predecessor.
            return (successor_ok[0] and predecessor_ok[1]) or (
                successor_ok[1] and predecessor_ok[0]
            )
        return any(d == dist - 1 for d, _i in neighbors)


def cycle_at_least_rpls(
    c: int, witness: Optional[Sequence[Node]] = None, repetitions: int = 1
):
    """The Theorem 5.3 randomized upper bound: compile the witness scheme."""
    from repro.core.compiler import FingerprintCompiledRPLS

    return FingerprintCompiledRPLS(
        CycleAtLeastPLS(c, witness=witness), repetitions=repetitions
    )


def cycle_at_most_universal_scheme(c: int) -> UniversalPLS:
    """The only general scheme the paper offers for cycle-at-most-c.

    A polynomial-time-verifier PLS would put co-Hamiltonicity in NP; the
    universal scheme sidesteps this with unbounded local computation
    (Appendix B), at configuration-sized labels.
    """
    return UniversalPLS(CycleAtMostPredicate(c))


def cycle_at_most_universal_rpls(c: int, repetitions: int = 1) -> UniversalRPLS:
    """Corollary 3.4 applied to cycle-at-most-c: ``O(log n)`` certificates."""
    return UniversalRPLS(CycleAtMostPredicate(c), repetitions=repetitions)
