"""``Sym`` — the symmetry predicate of Theorem 3.5 (Appendix C, Figures 3-4).

A connected graph is *symmetric* when some edge ``e`` exists such that
``G - e`` consists of exactly two isomorphic connected components.  The
predicate is the engine of the paper's ``Omega(log n)`` lower bound: the
gadgets ``G(z, z')`` of Figure 4 satisfy ``Sym`` iff ``z = z'``
(Claim C.2), so an RPLS for ``Sym`` with ``o(log n)``-bit certificates would
beat the randomized communication complexity of 2-party EQ.

The paper quotes an ``Omega(n^2)``-bit deterministic bound for Sym [21] — no
efficient PLS exists, so the only schemes offered are the universal ones
(:func:`sym_universal_scheme`, :func:`sym_universal_rpls`), and the point of
benchmark E5 is the *reduction* (see
:mod:`repro.lowerbounds.reductions`), not a clever upper bound.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.core.configuration import Configuration
from repro.core.predicate import Predicate
from repro.core.universal import UniversalPLS, UniversalRPLS
from repro.graphs.isomorphism import graphs_isomorphic
from repro.graphs.port_graph import Node, PortGraph


def _component_subgraph(graph: PortGraph, nodes: Set[Node]) -> PortGraph:
    """The induced subgraph on ``nodes`` (ports renumbered; Sym ignores ports)."""
    edges = [
        (u, v) for u, _pu, v, _pv in graph.edges() if u in nodes and v in nodes
    ]
    return PortGraph.from_edges(edges, nodes=nodes)


def split_by_edge(
    graph: PortGraph, u: Node, v: Node
) -> Tuple[List[Set[Node]], PortGraph]:
    """Delete ``{u, v}`` and return the resulting components (and the graph)."""
    surviving = [
        (a, b)
        for a, _pa, b, _pb in graph.edges()
        if frozenset((a, b)) != frozenset((u, v))
    ]
    reduced = PortGraph.from_edges(surviving, nodes=graph.nodes)
    return reduced.connected_components(), reduced


class SymPredicate(Predicate):
    """True iff deleting some edge yields two isomorphic components."""

    name = "sym"

    def holds(self, configuration: Configuration) -> bool:
        graph = configuration.graph
        half = graph.node_count
        for u, _pu, v, _pv in graph.edges():
            components, reduced = split_by_edge(graph, u, v)
            if len(components) != 2:
                continue
            first, second = components
            if len(first) != len(second):
                continue
            if graphs_isomorphic(
                _component_subgraph(reduced, first),
                _component_subgraph(reduced, second),
            ):
                return True
        return False


def sym_universal_scheme() -> UniversalPLS:
    """Lemma 3.3 applied to Sym — the best general PLS available."""
    return UniversalPLS(SymPredicate())


def sym_universal_rpls(repetitions: int = 1) -> UniversalRPLS:
    """Corollary 3.4 applied to Sym: ``O(log n)`` certificates.

    Theorem 3.5 (via Lemma C.1) shows this is tight — no RPLS for Sym can do
    asymptotically better.
    """
    return UniversalRPLS(SymPredicate(), repetitions=repetitions)


def unif_sym_predicate() -> Predicate:
    """The Theorem 3.5 combination ``Unif ∧ Sym`` over ``F1 ∪ Fk``."""
    from repro.schemes.uniformity import UnifPredicate

    class _UnifOrTrivial(UnifPredicate):
        # Identity-only states (family F1) carry no payload; Unif is then
        # vacuously true, which is exactly how Theorem 3.5 combines the
        # families.
        def holds(self, configuration: Configuration) -> bool:
            payloads = set()
            for node in configuration.graph.nodes:
                payload = configuration.state(node).get("payload")
                if payload is not None:
                    payloads.add(payload)
            return len(payloads) <= 1

    return _UnifOrTrivial() & SymPredicate()
