"""Single-source distance certification.

The introduction's spanning-tree scheme certifies *some* rooted tree; a
natural strengthening (ubiquitous in the self-stabilization literature the
paper builds on [1, 7, 23]) certifies that a claimed *distance field* is the
true shortest-path metric from a distinguished source.  The configuration's
output under verification is:

- ``source`` — boolean state field marking the claimed source;
- ``dist`` — the claimed distance of each node from the source (hop count,
  or weighted when the configuration carries per-port ``weights``).

The PLS labels each node with ``(id(source), dist(v))`` — ``dist`` is copied
from the state so the verifier can cross-check the claim, and the source
identity rules out a second spurious source, exactly as in the spanning-tree
scheme.  Verification at ``v`` (``w(e)`` is the edge weight, 1 in hop mode):

- **L0** — the label's ``dist`` equals the state's claimed ``dist``, and all
  neighbors agree on ``id(source)``;
- **L1** (source consistency) — ``v`` is marked source iff ``dist(v) = 0``,
  and then ``id(source) = Id(v)``;
- **L2** (Lipschitz) — ``dist(v) <= dist(u) + w(u, v)`` for every neighbor
  ``u``: distances cannot drop faster than edges allow, so
  ``dist(v) <= d(source, v)`` along any true shortest path;
- **L3** (progress) — ``v`` not the source has a neighbor ``u`` with
  ``dist(v) = dist(u) + w(u, v)``: descending chains terminate at the
  source, so ``dist(v) >= d(source, v)``.

L2 + L3 squeeze ``dist`` to the exact metric; labels are
``O(log n + log(max dist))`` bits, i.e. Theta(log n) with polynomial
weights.  The Theorem 3.1 compiler turns this into an ``O(log log n)``-bit
RPLS (:func:`distance_rpls`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.bitstrings import BitReader, BitString, BitWriter
from repro.core.compiler import FingerprintCompiledRPLS
from repro.core.configuration import Configuration
from repro.core.predicate import Predicate
from repro.core.scheme import ProofLabelingScheme, VerifierView
from repro.graphs.port_graph import Node
from repro.substrates.bfs import bfs_layers, dijkstra


class DistancePredicate(Predicate):
    """True iff exactly one node is marked ``source`` and every node's
    ``dist`` field is its true (hop or weighted) distance to it."""

    name = "sssp-distance"

    def __init__(self, weighted: bool = False):
        self.weighted = weighted
        self.name = "sssp-distance-weighted" if weighted else "sssp-distance"

    def holds(self, configuration: Configuration) -> bool:
        graph = configuration.graph
        sources = [
            node
            for node in graph.nodes
            if configuration.state(node).get("source")
        ]
        if len(sources) != 1:
            return False
        source = sources[0]
        truth = _true_distances(configuration, source, self.weighted)
        if len(truth) != graph.node_count:
            return False  # source does not reach every node
        for node in graph.nodes:
            if configuration.state(node).get("dist") != truth[node]:
                return False
        return True


def _true_distances(
    configuration: Configuration, source: Node, weighted: bool
) -> Dict[Node, int]:
    graph = configuration.graph
    if not weighted:
        return bfs_layers(graph, source).dist
    weights = {
        node: [configuration.edge_weight(node, port) for port in range(graph.degree(node))]
        for node in graph.nodes
    }
    return dijkstra(graph, source, weights).dist


def _pack(source_id: int, dist: int) -> BitString:
    writer = BitWriter()
    writer.write_varuint(source_id)
    writer.write_varuint(dist)
    return writer.finish()


def _unpack(label: BitString) -> tuple:
    reader = BitReader(label)
    source_id = reader.read_varuint()
    dist = reader.read_varuint()
    reader.expect_exhausted()
    return source_id, dist


class DistancePLS(ProofLabelingScheme):
    """``l(v) = (id(source), dist(v))`` — Theta(log n) SSSP certification."""

    name = "sssp-distance-pls"

    def __init__(self, weighted: bool = False):
        super().__init__(DistancePredicate(weighted))
        self.weighted = weighted

    def prover(self, configuration: Configuration) -> Dict[Node, BitString]:
        graph = configuration.graph
        source: Optional[Node] = None
        for node in graph.nodes:
            if configuration.state(node).get("source"):
                source = node
        if source is None:
            raise ValueError("configuration marks no source")
        source_id = configuration.node_id(source)
        # The honest label repeats the *claimed* dist: on a legal
        # configuration that is the true metric, and only legal
        # configurations matter for completeness.
        return {
            node: _pack(source_id, configuration.state(node).get("dist", 0))
            for node in graph.nodes
        }

    def _edge_weight(self, view: VerifierView, port: int) -> int:
        if not self.weighted:
            return 1
        weights = view.state.get("weights")
        if weights is None:
            return 1
        return weights[port]

    def verify_at(self, view: VerifierView) -> bool:
        source_id, dist = _unpack(view.own_label)
        # L0 — label repeats the state's claim.
        if view.state.get("dist") != dist:
            return False
        neighbor_labels: List[tuple] = [_unpack(message) for message in view.messages]
        for neighbor_source, _ in neighbor_labels:
            if neighbor_source != source_id:
                return False
        # L1 — source iff dist == 0, and the source names itself.
        is_source = bool(view.state.get("source"))
        if is_source != (dist == 0):
            return False
        if is_source and source_id != view.state.node_id:
            return False
        # L2 — Lipschitz along every incident edge.
        for port, (_src, neighbor_dist) in enumerate(neighbor_labels):
            weight = self._edge_weight(view, port)
            if dist > neighbor_dist + weight:
                return False
        # L3 — progress: some neighbor realizes the distance exactly.
        if not is_source:
            realized = any(
                dist == neighbor_dist + self._edge_weight(view, port)
                for port, (_src, neighbor_dist) in enumerate(neighbor_labels)
            )
            if not realized:
                return False
        return True


def distance_rpls(weighted: bool = False, repetitions: int = 1) -> FingerprintCompiledRPLS:
    """The compiled ``O(log log n)``-bit randomized scheme (Theorem 3.1)."""
    return FingerprintCompiledRPLS(DistancePLS(weighted), repetitions=repetitions)


def distance_engine_plan(
    configuration: Configuration,
    weighted: bool = False,
    repetitions: int = 1,
    labels: Optional[Dict[Node, "BitString"]] = None,
    randomness: str = "edge",
):
    """A batched-engine :class:`~repro.engine.plan.VerificationPlan` for
    the compiled SSSP-distance RPLS.

    Label parsing and the Lipschitz/progress base checks run once at
    compile time through the fingerprint compiler's engine hooks; per-trial
    work is fingerprint arithmetic only, eligible for the numpy chunk
    kernel.  Estimate with :func:`repro.engine.estimate_acceptance_fast`
    on the returned plan instead of looping ``verify_randomized``.
    """
    from repro.engine.plan import compile_fast_plan

    return compile_fast_plan(
        distance_rpls(weighted, repetitions=repetitions),
        configuration,
        labels=labels,
        randomness=randomness,
    )
