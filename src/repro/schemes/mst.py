"""MST verification — Theorem 5.1.

Predicate: the ``tree``-marked edges form the minimum-weight spanning tree of
the configuration's weighted graph.  Weights are tie-broken by endpoint
identities (:meth:`Configuration.weight_key`), so the MST is unique and
"minimum" needs no up-to-weight equivalence.

**Deterministic scheme** — the ``O(log^2 n)`` construction in the spirit of
Korman–Kutten–Peleg [31]: certify an entire Borůvka execution.  With
``P <= ceil(log2 n)`` merge phases, the label of ``v`` carries, for each
phase ``p``:

- ``root_p(v)``            the identity of ``v``'s fragment root,
- ``parent_p(v), depth_p(v)``  ``v``'s position in a spanning tree of its
                           fragment (parents named by identity),
- ``submin_p(v)``          the minimum weight key among fragment-outgoing
                           edges incident to ``v``'s fragment subtree — the
                           convergecast value,
- ``chosen_p(v)``          the fragment's minimum-weight outgoing edge
                           (MWOE), replicated fragment-wide,

plus the final (phase ``P``) fragment structure and the node's own identity.
Each field is ``O(log n)`` bits, giving ``O(log^2 n)`` per label.

The verifier grounds everything in locally observable truth:

1. identity fields are authenticated (label id = state id);
2. phase 0 fragments are singletons; fragment trees are certified by the
   root/parent/depth mechanism of the spanning-tree scheme, restricted to
   tree-marked edges already merged (``merge-phase < p``);
3. the *merge phase* of an edge is not shipped — it is derived from the two
   endpoints' root sequences (the first phase at which they agree, minus
   one), with a monotonicity check (fragments merge, never split);
4. ``submin`` is recomputed from actual incident weights and children's
   values; the root's ``chosen`` must equal its ``submin`` and be replicated
   down the fragment tree;
5. every tree-marked edge must be the ``chosen`` MWOE of one of its sides at
   its merge phase, and — chasing the convergecast argmin — every fragment's
   MWOE must be tree-marked at exactly that phase.

If all nodes accept, the per-phase fragments replay Borůvka's execution on
the true weights, so the marked edges are exactly the unique MST.

**Randomized scheme** — Theorem 3.1 compiles this to ``O(log log n)``-bit
certificates (:func:`mst_rpls`); the matching ``Omega(log log n)`` lower
bound (via acyclicity on lines-and-cycles) is run as a crossing attack in
benchmark E8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.bitstrings import BitReader, BitString, BitWriter
from repro.core.configuration import Configuration
from repro.core.predicate import Predicate
from repro.core.scheme import ProofLabelingScheme, VerifierView
from repro.graphs.port_graph import Node
from repro.substrates.mst import boruvka, kruskal

WeightKey = Tuple[int, int, int]


class MSTPredicate(Predicate):
    """True iff the marked edges are exactly the unique MST."""

    name = "mst"

    def holds(self, configuration: Configuration) -> bool:
        try:
            marked = {
                frozenset((u, v)) for u, _pu, v, _pv in configuration.tree_edges()
            }
        except ValueError:  # asymmetric marking
            return False
        if not configuration.graph.is_connected():
            return False
        return marked == kruskal(configuration.graph, configuration.weight_key)


@dataclass
class _PhaseRecord:
    root: int
    parent: Optional[int]
    depth: int


@dataclass
class _MSTLabel:
    node_id: int
    phase_count: int
    structure: List[_PhaseRecord]        # length phase_count + 1
    submin: List[Optional[WeightKey]]    # length phase_count
    chosen: List[WeightKey]              # length phase_count


def _write_key(writer: BitWriter, key: WeightKey) -> None:
    for part in key:
        writer.write_varuint(part)


def _read_key(reader: BitReader) -> WeightKey:
    return (reader.read_varuint(), reader.read_varuint(), reader.read_varuint())


def _pack(label: _MSTLabel) -> BitString:
    writer = BitWriter()
    writer.write_varuint(label.node_id)
    writer.write_varuint(label.phase_count)
    for record in label.structure:
        writer.write_varuint(record.root)
        writer.write_flag(record.parent is not None)
        if record.parent is not None:
            writer.write_varuint(record.parent)
        writer.write_varuint(record.depth)
    for phase in range(label.phase_count):
        writer.write_flag(label.submin[phase] is not None)
        if label.submin[phase] is not None:
            _write_key(writer, label.submin[phase])
        _write_key(writer, label.chosen[phase])
    return writer.finish()


def _unpack(label: BitString) -> _MSTLabel:
    reader = BitReader(label)
    node_id = reader.read_varuint()
    phase_count = reader.read_varuint()
    if phase_count > 64:  # forged labels must not force absurd loops
        raise ValueError("implausible phase count")
    structure = []
    for _ in range(phase_count + 1):
        root = reader.read_varuint()
        parent = reader.read_varuint() if reader.read_flag() else None
        depth = reader.read_varuint()
        structure.append(_PhaseRecord(root=root, parent=parent, depth=depth))
    submin: List[Optional[WeightKey]] = []
    chosen: List[WeightKey] = []
    for _ in range(phase_count):
        submin.append(_read_key(reader) if reader.read_flag() else None)
        chosen.append(_read_key(reader))
    reader.expect_exhausted()
    return _MSTLabel(
        node_id=node_id,
        phase_count=phase_count,
        structure=structure,
        submin=submin,
        chosen=chosen,
    )


class MSTPLS(ProofLabelingScheme):
    """The Borůvka-trace MST scheme; ``O(log^2 n)``-bit labels."""

    name = "mst-pls"

    def __init__(self) -> None:
        super().__init__(MSTPredicate())

    def prover(self, configuration: Configuration) -> Dict[Node, BitString]:
        graph = configuration.graph
        trace = boruvka(graph, configuration.weight_key)
        labels: Dict[Node, BitString] = {}
        for node in graph.nodes:
            structure = []
            for phase in trace.phases:
                record = phase.structure
                parent = record.parent[node]
                structure.append(
                    _PhaseRecord(
                        root=configuration.node_id(record.root[node]),
                        parent=None if parent is None else configuration.node_id(parent),
                        depth=record.depth[node],
                    )
                )
            final_parent = trace.final_structure.parent[node]
            structure.append(
                _PhaseRecord(
                    root=configuration.node_id(trace.final_structure.root[node]),
                    parent=None
                    if final_parent is None
                    else configuration.node_id(final_parent),
                    depth=trace.final_structure.depth[node],
                )
            )
            labels[node] = _pack(
                _MSTLabel(
                    node_id=configuration.node_id(node),
                    phase_count=trace.phase_count,
                    structure=structure,
                    submin=[phase.subtree_min[node] for phase in trace.phases],
                    chosen=[
                        phase.chosen[phase.structure.root[node]]
                        for phase in trace.phases
                    ],
                )
            )
        return labels

    # -- verification ----------------------------------------------------------

    def verify_at(self, view: VerifierView) -> bool:
        mine = _unpack(view.own_label)
        neighbors = [_unpack(message) for message in view.messages]

        # (1) identity authentication and (2) phase agreement.
        if mine.node_id != view.state.node_id:
            return False
        if any(nb.phase_count != mine.phase_count for nb in neighbors):
            return False
        phase_count = mine.phase_count

        # (3) phase-0 fragments are singletons.
        first = mine.structure[0]
        if first.root != mine.node_id or first.parent is not None or first.depth != 0:
            return False

        # Derived merge phases per port, with monotonicity (roots never split).
        merge_phase: List[int] = []
        for port, nb in enumerate(neighbors):
            merged_at: Optional[int] = None
            for q in range(phase_count + 1):
                same = mine.structure[q].root == nb.structure[q].root
                if merged_at is None:
                    if same:
                        merged_at = q
                elif not same:
                    return False  # split after merging
            if merged_at is None or merged_at == 0:
                # Phase-0 singletons can never share a root; and by the final
                # phase all nodes must (connected graph, single fragment).
                return False
            merge_phase.append(merged_at - 1)

        # (4) fragment-tree structure at every phase q = 0..P.
        for q in range(phase_count + 1):
            record = mine.structure[q]
            if record.parent is None:
                if record.depth != 0 or record.root != mine.node_id:
                    return False
                continue
            parent_ports = [
                port
                for port, nb in enumerate(neighbors)
                if nb.node_id == record.parent
            ]
            if len(parent_ports) != 1:
                return False
            port = parent_ports[0]
            parent_label = neighbors[port]
            if parent_label.structure[q].root != record.root:
                return False
            if parent_label.structure[q].depth != record.depth - 1:
                return False
            if not view.state.get("tree")[port]:
                return False
            if merge_phase[port] >= q:
                return False

        # Weight keys of incident edges (neighbor identities are
        # authenticated at the neighbor, check (1) there).
        weights = view.state.get("weights")
        edge_keys: List[WeightKey] = []
        for port, nb in enumerate(neighbors):
            weight = weights[port] if weights is not None else 1
            low, high = sorted((mine.node_id, nb.node_id))
            edge_keys.append((weight, low, high))

        # (5) per-phase convergecast and chosen-MWOE checks.
        for p in range(phase_count):
            my_root = mine.structure[p].root
            local_best: Optional[WeightKey] = None
            best_port: Optional[int] = None
            child_values: List[Optional[WeightKey]] = []
            for port, nb in enumerate(neighbors):
                if nb.structure[p].root != my_root:
                    if local_best is None or edge_keys[port] < local_best:
                        local_best = edge_keys[port]
                        best_port = port
                elif nb.structure[p].parent == mine.node_id:
                    child_values.append(nb.submin[p])
            combined = local_best
            for value in child_values:
                if value is not None and (combined is None or value < combined):
                    combined = value
            if mine.submin[p] != combined:
                return False

            if mine.structure[p].parent is None:
                if mine.submin[p] is None or mine.chosen[p] != mine.submin[p]:
                    return False
            else:
                parent_port = next(
                    port
                    for port, nb in enumerate(neighbors)
                    if nb.node_id == mine.structure[p].parent
                )
                if mine.chosen[p] != neighbors[parent_port].chosen[p]:
                    return False

            # Argmin chase: if my fragment's MWOE is achieved by one of my own
            # outgoing edges, that edge must be marked and merged at phase p.
            if (
                mine.chosen[p] == mine.submin[p]
                and best_port is not None
                and local_best == mine.submin[p]
            ):
                if not view.state.get("tree")[best_port]:
                    return False
                if merge_phase[best_port] != p:
                    return False

        # (6) every tree-marked edge is somebody's MWOE at its merge phase;
        #     unmarked edges must not pretend to be fragment-tree edges
        #     (enforced at (4) via the mark requirement).
        marks = view.state.get("tree")
        for port, nb in enumerate(neighbors):
            if marks is not None and marks[port]:
                p = merge_phase[port]
                if mine.chosen[p] != edge_keys[port] and nb.chosen[p] != edge_keys[port]:
                    return False

        return True


def mst_rpls(repetitions: int = 1):
    """Theorem 5.1's upper bound: the compiled ``O(log log n)`` RPLS."""
    from repro.core.compiler import FingerprintCompiledRPLS

    return FingerprintCompiledRPLS(MSTPLS(), repetitions=repetitions)


def mst_engine_plan(
    configuration: Configuration,
    repetitions: int = 1,
    labels: Optional[Dict[Node, BitString]] = None,
    randomness: str = "edge",
):
    """A batched-engine :class:`~repro.engine.plan.VerificationPlan` for
    the Theorem 5.1 RPLS — the entry point Monte-Carlo drivers should use.

    MST is the scheme where plan compilation buys the most: the Borůvka-
    trace base verifier (phases × ports of structural checks per node) and
    the ``O(log^2 n)``-bit replica parsing both run exactly once, at
    compile time, through the fingerprint compiler's engine hooks.  The
    per-trial residue is pure fingerprint arithmetic, which the numpy chunk
    kernel batches across trials.  Estimate with
    :func:`repro.engine.estimate_acceptance_fast` on the returned plan
    instead of looping ``verify_randomized``.
    """
    from repro.engine.plan import compile_fast_plan

    return compile_fast_plan(
        mst_rpls(repetitions), configuration, labels=labels, randomness=randomness
    )
