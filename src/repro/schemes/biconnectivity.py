"""Vertex biconnectivity — Theorem 5.2 and its Appendix E scheme.

``v2con``: removing any single node leaves the graph connected.  The
deterministic scheme labels every node with DFS-tree data (Hopcroft–Tarjan
[22], analysed in [37]):

    l(v) = (id-root(v), dist(v), preo(v), span(v), lowpt(v))

all ``O(log n)`` bits, and the verifier is the conjunction of the paper's
predicates P1–P8:

- **DFS verification** (P1–P6): all neighbors share ``id-root``; distances
  are consistent (a non-root has exactly one neighbor one level up, P3);
  children's spans partition the parent's span minus its own preorder (P4);
  no two adjacent nodes share a depth (P5); spans of adjacent nodes nest
  according to depth (P6).  Together these force the labels to describe a
  genuine DFS tree of the graph ([37], Theorem 1).
- **lowpt verification** (P7): ``lowpt(v) = min(childmin(v),
  neighbormin(v))`` — the convergecast that makes lowpoints locally
  checkable.
- **biconnectivity** (P8): the root has at most one child, and every child
  ``u`` of a non-root ``v`` satisfies ``lowpt(u) < preo(v)`` — exactly "no
  articulation points" ([37], Lemma 5).

Children are identified by depth: in a DFS tree of an undirected graph every
non-tree edge joins an ancestor/descendant pair at depth difference >= 2, so
a neighbor at ``dist(v) + 1`` is necessarily a child (P5/P6 enforce this).

Randomized: the Theorem 3.1 compiler yields Theta(log log n) certificates;
the matching lower bounds (deterministic Omega(log n), randomized
Omega(log log n)) are reproduced by the crossing attack on the Figure 2
gadget in benchmark E9.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.bitstrings import BitReader, BitString, BitWriter
from repro.core.configuration import Configuration
from repro.core.predicate import Predicate
from repro.core.scheme import ProofLabelingScheme, VerifierView
from repro.graphs.port_graph import Node
from repro.substrates.dfs import dfs_tree, is_biconnected


class BiconnectivityPredicate(Predicate):
    """The paper's ``v2con`` over connected graphs."""

    name = "v2con"

    def holds(self, configuration: Configuration) -> bool:
        return is_biconnected(configuration.graph)


class _Label:
    """Decoded biconnectivity label (plain data carrier)."""

    __slots__ = ("root_id", "dist", "preorder", "span_low", "span_high", "lowpoint")

    def __init__(self, root_id, dist, preorder, span_low, span_high, lowpoint):
        self.root_id = root_id
        self.dist = dist
        self.preorder = preorder
        self.span_low = span_low
        self.span_high = span_high
        self.lowpoint = lowpoint


def _pack(label: _Label) -> BitString:
    writer = BitWriter()
    for value in (
        label.root_id,
        label.dist,
        label.preorder,
        label.span_low,
        label.span_high,
        label.lowpoint,
    ):
        writer.write_varuint(value)
    return writer.finish()


def _unpack(label: BitString) -> _Label:
    reader = BitReader(label)
    values = [reader.read_varuint() for _ in range(6)]
    reader.expect_exhausted()
    return _Label(*values)


class BiconnectivityPLS(ProofLabelingScheme):
    """The Appendix E DFS/lowpoint scheme; Theta(log n)-bit labels."""

    name = "v2con-pls"

    def __init__(self) -> None:
        super().__init__(BiconnectivityPredicate())

    def prover(self, configuration: Configuration) -> Dict[Node, BitString]:
        graph = configuration.graph
        root = min(graph.nodes, key=configuration.node_id)
        tree = dfs_tree(graph, root)
        if len(tree.preorder) != graph.node_count:
            raise ValueError("prover requires a connected configuration")
        labels = {}
        for node in graph.nodes:
            low, high = tree.span[node]
            labels[node] = _pack(
                _Label(
                    root_id=configuration.node_id(root),
                    dist=tree.depth[node],
                    preorder=tree.preorder[node],
                    span_low=low,
                    span_high=high,
                    lowpoint=tree.lowpoint[node],
                )
            )
        return labels

    def verify_at(self, view: VerifierView) -> bool:
        mine = _unpack(view.own_label)
        neighbors = [_unpack(message) for message in view.messages]

        # P1: agreement on the root identity.
        if any(nb.root_id != mine.root_id for nb in neighbors):
            return False
        # P2 is structural (varuints are non-negative).
        # P3: root identification / unique parent.
        if mine.dist == 0:
            if mine.root_id != view.state.node_id:
                return False
        else:
            if sum(1 for nb in neighbors if nb.dist == mine.dist - 1) != 1:
                return False
        # Own span must start at own preorder (span includes v itself).
        if mine.span_low != mine.preorder or mine.span_high < mine.preorder:
            return False
        # P5: no neighbor at my own depth.
        if any(nb.dist == mine.dist for nb in neighbors):
            return False
        # P6: span nesting along every edge (strict containment).
        for nb in neighbors:
            if nb.dist < mine.dist:
                if not (nb.span_low <= mine.span_low and mine.span_high <= nb.span_high
                        and (nb.span_low, nb.span_high) != (mine.span_low, mine.span_high)):
                    return False
            elif nb.dist > mine.dist:
                if not (mine.span_low <= nb.span_low and nb.span_high <= mine.span_high
                        and (nb.span_low, nb.span_high) != (mine.span_low, mine.span_high)):
                    return False
        # P4: children's spans partition span(v) \ {preo(v)}.
        children = [nb for nb in neighbors if nb.dist == mine.dist + 1]
        intervals = sorted((child.span_low, child.span_high) for child in children)
        cursor = mine.preorder + 1
        for low, high in intervals:
            if low != cursor or high < low:
                return False
            cursor = high + 1
        if cursor != mine.span_high + 1:
            return False
        # P7: lowpoint convergecast.
        neighbor_min = min((nb.preorder for nb in neighbors), default=mine.preorder)
        child_min = min((child.lowpoint for child in children), default=neighbor_min)
        if mine.lowpoint != min(neighbor_min, child_min):
            return False
        # P8: the biconnectivity test itself.
        if mine.dist == 0:
            if len(children) > 1:
                return False
        else:
            if any(child.lowpoint >= mine.preorder for child in children):
                return False
        return True
