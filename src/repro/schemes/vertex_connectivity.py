"""s-t vertex connectivity — the other half of Section 5.2.

[31] proved a Theta(log n) bound for *s-t connectivity* (the vertex version:
all nodes agree on the vertex connectivity between two designated nodes);
the paper recasts it as the decision problem "is the s-t vertex connectivity
exactly k" and notes the bound persists.  This module implements that scheme
on simple undirected graphs with **non-adjacent** terminals, where Menger's
theorem says: the maximum number of internally vertex-disjoint s-t paths
equals the minimum s-t vertex cut.

Certificate (all fields O(log n) bits; at most one path crosses a node):

- **feasibility** (`connectivity >= k`): k internally vertex-disjoint paths,
  each non-terminal storing at most one ``(path_id, prev_id, next_id,
  position)`` entry, chained exactly like the k-flow scheme;
- **maximality** (`connectivity <= k`): reachability flags in the *split*
  residual graph (every non-terminal ``v`` becomes ``v_in -> v_out`` with
  capacity 1).  Each node carries two bits ``(reach_in, reach_out)``; the
  propagation rules below mirror the split graph's residual arcs, the source
  is reachable, and the target's ``reach_in`` must stay false — no augmenting
  path, so no k+1st disjoint path exists.

Residual arcs of the split graph, derivable locally:

====================================  ================================
situation                             residual arc
====================================  ================================
``v`` not on any path                 ``v_in -> v_out``
``v`` on a path                       ``v_out -> v_in`` (reverse)
edge ``{v, w}`` unused                ``v_out -> w_in`` and ``w_out -> v_in``
edge carries a path hop ``v -> w``    ``w_in -> v_out`` (reverse) only
====================================  ================================

The compiled RPLS (Theorem 3.1) runs at ``O(log log n)`` certificates.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from repro.core.bitstrings import BitReader, BitString, BitWriter
from repro.core.configuration import Configuration
from repro.core.predicate import Predicate
from repro.core.scheme import ProofLabelingScheme, VerifierView
from repro.graphs.port_graph import Node
from repro.substrates.flow import vertex_disjoint_paths


def _terminals(configuration: Configuration) -> Tuple[Node, Node, int]:
    source = sink = None
    k = None
    for node in configuration.graph.nodes:
        state = configuration.state(node)
        if state.get("source"):
            source = node
        if state.get("target"):
            sink = node
        if state.get("k") is not None:
            k = state.get("k")
    if source is None or sink is None or k is None:
        raise ValueError(
            "vertex-connectivity configurations need 'source', 'target' and 'k'"
        )
    return source, sink, k


class STVertexConnectivityPredicate(Predicate):
    """True iff the s-t vertex connectivity equals ``k`` (s, t non-adjacent)."""

    name = "st-vertex-connectivity"

    def holds(self, configuration: Configuration) -> bool:
        source, sink, k = _terminals(configuration)
        if configuration.graph.has_edge(source, sink):
            raise ValueError("the vertex form requires non-adjacent terminals")
        return len(vertex_disjoint_paths(configuration.graph, source, sink)) == k


@dataclasses.dataclass
class _Entry:
    path_id: int
    prev_id: Optional[int]
    next_id: Optional[int]
    position: int


@dataclasses.dataclass
class _Label:
    node_id: int
    reach_in: bool
    reach_out: bool
    entries: List[_Entry]  # >1 entries only at the terminals


def _pack(label: _Label) -> BitString:
    writer = BitWriter()
    writer.write_varuint(label.node_id)
    writer.write_flag(label.reach_in)
    writer.write_flag(label.reach_out)
    writer.write_varuint(len(label.entries))
    for entry in label.entries:
        writer.write_varuint(entry.path_id)
        writer.write_flag(entry.prev_id is not None)
        if entry.prev_id is not None:
            writer.write_varuint(entry.prev_id)
        writer.write_flag(entry.next_id is not None)
        if entry.next_id is not None:
            writer.write_varuint(entry.next_id)
        writer.write_varuint(entry.position)
    return writer.finish()


def _unpack(label: BitString) -> _Label:
    reader = BitReader(label)
    node_id = reader.read_varuint()
    reach_in = reader.read_flag()
    reach_out = reader.read_flag()
    count = reader.read_varuint()
    if count > 4096:
        raise ValueError("implausible entry count")
    entries = []
    for _ in range(count):
        path_id = reader.read_varuint()
        prev_id = reader.read_varuint() if reader.read_flag() else None
        next_id = reader.read_varuint() if reader.read_flag() else None
        position = reader.read_varuint()
        entries.append(_Entry(path_id, prev_id, next_id, position))
    reader.expect_exhausted()
    return _Label(node_id, reach_in, reach_out, entries)


class STVertexConnectivityPLS(ProofLabelingScheme):
    """Theta(log n) labels deciding s-t vertex connectivity == k."""

    name = "st-vertex-connectivity-pls"

    def __init__(self) -> None:
        super().__init__(STVertexConnectivityPredicate())

    # -- prover ---------------------------------------------------------------

    def prover(self, configuration: Configuration) -> Dict[Node, BitString]:
        graph = configuration.graph
        source, sink, _k = _terminals(configuration)
        paths = vertex_disjoint_paths(graph, source, sink)

        entries: Dict[Node, List[_Entry]] = {node: [] for node in graph.nodes}
        on_path: Set[Node] = set()
        hop: Dict[Tuple[Node, Node], bool] = {}
        for path_id, path in enumerate(paths):
            for position, node in enumerate(path):
                prev_node = path[position - 1] if position > 0 else None
                next_node = path[position + 1] if position + 1 < len(path) else None
                entries[node].append(
                    _Entry(
                        path_id=path_id,
                        prev_id=None if prev_node is None else configuration.node_id(prev_node),
                        next_id=None if next_node is None else configuration.node_id(next_node),
                        position=position,
                    )
                )
                if node not in (source, sink):
                    on_path.add(node)
                if next_node is not None:
                    hop[(node, next_node)] = True

        reach = self._split_residual_reachability(
            configuration, paths, source, sink
        )
        labels = {}
        for node in graph.nodes:
            reach_in, reach_out = reach[node]
            labels[node] = _pack(
                _Label(
                    node_id=configuration.node_id(node),
                    reach_in=reach_in,
                    reach_out=reach_out,
                    entries=entries[node],
                )
            )
        return labels

    @staticmethod
    def _split_residual_reachability(
        configuration: Configuration, paths, source: Node, sink: Node
    ) -> Dict[Node, Tuple[bool, bool]]:
        """BFS over the split residual graph; returns (reach_in, reach_out)."""
        from collections import deque

        graph = configuration.graph
        used_internal: Set[Node] = set()
        used_hops: Set[Tuple[Node, Node]] = set()
        for path in paths:
            for position, node in enumerate(path):
                if node not in (source, sink):
                    used_internal.add(node)
                if position + 1 < len(path):
                    used_hops.add((node, path[position + 1]))

        # States: (node, side) with side in {"in", "out"}; terminals have a
        # single merged state, modelled as side "out" for s and "in" for t.
        def initial() -> Tuple[Node, str]:
            return (source, "out")

        reached: Set[Tuple[Node, str]] = {initial()}
        queue = deque([initial()])
        while queue:
            node, side = queue.popleft()

            def push(state: Tuple[Node, str]) -> None:
                if state not in reached:
                    reached.add(state)
                    queue.append(state)

            if side == "in":
                if node not in used_internal:
                    push((node, "out"))
                # Reverse of an incoming edge hop w -> node: in -> w_out.
                for neighbor in graph.neighbors(node):
                    if (neighbor, node) in used_hops:
                        push((neighbor, "out"))
            else:  # side == "out"
                if node in used_internal:
                    push((node, "in"))  # reverse of the internal arc
                for neighbor in graph.neighbors(node):
                    if (node, neighbor) in used_hops:
                        continue  # saturated forward arc
                    target_side = "out" if neighbor == source else "in"
                    push((neighbor, target_side))

        result = {}
        for node in graph.nodes:
            if node == source:
                flag = (source, "out") in reached
                result[node] = (flag, flag)
            elif node == sink:
                flag = (sink, "in") in reached
                result[node] = (flag, flag)
            else:
                result[node] = ((node, "in") in reached, (node, "out") in reached)
        return result

    # -- verifier ---------------------------------------------------------------

    def verify_at(self, view: VerifierView) -> bool:
        mine = _unpack(view.own_label)
        neighbors = [_unpack(message) for message in view.messages]
        if mine.node_id != view.state.node_id:
            return False
        is_source = bool(view.state.get("source"))
        is_sink = bool(view.state.get("target"))
        k = view.state.get("k")

        port_of_id: Dict[int, int] = {}
        for port, nb in enumerate(neighbors):
            if nb.node_id in port_of_id:
                return False
            port_of_id[nb.node_id] = port

        # --- path entries ----------------------------------------------------
        path_ids = [entry.path_id for entry in mine.entries]
        if len(set(path_ids)) != len(path_ids):
            return False
        if is_source or is_sink:
            if len(mine.entries) != k:
                return False
        else:
            if len(mine.entries) > 1:
                return False  # vertex-disjointness, the defining constraint

        for entry in mine.entries:
            if entry.prev_id is None:
                if not is_source or entry.position != 0:
                    return False
            else:
                port = port_of_id.get(entry.prev_id)
                if port is None:
                    return False
                match = [
                    other for other in neighbors[port].entries
                    if other.path_id == entry.path_id
                ]
                if len(match) != 1 or match[0].next_id != mine.node_id:
                    return False
                if match[0].position != entry.position - 1:
                    return False
            if entry.next_id is None:
                if not is_sink:
                    return False
            else:
                port = port_of_id.get(entry.next_id)
                if port is None:
                    return False
                match = [
                    other for other in neighbors[port].entries
                    if other.path_id == entry.path_id
                ]
                if len(match) != 1 or match[0].prev_id != mine.node_id:
                    return False
                if match[0].position != entry.position + 1:
                    return False
        if is_source and any(e.prev_id is not None for e in mine.entries):
            return False
        if is_sink and any(e.next_id is not None for e in mine.entries):
            return False

        # --- split-residual reachability --------------------------------------
        on_path = bool(mine.entries) and not (is_source or is_sink)
        next_ids = {e.next_id for e in mine.entries if e.next_id is not None}
        prev_ids = {e.prev_id for e in mine.entries if e.prev_id is not None}

        if is_source and not (mine.reach_in and mine.reach_out):
            return False
        if is_sink and mine.reach_in:
            return False
        if is_source or is_sink:
            if mine.reach_in != mine.reach_out:
                return False  # terminals carry one merged flag

        # Internal arc rules.
        if not (is_source or is_sink):
            if not on_path and mine.reach_in and not mine.reach_out:
                return False  # in -> out residual must propagate
            if on_path and mine.reach_out and not mine.reach_in:
                return False  # reverse arc out -> in
        # Edge arcs: out(v) -> in(w) unless this edge carries my hop to w;
        # reverse arcs in(v) -> out(w) when w's hop enters me are w's duty
        # symmetric rule: my in must push back along my incoming hop.
        if mine.reach_out:
            for port, nb in enumerate(neighbors):
                if nb.node_id in next_ids:
                    continue  # saturated forward arc
                if not nb.reach_in:
                    return False
        if mine.reach_in:
            for port, nb in enumerate(neighbors):
                if nb.node_id in prev_ids and not nb.reach_out:
                    return False  # reverse of the incoming hop
        return True


def st_vertex_connectivity_rpls(repetitions: int = 1):
    """The Theorem 3.1 compilation: O(log log n) certificates."""
    from repro.core.compiler import FingerprintCompiledRPLS

    return FingerprintCompiledRPLS(
        STVertexConnectivityPLS(), repetitions=repetitions
    )
