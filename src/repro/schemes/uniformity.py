"""``Unif`` — all nodes hold the same ``k``-bit payload (Lemma C.3).

This predicate is the cleanest showcase of what randomization buys:

- any deterministic PLS must effectively ship the payload: :class:`UnifPLS`
  uses ``k + O(log k)`` bits (and Lemma C.3 proves ``Omega(log k)`` is
  unavoidable even for RPLSs, via reduction from 2-party EQ);
- :class:`DirectUnifRPLS` uses **empty labels** and
  ``O(log k)``-bit certificates: each node fingerprints its *own state* per
  port and neighbors check the fingerprint against their own payload — the
  polynomial identity test of Lemma A.1 applied directly, without going
  through the Theorem 3.1 compiler.

``Unif`` is also one half of the Theorem 3.5 tightness construction
(``Unif ∧ Sym``), exercised by benchmark E5.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from repro.core.bitstrings import BitReader, BitString, BitWriter
from repro.core.configuration import Configuration
from repro.core.fingerprint import Fingerprinter
from repro.core.predicate import Predicate
from repro.core.scheme import (
    LabelView,
    ProofLabelingScheme,
    RandomizedScheme,
    VerifierView,
)
from repro.graphs.port_graph import Node


def _payload(state) -> BitString:
    payload = state.get("payload")
    if not isinstance(payload, BitString):
        raise ValueError("Unif states must carry a BitString 'payload' field")
    return payload


class UnifPredicate(Predicate):
    """True iff every node's ``payload`` state field is identical."""

    name = "unif"

    def holds(self, configuration: Configuration) -> bool:
        payloads = {
            _payload(configuration.state(node))
            for node in configuration.graph.nodes
        }
        return len(payloads) <= 1


class UnifPLS(ProofLabelingScheme):
    """The deterministic baseline: the label *is* the payload.

    Verification: my label equals my payload and every neighbor's label —
    by connectivity all payloads agree.  ``k + O(log k)`` bits (framing).
    """

    name = "unif-pls"

    def __init__(self) -> None:
        super().__init__(UnifPredicate())

    def prover(self, configuration: Configuration) -> Dict[Node, BitString]:
        labels = {}
        for node in configuration.graph.nodes:
            payload = _payload(configuration.state(node))
            writer = BitWriter()
            writer.write_varuint(payload.length)
            writer.write_bitstring(payload)
            labels[node] = writer.finish()
        return labels

    @staticmethod
    def _unpack(label: BitString) -> BitString:
        reader = BitReader(label)
        width = reader.read_varuint()
        payload = reader.read_bitstring(width)
        reader.expect_exhausted()
        return payload

    def verify_at(self, view: VerifierView) -> bool:
        own = self._unpack(view.own_label)
        if own != _payload(view.state):
            return False
        return all(self._unpack(message) == own for message in view.messages)


@dataclass(frozen=True)
class _UnifNodeContext:
    """Per-node trial-invariant state for the engine fast path."""

    payload_length: int
    coefficients: tuple  # payload polynomial, highest degree first
    fingerprinter: Fingerprinter


class DirectUnifRPLS(RandomizedScheme):
    """Labels empty; certificates are fingerprints of the sender's payload.

    The receiver evaluates its *own* payload's polynomial at the received
    point: equal payloads always agree (one-sided completeness), unequal
    payloads collide with probability < ``(1/3)^repetitions``.  Certificate
    size ``O(log k)``; together with Lemma C.3's ``Omega(log k)`` this pins
    the randomized verification complexity of ``Unif`` at ``Theta(log k)``.
    """

    name = "unif-direct-rpls"
    one_sided = True
    edge_independent = True

    def __init__(self, repetitions: int = 1):
        super().__init__(UnifPredicate())
        self.repetitions = repetitions

    def prover(self, configuration: Configuration) -> Dict[Node, BitString]:
        return {node: BitString.empty() for node in configuration.graph.nodes}

    def certificate(self, view: LabelView, port: int, rng: random.Random) -> BitString:
        payload = _payload(view.state)
        writer = BitWriter()
        writer.write_varuint(payload.length)
        writer.write_bitstring(
            Fingerprinter.shared(payload.length, repetitions=self.repetitions).make(
                payload, rng
            )
        )
        return writer.finish()

    def verify_at(self, view: VerifierView) -> bool:
        payload = _payload(view.state)
        fingerprinter = Fingerprinter.shared(
            payload.length, repetitions=self.repetitions
        )
        for message in view.messages:
            reader = BitReader(message)
            claimed_length = reader.read_varuint()
            if claimed_length != payload.length:
                return False
            fingerprint = reader.read_bitstring(reader.remaining)
            if not fingerprinter.check(payload, fingerprint):
                return False
        return True

    # -- batched-engine fast path ------------------------------------------------
    #
    # The payload and its fingerprinter are functions of the node state, so
    # the engine context pins them once per plan and certificates travel as
    # (claimed length, raw fingerprint) pairs.  See repro.engine.plan.

    def engine_node_context(self, view: LabelView) -> "_UnifNodeContext":
        payload = _payload(view.state)
        fingerprinter = Fingerprinter.shared(
            payload.length, repetitions=self.repetitions
        )
        return _UnifNodeContext(
            payload_length=payload.length,
            coefficients=fingerprinter.reversed_coefficients(payload),
            fingerprinter=fingerprinter,
        )

    def engine_certificate(self, context: "_UnifNodeContext", port: int, rng: random.Random):
        return (
            context.payload_length,
            context.fingerprinter.sample_raw(context.coefficients, rng),
        )

    def engine_verify(self, context: "_UnifNodeContext", messages, shared_rng) -> bool:
        length = context.payload_length
        coefficients = context.coefficients
        check_raw = context.fingerprinter.check_raw
        for claimed_length, raw_fingerprint in messages:
            if claimed_length != length:
                return False
            if not check_raw(coefficients, raw_fingerprint):
                return False
        return True
