"""Closed-form crossing thresholds — Theorems 4.4 and 4.7.

With ``r`` pairwise independent isomorphic subgraphs of ``s`` edges each:

- **Proposition 4.3 / Theorem 4.4 (deterministic).**  The concatenated labels
  of a (<= 2s)-node gadget occupy ``2*s*kappa`` bits; fewer than ``r``
  distinct values forces a collision, i.e. every PLS with
  ``kappa < log2(r) / (2s)`` is crossable: ``Omega(log r / s)``.
- **Proposition 4.8 (one-sided randomized).**  What must collide is the
  *support* of each certificate — a subset of ``2^kappa`` strings — over the
  ``2s`` directed edges: ``2^(2s * 2^kappa)`` possibilities, so
  ``kappa < log2(log2(r)) / (2s)`` forces a collision:
  ``Omega(log log r / s)``.
- **Proposition 4.6 / Theorem 4.7 (edge-independent two-sided).**  What must
  collide is the epsilon-rounded joint certificate distribution with
  ``epsilon = 1 / (12 s 2^(2 s kappa))``; the count is
  ``(2/epsilon)^(2^(2 s kappa))``, giving the same ``Omega(log log r / s)``
  asymptotics.  :func:`two_sided_crossing_threshold` solves the exact
  inequality ``(2^(4s) * 2^(2 s kappa))^(2^(2 s kappa)) < r`` instead of the
  asymptotic form.

Since ``r <= n``, the technique cannot prove more than ``Omega(log n)``
deterministically or ``Omega(log log n)`` randomizedly — the paper's remarks
after Theorems 4.4 and 4.7, visible in the tables benchmark E6/E7 print.
"""

from __future__ import annotations

import math


def _check_gadget_parameters(r: int, s: int) -> None:
    if r < 2:
        raise ValueError("need at least two gadget copies")
    if s < 1:
        raise ValueError("gadgets need at least one edge")


def deterministic_crossing_threshold(r: int, s: int) -> float:
    """Proposition 4.3: any PLS with ``kappa`` strictly below this is crossable.

    >>> deterministic_crossing_threshold(1024, 1)
    5.0
    """
    _check_gadget_parameters(r, s)
    return math.log2(r) / (2 * s)


def one_sided_crossing_threshold(r: int, s: int) -> float:
    """Proposition 4.8: one-sided RPLS threshold ``log2(log2 r) / (2s)``.

    >>> one_sided_crossing_threshold(2 ** 16, 1)
    2.0
    """
    _check_gadget_parameters(r, s)
    if r <= 2:
        return 0.0
    return math.log2(math.log2(r)) / (2 * s)


def two_sided_crossing_threshold(r: int, s: int) -> int:
    """Proposition 4.6, exact: the largest crossable ``kappa``.

    Returns the largest integer ``kappa`` such that
    ``(2^(4s) * 2^(2 s kappa))^(2^(2 s kappa)) < r`` — i.e. the number of
    epsilon-rounded distributions is below ``r``, so two gadgets must carry
    identical rounded certificate distributions and the crossing changes the
    acceptance probability by less than 1/3.  Returns -1 when not even
    ``kappa = 0`` satisfies the inequality.
    """
    _check_gadget_parameters(r, s)
    log_r = math.log2(r)
    kappa = -1
    while True:
        candidate = kappa + 1
        exponent = 2 ** (2 * s * candidate)
        # log2 of (2^(4s) * 2^(2*s*candidate)) ** exponent:
        total = exponent * (4 * s + 2 * s * candidate)
        if total < log_r:
            kappa = candidate
        else:
            return kappa


def gadget_copies_needed_deterministic(kappa: int, s: int) -> int:
    """Smallest ``r`` guaranteeing a label collision against ``kappa``-bit labels.

    Inverts Proposition 4.3: with ``r > 2^(2 s kappa)`` copies two gadgets
    must share their concatenated label string.
    """
    if kappa < 0 or s < 1:
        raise ValueError("kappa >= 0 and s >= 1 required")
    return 2 ** (2 * s * kappa) + 1


def gadget_copies_needed_one_sided(kappa: int, s: int) -> int:
    """Smallest ``r`` guaranteeing a support collision (Proposition 4.8).

    The proof represents one gadget's ``2s`` certificate supports as a subset
    of the ``2^(2 s kappa)`` possible concatenated certificate strings, so
    there are ``2^(2^(2 s kappa))`` support signatures; ``r`` exceeding that
    forces two gadgets to coincide.
    """
    if kappa < 0 or s < 1:
        raise ValueError("kappa >= 0 and s >= 1 required")
    return 2 ** (2 ** (2 * s * kappa)) + 1


def epsilon_for_two_sided(kappa: int, s: int) -> float:
    """The rounding granularity of Appendix D: ``1/(12 s 2^(2 s kappa))``."""
    if kappa < 0 or s < 1:
        raise ValueError("kappa >= 0 and s >= 1 required")
    return 1.0 / (12 * s * 2 ** (2 * s * kappa))
