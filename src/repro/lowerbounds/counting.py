"""Epsilon-rounded distributions — the counting core of Proposition 4.6.

Appendix D rounds certificate distributions down to multiples of ``epsilon``:

- two distributions with equal roundings differ by at most ``epsilon * |X|``
  on any event (Eq. 1), so swapping one fragment's certificate sources for
  the other's moves the acceptance probability by less than 1/3;
- there are at most ``(2/epsilon)^|X|`` distinct rounded distributions
  (Eq. 2), so enough gadget copies force a collision.

These helpers implement the rounding, the counting bound, and empirical
distribution estimation used by the two-sided crossing attack (which works
with sampled, then rounded, certificate distributions).
"""

from __future__ import annotations

import math
import random
from typing import Dict, Hashable, Mapping, Tuple


def round_down(value: float, epsilon: float) -> float:
    """``epsilon * floor(value / epsilon)`` — the paper's floor-to-grid."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    return epsilon * math.floor(value / epsilon)


def round_distribution(
    distribution: Mapping[Hashable, float], epsilon: float
) -> Dict[Hashable, float]:
    """Round every probability down to the epsilon grid.

    The result is generally *not* a probability distribution (it may sum to
    less than 1) — the paper's Appendix D makes the same observation and only
    uses roundings as collision signatures.
    """
    return {
        outcome: round_down(probability, epsilon)
        for outcome, probability in distribution.items()
    }


def rounded_signature(
    distribution: Mapping[Hashable, float], epsilon: float
) -> Tuple[Tuple[Hashable, int], ...]:
    """A hashable signature of the rounded distribution (grid indices).

    Zero entries are dropped, so distributions over different supports align.
    """
    items = []
    for outcome, probability in distribution.items():
        grid = math.floor(probability / epsilon)
        if grid:
            items.append((outcome, grid))
    return tuple(sorted(items, key=repr))


def count_rounded_distributions(domain_size: int, epsilon: float) -> float:
    """Upper bound ``(2/epsilon)^domain_size`` of Eq. (2) (as a float/log).

    Returns ``log2`` of the bound to avoid overflow; callers compare against
    ``log2(r)``.
    """
    if domain_size < 1:
        raise ValueError("domain must be non-empty")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    return domain_size * math.log2(2.0 / epsilon)


def total_variation_bound(domain_size: int, epsilon: float) -> float:
    """Eq. (1): rounding-equal distributions differ by ``< epsilon * |X|``."""
    return epsilon * domain_size


def empirical_distribution(
    sampler, trials: int, rng: random.Random
) -> Dict[Hashable, float]:
    """Estimate a distribution by sampling ``sampler(rng)`` repeatedly."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    counts: Dict[Hashable, int] = {}
    for _ in range(trials):
        outcome = sampler(rng)
        counts[outcome] = counts.get(outcome, 0) + 1
    return {outcome: count / trials for outcome, count in counts.items()}
