"""Section 4 lower-bound machinery, run as constructive attacks.

The paper's lower bounds are pigeonhole arguments, and pigeonhole arguments
are algorithms: enumerate gadget copies, find two whose labels (Prop 4.3),
certificate supports (Prop 4.8) or ε-rounded certificate distributions
(Prop 4.6) collide, and cross them (Definition 4.2).  This package executes
exactly those procedures:

- :mod:`repro.lowerbounds.bounds` — the closed-form thresholds of
  Theorems 4.4 / 4.7 and Propositions 4.3 / 4.6 / 4.8;
- :mod:`repro.lowerbounds.counting` — ε-rounded distributions and their
  counting bound (Eq. (1)-(2) in Appendix D);
- :mod:`repro.lowerbounds.truncation` — deliberately undersized schemes the
  attacks defeat, demonstrating the bounds are real;
- :mod:`repro.lowerbounds.crossing_attack` — the attacks themselves,
  including the iterated variant of Theorem 5.5;
- :mod:`repro.lowerbounds.reductions` — the RPLS→2-party-EQ reductions of
  Lemmas C.1 and C.3 behind the Theorem 3.5 tightness result.
"""

from repro.lowerbounds.bounds import (
    deterministic_crossing_threshold,
    one_sided_crossing_threshold,
    two_sided_crossing_threshold,
)
from repro.lowerbounds.crossing_attack import (
    AttackResult,
    CrossingGadgets,
    deterministic_crossing_attack,
    one_sided_support_attack,
)

__all__ = [
    "AttackResult",
    "CrossingGadgets",
    "deterministic_crossing_attack",
    "deterministic_crossing_threshold",
    "one_sided_crossing_threshold",
    "one_sided_support_attack",
    "two_sided_crossing_threshold",
]
