"""Crossing attacks — Propositions 4.3, 4.6, 4.8 and Theorem 5.5, executed.

An attack instance consists of a configuration plus ``r`` pairwise
independent, port-preserving-isomorphic gadget subgraphs
(:class:`CrossingGadgets`).  The attack:

1. runs the honest prover;
2. searches two gadgets whose *signatures* collide — concatenated labels
   (deterministic, Prop 4.3), sampled certificate supports (one-sided RPLS,
   Prop 4.8), or sampled-and-rounded certificate distributions
   (edge-independent two-sided RPLS, Prop 4.6);
3. crosses them (Definition 4.2) and re-runs the verifier *with the same
   labels* on the crossed configuration.

If the original was accepted and the crossed one is too — although it
violates the predicate — the scheme is *fooled*, which is exactly what the
propositions predict whenever the certificate size sits below the
corresponding threshold in :mod:`repro.lowerbounds.bounds`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.configuration import Configuration
from repro.core.scheme import (
    LabelView,
    ProofLabelingScheme,
    RandomizedScheme,
    SchemeParams,
    derive_rng,
)
from repro.core.verifier import (
    estimate_acceptance,
    verify_deterministic,
    verify_randomized,
)
from repro.graphs.crossing import cross_subgraphs, subgraphs_independent
from repro.graphs.isomorphism import is_port_preserving_isomorphism
from repro.graphs.port_graph import Node, PortGraph


@dataclass
class CrossingGadgets:
    """``r`` aligned gadget copies inside one configuration.

    ``gadget_nodes[i]`` lists the nodes of ``H_i`` in a fixed order so that
    the positional map ``gadget_nodes[i][t] -> gadget_nodes[j][t]`` is the
    isomorphism ``sigma_j ∘ sigma_i^{-1}``; ``gadget_edges[i]`` lists ``E_i``
    with endpoints drawn from that node list.
    """

    configuration: Configuration
    gadget_nodes: List[List[Node]]
    gadget_edges: List[List[Tuple[Node, Node]]]

    @property
    def r(self) -> int:
        return len(self.gadget_nodes)

    @property
    def s(self) -> int:
        return len(self.gadget_edges[0]) if self.gadget_edges else 0

    def sigma(self, i: int, j: int) -> Dict[Node, Node]:
        """The positional isomorphism ``H_i -> H_j``."""
        return dict(zip(self.gadget_nodes[i], self.gadget_nodes[j]))

    def validate(self) -> None:
        """Check independence and port-preserving isomorphism of all copies.

        Raises :class:`ValueError` on violation — benchmark code calls this
        once per family so the attack's preconditions are real, not assumed.
        """
        graph = self.configuration.graph
        for i in range(self.r):
            for j in range(i + 1, self.r):
                if not subgraphs_independent(
                    graph, set(self.gadget_nodes[i]), set(self.gadget_nodes[j])
                ):
                    raise ValueError(f"gadgets {i} and {j} are not independent")
        for i in range(1, self.r):
            if not is_port_preserving_isomorphism(
                graph, self.gadget_edges[0], self.sigma(0, i)
            ):
                raise ValueError(f"gadget {i} is not port-preserving isomorphic to gadget 0")


@dataclass
class AttackResult:
    """Outcome of one crossing attack."""

    collision_found: bool
    pair: Optional[Tuple[int, int]] = None
    original_accepted: Optional[bool] = None
    crossed_accepted: Optional[bool] = None
    crossed_configuration: Optional[Configuration] = None
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def fooled(self) -> bool:
        """True when the verifier accepted both the legal and crossed instance."""
        return bool(
            self.collision_found and self.original_accepted and self.crossed_accepted
        )


# ---------------------------------------------------------------------------
# gadget families for the paper's graphs
# ---------------------------------------------------------------------------


def path_gadgets(configuration: Configuration) -> CrossingGadgets:
    """Theorem 5.1's family: single edges ``{u_{3i}, u_{3i+1}}`` along a path.

    Assumes nodes are ``0..n-1`` in path order with consistent ports (as
    :func:`repro.graphs.generators.line_configuration` builds them).
    """
    n = configuration.node_count
    gadget_nodes = []
    gadget_edges = []
    # Start at i = 1: the endpoint u_0 has degree 1, so the edge {u_0, u_1}
    # carries different port numbers than the interior edges and would break
    # port preservation.
    for i in range(1, n // 3):
        a, b = 3 * i, 3 * i + 1
        if b + 1 >= n:
            break  # keep the last gadget clear of the far endpoint
        gadget_nodes.append([a, b])
        gadget_edges.append([(a, b)])
    return CrossingGadgets(configuration, gadget_nodes, gadget_edges)


def cycle_gadgets(
    configuration: Configuration, cycle_length: int, skip_anchor: bool = True
) -> CrossingGadgets:
    """The Figure 2 family: edges ``{v_{3i}, v_{3i+1}}`` along the cycle.

    ``skip_anchor`` starts at ``i = 1`` so no gadget touches ``v0`` or its
    chord endpoints' immediate cycle neighborhood, matching the proofs of
    Theorems 5.2 / 5.4 (their ``H_1 = {v1, v2}`` shifted to the uniform
    ``{v_{3i}, v_{3i+1}}`` form).
    """
    gadget_nodes = []
    gadget_edges = []
    start = 1 if skip_anchor else 0
    for i in range(start, cycle_length // 3):
        a, b = 3 * i, 3 * i + 1
        if b >= cycle_length:
            break
        gadget_nodes.append([a, b])
        gadget_edges.append([(a, b)])
    return CrossingGadgets(configuration, gadget_nodes, gadget_edges)


def chain_cycle_gadgets(
    configuration: Configuration, cycle_length: int
) -> CrossingGadgets:
    """The Figure 5 family: one edge from each cycle in the chain.

    Uses the edge ``{offset + 1, offset + 2}`` of each ``c``-cycle — away
    from the chaining connectors at ``offset`` and ``offset + c - 1``.
    """
    c = cycle_length
    n = configuration.node_count
    gadget_nodes = []
    gadget_edges = []
    cycle_count = n // c
    for index in range(cycle_count):
        a = index * c + 1
        b = index * c + 2
        gadget_nodes.append([a, b])
        gadget_edges.append([(a, b)])
    return CrossingGadgets(configuration, gadget_nodes, gadget_edges)


# ---------------------------------------------------------------------------
# deterministic attack (Proposition 4.3)
# ---------------------------------------------------------------------------


def _label_signature(labels, nodes: Sequence[Node]) -> Tuple:
    return tuple((labels[node].value, labels[node].length) for node in nodes)


def find_label_collision(
    labels, gadgets: CrossingGadgets
) -> Optional[Tuple[int, int]]:
    """First pair ``(i, j)`` of gadgets with identical concatenated labels."""
    seen: Dict[Tuple, int] = {}
    for index, nodes in enumerate(gadgets.gadget_nodes):
        signature = _label_signature(labels, nodes)
        if signature in seen:
            return seen[signature], index
        seen[signature] = index
    return None


def deterministic_crossing_attack(
    scheme: ProofLabelingScheme, gadgets: CrossingGadgets
) -> AttackResult:
    """Proposition 4.3, executed against a concrete scheme."""
    configuration = gadgets.configuration
    labels = scheme.prover(configuration)
    original = verify_deterministic(scheme, configuration, labels=labels)
    pair = find_label_collision(labels, gadgets)
    if pair is None:
        return AttackResult(
            collision_found=False, original_accepted=original.accepted
        )
    i, j = pair
    sigma = gadgets.sigma(i, j)
    crossed_graph = cross_subgraphs(
        configuration.graph, sigma, gadgets.gadget_edges[i]
    )
    crossed_configuration = configuration.with_graph(crossed_graph)
    crossed = verify_deterministic(scheme, crossed_configuration, labels=labels)
    return AttackResult(
        collision_found=True,
        pair=pair,
        original_accepted=original.accepted,
        crossed_accepted=crossed.accepted,
        crossed_configuration=crossed_configuration,
    )


# ---------------------------------------------------------------------------
# one-sided support attack (Proposition 4.8)
# ---------------------------------------------------------------------------


def _support_signature(
    scheme: RandomizedScheme,
    configuration: Configuration,
    labels,
    nodes: Sequence[Node],
    trials: int,
    seed: int,
) -> Tuple:
    """Sampled certificate supports over the gadget's directed edges.

    Exact supports are uncomputable in general; ``trials`` samples per
    directed edge approximate them (exact whenever the number of distinct
    certificates is small, as with fingerprints over a fixed label).
    """
    graph = configuration.graph
    params = SchemeParams.from_configuration(configuration)
    node_set = set(nodes)
    signature = []
    for node in nodes:
        view = LabelView(
            node=node,
            state=configuration.state(node),
            degree=graph.degree(node),
            params=params,
            own_label=labels[node],
        )
        for port in range(graph.degree(node)):
            if graph.neighbor(node, port) not in node_set:
                continue
            support = set()
            for trial in range(trials):
                rng = random.Random(f"support|{seed}|{trial}|{node!r}|{port}")
                certificate = scheme.certificate(view, port, rng)
                support.add((certificate.value, certificate.length))
            signature.append(frozenset(support))
    return tuple(signature)


def one_sided_support_attack(
    scheme: RandomizedScheme,
    gadgets: CrossingGadgets,
    trials: int = 512,
    acceptance_trials: int = 20,
    seed: int = 0,
) -> AttackResult:
    """Proposition 4.8, executed with sampled supports.

    The crossed configuration keeps the original labels; for a one-sided
    scheme whose colliding gadgets truly share supports, it must still be
    accepted with probability 1 — estimated over ``acceptance_trials`` runs.

    ``trials`` samples approximate each directed edge's support; it must
    comfortably exceed the support size (for fingerprint certificates, the
    field size ``p = O(kappa)``) times ``log`` of it, or sampling noise makes
    equal supports look different and the attack under-reports.
    """
    configuration = gadgets.configuration
    labels = scheme.prover(configuration)
    original = verify_randomized(scheme, configuration, seed=seed, labels=labels)
    seen: Dict[Tuple, int] = {}
    pair: Optional[Tuple[int, int]] = None
    for index, nodes in enumerate(gadgets.gadget_nodes):
        signature = _support_signature(
            scheme, configuration, labels, nodes, trials, seed
        )
        if signature in seen:
            pair = (seen[signature], index)
            break
        seen[signature] = index
    if pair is None:
        return AttackResult(
            collision_found=False, original_accepted=original.accepted
        )
    i, j = pair
    sigma = gadgets.sigma(i, j)
    crossed_graph = cross_subgraphs(
        configuration.graph, sigma, gadgets.gadget_edges[i]
    )
    crossed_configuration = configuration.with_graph(crossed_graph)
    estimate = estimate_acceptance(
        scheme,
        crossed_configuration,
        trials=acceptance_trials,
        seed=seed,
        labels=labels,
    )
    return AttackResult(
        collision_found=True,
        pair=pair,
        original_accepted=original.accepted,
        crossed_accepted=estimate.probability > 0.5,
        crossed_configuration=crossed_configuration,
        details={"crossed_acceptance": estimate},
    )


# ---------------------------------------------------------------------------
# iterated crossing (Theorem 5.5)
# ---------------------------------------------------------------------------


@dataclass
class IteratedCrossingResult:
    """Outcome of the Theorem 5.5 iterated attack."""

    iterations: int
    final_configuration: Configuration
    final_cycle_lengths: List[int]
    all_rounds_accepted: bool


def iterated_crossing_attack(
    scheme: ProofLabelingScheme,
    configuration: Configuration,
    cycle_nodes: Sequence[Node],
    target_length: int,
) -> IteratedCrossingResult:
    """Theorem 5.5: cross repeatedly until every cycle is shorter than ``c - 1``.

    ``cycle_nodes`` lists the initial long cycle in order (ports consistently
    ordered).  Each round finds, inside the longest remaining cycle, two
    independent edges whose endpoint label pairs collide, crosses them, and
    splits that cycle in two.  The verifier is re-run after every round with
    the unchanged labels; with undersized labels it keeps accepting while the
    predicate cycle-at-least-c silently turns false — the paper's iterative
    argument, executed.
    """
    labels = scheme.prover(configuration)
    current_graph = configuration.graph
    cycles: List[List[Node]] = [list(cycle_nodes)]
    iterations = 0
    all_accepted = verify_deterministic(
        scheme, configuration, labels=labels
    ).accepted

    while True:
        cycles.sort(key=len, reverse=True)
        if not cycles or len(cycles[0]) < max(target_length - 1, 3):
            break
        cycle = cycles[0]
        pair = _independent_colliding_cycle_edges(labels, cycle)
        if pair is None:
            break
        (a_index, b_index) = pair
        length = len(cycle)
        a_u, a_v = cycle[a_index], cycle[(a_index + 1) % length]
        b_u, b_v = cycle[b_index], cycle[(b_index + 1) % length]
        sigma = {a_u: b_u, a_v: b_v}
        current_graph = cross_subgraphs(current_graph, sigma, [(a_u, a_v)])
        # Crossing edges (a, a+1) and (b, b+1) of one cycle yields two cycles:
        # a+1..b and b+1..a (indices mod length).
        first = [cycle[(a_index + 1 + offset) % length] for offset in range((b_index - a_index) % length)]
        second = [cycle[(b_index + 1 + offset) % length] for offset in range((a_index - b_index) % length)]
        cycles = cycles[1:] + [first, second]
        iterations += 1
        crossed_configuration = configuration.with_graph(current_graph)
        run = verify_deterministic(scheme, crossed_configuration, labels=labels)
        all_accepted = all_accepted and run.accepted

    return IteratedCrossingResult(
        iterations=iterations,
        final_configuration=configuration.with_graph(current_graph),
        final_cycle_lengths=sorted((len(c) for c in cycles), reverse=True),
        all_rounds_accepted=all_accepted,
    )


def _independent_colliding_cycle_edges(
    labels, cycle: Sequence[Node]
) -> Optional[Tuple[int, int]]:
    """Two non-adjacent cycle positions with identical endpoint label pairs."""
    length = len(cycle)
    seen: Dict[Tuple, int] = {}
    for index in range(length):
        u, v = cycle[index], cycle[(index + 1) % length]
        signature = (
            labels[u].value,
            labels[u].length,
            labels[v].value,
            labels[v].length,
        )
        if signature in seen:
            other = seen[signature]
            # Independence: the two edges must neither share nodes nor be
            # joined by a cycle edge (gaps 2 and length-2 would create a
            # multi-edge after crossing).
            gap = (index - other) % length
            if 3 <= gap <= length - 3:
                return other, index
        else:
            seen[signature] = index
    return None
