"""RPLS → 2-party protocol reductions — Lemmas C.1 and C.3 (Theorem 3.5).

The tightness of the universal RPLS bound ``O(log n + log k)`` is proved by
simulation: an RPLS with short certificates for ``Sym`` (resp. ``Unif``)
yields a 2-party EQ protocol whose communication is the certificate traffic
across a single cut edge, contradicting Lemma 3.2 below ``Omega(log n)``
(resp. ``Omega(log k)``).  These functions *run* the simulations:

- :func:`sym_eq_protocol` — Lemma C.1.  Alice builds ``G(x, x)``, Bob builds
  ``G(y, y)``; each labels their own graph with the honest prover and
  simulates the verifier on their half of the *real* graph ``G(x, y)``
  (Figure 4).  Only the two certificates over the cut edge
  ``{u^0_{lam-1}, u^1_{lam-1}}`` are exchanged.  By Claim C.2,
  ``Sym(G(x, y))`` iff ``x == y``, so the joint accept/reject outcome decides
  EQ with the scheme's error.
- :func:`unif_eq_protocol` — Lemma C.3.  The graph is a single edge whose
  endpoints hold ``x`` and ``y``; communication is again the two
  certificates.

Both return the protocol output *and* the exact bits exchanged, which
benchmark E5 compares against the scheme's verification complexity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.bitstrings import BitString
from repro.core.scheme import RandomizedScheme
from repro.core.seeding import derive_trial_seed
from repro.core.verifier import verify_randomized
from repro.graphs.generators import sym_pair_configuration, two_node_configuration
from repro.graphs.port_graph import Node


@dataclass
class ReductionRun:
    """One execution of an RPLS-as-2-party-protocol simulation."""

    output: bool               # the protocol's EQ verdict (accept = "equal")
    ground_truth: bool         # x == y
    cut_bits: int              # certificate bits exchanged across the cut
    alice_accepts: bool
    bob_accepts: bool

    @property
    def correct(self) -> bool:
        return self.output == self.ground_truth


def _stitched_labels(
    alice_labels: Dict[Node, BitString],
    bob_labels: Dict[Node, BitString],
    alice_nodes,
    bob_nodes,
) -> Dict[Node, BitString]:
    labels = {}
    for node in alice_nodes:
        labels[node] = alice_labels[node]
    for node in bob_nodes:
        labels[node] = bob_labels[node]
    return labels


def sym_eq_protocol(
    scheme: RandomizedScheme, x: BitString, y: BitString, seed: int = 0
) -> ReductionRun:
    """Run the Lemma C.1 simulation once.

    ``scheme`` must be an RPLS for ``Sym`` (or any predicate that equals
    ``Sym`` on the gadget family).  Alice's labels come from the prover on
    ``G(x, x)``, Bob's from the prover on ``G(y, y)``; the verifier runs on
    ``G(x, y)`` with the stitched labels.
    """
    real_config, cut, alice_nodes, bob_nodes = sym_pair_configuration(x, y)
    alice_config, _cut_a, _, _ = sym_pair_configuration(x, x)
    bob_config, _cut_b, _, _ = sym_pair_configuration(y, y)

    alice_labels = scheme.prover(alice_config)
    bob_labels = scheme.prover(bob_config)
    labels = _stitched_labels(alice_labels, bob_labels, alice_nodes, bob_nodes)

    run = verify_randomized(scheme, real_config, seed=seed, labels=labels)

    cut_alice, cut_bob = cut
    graph = real_config.graph
    port_a = graph.port_to(cut_alice, cut_bob)
    port_b = graph.port_to(cut_bob, cut_alice)
    cut_bits = (
        run.certificates[(cut_alice, port_a)].length
        + run.certificates[(cut_bob, port_b)].length
    )

    alice_accepts = all(
        run.node_outputs[node] for node in alice_nodes
    )
    bob_accepts = all(run.node_outputs[node] for node in bob_nodes)
    return ReductionRun(
        output=alice_accepts and bob_accepts,
        ground_truth=x == y,
        cut_bits=cut_bits,
        alice_accepts=alice_accepts,
        bob_accepts=bob_accepts,
    )


def unif_eq_protocol(
    scheme: RandomizedScheme, x: BitString, y: BitString, seed: int = 0
) -> ReductionRun:
    """Run the Lemma C.3 simulation once.

    ``scheme`` must be an RPLS for ``Unif``.  Alice labels ``G(x)`` (both
    endpoints holding ``x``), Bob labels ``G(y)``; the verifier runs on the
    mixed two-node configuration.
    """
    real_config = two_node_configuration(x, y)
    alice_config = two_node_configuration(x, x)
    bob_config = two_node_configuration(y, y)

    alice_labels = scheme.prover(alice_config)
    bob_labels = scheme.prover(bob_config)
    labels = {1: alice_labels[1], 2: bob_labels[2]}

    run = verify_randomized(scheme, real_config, seed=seed, labels=labels)
    cut_bits = (
        run.certificates[(1, 0)].length + run.certificates[(2, 0)].length
    )
    return ReductionRun(
        output=run.node_outputs[1] and run.node_outputs[2],
        ground_truth=x == y,
        cut_bits=cut_bits,
        alice_accepts=run.node_outputs[1],
        bob_accepts=run.node_outputs[2],
    )


def reduction_error_rate(
    protocol, scheme: RandomizedScheme, x: BitString, y: BitString,
    trials: int, seed: int = 0,
) -> float:
    """Fraction of wrong EQ verdicts over ``trials`` independent runs."""
    wrong = 0
    for trial in range(trials):
        run = protocol(scheme, x, y, seed=derive_trial_seed(seed, trial))
        if not run.correct:
            wrong += 1
    return wrong / trials
