"""Deliberately undersized schemes — the attacks' demonstration targets.

Theorem 4.4 says *no* scheme with ``kappa < log2(r) / (2s)`` can work; to
exhibit that constructively the benchmarks need schemes that genuinely try
with fewer bits.  :class:`ModularAcyclicityPLS` is the natural candidate: it
compresses the Theta(log n) acyclicity labels (distances) to ``b`` bits by
reducing modulo ``M = 2^b``, with the verifier relaxed accordingly:

- every neighbor's label must be ``own ± 1 (mod M)``;
- at most one neighbor may sit at ``own - 1 (mod M)``.

On an honestly labeled path this always accepts, and for ``b >= log2(n)`` it
is exactly as strong as the full scheme.  For smaller ``b`` the pigeonhole of
Proposition 4.3 guarantees two single-edge gadgets with identical label pairs
once ``r > 2^(2b)``, and crossing them produces a *cycle* the scheme still
accepts — acyclicity broken, exactly at the predicted threshold.

:func:`modular_acyclicity_rpls` compiles the modular scheme (Theorem 3.1),
giving the randomized target for the support-collision attack of
Proposition 4.8.
"""

from __future__ import annotations

from typing import Dict

from repro.core.bitstrings import BitReader, BitString, BitWriter
from repro.core.configuration import Configuration
from repro.core.scheme import ProofLabelingScheme, VerifierView
from repro.graphs.port_graph import Node
from repro.schemes.acyclicity import AcyclicityPredicate


class ModularAcyclicityPLS(ProofLabelingScheme):
    """Acyclicity labels truncated to ``bits``-bit residues (``bits >= 2``).

    Verification complexity is exactly ``bits``; the scheme is complete on
    paths and sound only while ``2^bits`` exceeds the label diversity the
    crossing pigeonhole needs — which is the point.
    """

    name = "modular-acyclicity-pls"

    def __init__(self, bits: int):
        if bits < 2:
            raise ValueError("modulus must be at least 4 (bits >= 2)")
        super().__init__(AcyclicityPredicate())
        self.bits = bits
        self.modulus = 2**bits
        self.name = f"modular-acyclicity-pls({bits}b)"

    def prover(self, configuration: Configuration) -> Dict[Node, BitString]:
        graph = configuration.graph
        labels: Dict[Node, BitString] = {}
        assigned: Dict[Node, int] = {}
        for root in graph.nodes:
            if root in assigned:
                continue
            for node, depth in graph.bfs_distances(root).items():
                assigned[node] = depth
        for node, depth in assigned.items():
            labels[node] = BitString.from_int(depth % self.modulus, self.bits)
        return labels

    def verify_at(self, view: VerifierView) -> bool:
        if view.own_label.length != self.bits:
            return False
        own = view.own_label.value
        below = 0
        for message in view.messages:
            if message.length != self.bits:
                return False
            value = message.value
            if value == (own - 1) % self.modulus:
                below += 1
            elif value != (own + 1) % self.modulus:
                return False
        return below <= 1


def modular_acyclicity_rpls(bits: int, repetitions: int = 1):
    """The compiled modular scheme — target for the one-sided support attack."""
    from repro.core.compiler import FingerprintCompiledRPLS

    return FingerprintCompiledRPLS(ModularAcyclicityPLS(bits), repetitions=repetitions)


class ModularCycleIndexPLS(ProofLabelingScheme):
    """A truncated cycle-marking scheme for the cycle-length lower bounds.

    The Theorem 5.3 upper-bound scheme marks a witness cycle with
    ``(dist, index)`` labels; this variant reduces the index modulo
    ``M = 2^bits`` and relaxes the on-cycle rule to tolerate chords:

    - ``dist = 0``: among the neighbors with ``dist = 0`` there is at least
      one with index ``own + 1 (mod M)`` and at least one with
      ``own - 1 (mod M)``;
    - ``dist > 0``: some neighbor has ``dist - 1``.

    Completeness requires every planted cycle length to be divisible by
    ``M`` (otherwise the wrap-around is inconsistent) — callers pick gadget
    sizes accordingly.  With ``bits`` below the Theorem 5.4 / 5.6 thresholds
    the crossing attacks find equal-label edge pairs in different (or distant)
    cycle positions, and the crossed configuration — whose simple-cycle
    structure has changed — is still accepted.

    ``planted_cycles`` lists the witness cycles (node sequences in cycle
    order); the predicate is supplied by the caller (cycle-at-least-c for the
    Figure 2 families, cycle-at-most-c for the Figure 5 chain).
    """

    name = "modular-cycle-index-pls"

    def __init__(self, bits: int, predicate, planted_cycles):
        if bits < 2:
            raise ValueError("modulus must be at least 4 (bits >= 2)")
        super().__init__(predicate)
        self.bits = bits
        self.modulus = 2**bits
        self.planted_cycles = [list(cycle) for cycle in planted_cycles]
        self.name = f"modular-cycle-index-pls({bits}b)"
        for cycle in self.planted_cycles:
            if len(cycle) % self.modulus != 0:
                raise ValueError(
                    "planted cycle lengths must be divisible by the modulus "
                    "for the truncated scheme to be complete"
                )

    def prover(self, configuration: Configuration) -> Dict[Node, BitString]:
        from collections import deque

        from repro.core.bitstrings import BitWriter

        graph = configuration.graph
        index: Dict[Node, int] = {}
        for cycle in self.planted_cycles:
            for position, node in enumerate(cycle):
                index[node] = position % self.modulus
        dist: Dict[Node, int] = {node: 0 for node in index}
        queue = deque(index)
        while queue:
            current = queue.popleft()
            for neighbor in graph.neighbors(current):
                if neighbor not in dist:
                    dist[neighbor] = dist[current] + 1
                    queue.append(neighbor)
        labels = {}
        for node in graph.nodes:
            writer = BitWriter()
            writer.write_varuint(dist.get(node, 1))
            writer.write_uint(index.get(node, 0), self.bits)
            labels[node] = writer.finish()
        return labels

    def verify_at(self, view: VerifierView) -> bool:
        from repro.core.bitstrings import BitReader

        def parse(label: BitString):
            reader = BitReader(label)
            dist = reader.read_varuint()
            idx = reader.read_uint(self.bits)
            reader.expect_exhausted()
            return dist, idx

        own_dist, own_index = parse(view.own_label)
        neighbors = [parse(message) for message in view.messages]
        if own_dist == 0:
            on_cycle = [idx for dist, idx in neighbors if dist == 0]
            has_next = any(idx == (own_index + 1) % self.modulus for idx in on_cycle)
            has_prev = any(idx == (own_index - 1) % self.modulus for idx in on_cycle)
            return has_next and has_prev
        return any(dist == own_dist - 1 for dist, _idx in neighbors)
