"""Declarative experiment campaigns over the sharded executor.

A *campaign* is a list of *cells*, each one a fully-specified Monte-Carlo
estimation job: a picklable workload spec (:mod:`repro.parallel.spec`), a
trial budget, a master seed, and an optional Wilson stop.  Campaigns are
built either cell by cell or with :meth:`Campaign.sweep`, which crosses
workload families x rng modes x trial budgets x seeds — the shape of every
scaling experiment in this repository (and of the structured experiment
collections in the related perun project this layer borrows its
record-keeping from).

Results stream into a *sink* as JSON records, one per cell.  The
:class:`JsonlSink` is **resumable**: each record carries its cell's stable
key, a reopened sink loads the keys already present, and
:func:`run_campaign` skips those cells — so an interrupted overnight sweep
continues where it stopped instead of re-spending its budget.  Records are
flat JSON-lines on purpose: greppable, streamable, and safe under
append-only writes (a torn final line is detected and ignored on reload).

Cell identity covers the spec value, the trial budget, the master seed,
and the stop rule — not the executor backend, worker count, or shard
layout.  For **exhaustive** cells (no ``stop_halfwidth``) that is the full
result-determining set: rerunning with more workers resumes cleanly and
would produce bit-identical counts for the cells it reruns.  For
**early-exit** cells the recorded counts additionally depend on *where the
stop fired*, which varies with backend, worker count, and (on the
thread/process backends) shard completion order — every such record is
still an unbiased estimate over the trials it reports, with its Wilson
interval attached, so resumed records are statistically comparable but not
bit-reproducible.  The execution provenance (``executor``, ``workers``,
``shards``, ``stopped_early``) is stored in each record for exactly this
reason.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.parallel.executors import (
    ShardPlanner,
    estimate_acceptance_sharded,
    resolve_executor,
)
from repro.parallel.factories import workload_spec
from repro.parallel.spec import PlanSpec


@dataclass(frozen=True)
class Cell:
    """One estimation job of a campaign."""

    name: str
    spec: PlanSpec
    trials: int
    seed: int = 0
    stop_halfwidth: Optional[float] = None

    def __post_init__(self):
        if self.trials <= 0:
            raise ValueError("trials must be positive")

    def key(self) -> str:
        """The stable resume key of the cell.

        Exactly the cell's *statistical* identity: for exhaustive cells it
        pins the result bit for bit; for ``stop_halfwidth`` cells the
        recorded counts also depend on where the cooperative stop fired
        (see the module docstring), so a resumed record answers the same
        estimation question without necessarily repeating the same trial
        count.
        """
        return json.dumps(
            {
                "spec": self.spec.describe(),
                "trials": self.trials,
                "seed": self.seed,
                "stop_halfwidth": self.stop_halfwidth,
            },
            sort_keys=True,
        )


@dataclass(frozen=True)
class Campaign:
    """A named collection of cells, run as one unit over one worker pool."""

    name: str
    cells: Tuple[Cell, ...]

    def __post_init__(self):
        names = [cell.name for cell in self.cells]
        if len(set(names)) != len(names):
            raise ValueError("cell names within a campaign must be unique")

    def __len__(self) -> int:
        return len(self.cells)

    @classmethod
    def sweep(
        cls,
        name: str,
        workloads: Sequence[Union[str, Tuple[str, Dict]]],
        rng_modes: Sequence[str] = ("vector",),
        trial_budgets: Sequence[int] = (1024,),
        seeds: Sequence[int] = (0,),
        stop_halfwidth: Optional[float] = None,
    ) -> "Campaign":
        """Cross workload families x rng modes x budgets x seeds into cells.

        ``workloads`` entries are registry names (see
        :data:`repro.parallel.factories.WORKLOADS`), optionally paired with
        size kwargs: ``("spanning-tree", {"node_count": 200})``.

        >>> len(Campaign.sweep("s", ["spanning-tree", "shared-coins"],
        ...                    rng_modes=("fast", "vector"),
        ...                    trial_budgets=(100, 1000)).cells)
        8
        """
        cells: List[Cell] = []
        for entry in workloads:
            workload, kwargs = entry if isinstance(entry, tuple) else (entry, {})
            for rng_mode in rng_modes:
                spec = workload_spec(workload, rng_mode=rng_mode, **kwargs)
                size = ",".join(f"{k}={v}" for k, v in sorted(kwargs.items()))
                sized = f"{workload}({size})" if size else workload
                for trials in trial_budgets:
                    for seed in seeds:
                        cells.append(
                            Cell(
                                name=f"{sized}/{rng_mode}/t{trials}/s{seed}",
                                spec=spec,
                                trials=trials,
                                seed=seed,
                                stop_halfwidth=stop_halfwidth,
                            )
                        )
        return cls(name=name, cells=tuple(cells))


class MemorySink:
    """An in-memory sink — the default for tests and interactive runs."""

    def __init__(self):
        self.records: List[Dict] = []
        self._keys = set()

    def completed(self, cell: Cell) -> bool:
        return cell.key() in self._keys

    def write(self, record: Dict) -> None:
        self.records.append(record)
        self._keys.add(record["cell_key"])


class JsonlSink:
    """Append-only JSON-lines sink with resume support.

    ``resume=True`` (default) loads the cell keys already recorded so
    :func:`run_campaign` can skip them; ``resume=False`` truncates.
    """

    def __init__(self, path: Union[str, Path], resume: bool = True):
        self.path = Path(path)
        self.records: List[Dict] = []
        self._keys = set()
        if resume and self.path.exists():
            for line in self.path.read_text().splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail line from an interrupted run
                self.records.append(record)
                self._keys.add(record.get("cell_key"))
        elif not resume and self.path.exists():
            self.path.unlink()
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def completed(self, cell: Cell) -> bool:
        return cell.key() in self._keys

    def write(self, record: Dict) -> None:
        with self.path.open("a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        self.records.append(record)
        self._keys.add(record["cell_key"])


def run_campaign(
    campaign: Campaign,
    executor: Union[str, object, None] = "serial",
    workers: Optional[int] = None,
    sink=None,
    planner: Optional[ShardPlanner] = None,
    chunk_size: int = 64,
    vectorize: Optional[bool] = None,
) -> List[Dict]:
    """Run every (not yet completed) cell; returns the new records.

    One executor instance — hence one warm worker pool and one set of
    per-process plan caches — serves the whole campaign.  Each record holds
    the cell identity, the merged estimate with its Wilson interval, the
    shard/worker provenance, and the wall-clock cost:

    ``campaign, cell, cell_key, factory, args, kwargs, randomness,
    rng_mode, requested_trials, trials, accepted, probability, wilson_low,
    wilson_high, stopped_early, shards, executor, workers, elapsed_sec``
    """
    if sink is None:
        sink = MemorySink()
    instance, owned = resolve_executor(executor, workers)
    new_records: List[Dict] = []
    try:
        for cell in campaign.cells:
            if sink.completed(cell):
                continue
            start = time.perf_counter()
            sharded = estimate_acceptance_sharded(
                cell.spec,
                cell.trials,
                seed=cell.seed,
                executor=instance,
                planner=planner,
                chunk_size=chunk_size,
                stop_halfwidth=cell.stop_halfwidth,
                vectorize=vectorize,
            )
            elapsed = time.perf_counter() - start
            estimate = sharded.estimate
            low, high = (
                estimate.interval if estimate.trials else (float("nan"), float("nan"))
            )
            record = {
                "campaign": campaign.name,
                "cell": cell.name,
                "cell_key": cell.key(),
                **cell.spec.describe(),
                "requested_trials": cell.trials,
                "trials": estimate.trials,
                "accepted": estimate.accepted,
                "probability": (
                    estimate.probability if estimate.trials else float("nan")
                ),
                "wilson_low": low,
                "wilson_high": high,
                "stopped_early": sharded.stopped_early,
                "shards": sharded.shards,
                "executor": sharded.executor,
                "workers": sharded.workers,
                "elapsed_sec": round(elapsed, 6),
            }
            sink.write(record)
            new_records.append(record)
    finally:
        if owned:
            instance.close()
    return new_records
