"""Declarative experiment campaigns over the sharded executor.

A *campaign* is a list of *cells*, each one a fully-specified Monte-Carlo
estimation job: a picklable workload spec (:mod:`repro.parallel.spec`), a
trial budget, a master seed, and an optional Wilson stop.  Campaigns are
built either cell by cell or with :meth:`Campaign.sweep`, which crosses
workload families x rng modes x trial budgets x seeds — the shape of every
scaling experiment in this repository (and of the structured experiment
collections in the related perun project this layer borrows its
record-keeping from).

Results stream into a *sink* as JSON records, one per cell.  The
:class:`JsonlSink` is **resumable**: each record carries its cell's stable
key, a reopened sink loads the keys already present, and
:func:`run_campaign` skips those cells — so an interrupted overnight sweep
continues where it stopped instead of re-spending its budget.  Records are
flat JSON-lines on purpose: greppable, streamable, and safe under
append-only writes (a torn final line is detected and ignored on reload).

Cell identity covers the spec value, the trial budget, the master seed,
and the stop rule — not the executor backend, worker count, or shard
layout.  For **exhaustive** cells (no ``stop_halfwidth``) that is the full
result-determining set: rerunning with more workers resumes cleanly and
would produce bit-identical counts for the cells it reruns.  For
**early-exit** cells the recorded counts additionally depend on *where the
stop fired*, which varies with backend, worker count, and (on the
thread/process backends) shard completion order — every such record is
still an unbiased estimate over the trials it reports, with its Wilson
interval attached, so resumed records are statistically comparable but not
bit-reproducible.  The execution provenance (``executor``, ``workers``,
``shards``, ``stopped_early``) is stored in each record for exactly this
reason.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.runtime import get_recorder
from repro.parallel.controller import CampaignAllocator
from repro.parallel.executors import (
    DEFAULT_CHUNK,
    ShardPlanner,
    estimate_acceptance_sharded,
    resolve_executor,
)
from repro.parallel.factories import workload_spec
from repro.parallel.spec import PlanSpec


@dataclass(frozen=True)
class Cell:
    """One estimation job of a campaign."""

    name: str
    spec: PlanSpec
    trials: int
    seed: int = 0
    stop_halfwidth: Optional[float] = None

    def __post_init__(self):
        if self.trials <= 0:
            raise ValueError("trials must be positive")

    def key(self) -> str:
        """The stable resume key of the cell.

        Exactly the cell's *statistical* identity: for exhaustive cells it
        pins the result bit for bit; for ``stop_halfwidth`` cells the
        recorded counts also depend on where the cooperative stop fired
        (see the module docstring), so a resumed record answers the same
        estimation question without necessarily repeating the same trial
        count.
        """
        return json.dumps(
            {
                "spec": self.spec.describe(),
                "trials": self.trials,
                "seed": self.seed,
                "stop_halfwidth": self.stop_halfwidth,
            },
            sort_keys=True,
        )


@dataclass(frozen=True)
class Campaign:
    """A named collection of cells, run as one unit over one worker pool."""

    name: str
    cells: Tuple[Cell, ...]

    def __post_init__(self):
        names = [cell.name for cell in self.cells]
        if len(set(names)) != len(names):
            raise ValueError("cell names within a campaign must be unique")

    def __len__(self) -> int:
        return len(self.cells)

    @classmethod
    def sweep(
        cls,
        name: str,
        workloads: Sequence[Union[str, Tuple[str, Dict]]],
        rng_modes: Sequence[str] = ("vector",),
        trial_budgets: Sequence[int] = (1024,),
        seeds: Sequence[int] = (0,),
        stop_halfwidth: Optional[float] = None,
    ) -> "Campaign":
        """Cross workload families x rng modes x budgets x seeds into cells.

        ``workloads`` entries are registry names (see
        :data:`repro.parallel.factories.WORKLOADS`), optionally paired with
        size kwargs: ``("spanning-tree", {"node_count": 200})``.

        >>> len(Campaign.sweep("s", ["spanning-tree", "shared-coins"],
        ...                    rng_modes=("fast", "vector"),
        ...                    trial_budgets=(100, 1000)).cells)
        8
        """
        cells: List[Cell] = []
        for entry in workloads:
            workload, kwargs = entry if isinstance(entry, tuple) else (entry, {})
            for rng_mode in rng_modes:
                spec = workload_spec(workload, rng_mode=rng_mode, **kwargs)
                size = ",".join(f"{k}={v}" for k, v in sorted(kwargs.items()))
                sized = f"{workload}({size})" if size else workload
                for trials in trial_budgets:
                    for seed in seeds:
                        cells.append(
                            Cell(
                                name=f"{sized}/{rng_mode}/t{trials}/s{seed}",
                                spec=spec,
                                trials=trials,
                                seed=seed,
                                stop_halfwidth=stop_halfwidth,
                            )
                        )
        return cls(name=name, cells=tuple(cells))


def _record_completes(record: Dict) -> bool:
    """Whether a record marks its cell *done* for resume purposes.

    ``status="failed"`` records (graceful degradation, see
    :func:`run_campaign`) document the failure without claiming the cell:
    a resumed campaign re-attempts exactly those cells.  Records from
    before the ``status`` field existed are successes.
    """
    return record.get("status", "ok") != "failed"


class MemorySink:
    """An in-memory sink — the default for tests and interactive runs."""

    def __init__(self):
        self.records: List[Dict] = []
        self._keys = set()

    def completed(self, cell: Cell) -> bool:
        return cell.key() in self._keys

    def write(self, record: Dict) -> None:
        self.records.append(record)
        if _record_completes(record):
            self._keys.add(record.get("cell_key"))


class JsonlSink:
    """Append-only JSON-lines sink with resume support.

    ``resume=True`` (default) loads the cell keys already recorded so
    :func:`run_campaign` can skip them; ``resume=False`` truncates.  Torn
    lines — a process killed mid-append can tear the tail, and a crashed
    filesystem can tear lines mid-file — are skipped with a warning and
    counted in ``torn_lines``, never fatal: the sink's promise is that
    every *intact* record survives and resume proceeds from those.
    ``status="failed"`` records are loaded (they are provenance) but do
    not mark their cell complete, so resume re-attempts failed cells only.

    ``fsync=True`` fsyncs after every append — crash-consistent campaign
    logs at the cost of one ``fsync`` per cell (cells run for seconds;
    the sync is noise).
    """

    def __init__(self, path: Union[str, Path], resume: bool = True, fsync: bool = False):
        self.path = Path(path)
        self.fsync = fsync
        self.records: List[Dict] = []
        self.torn_lines = 0
        self._keys = set()
        if resume and self.path.exists():
            for number, line in enumerate(self.path.read_text().splitlines(), 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    self.torn_lines += 1
                    print(
                        f"warning: {self.path}: skipping torn record on "
                        f"line {number}",
                        file=sys.stderr,
                    )
                    continue
                self.records.append(record)
                if _record_completes(record):
                    self._keys.add(record.get("cell_key"))
        elif not resume and self.path.exists():
            self.path.unlink()
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def completed(self, cell: Cell) -> bool:
        return cell.key() in self._keys

    def write(self, record: Dict) -> None:
        with self.path.open("a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            if self.fsync:
                handle.flush()
                os.fsync(handle.fileno())
        self.records.append(record)
        if _record_completes(record):
            # .get: the sink also carries non-campaign records (the bench
            # history profiles of repro.benchhistory), which have no cell key.
            self._keys.add(record.get("cell_key"))


def _run_cell(
    campaign: Campaign,
    cell: Cell,
    instance,
    planner: Optional[ShardPlanner],
    chunk_size: int,
    chunk_policy,
    vectorize: Optional[bool],
    stream_progress: bool,
    shard_timeout: Optional[float] = None,
    max_retries: int = 0,
    trace_parent: Optional[str] = None,
) -> Dict:
    """Execute one cell on the shared executor and build its record.

    ``trace_parent`` is the campaign span's id, passed explicitly because
    concurrent cells run on scheduler threads where the recorder's
    thread-local span stack cannot see the campaign span.  The *cell* span
    opened here lives on the executing thread's stack, so the run span
    inside the estimator parents onto it automatically.
    """
    recorder = get_recorder()
    cell_attrs = None
    if recorder.enabled:
        cell_attrs = {
            "key": cell.name,
            "campaign": campaign.name,
            "trials": cell.trials,
            "seed": cell.seed,
        }
    start = time.perf_counter()
    with recorder.span("cell", cell_attrs, parent=trace_parent) as cell_span:
        sharded = estimate_acceptance_sharded(
            cell.spec,
            cell.trials,
            seed=cell.seed,
            executor=instance,
            planner=planner,
            chunk_size=chunk_size,
            chunk_policy=chunk_policy,
            stop_halfwidth=cell.stop_halfwidth,
            vectorize=vectorize,
            stream_progress=stream_progress,
            shard_timeout=shard_timeout,
            max_retries=max_retries,
        )
        cell_span.set("trials_run", sharded.estimate.trials)
        cell_span.set("stopped_early", sharded.stopped_early)
    elapsed = time.perf_counter() - start
    estimate = sharded.estimate
    # Zero-trial estimates report nan probability/interval directly (a
    # pre-satisfied stop can legitimately produce them); no guards needed.
    low, high = estimate.interval
    record = {
        "campaign": campaign.name,
        "cell": cell.name,
        "cell_key": cell.key(),
        "status": "ok",
        **cell.spec.describe(),
        "requested_trials": cell.trials,
        "trials": estimate.trials,
        "accepted": estimate.accepted,
        "probability": estimate.probability,
        "wilson_low": low,
        "wilson_high": high,
        "stopped_early": sharded.stopped_early,
        "streamed": sharded.streamed,
        "shards": sharded.shards,
        "executor": sharded.executor,
        "workers": sharded.workers,
        "elapsed_sec": round(elapsed, 6),
    }
    if sharded.report is not None:
        record["supervision"] = sharded.report.as_dict()
        # Executor-lifetime router drop/leak counters (process backend; see
        # ProgressRouter.stats) — recorded, not warning-only.
        stats = getattr(instance, "progress_stats", None)
        if stats is not None:
            try:
                router_stats = stats()
            except Exception:
                router_stats = None
            if router_stats is not None:
                record["supervision"]["progress_router"] = router_stats
    return record


def _failure_record(campaign: Campaign, cell: Cell, error: Exception) -> Dict:
    """The ``status="failed"`` record of a cell that ran out of attempts.

    Carries the cell identity and the error payload but never marks the
    cell complete (see :func:`_record_completes`): a resumed campaign
    re-attempts exactly the failed cells.
    """
    return {
        "campaign": campaign.name,
        "cell": cell.name,
        "cell_key": cell.key(),
        "status": "failed",
        **cell.spec.describe(),
        "requested_trials": cell.trials,
        "error": {"type": type(error).__name__, "message": str(error)},
    }


def _attempt_cell(
    campaign: Campaign,
    cell: Cell,
    on_cell_error: str,
    cell_retries: int,
    run_args,
) -> Tuple[Optional[Dict], Optional[Exception]]:
    """Run one cell under the campaign's error policy.

    Returns ``(record, None)`` on success and ``(None, error)`` when the
    policy swallowed the failure (``skip``, or ``retry`` exhausted);
    ``on_cell_error="raise"`` propagates instead.  Only :class:`Exception`
    is ever swallowed — ``KeyboardInterrupt``/``SystemExit`` always
    propagate, so an interrupt cannot be degraded into a failure record.
    """
    attempts = 1 + (max(0, cell_retries) if on_cell_error == "retry" else 0)
    last_error: Optional[Exception] = None
    for _attempt in range(attempts):
        try:
            return _run_cell(campaign, cell, *run_args), None
        except Exception as exc:
            if on_cell_error == "raise":
                raise
            last_error = exc
    return None, last_error


def run_campaign(
    campaign: Campaign,
    executor: Union[str, object, None] = "serial",
    workers: Optional[int] = None,
    sink=None,
    planner: Optional[ShardPlanner] = None,
    chunk_size: int = DEFAULT_CHUNK,
    chunk_policy=None,
    vectorize: Optional[bool] = None,
    cell_parallelism: int = 1,
    stream_progress: bool = False,
    on_cell_error: str = "raise",
    cell_retries: int = 1,
    shard_timeout: Optional[float] = None,
    max_retries: int = 0,
    global_budget: Optional[int] = None,
    target_halfwidth: Optional[float] = None,
    min_installment: int = DEFAULT_CHUNK,
) -> List[Dict]:
    """Run every (not yet completed) cell; returns the new records.

    One executor instance — hence one warm worker pool and one set of
    per-process plan caches — serves the whole campaign.  Each record holds
    the cell identity, the merged estimate with its Wilson interval, the
    shard/worker provenance, and the wall-clock cost:

    ``campaign, cell, cell_key, factory, args, kwargs, randomness,
    rng_mode, requested_trials, trials, accepted, probability, wilson_low,
    wilson_high, stopped_early, streamed, shards, executor, workers,
    elapsed_sec``

    ``cell_parallelism`` > 1 schedules that many independent cells
    concurrently over the *same* executor pool — the cell scheduler keeps
    the pool saturated when individual cells are too small to fill it.
    Ordering and resume semantics are unchanged: records are written to the
    sink in campaign declaration order (a completed cell buffers until
    every earlier cell has been written), cells are independent jobs with
    per-run stop tokens, and skip-on-resume happens before scheduling.
    Apart from ``elapsed_sec``, concurrent-cell records are identical to a
    serial-cell run's.  ``stream_progress`` turns on the progressive shard
    channel for every cell (see
    :func:`~repro.parallel.executors.estimate_acceptance_sharded`).

    Graceful degradation (``on_cell_error``): with ``"raise"`` (default,
    the historical behaviour) the first failing cell aborts the campaign.
    ``"skip"`` records the failure in the sink as a ``status="failed"``
    record — error type and message attached — and keeps running sibling
    cells; ``"retry"`` re-attempts the cell up to ``cell_retries`` times
    first and then degrades like ``skip``.  Failed records never mark a
    cell complete, so a subsequent resume re-attempts exactly the failed
    cells.  ``KeyboardInterrupt`` always propagates regardless of policy
    (the ordered prefix already written stays resumable).

    ``shard_timeout`` / ``max_retries`` pass through to every cell's
    :func:`~repro.parallel.executors.estimate_acceptance_sharded` call —
    shard-level supervision (heartbeat deadlines, deterministic retry,
    quarantine; see :mod:`repro.parallel.supervision`) underneath the
    cell-level policy above.

    Adaptive budgets (``global_budget`` + ``target_halfwidth``; see
    :mod:`repro.parallel.controller` and docs/parallel.md): instead of each
    cell spending its own ``trials`` budget, one global pool of trials is
    granted to cells in rounds by a :class:`CampaignAllocator` — cells
    whose cumulative Wilson interval reaches the target halfwidth are
    starved, and their unspent budget flows to the widest remaining cells.
    Installments always extend a cell's consumed counter prefix (future
    ranges only — per-trial verdicts are untouched by allocation), run with
    ``stream_progress`` forced on, and each cell's record carries its
    ``allocation`` history (per-installment ``first_trial``/``trials``) so
    a resumed or follow-up campaign can continue the exact counter range.
    ``chunk_policy`` (a policy object from
    :mod:`repro.parallel.controller`, e.g. ``parse_chunk_policy("geometric")``)
    applies to every cell on both the fixed and adaptive paths.
    """
    if cell_parallelism < 1:
        raise ValueError("cell_parallelism must be positive")
    if global_budget is not None and target_halfwidth is None:
        raise ValueError("global_budget requires target_halfwidth")
    if target_halfwidth is not None and global_budget is None:
        raise ValueError(
            "target_halfwidth requires global_budget (use the cells' "
            "stop_halfwidth for a per-cell stop rule)"
        )
    if on_cell_error not in ("raise", "skip", "retry"):
        raise ValueError(
            f"on_cell_error must be 'raise', 'skip' or 'retry', "
            f"got {on_cell_error!r}"
        )
    if cell_retries < 0:
        raise ValueError("cell_retries must be non-negative")
    if sink is None:
        sink = MemorySink()
    instance, owned = resolve_executor(executor, workers)
    new_records: List[Dict] = []
    # Claim keys as cells are scheduled: two cells sharing one resume key
    # (identical spec/trials/seed under different names) run once, exactly
    # as the old immediately-before-run completed() check deduplicated.
    claimed = set()
    pending = []
    for cell in campaign.cells:
        key = cell.key()
        if sink.completed(cell) or key in claimed:
            continue
        claimed.add(key)
        pending.append(cell)
    recorder = get_recorder()
    campaign_attrs = None
    if recorder.enabled:
        campaign_attrs = {
            "campaign": campaign.name,
            "cells": len(pending),
            "skipped": len(campaign.cells) - len(pending),
            "executor": getattr(instance, "name", "?"),
            "cell_parallelism": cell_parallelism,
        }
        if global_budget is not None:
            campaign_attrs["global_budget"] = global_budget
            campaign_attrs["target_halfwidth"] = target_halfwidth
    campaign_span = recorder.span("campaign", campaign_attrs)
    run_args = (
        instance, planner, chunk_size, chunk_policy, vectorize, stream_progress,
        shard_timeout, max_retries, campaign_span.span_id,
    )
    try:
        if global_budget is not None and pending:
            _run_adaptive_campaign(
                campaign, pending, instance, planner, chunk_size, chunk_policy,
                vectorize, shard_timeout, max_retries, global_budget,
                target_halfwidth, min_installment, cell_parallelism,
                on_cell_error, cell_retries, sink, new_records, campaign_span,
            )
        elif cell_parallelism == 1 or len(pending) <= 1:
            for cell in pending:
                record, error = _attempt_cell(
                    campaign, cell, on_cell_error, cell_retries, run_args
                )
                if record is None:
                    record = _failure_record(campaign, cell, error)
                sink.write(record)
                new_records.append(record)
        else:
            _run_cells_concurrently(
                campaign, pending, run_args, on_cell_error, cell_retries,
                min(cell_parallelism, len(pending)), sink, new_records,
            )
    except BaseException as exc:
        campaign_span.__exit__(type(exc), exc, None)
        raise
    finally:
        if owned:
            instance.close()
    campaign_span.set("records", len(new_records))
    campaign_span.__exit__(None, None, None)
    return new_records


def _run_cells_concurrently(
    campaign: Campaign,
    pending: List[Cell],
    run_args,
    on_cell_error: str,
    cell_retries: int,
    threads: int,
    sink,
    new_records: List[Dict],
) -> None:
    """The cell scheduler: a small thread team pulls cells off an ordered
    queue and runs them over the shared executor; finished records buffer
    until every earlier cell's record is written, so the sink sees campaign
    declaration order regardless of completion order.

    Cell failures follow ``on_cell_error`` exactly like the serial path:
    under ``skip``/``retry`` a failed cell contributes a ``status="failed"``
    record that flushes in declaration order like any other, and siblings
    keep running.  Under ``raise`` (and for ``KeyboardInterrupt`` always)
    the contiguous prefix of completed records stays written (resume will
    skip it); records of cells *after* the failure are discarded rather
    than written out of order, and the first error re-raises.
    """
    state_lock = threading.Lock()
    cursor = 0
    flushed = 0
    buffered: Dict[int, Dict] = {}
    errors: List[BaseException] = []

    def worker() -> None:
        nonlocal cursor, flushed
        while True:
            with state_lock:
                if errors or cursor >= len(pending):
                    return
                position = cursor
                cursor += 1
            cell = pending[position]
            try:
                record, error = _attempt_cell(
                    campaign, cell, on_cell_error, cell_retries, run_args
                )
                if record is None:
                    record = _failure_record(campaign, cell, error)
            except BaseException as exc:  # re-raised in the caller
                with state_lock:
                    errors.append(exc)
                return
            with state_lock:
                buffered[position] = record
                try:
                    while flushed in buffered:
                        # Pop only after a successful write, so a failing
                        # sink loses no buffered record.
                        sink.write(buffered[flushed])
                        new_records.append(buffered.pop(flushed))
                        flushed += 1
                except BaseException as exc:  # sink failures re-raise too
                    errors.append(exc)
                    return

    team = [
        threading.Thread(target=worker, name=f"repro-cell-{index}")
        for index in range(threads)
    ]
    for thread in team:
        thread.start()
    for thread in team:
        thread.join()
    if errors:
        raise errors[0]


def _run_adaptive_campaign(
    campaign: Campaign,
    pending: List[Cell],
    instance,
    planner: Optional[ShardPlanner],
    chunk_size: int,
    chunk_policy,
    vectorize: Optional[bool],
    shard_timeout: Optional[float],
    max_retries: int,
    global_budget: int,
    target_halfwidth: float,
    min_installment: int,
    cell_parallelism: int,
    on_cell_error: str,
    cell_retries: int,
    sink,
    new_records: List[Dict],
    campaign_span,
) -> None:
    """The global-budget campaign loop: allocator rounds over installments.

    Each round the :class:`~repro.parallel.controller.CampaignAllocator`
    produces a grant table; every granted cell runs one *installment* — a
    streamed sharded estimate over the next ``granted`` trials of its
    counter sequence (``first_trial`` = the consumed prefix, ``prior`` = the
    prefix's counts, so the Wilson stop applies to the cell's *cumulative*
    interval and fires as soon as the target halfwidth is reached
    mid-installment).  Only consumed trials are booked against the budget;
    a converged installment's unspent grant implicitly returns to the pool.

    Ordering and resume match the fixed path: one record per cell, written
    in declaration order after the budget is spent, each carrying the
    cell's full ``allocation`` history.  ``on_cell_error="skip"``/``"retry"``
    degrade a repeatedly-failing cell to a ``status="failed"`` record (its
    remaining budget serves the other cells); ``"raise"`` aborts.
    """
    from concurrent.futures import ThreadPoolExecutor

    allocator = CampaignAllocator(
        [cell.name for cell in pending],
        global_budget,
        target_halfwidth,
        min_installment=min_installment,
    )
    cells = {cell.name: cell for cell in pending}
    elapsed = {cell.name: 0.0 for cell in pending}
    shard_totals = {cell.name: 0 for cell in pending}
    errors: Dict[str, Exception] = {}

    def run_installment(name: str, granted: int):
        cell = cells[name]
        prior = allocator.counts(name)
        attempts = 1 + (max(0, cell_retries) if on_cell_error == "retry" else 0)
        last_error: Optional[Exception] = None
        for _attempt in range(attempts):
            start = time.perf_counter()
            try:
                sharded = estimate_acceptance_sharded(
                    cell.spec,
                    granted,
                    seed=cell.seed,
                    executor=instance,
                    planner=planner,
                    chunk_size=chunk_size,
                    chunk_policy=chunk_policy,
                    stop_halfwidth=target_halfwidth,
                    vectorize=vectorize,
                    stream_progress=True,
                    first_trial=prior[1],
                    prior=prior,
                    shard_timeout=shard_timeout,
                    max_retries=max_retries,
                )
            except Exception as exc:
                if on_cell_error == "raise":
                    raise
                last_error = exc
                continue
            return sharded, time.perf_counter() - start, None
        return None, 0.0, last_error

    while True:
        grants = allocator.grants()
        if not grants:
            break
        ordered = list(grants.items())
        if cell_parallelism > 1 and len(ordered) > 1:
            with ThreadPoolExecutor(
                max_workers=min(cell_parallelism, len(ordered)),
                thread_name_prefix="repro-cell",
            ) as team:
                outcomes = list(
                    team.map(lambda item: run_installment(*item), ordered)
                )
        else:
            outcomes = [run_installment(name, granted) for name, granted in ordered]
        progressed = False
        for (name, granted), (sharded, spent, error) in zip(ordered, outcomes):
            if error is not None:
                allocator.fail(name)
                errors[name] = error
                progressed = True
                continue
            estimate = sharded.estimate
            allocator.settle(
                name,
                first_trial=allocator.counts(name)[1],
                granted=granted,
                accepted=estimate.accepted,
                trials=estimate.trials,
            )
            elapsed[name] += spent
            shard_totals[name] += sharded.shards
            if estimate.trials > 0:
                progressed = True
        if not progressed:
            # A full round granted budget and nothing ran (wedged pool,
            # every shard quarantined, ...): stop granting instead of
            # spinning — the records below document the shortfall.
            break

    from repro.simulation.metrics import AcceptanceEstimate

    for cell in pending:
        accepted, consumed = allocator.counts(cell.name)
        history = allocator.history(cell.name)
        if cell.name in errors:
            record = _failure_record(campaign, cell, errors[cell.name])
            record["allocation"] = history
        else:
            estimate = AcceptanceEstimate(accepted=accepted, trials=consumed)
            low, high = estimate.interval
            record = {
                "campaign": campaign.name,
                "cell": cell.name,
                "cell_key": cell.key(),
                "status": "ok",
                **cell.spec.describe(),
                "requested_trials": cell.trials,
                "trials": estimate.trials,
                "accepted": estimate.accepted,
                "probability": estimate.probability,
                "wilson_low": low,
                "wilson_high": high,
                "stopped_early": history["converged"],
                "streamed": True,
                "shards": shard_totals[cell.name],
                "executor": getattr(instance, "name", "?"),
                "workers": getattr(instance, "workers", 1),
                "elapsed_sec": round(elapsed[cell.name], 6),
                "allocation": history,
            }
        sink.write(record)
        new_records.append(record)
    for key, value in allocator.summary().items():
        campaign_span.set(f"allocator.{key}", value)
