"""Deterministic trial-range partitioning for the sharded executor.

A Monte-Carlo run over a compiled plan is a pure function of the trial
counter: trial ``i`` runs with seed ``derive_trial_seed(seed, i)`` (the
counter-addressed SplitMix64 mix of :mod:`repro.core.seeding`), and its
accept/reject verdict depends on nothing else.  Splitting the counter range
``[0, trials)`` into disjoint sub-ranges therefore splits the *work* without
touching the *probability space*: each shard derives exactly the seeds the
unsharded run derives for its positions, and the merged accept count equals
the single-process count bit for bit, in any shard order, on any backend.

:class:`ShardPlanner` owns the partitioning policy.  It is deliberately
boring — contiguous ranges, sizes as equal as possible, deterministic in its
inputs — because the partition is part of the reproducibility contract: a
campaign record stating ``shards=8`` must mean the same eight ranges on
every machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class Shard:
    """One contiguous trial-counter range ``[start, stop)`` of a run."""

    index: int
    start: int
    stop: int

    def __post_init__(self):
        if self.start < 0 or self.stop < self.start:
            raise ValueError(f"invalid shard range [{self.start}, {self.stop})")

    @property
    def trials(self) -> int:
        return self.stop - self.start

    def as_dict(self) -> dict:
        """JSON-friendly form, for supervision reports and failure records."""
        return {"index": self.index, "start": self.start, "stop": self.stop}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"shard {self.index}: [{self.start}, {self.stop})"


class ShardPlanner:
    """Split a trial budget into deterministic counter ranges.

    ``shard_count`` fixes the number of shards outright; otherwise the
    planner targets one shard per worker, subdividing further (up to
    ``oversubscribe`` shards per worker) when the budget allows, so the
    cooperative early exit has shard boundaries to act on and a slow worker
    cannot strand a huge tail range.  ``min_shard_trials`` stops the
    subdivision below the point where per-shard overhead (plan resolution,
    result shipping) would dominate.

    >>> [s.trials for s in ShardPlanner(shard_count=3).plan(10, workers=8)]
    [4, 3, 3]
    >>> ShardPlanner().plan(100, workers=4)[0]
    Shard(index=0, start=0, stop=25)
    """

    def __init__(
        self,
        shard_count: Optional[int] = None,
        min_shard_trials: int = 64,
        oversubscribe: int = 4,
    ):
        if shard_count is not None and shard_count < 1:
            raise ValueError("shard_count must be positive")
        if min_shard_trials < 1:
            raise ValueError("min_shard_trials must be positive")
        if oversubscribe < 1:
            raise ValueError("oversubscribe must be positive")
        self.shard_count = shard_count
        self.min_shard_trials = min_shard_trials
        self.oversubscribe = oversubscribe

    def resolve_count(self, trials: int, workers: int) -> int:
        """How many shards a budget of ``trials`` gets across ``workers``."""
        if trials < 1:
            raise ValueError("trials must be positive")
        if workers < 1:
            raise ValueError("workers must be positive")
        if self.shard_count is not None:
            return min(self.shard_count, trials)
        by_size = max(1, trials // self.min_shard_trials)
        return min(workers * self.oversubscribe, by_size, trials)

    def plan(self, trials: int, workers: int = 1) -> Tuple[Shard, ...]:
        """The partition of ``[0, trials)`` — contiguous, disjoint, complete.

        The first ``trials % count`` shards carry one extra trial, so sizes
        differ by at most one and the layout is a pure function of
        ``(trials, count)``.
        """
        count = self.resolve_count(trials, workers)
        base, remainder = divmod(trials, count)
        shards = []
        start = 0
        for index in range(count):
            size = base + (1 if index < remainder else 0)
            shards.append(Shard(index=index, start=start, stop=start + size))
            start += size
        assert start == trials
        return tuple(shards)
