"""Sharded parallel execution and experiment campaigns.

Why this package exists
-----------------------

PR 1-3 collapsed the per-trial cost of repeated verification into chunked
numpy array ops, leaving one Python process as the remaining wall-clock
ceiling.  The counter-addressed SplitMix64 derivation of
:mod:`repro.core.seeding` makes multi-process sharding *deterministic*: a
trial's verdict is a pure function of ``(master seed, trial counter)``, so
partitioning the counter range across workers reproduces the single-process
run bit for bit — same per-trial verdicts, same merged counts, in any shard
order, on any backend.

The two layers:

- **Sharded executor** — :class:`ShardPlanner` partitions a trial budget
  into counter ranges; :class:`SerialExecutor` / :class:`ThreadExecutor` /
  :class:`ProcessExecutor` run them; :func:`estimate_acceptance_sharded`
  merges per-shard counts through
  :meth:`~repro.simulation.metrics.AcceptanceEstimate.merge` (exact, by
  construction) with an optional cooperative Wilson early exit that cancels
  outstanding shards.  Process workers rebuild plans from picklable
  :class:`PlanSpec` values through per-process caches — compiled plans
  never cross the process boundary (:mod:`repro.parallel.spec`).
- **Campaign orchestrator** — declarative :class:`Campaign` / :class:`Cell`
  sweeps (workload family x rng mode x trial budget x seed) over one shared
  worker pool, streaming JSON-lines records into resumable sinks
  (:mod:`repro.parallel.campaign`), with a CLI front end
  (``python -m repro.parallel.cli``).

Fault tolerance rides on the same determinism: because a shard re-executes
bit-identically, retry is semantically free — :mod:`repro.parallel.supervision`
adds heartbeat deadlines, deterministic retry with backoff, pool repair and
quarantine (:class:`RetryPolicy` / :class:`RunReport`), campaigns degrade
gracefully per cell (``on_cell_error``), and the seeded chaos harness of
:mod:`repro.parallel.chaos` (:class:`FaultPolicy` / :class:`ChaosExecutor`)
makes every one of those guarantees testable and demonstrable.

See ``docs/parallel.md`` for the shard/seed-partition contract, the
executor matrix, the campaign record format, and the failure semantics;
``docs/robustness.md`` for the chaos harness guide.
"""

from repro.parallel.campaign import (
    Campaign,
    Cell,
    JsonlSink,
    MemorySink,
    run_campaign,
)
from repro.parallel.chaos import (
    ChaosExecutor,
    ChaosSink,
    ChaosSinkError,
    ChaosWorkerCrash,
    ChaosWorkerHang,
    FaultPolicy,
)
from repro.parallel.controller import (
    CampaignAllocator,
    FixedChunkPolicy,
    GeometricChunkPolicy,
    parse_chunk_policy,
)
from repro.parallel.executors import (
    DEFAULT_CHUNK,
    EXECUTORS,
    ProcessExecutor,
    SerialExecutor,
    ShardedEstimate,
    ShardResult,
    ThreadExecutor,
    available_cpus,
    estimate_acceptance_sharded,
    resolve_executor,
)
from repro.parallel.factories import WORKLOADS, workload_spec
from repro.parallel.progress import (
    ProgressRouter,
    RunHandle,
    StopToken,
    StreamingAggregator,
)
from repro.parallel.shards import Shard, ShardPlanner
from repro.parallel.spec import PlanSpec
from repro.parallel.supervision import (
    QuarantinedShard,
    RetryPolicy,
    RunReport,
    ShardFailure,
    ShardSupervisor,
)

__all__ = [
    "DEFAULT_CHUNK",
    "EXECUTORS",
    "WORKLOADS",
    "Campaign",
    "CampaignAllocator",
    "Cell",
    "ChaosExecutor",
    "ChaosSink",
    "ChaosSinkError",
    "ChaosWorkerCrash",
    "ChaosWorkerHang",
    "FaultPolicy",
    "FixedChunkPolicy",
    "GeometricChunkPolicy",
    "JsonlSink",
    "MemorySink",
    "PlanSpec",
    "ProcessExecutor",
    "ProgressRouter",
    "QuarantinedShard",
    "RetryPolicy",
    "RunHandle",
    "RunReport",
    "SerialExecutor",
    "Shard",
    "ShardFailure",
    "ShardPlanner",
    "ShardResult",
    "ShardSupervisor",
    "ShardedEstimate",
    "StopToken",
    "StreamingAggregator",
    "ThreadExecutor",
    "available_cpus",
    "estimate_acceptance_sharded",
    "parse_chunk_policy",
    "resolve_executor",
    "run_campaign",
    "workload_spec",
]
