"""Sharded parallel execution and experiment campaigns.

Why this package exists
-----------------------

PR 1-3 collapsed the per-trial cost of repeated verification into chunked
numpy array ops, leaving one Python process as the remaining wall-clock
ceiling.  The counter-addressed SplitMix64 derivation of
:mod:`repro.core.seeding` makes multi-process sharding *deterministic*: a
trial's verdict is a pure function of ``(master seed, trial counter)``, so
partitioning the counter range across workers reproduces the single-process
run bit for bit — same per-trial verdicts, same merged counts, in any shard
order, on any backend.

The two layers:

- **Sharded executor** — :class:`ShardPlanner` partitions a trial budget
  into counter ranges; :class:`SerialExecutor` / :class:`ThreadExecutor` /
  :class:`ProcessExecutor` run them; :func:`estimate_acceptance_sharded`
  merges per-shard counts through
  :meth:`~repro.simulation.metrics.AcceptanceEstimate.merge` (exact, by
  construction) with an optional cooperative Wilson early exit that cancels
  outstanding shards.  Process workers rebuild plans from picklable
  :class:`PlanSpec` values through per-process caches — compiled plans
  never cross the process boundary (:mod:`repro.parallel.spec`).
- **Campaign orchestrator** — declarative :class:`Campaign` / :class:`Cell`
  sweeps (workload family x rng mode x trial budget x seed) over one shared
  worker pool, streaming JSON-lines records into resumable sinks
  (:mod:`repro.parallel.campaign`), with a CLI front end
  (``python -m repro.parallel.cli``).

See ``docs/parallel.md`` for the shard/seed-partition contract, the
executor matrix, and the campaign record format.
"""

from repro.parallel.campaign import (
    Campaign,
    Cell,
    JsonlSink,
    MemorySink,
    run_campaign,
)
from repro.parallel.executors import (
    EXECUTORS,
    ProcessExecutor,
    SerialExecutor,
    ShardedEstimate,
    ShardResult,
    ThreadExecutor,
    available_cpus,
    estimate_acceptance_sharded,
    resolve_executor,
)
from repro.parallel.factories import WORKLOADS, workload_spec
from repro.parallel.progress import RunHandle, StopToken, StreamingAggregator
from repro.parallel.shards import Shard, ShardPlanner
from repro.parallel.spec import PlanSpec

__all__ = [
    "EXECUTORS",
    "WORKLOADS",
    "Campaign",
    "Cell",
    "JsonlSink",
    "MemorySink",
    "PlanSpec",
    "ProcessExecutor",
    "RunHandle",
    "SerialExecutor",
    "Shard",
    "ShardPlanner",
    "ShardResult",
    "ShardedEstimate",
    "StopToken",
    "StreamingAggregator",
    "ThreadExecutor",
    "available_cpus",
    "estimate_acceptance_sharded",
    "resolve_executor",
    "run_campaign",
    "workload_spec",
]
