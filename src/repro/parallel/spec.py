"""Picklable plan descriptions: what crosses the process boundary.

A compiled :class:`~repro.engine.plan.VerificationPlan` is exactly the thing
you do *not* want to pickle to a worker process: it holds parsed hook
contexts, memoized numpy kernel state, and (by design) aliases into the
configuration it was built from — serializing all of that per shard would
cost more than it saves, and scheme instances carry no pickling contract at
all.  The sharded executor ships a :class:`PlanSpec` instead: a
module-qualified *factory reference* plus primitive arguments, from which
each worker rebuilds the scheme/configuration pair locally and compiles (or,
after the first shard, cache-hits) its own plan.

Two cache layers make re-resolution cheap:

- a per-process **workload memo** keyed by the spec's value keeps the
  factory's ``(scheme, configuration, labels)`` result alive, so the scheme
  *instance* is stable within a worker — which is what lets the second
  layer hit, since :class:`~repro.engine.cache.PlanCache` keys schemes by
  identity;
- the per-process :class:`~repro.engine.cache.PlanCache` itself, shared by
  every shard the worker executes, holding the compiled plans.

Factories must be module-level callables (importable by name from both the
parent and the workers) returning either ``(scheme, configuration)`` or
``(scheme, configuration, labels)``; with two elements the honest prover
labels are used.  Determinism contract: a factory called twice with the same
arguments must build value-identical workloads (same graph wiring, states,
and labels), so a spec resolves to decision-identical plans in every
process.  Every generator in :mod:`repro.graphs` satisfies this by taking
explicit seeds.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple, Union

from repro.engine.cache import PlanCache
from repro.engine.plan import VerificationPlan

# Per-process resolution state (see module docstring).  Deliberately
# process-global: with the default fork start method workers inherit a
# *copy*, and with spawn they start empty — either way each process owns an
# independent memo, which is the point.
_WORKLOAD_MEMO: Dict[Tuple, Tuple] = {}
_PLAN_CACHE = PlanCache(maxsize=32)


def _factory_path(factory: Callable) -> str:
    """The ``module:qualname`` reference of a module-level callable."""
    path = f"{factory.__module__}:{factory.__qualname__}"
    try:
        resolved = resolve_factory(path)
    except (ImportError, AttributeError):
        resolved = None
    if resolved is not factory:
        raise ValueError(
            f"factory {factory!r} is not importable as {path!r} — "
            "sharded specs need module-level callables"
        )
    return path


def resolve_factory(path: str) -> Callable:
    """Import the callable a ``module:qualname`` reference names."""
    module_name, _, qualname = path.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"malformed factory reference {path!r}")
    target = importlib.import_module(module_name)
    for part in qualname.split("."):
        target = getattr(target, part)
    if not callable(target):
        raise TypeError(f"factory reference {path!r} resolves to a non-callable")
    return target


@dataclass(frozen=True)
class PlanSpec:
    """A value-semantic, picklable recipe for one compiled plan.

    ``factory`` is a ``module:qualname`` string; ``args``/``kwargs`` must be
    hashable primitives (they key the worker-side memo and appear verbatim
    in campaign records).  ``randomness`` and ``rng_mode`` complete the plan
    identity, exactly as they do in :class:`~repro.engine.cache.PlanCache`
    keys.
    """

    factory: str
    args: Tuple = ()
    kwargs: Tuple[Tuple[str, object], ...] = ()
    randomness: str = "edge"
    rng_mode: str = "compat"

    @classmethod
    def of(
        cls,
        factory: Union[str, Callable],
        *args,
        randomness: str = "edge",
        rng_mode: str = "compat",
        **kwargs,
    ) -> "PlanSpec":
        """Build a spec from a callable (or reference) plus its arguments.

        >>> PlanSpec.of("repro.parallel.factories:compiled_spanning_tree",
        ...             node_count=16).factory
        'repro.parallel.factories:compiled_spanning_tree'
        """
        if callable(factory):
            factory = _factory_path(factory)
        else:
            resolve_factory(factory)  # fail fast on typos, in the parent
        return cls(
            factory=factory,
            args=tuple(args),
            kwargs=tuple(sorted(kwargs.items())),
            randomness=randomness,
            rng_mode=rng_mode,
        )

    def key(self) -> Tuple:
        """The hashable value identity of the spec (memo / resume key)."""
        return (self.factory, self.args, self.kwargs, self.randomness, self.rng_mode)

    def describe(self) -> Dict[str, object]:
        """A JSON-friendly rendering for campaign records."""
        return {
            "factory": self.factory,
            "args": list(self.args),
            "kwargs": dict(self.kwargs),
            "randomness": self.randomness,
            "rng_mode": self.rng_mode,
        }

    def build_workload(self) -> Tuple:
        """Call the factory; returns ``(scheme, configuration, labels)``."""
        factory = resolve_factory(self.factory)
        result = factory(*self.args, **dict(self.kwargs))
        if not isinstance(result, tuple) or len(result) not in (2, 3):
            raise TypeError(
                f"factory {self.factory!r} must return (scheme, configuration) "
                f"or (scheme, configuration, labels), got {type(result).__name__}"
            )
        scheme, configuration = result[0], result[1]
        labels = result[2] if len(result) == 3 else scheme.prover(configuration)
        return scheme, configuration, labels

    def resolve(self, cache: Optional[PlanCache] = None) -> VerificationPlan:
        """The compiled plan for this spec, via the per-process caches.

        The workload memo pins the factory output (stable scheme identity);
        ``cache`` (default: the process-global plan cache) then serves the
        compiled plan.  Repeated shards of one spec in one worker pay a
        single compile.
        """
        memo_key = (self.factory, self.args, self.kwargs)
        workload = _WORKLOAD_MEMO.get(memo_key)
        if workload is None:
            workload = self.build_workload()
            _WORKLOAD_MEMO[memo_key] = workload
        scheme, configuration, labels = workload
        plans = cache if cache is not None else _PLAN_CACHE
        return plans.get(
            scheme,
            configuration,
            labels=labels,
            randomness=self.randomness,
            rng_mode=self.rng_mode,
        )


def clear_process_caches() -> None:
    """Drop the per-process workload memo and plan cache (test isolation)."""
    _WORKLOAD_MEMO.clear()
    _PLAN_CACHE.clear()


def process_cache_stats() -> Dict[str, int]:
    """Telemetry for the per-process resolution caches."""
    stats = _PLAN_CACHE.stats()
    stats["workloads"] = len(_WORKLOAD_MEMO)
    return stats
