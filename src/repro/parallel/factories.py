"""Named, picklable workload factories for sharded and campaign runs.

Every factory is a module-level callable returning ``(scheme,
configuration)`` — the shape :class:`~repro.parallel.spec.PlanSpec`
requires — and is fully determined by its arguments (explicit seeds
everywhere), so the same spec rebuilds a decision-identical workload in
every worker process.  The :data:`WORKLOADS` registry maps the short names
the CLI and campaign sweeps use onto factories plus the randomness mode the
scheme actually runs under (the shared-coins compiler needs public coins;
everything else runs under edge randomness).

These mirror the engine benchmark workloads (``benchmarks/bench_engine.py``,
``benchmarks/smoke.py``) at caller-chosen sizes, so a campaign cell is
directly comparable to the recorded single-process trajectory in
``BENCH_engine.json``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.boosting import BoostedRPLS
from repro.core.compiler import FingerprintCompiledRPLS
from repro.core.noise import NoisyChannelRPLS
from repro.core.shared import SharedCoinsCompiledRPLS
from repro.graphs.generators import (
    flow_configuration,
    mst_configuration,
    spanning_tree_configuration,
)
from repro.graphs.workloads import distance_configuration
from repro.parallel.spec import PlanSpec
from repro.schemes.distance import distance_rpls
from repro.schemes.flow import k_flow_rpls
from repro.schemes.mst import mst_rpls
from repro.schemes.spanning_tree import SpanningTreePLS


def compiled_spanning_tree(node_count: int = 60, extra_edges: int = 15, seed: int = 1):
    """The Theorem 3.1 fingerprint compiler on a random spanning tree."""
    scheme = FingerprintCompiledRPLS(SpanningTreePLS())
    return scheme, spanning_tree_configuration(node_count, extra_edges, seed=seed)


def boosted_spanning_tree(
    node_count: int = 60, extra_edges: int = 15, seed: int = 1, t: int = 3
):
    """The footnote-1 boosted compiler (soundness error ``3**-t``)."""
    scheme = BoostedRPLS(FingerprintCompiledRPLS(SpanningTreePLS()), t)
    return scheme, spanning_tree_configuration(node_count, extra_edges, seed=seed)


def compiled_mst(node_count: int = 48, seed: int = 1):
    """The Borůvka-trace MST scheme — the largest-label workload."""
    return mst_rpls(), mst_configuration(node_count, seed=seed)


def compiled_k_flow(k: int = 2, path_length: int = 4, decoy_edges: int = 3, seed: int = 3):
    """The k-flow certification scheme on a planted flow network."""
    return k_flow_rpls(), flow_configuration(
        k, path_length=path_length, decoy_edges=decoy_edges, seed=seed
    )


def compiled_distance(node_count: int = 32, extra_edges: int = 10, seed: int = 4):
    """Weighted single-source distance certification."""
    return distance_rpls(weighted=True), distance_configuration(
        node_count, extra_edges, seed=seed, weighted=True
    )


def shared_coins_spanning_tree(node_count: int = 60, extra_edges: int = 15, seed: int = 1):
    """The Section 6 shared-coins compiler (public coins; parity kernel)."""
    scheme = SharedCoinsCompiledRPLS(SpanningTreePLS())
    return scheme, spanning_tree_configuration(node_count, extra_edges, seed=seed)


# ---------------------------------------------------------------------------
# the verdict-spec zoo (repro.engine.specs): one factory per registered
# scheme that previously ran the legacy oracle only, at caller-chosen sizes
# ---------------------------------------------------------------------------


def compiled_acyclicity(node_count: int = 40, seed: int = 2):
    """The [31] root-distance forest scheme on a random tree."""
    from repro.graphs.generators import tree_only_configuration
    from repro.schemes.acyclicity import AcyclicityPLS

    return (
        FingerprintCompiledRPLS(AcyclicityPLS()),
        tree_only_configuration(node_count, seed=seed),
    )


def compiled_biconnectivity(node_count: int = 36, seed: int = 2):
    """The Theorem 5.2 DFS/lowpoint scheme on a random biconnected graph."""
    from repro.graphs.generators import random_biconnected_configuration
    from repro.schemes.biconnectivity import BiconnectivityPLS

    return (
        FingerprintCompiledRPLS(BiconnectivityPLS()),
        random_biconnected_configuration(node_count, seed=seed),
    )


def shared_coins_bipartiteness(
    left: int = 18, right: int = 18, extra_edges: int = 8, seed: int = 2
):
    """The planted 2-coloring witness under public coins (parity kernel)."""
    from repro.graphs.workloads import random_bipartite_configuration
    from repro.schemes.bipartiteness import BipartitenessPLS

    return (
        SharedCoinsCompiledRPLS(BipartitenessPLS(), repetitions=2),
        random_bipartite_configuration(left, right, extra_edges=extra_edges, seed=seed),
    )


def compiled_coloring(node_count: int = 40, colors: int = 4, seed: int = 2):
    """The intro proper-coloring warm-up on a greedily colored graph."""
    from repro.graphs.generators import colored_configuration
    from repro.schemes.coloring import ColoringPLS

    return (
        FingerprintCompiledRPLS(ColoringPLS()),
        colored_configuration(node_count, colors, proper=True, seed=seed),
    )


def compiled_cycle_length(
    node_count: int = 40, cycle_length: int = 12, c: int = 8, seed: int = 2
):
    """The Theorem 5.3 cycle-at-least-c scheme, witness planted and passed."""
    from repro.graphs.generators import planted_cycle_configuration
    from repro.schemes.cycle_length import CycleAtLeastPLS

    configuration, witness = planted_cycle_configuration(
        node_count, cycle_length, seed=seed
    )
    return FingerprintCompiledRPLS(CycleAtLeastPLS(c, witness=witness)), configuration


def compiled_eulerian(node_count: int = 30, seed: int = 2):
    """Zero-bit labels (kappa=0): the compiler's smallest-label workload."""
    from repro.graphs.workloads import eulerian_configuration
    from repro.schemes.eulerian import EulerianPLS

    return (
        FingerprintCompiledRPLS(EulerianPLS()),
        eulerian_configuration(node_count, seed=seed),
    )


def boosted_hamiltonicity(
    node_count: int = 24, extra_edges: int = 10, seed: int = 2, t: int = 2
):
    """Cycle-at-least-n boosted t-fold, witness planted and passed."""
    from repro.graphs.workloads import hamiltonian_configuration
    from repro.schemes.hamiltonicity import HamiltonicityPLS

    configuration, order = hamiltonian_configuration(
        node_count, extra_edges, seed=seed
    )
    scheme = BoostedRPLS(
        FingerprintCompiledRPLS(HamiltonicityPLS(witness=order)), t
    )
    return scheme, configuration


def compiled_leader(node_count: int = 36, extra_edges: int = 10, seed: int = 2):
    """Leader agreement via compiled id republication."""
    from repro.graphs.workloads import leader_configuration
    from repro.schemes.leader import leader_rpls

    return leader_rpls(), leader_configuration(node_count, extra_edges, seed=seed)


def shared_coins_mis(node_count: int = 36, extra_edges: int = 10, seed: int = 2):
    """1-bit MIS labels under the GF(2) parity kernel (public coins)."""
    from repro.graphs.workloads import mis_configuration
    from repro.schemes.mis import MISPLS

    return (
        SharedCoinsCompiledRPLS(MISPLS(), repetitions=2),
        mis_configuration(node_count, extra_edges, seed=seed),
    )


def direct_unif(node_count: int = 10, payload_bits: int = 24, seed: int = 2):
    """The Lemma C.3 direct Unif scheme on equal payloads (label-free)."""
    from repro.graphs.generators import uniform_configuration
    from repro.schemes.uniformity import DirectUnifRPLS

    return DirectUnifRPLS(), uniform_configuration(
        node_count, payload_bits, equal=True, seed=seed
    )


def compiled_symmetry(lam: int = 6, seed: int = 2):
    """Corollary 3.4's universal scheme on the Figure 4 Sym gadget (x == y)."""
    import random as _random

    from repro.core.bitstrings import BitString
    from repro.graphs.generators import sym_pair_configuration
    from repro.schemes.symmetry import sym_universal_rpls

    x = BitString(_random.Random(seed).getrandbits(lam), lam)
    configuration, _cut, _alice, _bob = sym_pair_configuration(x, x)
    return sym_universal_rpls(), configuration


def boosted_vertex_connectivity(
    path_count: int = 3, path_length: int = 3, decoy_edges: int = 2,
    seed: int = 2, t: int = 2,
):
    """s-t vertex connectivity, boosted t-fold."""
    from repro.graphs.generators import vertex_connectivity_configuration
    from repro.schemes.vertex_connectivity import STVertexConnectivityPLS

    scheme = BoostedRPLS(FingerprintCompiledRPLS(STVertexConnectivityPLS()), t)
    return scheme, vertex_connectivity_configuration(
        path_count, path_length=path_length, decoy_edges=decoy_edges, seed=seed
    )


def noisy_spanning_tree(
    node_count: int = 24, extra_edges: int = 6, seed: int = 1, flip_milli: int = 2
):
    """The compiled scheme over a noisy channel — *two-sided* acceptance.

    The one workload in the registry whose acceptance probability sits
    strictly between 0 and 1, which is what the sharded-merge tests need to
    observe nontrivial per-shard counts.  ``flip_milli`` is the per-bit flip
    probability in thousandths (spec arguments stay hashable integers).  The
    noisy wrapper has no engine hooks, so this workload exercises the
    generic plan path under ``compat``/``fast`` modes (no ``vector``).
    """
    scheme = NoisyChannelRPLS(
        FingerprintCompiledRPLS(SpanningTreePLS()), flip_milli / 1000.0
    )
    return scheme, spanning_tree_configuration(node_count, extra_edges, seed=seed)


# name -> (factory, randomness the scheme runs under)
WORKLOADS: Dict[str, Tuple[object, str]] = {
    "spanning-tree": (compiled_spanning_tree, "edge"),
    "boosted-spanning-tree": (boosted_spanning_tree, "edge"),
    "mst": (compiled_mst, "edge"),
    "k-flow": (compiled_k_flow, "edge"),
    "distance": (compiled_distance, "edge"),
    "shared-coins": (shared_coins_spanning_tree, "shared"),
    "noisy-spanning-tree": (noisy_spanning_tree, "edge"),
    # the verdict-spec zoo (see repro.engine.specs): campaigns can sweep
    # every registered scheme, not just the original benchmark workloads
    "acyclicity": (compiled_acyclicity, "edge"),
    "biconnectivity": (compiled_biconnectivity, "edge"),
    "bipartiteness": (shared_coins_bipartiteness, "shared"),
    "coloring": (compiled_coloring, "edge"),
    "cycle-length": (compiled_cycle_length, "edge"),
    "eulerian": (compiled_eulerian, "edge"),
    "hamiltonicity": (boosted_hamiltonicity, "edge"),
    "leader": (compiled_leader, "edge"),
    "mis": (shared_coins_mis, "shared"),
    "symmetry": (compiled_symmetry, "edge"),
    "uniformity": (direct_unif, "edge"),
    "vertex-connectivity": (boosted_vertex_connectivity, "edge"),
}


def workload_spec(name: str, rng_mode: str = "vector", **kwargs) -> PlanSpec:
    """The :class:`PlanSpec` of a registry workload at the given size.

    >>> workload_spec("spanning-tree", node_count=16).randomness
    'edge'
    >>> workload_spec("shared-coins").randomness
    'shared'
    """
    try:
        factory, randomness = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r} (choose from {sorted(WORKLOADS)})"
        ) from None
    return PlanSpec.of(factory, randomness=randomness, rng_mode=rng_mode, **kwargs)
