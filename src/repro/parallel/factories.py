"""Named, picklable workload factories for sharded and campaign runs.

Every factory is a module-level callable returning ``(scheme,
configuration)`` — the shape :class:`~repro.parallel.spec.PlanSpec`
requires — and is fully determined by its arguments (explicit seeds
everywhere), so the same spec rebuilds a decision-identical workload in
every worker process.  The :data:`WORKLOADS` registry maps the short names
the CLI and campaign sweeps use onto factories plus the randomness mode the
scheme actually runs under (the shared-coins compiler needs public coins;
everything else runs under edge randomness).

These mirror the engine benchmark workloads (``benchmarks/bench_engine.py``,
``benchmarks/smoke.py``) at caller-chosen sizes, so a campaign cell is
directly comparable to the recorded single-process trajectory in
``BENCH_engine.json``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.boosting import BoostedRPLS
from repro.core.compiler import FingerprintCompiledRPLS
from repro.core.noise import NoisyChannelRPLS
from repro.core.shared import SharedCoinsCompiledRPLS
from repro.graphs.generators import (
    flow_configuration,
    mst_configuration,
    spanning_tree_configuration,
)
from repro.graphs.workloads import distance_configuration
from repro.parallel.spec import PlanSpec
from repro.schemes.distance import distance_rpls
from repro.schemes.flow import k_flow_rpls
from repro.schemes.mst import mst_rpls
from repro.schemes.spanning_tree import SpanningTreePLS


def compiled_spanning_tree(node_count: int = 60, extra_edges: int = 15, seed: int = 1):
    """The Theorem 3.1 fingerprint compiler on a random spanning tree."""
    scheme = FingerprintCompiledRPLS(SpanningTreePLS())
    return scheme, spanning_tree_configuration(node_count, extra_edges, seed=seed)


def boosted_spanning_tree(
    node_count: int = 60, extra_edges: int = 15, seed: int = 1, t: int = 3
):
    """The footnote-1 boosted compiler (soundness error ``3**-t``)."""
    scheme = BoostedRPLS(FingerprintCompiledRPLS(SpanningTreePLS()), t)
    return scheme, spanning_tree_configuration(node_count, extra_edges, seed=seed)


def compiled_mst(node_count: int = 48, seed: int = 1):
    """The Borůvka-trace MST scheme — the largest-label workload."""
    return mst_rpls(), mst_configuration(node_count, seed=seed)


def compiled_k_flow(k: int = 2, path_length: int = 4, decoy_edges: int = 3, seed: int = 3):
    """The k-flow certification scheme on a planted flow network."""
    return k_flow_rpls(), flow_configuration(
        k, path_length=path_length, decoy_edges=decoy_edges, seed=seed
    )


def compiled_distance(node_count: int = 32, extra_edges: int = 10, seed: int = 4):
    """Weighted single-source distance certification."""
    return distance_rpls(weighted=True), distance_configuration(
        node_count, extra_edges, seed=seed, weighted=True
    )


def shared_coins_spanning_tree(node_count: int = 60, extra_edges: int = 15, seed: int = 1):
    """The Section 6 shared-coins compiler (public coins; parity kernel)."""
    scheme = SharedCoinsCompiledRPLS(SpanningTreePLS())
    return scheme, spanning_tree_configuration(node_count, extra_edges, seed=seed)


def noisy_spanning_tree(
    node_count: int = 24, extra_edges: int = 6, seed: int = 1, flip_milli: int = 2
):
    """The compiled scheme over a noisy channel — *two-sided* acceptance.

    The one workload in the registry whose acceptance probability sits
    strictly between 0 and 1, which is what the sharded-merge tests need to
    observe nontrivial per-shard counts.  ``flip_milli`` is the per-bit flip
    probability in thousandths (spec arguments stay hashable integers).  The
    noisy wrapper has no engine hooks, so this workload exercises the
    generic plan path under ``compat``/``fast`` modes (no ``vector``).
    """
    scheme = NoisyChannelRPLS(
        FingerprintCompiledRPLS(SpanningTreePLS()), flip_milli / 1000.0
    )
    return scheme, spanning_tree_configuration(node_count, extra_edges, seed=seed)


# name -> (factory, randomness the scheme runs under)
WORKLOADS: Dict[str, Tuple[object, str]] = {
    "spanning-tree": (compiled_spanning_tree, "edge"),
    "boosted-spanning-tree": (boosted_spanning_tree, "edge"),
    "mst": (compiled_mst, "edge"),
    "k-flow": (compiled_k_flow, "edge"),
    "distance": (compiled_distance, "edge"),
    "shared-coins": (shared_coins_spanning_tree, "shared"),
    "noisy-spanning-tree": (noisy_spanning_tree, "edge"),
}


def workload_spec(name: str, rng_mode: str = "vector", **kwargs) -> PlanSpec:
    """The :class:`PlanSpec` of a registry workload at the given size.

    >>> workload_spec("spanning-tree", node_count=16).randomness
    'edge'
    >>> workload_spec("shared-coins").randomness
    'shared'
    """
    try:
        factory, randomness = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r} (choose from {sorted(WORKLOADS)})"
        ) from None
    return PlanSpec.of(factory, randomness=randomness, rng_mode=rng_mode, **kwargs)
