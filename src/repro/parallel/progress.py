"""Progressive shard-result streaming: conduits, tokens, and the aggregator.

The PR 4 sharded estimator only learned a shard's counts when the *whole
shard* finished, so its cooperative Wilson stop acted at shard granularity —
on an 8-shard run that can waste most of a shard's budget after the merged
interval is already tight enough.  This module is the streaming layer that
closes the gap: workers publish *partial* cumulative counts after every
chunk (the ``progress`` hook of
:func:`~repro.engine.montecarlo.estimate_acceptance_fast`), and a
:class:`StreamingAggregator` in the parent merges the partials into the
running Wilson interval, firing the stop at **chunk granularity across all
workers**.

Why merging partials preserves unbiasedness
-------------------------------------------

A partial update ``(accepted, trials)`` from shard ``i`` is the exact count
over the prefix of shard ``i``'s deterministic trial sequence consumed so
far — every trial's verdict is a pure function of its counter, so the
partial is itself a valid (unbiased) estimate of the same acceptance
probability, just over fewer trials.  Updates are *cumulative per shard*
(each one supersedes the previous from the same shard), so the aggregator's
running total is always an exact count over a union of disjoint counter
prefixes — precisely the set of trials that have actually run.  Stopping on
that total changes *which trials run*, never any verdict: the streamed stop
has the same statistical justification as the single-process Wilson exit,
it just acts on fresher information.

Determinism is untouched: the channel is observational.  With no stop rule
every shard runs to completion and the merged result equals the
single-process estimate bit for bit, streaming on or off.

Conduits per backend
--------------------

- **Serial / Thread** — the publish callback is invoked in-process (from
  worker threads, on the thread backend), so the aggregator takes a lock
  per update.
- **Process** — workers put ``(run_id, shard_index, accepted, trials)``
  tuples on a ``multiprocessing`` queue installed by the pool initializer;
  a single parent-side :class:`ProgressRouter` thread drains the queue and
  dispatches to the subscribed aggregator(s) by run id, so several
  concurrent runs (campaign cells) can stream over one pool without
  crosstalk.
"""

from __future__ import annotations

import threading
import warnings
from typing import Callable, Dict, Optional, Tuple

from repro.obs.metrics import MetricsFlush, MetricsRegistry
from repro.obs.runtime import get_metrics
from repro.simulation.metrics import wilson_interval


class StopToken:
    """A per-run cooperative stop flag.

    Executors hand every run its own token so concurrent runs on one pool
    (campaign cells) stop independently — the executor-wide
    ``request_stop()`` remains as a pool-global kill switch that every
    token's ``probe`` also observes via ``extra``.  ``on_request`` carries
    backend side effects (the process backend marks its shared stop-board
    slot so worker processes see the request).
    """

    def __init__(
        self,
        extra: Optional[Callable[[], bool]] = None,
        on_request: Optional[Callable[[], None]] = None,
    ):
        self._stopped = False
        self._extra = extra
        self._on_request = on_request

    @property
    def stopped(self) -> bool:
        return self._stopped

    def request(self) -> None:
        self._stopped = True
        if self._on_request is not None:
            self._on_request()

    def probe(self) -> bool:
        """The ``should_stop`` hook workers poll between chunks."""
        if self._stopped:
            return True
        return self._extra is not None and self._extra()


class RunHandle:
    """One sharded run in flight on an executor.

    ``results()`` yields shard results as they complete (exactly once);
    ``request_stop()`` asks *this run's* workers to stop at the next chunk
    boundary.  The handle releases backend resources (stop-board slot,
    progress subscription) when the result iteration finishes, normally or
    not — **and** via :meth:`close`, which is the path a caller that never
    iterates (or dies between ``start_run`` and the first ``next``) must
    take: relying on the generator's ``finally`` alone leaks both
    resources, because closing a never-started generator does not run its
    body.  ``close`` is idempotent, safe after a completed iteration, and
    the handle is a context manager (``with executor.start_run(...) as
    handle:``) so error paths release by construction.
    """

    def __init__(self, iterator, token: StopToken, on_finish=None):
        self._iterator = iterator
        self._token = token
        self._on_finish = on_finish
        self._finished = False

    def request_stop(self) -> None:
        self._token.request()

    def _finish(self) -> None:
        if not self._finished:
            self._finished = True
            if self._on_finish is not None:
                self._on_finish()

    def close(self) -> None:
        """Release the run's backend resources; idempotent.

        For a run whose results were never (fully) iterated this stops the
        workers cooperatively first, then runs the release hook — the same
        teardown a completed iteration performs.  After a completed
        ``results()`` iteration it is a no-op.
        """
        if self._finished:
            return
        self._token.request()
        # Close the underlying iterator if it was started: _drain_futures'
        # own finally then cancels any pending futures before the release
        # hook waits out the running ones.
        close_iter = getattr(self._iterator, "close", None)
        if close_iter is not None:
            close_iter()
        self._finish()

    def results(self):
        try:
            for item in self._iterator:
                yield item
        finally:
            self._finish()

    def __enter__(self) -> "RunHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class StreamingAggregator:
    """Merge per-shard partial counts into a running Wilson stop decision.

    Thread-safe: updates arrive from worker threads (thread backend) or the
    :class:`ProgressRouter` drain thread (process backend).  Each shard's
    updates are cumulative, so the aggregator keeps the latest partial per
    shard and maintains exact running totals by delta; a completed shard's
    final :class:`~repro.parallel.executors.ShardResult` goes through
    :meth:`update` too (idempotent — it carries the same counts as the
    shard's last partial).

    With ``stop_halfwidth`` set, once the running totals cover at least
    ``min_trials`` trials and their Wilson interval is narrower than
    ``2 * stop_halfwidth``, the aggregator fires the stop callback bound
    via :meth:`bind_stop` (exactly once; updates that arrive before the
    binding latch the decision and fire on bind).  Without a stop rule the
    aggregator only observes — streaming never changes results.

    ``baseline`` seeds the running totals with cumulative ``(accepted,
    trials)`` counts from *earlier* runs over the same trial sequence — the
    installment mechanism of :mod:`repro.parallel.controller`: a follow-up
    run covering ``[consumed, consumed + grant)`` passes the counts of the
    already-consumed prefix, so the stop rule acts on the cell's cumulative
    Wilson interval rather than the installment's own.  A baseline that
    already satisfies the stop rule latches it at construction (the bound
    stop fires immediately).

    ``observer``, when set, receives the merged cumulative ``(accepted,
    trials)`` totals after every folded update — the live feed a
    :class:`~repro.parallel.controller.CampaignAllocator` (or any other
    monitor) consumes.  Observational only: called outside the aggregator
    lock, after the stop decision for that update is made.
    """

    def __init__(
        self,
        stop_halfwidth: Optional[float] = None,
        min_trials: int = 0,
        baseline: Tuple[int, int] = (0, 0),
        observer: Optional[Callable[[int, int], None]] = None,
    ):
        base_accepted, base_trials = baseline
        if base_accepted < 0 or base_trials < 0 or base_accepted > base_trials:
            raise ValueError("baseline must be valid (accepted, trials) counts")
        self._partials: Dict[int, Tuple[int, int]] = {}
        self._lock = threading.Lock()
        self._stop_halfwidth = stop_halfwidth
        self._min_trials = min_trials
        self._stop_cb: Optional[Callable[[], None]] = None
        self._satisfied = False
        self._fired = False
        self._observer = observer
        self.accepted = base_accepted
        self.trials = base_trials
        self.updates = 0
        if (
            stop_halfwidth is not None
            and base_trials > 0
            and base_trials >= min_trials
        ):
            low, high = wilson_interval(base_accepted, base_trials)
            if high - low <= 2 * stop_halfwidth:
                self._satisfied = True

    @property
    def satisfied(self) -> bool:
        """Whether the stop rule has been met by the merged partials."""
        return self._satisfied

    def bind_stop(self, callback: Callable[[], None]) -> None:
        """Attach the run's ``request_stop``; fires now if already satisfied."""
        fire = False
        with self._lock:
            self._stop_cb = callback
            if self._satisfied and not self._fired:
                self._fired = True
                fire = True
        if fire:
            callback()

    def update(self, shard_index: int, accepted: int, trials: int) -> None:
        """Fold in a shard's latest cumulative ``(accepted, trials)`` counts."""
        fire = None
        with self._lock:
            prev_accepted, prev_trials = self._partials.get(shard_index, (0, 0))
            if trials < prev_trials:
                return  # stale (queued behind a fresher update); never regress
            self._partials[shard_index] = (accepted, trials)
            self.accepted += accepted - prev_accepted
            self.trials += trials - prev_trials
            self.updates += 1
            if (
                not self._satisfied
                and self._stop_halfwidth is not None
                and self.trials >= self._min_trials
                and self.trials > 0
            ):
                low, high = wilson_interval(self.accepted, self.trials)
                if high - low <= 2 * self._stop_halfwidth:
                    self._satisfied = True
                    if self._stop_cb is not None and not self._fired:
                        self._fired = True
                        fire = self._stop_cb
            observed = (self.accepted, self.trials)
        if fire is not None:
            fire()
        if self._observer is not None:
            self._observer(*observed)


_ROUTER_SENTINEL = None


class ProgressRouter:
    """Parent-side dispatcher for a process pool's progress queue.

    One router (and one drain thread) per :class:`ProcessExecutor`; runs
    subscribe their aggregator under a fresh run id, worker updates arrive
    as ``(run_id, shard_index, accepted, trials)`` tuples, and the router
    forwards each to its run's subscriber.  Updates for finished
    (unsubscribed) runs are dropped — late partials carry no information
    the final shard results don't.

    The drain loop is the one thread every run on the pool shares, so it
    must survive anything the queue delivers: updates for unknown or stale
    run ids and malformed items (a worker dying mid-``put`` can tear a
    message) are *counted and dropped* — ``unknown_run_updates`` /
    ``malformed_items`` — never raised.  :meth:`stats` packages every
    drop/leak counter into one dict so campaign ``supervision`` records can
    carry them instead of warning-only.

    The queue double-duties as the worker→parent metrics conduit: a
    :class:`~repro.obs.metrics.MetricsFlush` item carries one worker's
    metrics delta tagged with its run id; the router folds it into a
    per-run registry (:meth:`run_metrics`), into the cross-run merge
    (:meth:`merged_metrics`), and into the parent's process-global
    registry so worker-side counters surface in trace metrics records.
    """

    def __init__(self, queue, join_timeout: float = 5.0):
        self._queue = queue
        self._join_timeout = join_timeout
        self._subscribers: Dict[int, Callable[[int, int, int], None]] = {}
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._last_trials: Dict[int, Dict[int, int]] = {}  # run -> shard -> trials
        self._run_metrics: Dict[int, MetricsRegistry] = {}
        self._merged_metrics = MetricsRegistry()
        self.callback_errors = 0  # raising subscribers, dropped not fatal
        self.unknown_run_updates = 0  # partials for finished/never-known runs
        self.stale_updates = 0  # regressive partials (superseded in transit)
        self.malformed_items = 0  # torn or garbage queue items
        self.metrics_flushes = 0  # worker metrics deltas folded in
        self.drain_thread_leaked = 0  # drain threads that outlived close()

    def subscribe(self, run_id: int, callback: Callable[[int, int, int], None]) -> None:
        with self._lock:
            if self._closed:
                raise RuntimeError("progress router is closed")
            self._subscribers[run_id] = callback
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._drain, name="repro-progress", daemon=True
                )
                self._thread.start()

    def unsubscribe(self, run_id: int) -> None:
        with self._lock:
            self._subscribers.pop(run_id, None)
            self._last_trials.pop(run_id, None)

    def stats(self) -> Dict[str, int]:
        """Every drop/leak counter in one dict (for supervision records)."""
        return {
            "unknown": self.unknown_run_updates,
            "stale": self.stale_updates,
            "malformed": self.malformed_items,
            "callback_errors": self.callback_errors,
            "metrics_flushes": self.metrics_flushes,
            "drain_thread_leaked": self.drain_thread_leaked,
        }

    def run_metrics(self, run_id: int) -> Optional[Dict]:
        """The merged worker-metrics snapshot flushed for one run id."""
        with self._lock:
            registry = self._run_metrics.get(run_id)
            return registry.snapshot() if registry is not None else None

    def merged_metrics(self) -> Dict:
        """Worker metrics merged across every run on this pool."""
        with self._lock:
            return self._merged_metrics.snapshot()

    def _absorb_metrics(self, flush: MetricsFlush) -> None:
        with self._lock:
            self.metrics_flushes += 1
            registry = self._run_metrics.get(flush.run_id)
            if registry is None:
                registry = MetricsRegistry()
                self._run_metrics[flush.run_id] = registry
            registry.merge(flush.metrics)
            self._merged_metrics.merge(flush.metrics)
        # Outside the router lock: the global registry has its own.
        get_metrics().merge(flush.metrics)

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is _ROUTER_SENTINEL:
                return
            if isinstance(item, MetricsFlush):
                try:
                    self._absorb_metrics(item)
                except Exception:
                    self.malformed_items += 1
                continue
            try:
                run_id, shard_index, accepted, trials = item
            except Exception:
                # Torn/garbage item (chaos-injected, or a worker killed
                # mid-put): count it, keep draining.
                self.malformed_items += 1
                continue
            # Dispatch *under* the lock: unsubscribe() (same lock) then
            # cannot return while a dispatch for that run is in flight, so
            # a released run's slot can never be poked by a late update.
            # The callbacks (StreamingAggregator.update, stop tokens) take
            # no lock that could reach back here.
            with self._lock:
                try:
                    callback = self._subscribers.get(run_id)
                except TypeError:  # unhashable run id: garbage in disguise
                    self.malformed_items += 1
                    continue
                if callback is None:
                    self.unknown_run_updates += 1
                    continue
                # Stale accounting: a cumulative partial whose trial count
                # regressed was superseded in transit (or torn by chaos).
                # Heartbeat pings are (0, 0) by contract and never count.
                # Still dispatched — the aggregator's never-regress rule is
                # the authority; the router only observes.
                if (accepted, trials) != (0, 0):
                    try:
                        per_shard = self._last_trials.setdefault(run_id, {})
                        if trials < per_shard.get(shard_index, 0):
                            self.stale_updates += 1
                        else:
                            per_shard[shard_index] = trials
                    except TypeError:  # unhashable shard index: garbage
                        self.malformed_items += 1
                        continue
                try:
                    callback(shard_index, accepted, trials)
                except Exception:
                    # A raising subscriber must not kill the executor-wide
                    # drain thread: streaming degrades for that update
                    # only, never for every later run on the pool.
                    self.callback_errors += 1

    def close(self) -> None:
        """Stop the drain thread; a thread that outlives the join is *surfaced*.

        The join can time out when the queue is wedged (a worker died
        holding the pipe, or a subscriber callback blocks forever): the
        sentinel then never reaches the drain loop.  Silently ignoring that
        would leak one daemon thread per executor lifecycle — so it is
        counted in ``drain_thread_leaked`` and warned about instead, which
        is what the executor-teardown regression tests key on.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
        if thread is not None:
            self._queue.put(_ROUTER_SENTINEL)
            thread.join(timeout=self._join_timeout)
            if thread.is_alive():
                self.drain_thread_leaked += 1
                warnings.warn(
                    f"progress drain thread {thread.name!r} did not exit "
                    f"within {self._join_timeout}s of close() — the progress "
                    "queue is wedged; leaking the (daemon) thread",
                    RuntimeWarning,
                    stacklevel=2,
                )
