"""Shard execution backends and the sharded acceptance estimator.

Three interchangeable backends run the shards a
:class:`~repro.parallel.shards.ShardPlanner` lays out:

- :class:`SerialExecutor` — one shard at a time, in-process.  The reference
  backend: zero concurrency, zero pickling, and the baseline every
  determinism test compares against.
- :class:`ThreadExecutor` — a thread pool sharing one compiled plan (plans
  are read-only after :meth:`~repro.engine.plan.VerificationPlan.prepare`).
  Python's GIL serializes the interpreted parts, but the numpy kernels
  release the GIL in their array passes, so vector-mode plans overlap
  usefully; mostly this backend exists to exercise the cooperative-stop
  machinery without process overhead.
- :class:`ProcessExecutor` — a process pool, the backend that actually buys
  wall-clock on multi-core hardware.  Workers receive a picklable
  :class:`~repro.parallel.spec.PlanSpec` (never a compiled plan) and
  rebuild/cache plans per process; see :mod:`repro.parallel.spec`.

Cooperative early exit
----------------------

Every run gets its own stop token (:class:`~repro.parallel.progress.StopToken`),
so concurrent runs over one pool — campaign cells — stop independently;
the executor-wide ``request_stop()`` remains as a pool-global kill switch
every token also observes.  The aggregator in
:func:`estimate_acceptance_sharded` merges shard results as they complete
and, once the Wilson interval of the running merge is narrow enough,
requests a stop: shards not yet started are skipped, and running shards
observe the flag between chunks (the ``should_stop`` hook of
:func:`~repro.engine.montecarlo.estimate_acceptance_fast`) and return their
partial counts.  Exactly like the single-process Wilson exit, stopping
changes *which trials run*, never any individual verdict — so a stopped
run is still an unbiased estimate over the trials it reports.

With ``stream_progress=True`` the stop acts at **chunk granularity across
all workers** instead of shard granularity: workers publish partial
cumulative counts after every chunk through a backend-appropriate conduit
(direct callback in-process, a ``multiprocessing`` queue plus parent-side
router for the process pool), and a
:class:`~repro.parallel.progress.StreamingAggregator` applies the Wilson
rule to the merged partials — strictly fewer wasted trials on multi-shard
stops, with no effect at all on no-stop runs (the channel is
observational; see :mod:`repro.parallel.progress`).

Determinism contract
--------------------

Without a stop (``stop_halfwidth=None``), every backend runs every shard to
completion and the merged estimate **equals** the single-process
``estimate_acceptance_fast(plan, trials)`` — same ``accepted``, same
``trials`` — in every rng mode, because trial verdicts are pure functions
of the trial counter.  The test suite pins this for 1/2/8 shards on all
three backends.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Tuple, Union

from repro.engine.montecarlo import DEFAULT_CHUNK, estimate_acceptance_fast
from repro.engine.plan import VerificationPlan
from repro.obs.runtime import (
    get_metrics,
    get_recorder,
    record_event,
    reset_metrics,
    take_metrics_flush,
)
from repro.obs.trace import ChunkProgress, NULL_RECORDER
from repro.parallel.progress import (
    ProgressRouter,
    RunHandle,
    StopToken,
    StreamingAggregator,
)
from repro.parallel.shards import Shard, ShardPlanner
from repro.parallel.spec import PlanSpec
from repro.parallel.supervision import RetryPolicy, RunReport, ShardSupervisor
from repro.simulation.metrics import AcceptanceEstimate, wilson_interval


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware where possible)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


@dataclass(frozen=True)
class ShardResult:
    """What one shard reports back: its range and the counts it ran.

    ``trials`` may be short of ``shard.trials`` when a cooperative stop
    fired mid-shard (always a whole number of chunks, possibly zero).
    """

    shard: Shard
    accepted: int
    trials: int

    @property
    def estimate(self) -> AcceptanceEstimate:
        return AcceptanceEstimate(accepted=self.accepted, trials=self.trials)


def _run_shard(
    payload,
    should_stop: Callable[[], bool],
    publish: Optional[Callable[[int, int, int], None]] = None,
) -> ShardResult:
    """The shard worker body — runs on every backend, in-process or not.

    ``publish``, when streaming is on, receives the shard's cumulative
    ``(shard_index, accepted, trials)`` after every chunk — the progress
    conduit of :mod:`repro.parallel.progress`.  Under supervision
    (``options["heartbeat"]``) the same conduit additionally carries
    zero-trial liveness pings at each chunk boundary; the supervisor
    filters them out of the user-facing stream, and they are harmless to a
    raw :class:`~repro.parallel.progress.StreamingAggregator` anyway (a
    ``(0, 0)`` update never regresses its totals).

    Tracing (``options["trace"]``, a picklable
    :class:`~repro.obs.trace.TraceSpec` parented on the run span) wraps
    the shard in a *shard* span and the ``progress`` callback in a
    :class:`~repro.obs.trace.ChunkProgress` — per-chunk spans over the
    same observational seam, the publish channel forwarded unchanged.
    The engine call itself is identical traced or not.
    """
    target, shard, options = payload
    plan = target.resolve() if isinstance(target, PlanSpec) else target
    progress = None
    heartbeat = None
    if publish is not None:
        progress = lambda accepted, trials: publish(  # noqa: E731
            shard.index, accepted, trials
        )
        if options.get("heartbeat"):
            heartbeat = lambda: publish(shard.index, 0, 0)  # noqa: E731
    spec = options.get("trace")
    recorder = spec.recorder() if spec is not None else NULL_RECORDER
    attrs = None
    start_mono = 0.0
    if recorder.enabled:
        attrs = {
            "shard": shard.index,
            "first_trial": shard.start,
            "planned_trials": shard.trials,
            "rng_mode": options["rng_mode"],
        }
        start_mono = time.monotonic()
    with recorder.span(
        "shard", attrs, parent=spec.parent if spec is not None else None
    ) as span:
        if recorder.enabled:
            progress = ChunkProgress(recorder, span.span_id, inner=progress)
        estimate = estimate_acceptance_fast(
            plan,
            shard.trials,
            seed=options["seed"],
            rng_mode=options["rng_mode"],
            seed_mode=options["seed_mode"],
            chunk_size=options["chunk_size"],
            # The chunk-schedule seam: a picklable policy rides in the
            # options dict and is instantiated per shard engine-side (the
            # session holds the mutable growth state).  `.get` keeps old
            # payload dicts (tests, recorded fixtures) valid.
            chunk_schedule=options.get("chunk_policy"),
            vectorize=options["vectorize"],
            first_trial=shard.start,
            should_stop=should_stop,
            progress=progress,
            heartbeat=heartbeat,
        )
        span.set("accepted", estimate.accepted)
        span.set("trials", estimate.trials)
    if recorder.enabled:
        metrics = get_metrics()
        metrics.counter("worker.shards").inc()
        metrics.counter("worker.trials").inc(estimate.trials)
        metrics.histogram("worker.shard_seconds").observe(
            time.monotonic() - start_mono
        )
    return ShardResult(shard=shard, accepted=estimate.accepted, trials=estimate.trials)


# ---------------------------------------------------------------------------
# backends
# ---------------------------------------------------------------------------


class _EpochStop:
    """Pool-global stop as an *epoch counter*, shared by the in-process
    backends.

    A run snapshots the epoch at start and stops once it has advanced — so
    ``request_stop()`` cancels exactly the runs in flight, and later runs
    on the same (shared, warm) executor start unaffected instead of
    inheriting a permanently sticky flag.  (The process backend carries the
    same semantics over a shared-memory counter instead.)
    """

    _stop_epoch = 0

    def request_stop(self) -> None:
        self._stop_epoch += 1

    def _global_probe(self) -> Callable[[], bool]:
        born = self._stop_epoch
        return lambda: self._stop_epoch > born


class SerialExecutor(_EpochStop):
    """Run shards one after another in the calling process.

    ``start_run`` is still safe under campaign cell parallelism: each run
    carries its own :class:`~repro.parallel.progress.StopToken` and executes
    lazily in whichever thread iterates its results, so concurrent cells
    sharing one SerialExecutor never share stop state.
    """

    name = "serial"
    workers = 1
    in_process = True  # payload targets stay in this process (plans shareable)

    def start_run(
        self,
        fn: Callable,
        payloads: Iterable,
        on_progress: Optional[Callable[[int, int, int], None]] = None,
    ) -> RunHandle:
        """Begin one run; shards execute lazily as results are iterated."""
        token = StopToken(extra=self._global_probe())
        payloads = list(payloads)
        record_event(
            "executor.start_run", {"executor": self.name, "shards": len(payloads)}
        )

        def results():
            for payload in payloads:
                if token.probe():
                    break
                yield fn(payload, token.probe, on_progress)

        return RunHandle(results(), token)

    def run(self, fn: Callable, payloads: Iterable) -> Iterator:
        """Legacy two-argument interface (``fn(payload, should_stop)``)."""
        should_stop = self._global_probe()
        for payload in payloads:
            if should_stop():
                break
            yield fn(payload, should_stop)

    def close(self) -> None:
        pass

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ThreadExecutor(_EpochStop):
    """Run shards on a thread pool; the pool-global stop is the epoch
    counter of :class:`_EpochStop`."""

    name = "thread"
    in_process = True

    def __init__(self, workers: Optional[int] = None):
        self.workers = workers if workers is not None else available_cpus()
        if self.workers < 1:
            raise ValueError("workers must be positive")
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-shard"
        )

    def start_run(
        self,
        fn: Callable,
        payloads: Iterable,
        on_progress: Optional[Callable[[int, int, int], None]] = None,
    ) -> RunHandle:
        """Submit one run's shards; per-run token, pool-global epoch as backup."""
        token = StopToken(extra=self._global_probe())
        payloads = list(payloads)
        record_event(
            "executor.start_run", {"executor": self.name, "shards": len(payloads)}
        )
        futures = [
            self._pool.submit(fn, payload, token.probe, on_progress)
            for payload in payloads
        ]
        return RunHandle(_drain_futures(futures), token)

    def run(self, fn: Callable, payloads: Iterable) -> Iterator:
        """Legacy two-argument interface (``fn(payload, should_stop)``)."""
        should_stop = self._global_probe()
        futures = [self._pool.submit(fn, payload, should_stop) for payload in payloads]
        yield from _drain_futures(futures)

    def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ThreadExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _drain_futures(futures) -> Iterator:
    """Yield future results as they complete; cancel the rest on exit."""
    try:
        for future in concurrent.futures.as_completed(futures):
            if future.cancelled():
                continue
            yield future.result()
    finally:
        for future in futures:
            future.cancel()


# Worker-process globals, installed by the pool initializer.  With the fork
# start method children inherit the parent's module state anyway; with spawn
# they import this module fresh and the initializer is the only channel —
# either way the primitives arrive through initargs, the one path
# ProcessPoolExecutor guarantees for synchronization primitives.
#
# Three channels: the pool-global stop *epoch* (a shared counter — a run
# snapshots it at start and stops when it has advanced, so request_stop()
# cancels in-flight runs without poisoning later ones), the per-run stop
# *board* (a flat shared byte array — slot ``i`` nonzero means "run holding
# slot i, stop"), and the progress queue streamed updates travel on.
_WORKER_EPOCH: Optional[object] = None
_WORKER_BOARD: Optional[object] = None
_WORKER_QUEUE: Optional[object] = None

# Concurrent-run capacity of one ProcessExecutor: the stop board is shared
# memory, so its size is fixed at pool start.  Far above any sane
# --cell-parallelism; exceeding it raises rather than silently sharing.
STOP_SLOTS = 64


def _init_shard_worker(stop_epoch, stop_board=None, progress_queue=None) -> None:
    global _WORKER_EPOCH, _WORKER_BOARD, _WORKER_QUEUE
    _WORKER_EPOCH = stop_epoch
    _WORKER_BOARD = stop_board
    _WORKER_QUEUE = progress_queue
    # Fork-started workers inherit the parent's metrics registry values;
    # zero them so a worker flush never re-reports parent-side counts.
    reset_metrics()


def _invoke_in_worker(fn: Callable, payload, born_epoch: int = 0):
    """Legacy worker body: pool-global stop epoch only."""
    epoch = _WORKER_EPOCH

    def should_stop() -> bool:
        return epoch is not None and epoch.value > born_epoch

    return fn(payload, should_stop)


def _invoke_in_worker_run(
    fn: Callable,
    payload,
    slot: int,
    run_id: int,
    stream: bool,
    born_epoch: int,
    flush_metrics: bool = False,
):
    """Worker body for ``start_run``: per-run stop slot + optional streaming.

    With ``flush_metrics`` (set by the parent iff a trace is live), the
    worker's accrued metrics delta rides home on the progress queue as a
    :class:`~repro.obs.metrics.MetricsFlush` after the shard — inside the
    per-shard ``finally`` so a raising shard still reports, and skipped
    entirely when the delta is empty (untraced runs put nothing extra on
    the queue).
    """
    epoch = _WORKER_EPOCH
    board = _WORKER_BOARD

    def should_stop() -> bool:
        if epoch is not None and epoch.value > born_epoch:
            return True
        return board is not None and board[slot] != 0

    publish = None
    if stream and _WORKER_QUEUE is not None:
        queue = _WORKER_QUEUE

        def publish(shard_index: int, accepted: int, trials: int) -> None:
            queue.put((run_id, shard_index, accepted, trials))

    try:
        return fn(payload, should_stop, publish)
    finally:
        if flush_metrics and _WORKER_QUEUE is not None:
            flush = take_metrics_flush(run_id)
            if flush is not None:
                _WORKER_QUEUE.put(flush)


class ProcessExecutor:
    """Run shards on a process pool — true multi-core sharding.

    Payload targets must be :class:`~repro.parallel.spec.PlanSpec` values;
    compiled plans are rejected up front (see :mod:`repro.parallel.spec` for
    why plans never cross the boundary).  The default start method prefers
    ``fork`` (cheap, inherits the warm parent) and falls back to the
    platform default where fork is unavailable.

    Failure posture: one dead worker breaks a whole
    ``concurrent.futures.ProcessPoolExecutor`` — every in-flight future
    fails and new submissions are refused.  :meth:`repair` is the recovery
    path the supervision layer (:mod:`repro.parallel.supervision`) uses: it
    swaps in a fresh pool over the *same* shared stop/progress primitives
    and reaps the old pool's processes, so retried shards dispatch onto
    healthy workers without rebuilding the executor.  :meth:`close` is
    idempotent and always reaps — the context-manager exit path guarantees
    no worker process outlives the executor, exceptions or not.
    """

    name = "process"
    in_process = False  # payloads cross a process boundary (specs only)

    def __init__(self, workers: Optional[int] = None, start_method: Optional[str] = None):
        self.workers = workers if workers is not None else available_cpus()
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._context = multiprocessing.get_context(start_method)
        self.start_method = start_method
        # Pool-global stop epoch, per-run stop slots, and the progress queue
        # must all exist before the pool so the initializer can ship them to
        # every worker (lock-free shared memory: the parent is the only
        # writer, and single-word reads are atomic).
        self._stop_epoch = self._context.Value("L", 0, lock=False)
        self._board = self._context.Array("b", STOP_SLOTS, lock=False)
        self._queue = self._context.Queue()
        self._router = ProgressRouter(self._queue)
        self._free_slots = list(range(STOP_SLOTS))
        self._run_counter = 0
        self._lock = threading.Lock()
        self._closed = False
        self.repairs = 0  # pool replacements performed by repair()
        self._pool = self._make_pool()

    def _make_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=self._context,
            initializer=_init_shard_worker,
            initargs=(self._stop_epoch, self._board, self._queue),
        )

    @staticmethod
    def _reap_pool(pool, grace: float = 5.0) -> None:
        """Forcibly terminate and join any worker the pool left alive.

        Normal shutdown leaves nothing to do; this is the backstop for
        broken pools and hung workers (the one case ``shutdown`` cannot
        reclaim).  Reaches into the pool's process table — a private
        attribute, so every access is defensive."""
        processes = list((getattr(pool, "_processes", None) or {}).values())
        for process in processes:
            try:
                if process.is_alive():
                    process.terminate()
            except Exception:  # pragma: no cover - racing process exit
                pass
        for process in processes:
            try:
                process.join(timeout=grace)
                if process.is_alive():  # pragma: no cover - last resort
                    process.kill()
                    process.join(timeout=grace)
            except Exception:  # pragma: no cover - racing process exit
                pass

    def repair(self) -> None:
        """Replace the worker pool; shared stop/progress state survives.

        Builds the new pool *first*, swaps it in, then tears the old one
        down — concurrent ``start_run`` calls always find a usable pool.
        In-flight futures on the old pool fail (``BrokenProcessPool``)
        rather than block, which is exactly what the supervisor's retry
        path wants.  Hung or dead old workers are terminated and joined.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot repair a closed executor")
            old, self._pool = self._pool, self._make_pool()
            self.repairs += 1
        try:
            old.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - broken-pool teardown races
            pass
        self._reap_pool(old)

    def request_stop(self) -> None:
        self._stop_epoch.value += 1

    @staticmethod
    def _check_payloads(payloads) -> list:
        payloads = list(payloads)
        for payload in payloads:
            target = payload[0] if isinstance(payload, tuple) and payload else payload
            if isinstance(target, VerificationPlan):
                raise TypeError(
                    "ProcessExecutor shards take a PlanSpec, not a compiled "
                    "VerificationPlan — build one with PlanSpec.of(...)"
                )
        return payloads

    def start_run(
        self,
        fn: Callable,
        payloads: Iterable,
        on_progress: Optional[Callable[[int, int, int], None]] = None,
    ) -> RunHandle:
        """Submit one run's shards with a dedicated stop slot.

        With ``on_progress`` set, this run's workers stream partial counts
        onto the shared queue and the router dispatches them (by run id) to
        the callback — several concurrent runs stream without crosstalk.
        """
        payloads = self._check_payloads(payloads)
        with self._lock:
            if not self._free_slots:
                raise RuntimeError(
                    f"more than {STOP_SLOTS} concurrent runs on one "
                    "ProcessExecutor — lower the cell parallelism"
                )
            slot = self._free_slots.pop()
            run_id = self._run_counter
            self._run_counter += 1
        self._board[slot] = 0
        stream = on_progress is not None
        if stream:
            self._router.subscribe(run_id, on_progress)
        born = self._stop_epoch.value
        token = StopToken(
            extra=lambda: self._stop_epoch.value > born,
            on_request=lambda: self._board.__setitem__(slot, 1),
        )
        # Worker metrics only flush while a trace is live — the off path
        # puts zero extra items on the queue.
        flush_metrics = get_recorder().enabled
        record_event(
            "executor.start_run",
            {"executor": self.name, "shards": len(payloads), "run_id": run_id},
        )
        futures = [
            self._pool.submit(
                _invoke_in_worker_run,
                fn,
                payload,
                slot,
                run_id,
                stream,
                born,
                flush_metrics,
            )
            for payload in payloads
        ]

        def release():
            # Teardown order matters.  (1) Unsubscribe — the router
            # dispatches under its own lock, so after this returns no late
            # update can poke this run's token/slot.  (2) Stop and wait out
            # this run's workers: pending futures cancel, already-running
            # shards see the slot flag at their next chunk.  Only then
            # (3) is the slot clean to hand to a concurrent run.
            if stream:
                self._router.unsubscribe(run_id)
            self._board[slot] = 1
            for future in futures:
                future.cancel()
            concurrent.futures.wait(futures)
            with self._lock:
                self._board[slot] = 0
                self._free_slots.append(slot)

        return RunHandle(_drain_futures(futures), token, on_finish=release)

    def run(self, fn: Callable, payloads: Iterable) -> Iterator:
        """Legacy two-argument interface (``fn(payload, should_stop)``)."""
        payloads = self._check_payloads(payloads)
        born = self._stop_epoch.value
        futures = [
            self._pool.submit(_invoke_in_worker, fn, payload, born)
            for payload in payloads
        ]
        yield from _drain_futures(futures)

    def progress_stats(self) -> dict:
        """The router's drop/leak counters (see ``ProgressRouter.stats``)."""
        return self._router.stats()

    def worker_metrics(self, run_id: Optional[int] = None) -> Optional[dict]:
        """Worker-flushed metrics: one run's snapshot, or merged across runs."""
        if run_id is not None:
            return self._router.run_metrics(run_id)
        return self._router.merged_metrics()

    def close(self) -> None:
        """Tear down the pool and router; idempotent, and always reaps.

        Every exit path — normal completion, an exception inside a ``with``
        block, a double close — ends with no live worker process: after the
        orderly shutdown, any survivor (broken pool, hung worker) is
        terminated and joined by :meth:`_reap_pool`.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool = self._pool
        # Pool first, router second: workers may still be publishing while
        # shutdown waits for them, and the drain thread must keep reading
        # or a full queue pipe would block worker exit (feeder-thread join)
        # and deadlock the shutdown.
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        finally:
            self._reap_pool(pool)
            self._router.close()

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}

Executor = Union[SerialExecutor, ThreadExecutor, ProcessExecutor]


def resolve_executor(
    executor: Union[str, Executor, None], workers: Optional[int] = None
) -> Tuple[Executor, bool]:
    """An executor instance for a name-or-instance argument.

    Returns ``(executor, owned)`` — ``owned`` tells the caller whether it
    created (and must close) the instance.  Worker-leak discipline: every
    internal caller closes owned executors in a ``finally``; tests assert no
    child processes survive a close.

    A worker count that the named backend cannot honour raises the same
    :class:`ValueError` an instance mismatch does — ``("serial", workers=4)``
    is a contradiction, not a request to be silently downgraded.
    """
    if executor is None:
        executor = "serial"
    if isinstance(executor, str):
        try:
            factory = EXECUTORS[executor]
        except KeyError:
            raise ValueError(
                f"unknown executor {executor!r} (choose from {sorted(EXECUTORS)})"
            ) from None
        if factory is SerialExecutor:
            if workers not in (None, 1):
                raise ValueError(
                    f"workers={workers} conflicts with the serial executor's "
                    "workers=1 — pick the thread or process backend for "
                    "multi-worker runs"
                )
            return SerialExecutor(), True
        return factory(workers=workers), True
    if workers is not None and getattr(executor, "workers", None) not in (None, workers):
        raise ValueError(
            f"workers={workers} conflicts with the provided executor's "
            f"workers={executor.workers}"
        )
    return executor, False


# ---------------------------------------------------------------------------
# the sharded estimator
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardedEstimate:
    """The merged estimate of a sharded run, with its per-shard provenance.

    ``streamed`` records whether the run used the progressive progress
    channel; ``progress_updates`` counts the partial-count updates the
    streaming aggregator folded in (0 on non-streamed runs) — provenance
    for the chunk-granular stop, never part of the estimate itself.

    ``report`` is the supervision ledger
    (:class:`~repro.parallel.supervision.RunReport`) when the run was
    supervised (``shard_timeout``/``max_retries``/``retry_policy``), else
    ``None``.  A report with quarantined shards means the estimate merges
    only the shards that completed — still exact over those counter
    ranges, but short of the requested budget; check ``report.ok``.
    """

    estimate: AcceptanceEstimate
    shard_results: Tuple[ShardResult, ...]
    requested_trials: int
    executor: str
    workers: int
    stopped_early: bool
    streamed: bool = False
    progress_updates: int = 0
    report: Optional["RunReport"] = None

    @property
    def shards(self) -> int:
        return len(self.shard_results)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = " (stopped early)" if self.stopped_early else ""
        if self.streamed:
            tag += " [streamed]"
        return (
            f"{self.estimate} over {self.shards} shards "
            f"[{self.executor} x{self.workers}]{tag}"
        )


def estimate_acceptance_sharded(
    target: Union[PlanSpec, VerificationPlan],
    trials: int,
    seed: int = 0,
    executor: Union[str, Executor, None] = "serial",
    workers: Optional[int] = None,
    planner: Optional[ShardPlanner] = None,
    shard_count: Optional[int] = None,
    rng_mode: Optional[str] = None,
    seed_mode: str = "mix",
    chunk_size: int = DEFAULT_CHUNK,
    chunk_policy=None,
    stop_halfwidth: Optional[float] = None,
    min_trials: int = 2 * DEFAULT_CHUNK,
    vectorize: Optional[bool] = None,
    stream_progress: bool = False,
    first_trial: int = 0,
    prior: Optional[Tuple[int, int]] = None,
    progress_observer: Optional[Callable[[int, int], None]] = None,
    shard_timeout: Optional[float] = None,
    max_retries: int = 0,
    retry_policy: Optional[RetryPolicy] = None,
) -> ShardedEstimate:
    """Estimate ``Pr[verifier accepts]`` with the trial range sharded.

    The multi-worker counterpart of
    :func:`~repro.engine.montecarlo.estimate_acceptance_fast`: the trial
    budget is partitioned into counter ranges (``planner`` /
    ``shard_count``), the ranges run on ``executor`` (a name from
    ``EXECUTORS`` or a ready instance; string names honour ``workers``), and
    the per-shard counts merge through
    :meth:`~repro.simulation.metrics.AcceptanceEstimate.merge`.

    ``target`` may be a compiled plan (serial/thread backends) or a
    :class:`~repro.parallel.spec.PlanSpec` (any backend; required for
    processes).  With ``stop_halfwidth`` set, the aggregator applies the
    Wilson stop rule to the *merged* running estimate and cancels
    outstanding shards cooperatively.  Without it, the result is exactly the
    single-process estimate — see the module docstring's determinism
    contract.

    ``stream_progress=True`` turns on the progressive channel of
    :mod:`repro.parallel.progress`: workers publish partial cumulative
    counts after every chunk and the Wilson stop rule runs on the merged
    partials, firing at chunk granularity across all workers instead of
    waiting for whole shards — never more trials than the shard-granular
    stop, usually measurably fewer.  Streaming is observational: a no-stop
    streamed run is count-identical to the non-streamed (and single-process)
    run on every backend and rng mode.

    Adaptive-budget hooks (see :mod:`repro.parallel.controller`):

    - ``chunk_policy`` is a picklable chunk schedule shipped to every shard
      through the payload options — each shard instantiates its own session
      engine-side, so chunk growth is per-shard state.  Any policy is
      per-trial verdict-identical to the fixed-chunk run (the chunk-schedule
      seam only re-partitions the shard's fixed counter range).
    - ``first_trial`` shifts the whole sharded range: the call covers
      counters ``[first_trial, first_trial + trials)``, exactly as the
      engine-level hook does for a single shard.  An *installment* run
      extending an earlier one passes the consumed prefix length here.
    - ``prior`` seeds the stop rule with cumulative ``(accepted, trials)``
      counts from the already-consumed prefix, so ``stop_halfwidth`` (and
      ``min_trials``) apply to the *cumulative* estimate across
      installments.  The returned estimate still reports only this call's
      counts — the caller owns the cumulative ledger.
    - ``progress_observer`` receives the merged cumulative totals (prior
      included) after every streamed update; observational only.

    Fault tolerance (``shard_timeout`` / ``max_retries`` / ``retry_policy``,
    see :mod:`repro.parallel.supervision`): setting any of them routes the
    run through a :class:`~repro.parallel.supervision.ShardSupervisor` —
    shards get heartbeat deadlines, failed or timed-out shards retry with
    deterministic backoff (bit-identical re-execution, so any crash/retry
    schedule merges to the undisturbed estimate), shards that exhaust the
    budget are quarantined, and the returned estimate carries the
    :class:`~repro.parallel.supervision.RunReport` in ``report``.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if first_trial < 0:
        raise ValueError("first_trial must be non-negative")
    prior_accepted, prior_trials = prior if prior is not None else (0, 0)
    if prior_accepted < 0 or prior_trials < 0 or prior_accepted > prior_trials:
        raise ValueError("prior must be valid (accepted, trials) counts")
    if planner is not None and shard_count is not None:
        raise ValueError("pass either planner or shard_count, not both")
    if planner is None:
        planner = ShardPlanner(shard_count=shard_count)
    supervised = (
        retry_policy is not None or shard_timeout is not None or max_retries > 0
    )
    if retry_policy is not None and (shard_timeout is not None or max_retries):
        raise ValueError(
            "pass either retry_policy or shard_timeout/max_retries, not both"
        )
    if supervised and retry_policy is None:
        retry_policy = RetryPolicy(max_retries=max_retries, shard_timeout=shard_timeout)

    instance, owned = resolve_executor(executor, workers)
    recorder = get_recorder()
    run_attrs = None
    if recorder.enabled:
        run_attrs = {
            "executor": instance.name,
            "workers": instance.workers,
            "trials": trials,
            "seed": seed,
            "first_trial": first_trial,
            "supervised": supervised,
            "streamed": stream_progress,
        }
    run_span = recorder.span("run", run_attrs)
    try:
        # Chaos wrappers and other delegating executors advertise whether
        # payloads stay in-process via the `in_process` attribute; the bare
        # ProcessExecutor is the one stock backend that ships them out.
        in_process = getattr(instance, "in_process", True)
        if isinstance(target, PlanSpec):
            if rng_mode is None:
                rng_mode = target.rng_mode
            shard_target: Union[PlanSpec, VerificationPlan] = target
            if in_process:
                # Same process: resolve once and share the read-only plan.
                shard_target = target.resolve().prepare(vectorize)
        else:
            if rng_mode is None:
                rng_mode = target.rng_mode
            shard_target = target.prepare(vectorize)

        shards = planner.plan(trials, instance.workers)
        if first_trial:
            # Installment runs extend an earlier consumed prefix: shift the
            # whole planned range so shard provenance records the *global*
            # counter positions the trials actually derive their seeds from.
            shards = tuple(
                Shard(
                    index=shard.index,
                    start=shard.start + first_trial,
                    stop=shard.stop + first_trial,
                )
                for shard in shards
            )
        options = {
            "seed": seed,
            "rng_mode": rng_mode,
            "seed_mode": seed_mode,
            "chunk_size": chunk_size,
            "chunk_policy": chunk_policy,
            "vectorize": vectorize,
        }
        if supervised:
            # The liveness-ping channel (see _run_shard); supervision needs
            # heartbeats even on non-streamed runs.
            options["heartbeat"] = True
        if recorder.enabled:
            run_span.set("rng_mode", rng_mode)
            run_span.set("shards", len(shards))
            # Workers rebuild a recorder from the spec (the PlanSpec move);
            # shard spans parent onto this run span across the boundary.
            options["trace"] = recorder.spec(parent=run_span.span_id)
        payloads = [(shard_target, shard, options) for shard in shards]

        aggregator: Optional[StreamingAggregator] = None
        on_progress = None
        if stream_progress:
            aggregator = StreamingAggregator(
                stop_halfwidth=stop_halfwidth,
                min_trials=min_trials,
                baseline=(prior_accepted, prior_trials),
                observer=progress_observer,
            )
            on_progress = aggregator.update

        results: List[ShardResult] = []
        # Stop checks act on the cumulative counts: the prior prefix plus
        # whatever this call has merged so far.
        accepted = prior_accepted
        done = prior_trials
        stopped = False
        report: Optional[RunReport] = None

        if supervised:
            def on_result(result):
                # Runs on the supervisor thread, once per accepted shard —
                # the same merge-and-maybe-stop step the unsupervised drain
                # loop below performs inline.
                nonlocal accepted, done, stopped
                accepted += result.accepted
                done += result.trials
                if aggregator is not None:
                    aggregator.update(
                        result.shard.index, result.accepted, result.trials
                    )
                    if aggregator.satisfied:
                        stopped = True
                elif (
                    not stopped
                    and stop_halfwidth is not None
                    and done >= min_trials
                ):
                    low, high = wilson_interval(accepted, done)
                    if high - low <= 2 * stop_halfwidth:
                        stopped = True
                        supervisor.request_stop()

            supervisor = ShardSupervisor(
                instance,
                _run_shard,
                payloads,
                policy=retry_policy,
                on_progress=on_progress,
                on_result=on_result,
            )
            if aggregator is not None:
                aggregator.bind_stop(supervisor.request_stop)
            result_map, report = supervisor.run()
            results = list(result_map.values())
            if aggregator is not None and aggregator.satisfied:
                stopped = True
        else:
            # The context manager guarantees the run's backend resources
            # (stop-board slot, progress subscription) are released on every
            # exit path — including errors raised *before* the first result
            # is iterated, where closing the result generator alone would
            # never reach its finally (a never-started generator's body does
            # not run on close; see RunHandle.close).
            with instance.start_run(
                _run_shard, payloads, on_progress=on_progress
            ) as handle:
                if aggregator is not None:
                    aggregator.bind_stop(handle.request_stop)
                for result in handle.results():
                    results.append(result)
                    accepted += result.accepted
                    done += result.trials
                    if aggregator is not None:
                        # Completed shards fold in through the same path as
                        # their partials (idempotent: the final counts equal
                        # the shard's last published update), so the stop
                        # decision never waits on queue latency.
                        aggregator.update(
                            result.shard.index, result.accepted, result.trials
                        )
                        stopped = aggregator.satisfied
                    elif (
                        not stopped
                        and stop_halfwidth is not None
                        and done >= min_trials
                    ):
                        low, high = wilson_interval(accepted, done)
                        if high - low <= 2 * stop_halfwidth:
                            stopped = True
                            handle.request_stop()
    except BaseException as exc:
        # Close the run span on the error path (status="error"); the
        # success path closes it after the merge, with the final counts.
        run_span.__exit__(type(exc), exc, None)
        raise
    finally:
        if owned:
            instance.close()

    results.sort(key=lambda result: result.shard.index)
    merged = AcceptanceEstimate.merge(result.estimate for result in results)
    stopped_early = stopped or merged.trials < trials
    run_span.set("trials_run", merged.trials)
    run_span.set("accepted", merged.accepted)
    run_span.set("stopped_early", stopped_early)
    run_span.__exit__(None, None, None)
    return ShardedEstimate(
        estimate=merged,
        shard_results=tuple(results),
        requested_trials=trials,
        executor=instance.name,
        workers=instance.workers,
        stopped_early=stopped_early,
        streamed=stream_progress,
        progress_updates=aggregator.updates if aggregator is not None else 0,
        report=report,
    )
