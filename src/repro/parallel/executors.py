"""Shard execution backends and the sharded acceptance estimator.

Three interchangeable backends run the shards a
:class:`~repro.parallel.shards.ShardPlanner` lays out:

- :class:`SerialExecutor` — one shard at a time, in-process.  The reference
  backend: zero concurrency, zero pickling, and the baseline every
  determinism test compares against.
- :class:`ThreadExecutor` — a thread pool sharing one compiled plan (plans
  are read-only after :meth:`~repro.engine.plan.VerificationPlan.prepare`).
  Python's GIL serializes the interpreted parts, but the numpy kernels
  release the GIL in their array passes, so vector-mode plans overlap
  usefully; mostly this backend exists to exercise the cooperative-stop
  machinery without process overhead.
- :class:`ProcessExecutor` — a process pool, the backend that actually buys
  wall-clock on multi-core hardware.  Workers receive a picklable
  :class:`~repro.parallel.spec.PlanSpec` (never a compiled plan) and
  rebuild/cache plans per process; see :mod:`repro.parallel.spec`.

Cooperative early exit
----------------------

Every backend exposes one shared stop signal.  The aggregator in
:func:`estimate_acceptance_sharded` merges shard results as they complete
and, once the Wilson interval of the running merge is narrow enough,
requests a stop: shards not yet started are skipped, and running shards
observe the flag between chunks (the ``should_stop`` hook of
:func:`~repro.engine.montecarlo.estimate_acceptance_fast`) and return their
partial counts.  Exactly like the single-process Wilson exit, stopping
changes *which trials run*, never any individual verdict — so a stopped
run is still an unbiased estimate over the trials it reports.

Determinism contract
--------------------

Without a stop (``stop_halfwidth=None``), every backend runs every shard to
completion and the merged estimate **equals** the single-process
``estimate_acceptance_fast(plan, trials)`` — same ``accepted``, same
``trials`` — in every rng mode, because trial verdicts are pure functions
of the trial counter.  The test suite pins this for 1/2/8 shards on all
three backends.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Tuple, Union

from repro.engine.montecarlo import DEFAULT_CHUNK, estimate_acceptance_fast
from repro.engine.plan import VerificationPlan
from repro.parallel.shards import Shard, ShardPlanner
from repro.parallel.spec import PlanSpec
from repro.simulation.metrics import AcceptanceEstimate, wilson_interval


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware where possible)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


@dataclass(frozen=True)
class ShardResult:
    """What one shard reports back: its range and the counts it ran.

    ``trials`` may be short of ``shard.trials`` when a cooperative stop
    fired mid-shard (always a whole number of chunks, possibly zero).
    """

    shard: Shard
    accepted: int
    trials: int

    @property
    def estimate(self) -> AcceptanceEstimate:
        return AcceptanceEstimate(accepted=self.accepted, trials=self.trials)


def _run_shard(payload, should_stop: Callable[[], bool]) -> ShardResult:
    """The shard worker body — runs on every backend, in-process or not."""
    target, shard, options = payload
    plan = target.resolve() if isinstance(target, PlanSpec) else target
    estimate = estimate_acceptance_fast(
        plan,
        shard.trials,
        seed=options["seed"],
        rng_mode=options["rng_mode"],
        seed_mode=options["seed_mode"],
        chunk_size=options["chunk_size"],
        vectorize=options["vectorize"],
        first_trial=shard.start,
        should_stop=should_stop,
    )
    return ShardResult(shard=shard, accepted=estimate.accepted, trials=estimate.trials)


# ---------------------------------------------------------------------------
# backends
# ---------------------------------------------------------------------------


class SerialExecutor:
    """Run shards one after another in the calling process."""

    name = "serial"
    workers = 1

    def __init__(self):
        self._stop = False

    def request_stop(self) -> None:
        self._stop = True

    def run(self, fn: Callable, payloads: Iterable) -> Iterator:
        self._stop = False
        should_stop = lambda: self._stop  # noqa: E731 - the flag, as a probe
        for payload in payloads:
            if self._stop:
                break
            yield fn(payload, should_stop)

    def close(self) -> None:
        pass

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ThreadExecutor:
    """Run shards on a thread pool; the stop signal is a threading.Event."""

    name = "thread"

    def __init__(self, workers: Optional[int] = None):
        self.workers = workers if workers is not None else available_cpus()
        if self.workers < 1:
            raise ValueError("workers must be positive")
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-shard"
        )
        self._event = threading.Event()

    def request_stop(self) -> None:
        self._event.set()

    def run(self, fn: Callable, payloads: Iterable) -> Iterator:
        self._event.clear()
        should_stop = self._event.is_set
        futures = [self._pool.submit(fn, payload, should_stop) for payload in payloads]
        try:
            for future in concurrent.futures.as_completed(futures):
                if future.cancelled():
                    continue
                yield future.result()
        finally:
            for future in futures:
                future.cancel()

    def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ThreadExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# Worker-process globals, installed by the pool initializer.  With the fork
# start method children inherit the parent's module state anyway; with spawn
# they import this module fresh and the initializer is the only channel —
# either way the event arrives through initargs, the one path
# ProcessPoolExecutor guarantees for synchronization primitives.
_WORKER_STOP: Optional[object] = None


def _init_shard_worker(stop_event) -> None:
    global _WORKER_STOP
    _WORKER_STOP = stop_event


def _never_stop() -> bool:
    return False


def _invoke_in_worker(fn: Callable, payload):
    stop = _WORKER_STOP
    return fn(payload, stop.is_set if stop is not None else _never_stop)


class ProcessExecutor:
    """Run shards on a process pool — true multi-core sharding.

    Payload targets must be :class:`~repro.parallel.spec.PlanSpec` values;
    compiled plans are rejected up front (see :mod:`repro.parallel.spec` for
    why plans never cross the boundary).  The default start method prefers
    ``fork`` (cheap, inherits the warm parent) and falls back to the
    platform default where fork is unavailable.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None, start_method: Optional[str] = None):
        self.workers = workers if workers is not None else available_cpus()
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._context = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self._event = self._context.Event()
        self._pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=self._context,
            initializer=_init_shard_worker,
            initargs=(self._event,),
        )

    def request_stop(self) -> None:
        self._event.set()

    def run(self, fn: Callable, payloads: Iterable) -> Iterator:
        self._event.clear()
        payloads = list(payloads)
        for payload in payloads:
            target = payload[0] if isinstance(payload, tuple) and payload else payload
            if isinstance(target, VerificationPlan):
                raise TypeError(
                    "ProcessExecutor shards take a PlanSpec, not a compiled "
                    "VerificationPlan — build one with PlanSpec.of(...)"
                )
        futures = [
            self._pool.submit(_invoke_in_worker, fn, payload) for payload in payloads
        ]
        try:
            for future in concurrent.futures.as_completed(futures):
                if future.cancelled():
                    continue
                yield future.result()
        finally:
            for future in futures:
                future.cancel()

    def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}

Executor = Union[SerialExecutor, ThreadExecutor, ProcessExecutor]


def resolve_executor(
    executor: Union[str, Executor, None], workers: Optional[int] = None
) -> Tuple[Executor, bool]:
    """An executor instance for a name-or-instance argument.

    Returns ``(executor, owned)`` — ``owned`` tells the caller whether it
    created (and must close) the instance.  Worker-leak discipline: every
    internal caller closes owned executors in a ``finally``; tests assert no
    child processes survive a close.
    """
    if executor is None:
        executor = "serial"
    if isinstance(executor, str):
        try:
            factory = EXECUTORS[executor]
        except KeyError:
            raise ValueError(
                f"unknown executor {executor!r} (choose from {sorted(EXECUTORS)})"
            ) from None
        if factory is SerialExecutor:
            return SerialExecutor(), True
        return factory(workers=workers), True
    if workers is not None and getattr(executor, "workers", None) not in (None, workers):
        raise ValueError(
            f"workers={workers} conflicts with the provided executor's "
            f"workers={executor.workers}"
        )
    return executor, False


# ---------------------------------------------------------------------------
# the sharded estimator
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardedEstimate:
    """The merged estimate of a sharded run, with its per-shard provenance."""

    estimate: AcceptanceEstimate
    shard_results: Tuple[ShardResult, ...]
    requested_trials: int
    executor: str
    workers: int
    stopped_early: bool

    @property
    def shards(self) -> int:
        return len(self.shard_results)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = " (stopped early)" if self.stopped_early else ""
        return (
            f"{self.estimate} over {self.shards} shards "
            f"[{self.executor} x{self.workers}]{tag}"
        )


def estimate_acceptance_sharded(
    target: Union[PlanSpec, VerificationPlan],
    trials: int,
    seed: int = 0,
    executor: Union[str, Executor, None] = "serial",
    workers: Optional[int] = None,
    planner: Optional[ShardPlanner] = None,
    shard_count: Optional[int] = None,
    rng_mode: Optional[str] = None,
    seed_mode: str = "mix",
    chunk_size: int = DEFAULT_CHUNK,
    stop_halfwidth: Optional[float] = None,
    min_trials: int = 2 * DEFAULT_CHUNK,
    vectorize: Optional[bool] = None,
) -> ShardedEstimate:
    """Estimate ``Pr[verifier accepts]`` with the trial range sharded.

    The multi-worker counterpart of
    :func:`~repro.engine.montecarlo.estimate_acceptance_fast`: the trial
    budget is partitioned into counter ranges (``planner`` /
    ``shard_count``), the ranges run on ``executor`` (a name from
    ``EXECUTORS`` or a ready instance; string names honour ``workers``), and
    the per-shard counts merge through
    :meth:`~repro.simulation.metrics.AcceptanceEstimate.merge`.

    ``target`` may be a compiled plan (serial/thread backends) or a
    :class:`~repro.parallel.spec.PlanSpec` (any backend; required for
    processes).  With ``stop_halfwidth`` set, the aggregator applies the
    Wilson stop rule to the *merged* running estimate and cancels
    outstanding shards cooperatively.  Without it, the result is exactly the
    single-process estimate — see the module docstring's determinism
    contract.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if planner is not None and shard_count is not None:
        raise ValueError("pass either planner or shard_count, not both")
    if planner is None:
        planner = ShardPlanner(shard_count=shard_count)

    instance, owned = resolve_executor(executor, workers)
    try:
        if isinstance(target, PlanSpec):
            if rng_mode is None:
                rng_mode = target.rng_mode
            shard_target: Union[PlanSpec, VerificationPlan] = target
            if not isinstance(instance, ProcessExecutor):
                # Same process: resolve once and share the read-only plan.
                shard_target = target.resolve().prepare(vectorize)
        else:
            if rng_mode is None:
                rng_mode = target.rng_mode
            shard_target = target.prepare(vectorize)

        shards = planner.plan(trials, instance.workers)
        options = {
            "seed": seed,
            "rng_mode": rng_mode,
            "seed_mode": seed_mode,
            "chunk_size": chunk_size,
            "vectorize": vectorize,
        }
        payloads = [(shard_target, shard, options) for shard in shards]

        results: List[ShardResult] = []
        accepted = 0
        done = 0
        stopped = False
        for result in instance.run(_run_shard, payloads):
            results.append(result)
            accepted += result.accepted
            done += result.trials
            if (
                not stopped
                and stop_halfwidth is not None
                and done >= min_trials
            ):
                low, high = wilson_interval(accepted, done)
                if high - low <= 2 * stop_halfwidth:
                    stopped = True
                    instance.request_stop()
    finally:
        if owned:
            instance.close()

    results.sort(key=lambda result: result.shard.index)
    merged = AcceptanceEstimate.merge(result.estimate for result in results)
    stopped_early = stopped or merged.trials < trials
    return ShardedEstimate(
        estimate=merged,
        shard_results=tuple(results),
        requested_trials=trials,
        executor=instance.name,
        workers=instance.workers,
        stopped_early=stopped_early,
    )
