"""Command-line entry point for sharded estimates and campaigns.

Run as ``python -m repro.parallel.cli`` (with ``src`` on ``PYTHONPATH``):

- ``... list`` — the workload registry and executor backends;
- ``... estimate --workload spanning-tree --trials 20000 --workers 4
  --executor process`` — one sharded estimate, printed with its Wilson
  interval and shard provenance;
- ``... campaign --workloads spanning-tree,shared-coins --rng-modes
  fast,vector --trials 2000,8000 --out results/campaign.jsonl`` — a sweep
  streamed to a resumable JSON-lines sink (rerunning the same command picks
  up where it stopped).

Workload sizes pass through ``--size key=value`` pairs (repeatable), e.g.
``--size node_count=200 --size extra_edges=60``.  In a mixed campaign a
bare key applies to every workload *whose factory accepts it* (keys a
factory does not take are skipped with a warning, not a crash), and a
``workload:key=value`` prefix pins the size to one workload of the sweep:
``--workloads spanning-tree,k-flow --size spanning-tree:node_count=200
--size k-flow:k=3``.

``--cell-parallelism N`` runs N campaign cells concurrently over the one
worker pool; ``--stream-progress`` turns on progressive shard-result
streaming so Wilson stops fire at chunk granularity (see
``docs/parallel.md``).

Adaptive budgets (see docs/parallel.md "Adaptive budgets"):
``--chunk-policy geometric`` lets chunks start small and grow as the Wilson
interval tightens, and ``campaign --global-budget 20000 --target-halfwidth
0.03`` replaces per-cell budgets with one allocator-managed pool that is
re-granted to the widest cells until every cell reaches the target.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from contextlib import nullcontext
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.plan import RNG_MODES
from repro.obs.runtime import tracing
from repro.parallel.campaign import Campaign, JsonlSink, MemorySink, run_campaign
from repro.parallel.controller import parse_chunk_policy
from repro.parallel.executors import (
    DEFAULT_CHUNK,
    EXECUTORS,
    available_cpus,
    estimate_acceptance_sharded,
)
from repro.parallel.factories import WORKLOADS, workload_spec
from repro.parallel.shards import ShardPlanner


def _parse_sizes(
    pairs: Optional[Sequence[str]],
) -> Tuple[Dict[str, int], Dict[str, Dict[str, int]]]:
    """Split ``--size`` pairs into shared sizes and per-workload overrides.

    ``key=value`` applies to every workload (where applicable);
    ``workload:key=value`` applies to that workload only.
    """
    shared: Dict[str, int] = {}
    scoped: Dict[str, Dict[str, int]] = {}
    for pair in pairs or ():
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--size expects [workload:]key=value, got {pair!r}")
        workload, colon, scoped_key = key.partition(":")
        try:
            parsed = int(value)
        except ValueError:
            raise SystemExit(f"--size value must be an integer, got {pair!r}") from None
        if colon:
            if not scoped_key:
                raise SystemExit(f"--size expects [workload:]key=value, got {pair!r}")
            scoped.setdefault(workload, {})[scoped_key] = parsed
        else:
            shared[key] = parsed
    return shared, scoped


def _factory_size_keys(workload: str) -> set:
    factory, _randomness = WORKLOADS[workload]
    return set(inspect.signature(factory).parameters)


def _sizes_for(
    workload: str,
    shared: Dict[str, int],
    scoped: Dict[str, Dict[str, int]],
    strict: bool = False,
) -> Dict[str, int]:
    """The size kwargs one workload actually receives.

    In a *mixed* sweep, shared keys the workload's factory does not accept
    are dropped with a warning (``--workloads spanning-tree,k-flow --size
    node_count=200`` must not crash the flow factory).  With a single
    workload there is no ambiguity a shared key could be resolving —
    ``strict=True`` makes an inapplicable key fail fast like a scoped typo
    would, instead of silently benchmarking the default size.
    """
    accepted = _factory_size_keys(workload)
    sizes: Dict[str, int] = {}
    for key, value in shared.items():
        if key in accepted:
            sizes[key] = value
        elif strict:
            raise SystemExit(
                f"--size {key}= names a size the {workload!r} factory does "
                f"not accept (takes: {', '.join(sorted(accepted))})"
            )
        else:
            print(
                f"warning: --size {key}={value} does not apply to workload "
                f"{workload!r}; ignored",
                file=sys.stderr,
            )
    for key, value in scoped.get(workload, {}).items():
        if key not in accepted:
            raise SystemExit(
                f"--size {workload}:{key}= names a size the {workload!r} "
                f"factory does not accept (takes: {', '.join(sorted(accepted))})"
            )
        sizes[key] = value
    return sizes


def _parse_rng_modes(value: str) -> List[str]:
    modes = _csv(value)
    for mode in modes:
        if mode not in RNG_MODES:
            raise SystemExit(
                f"unknown rng mode {mode!r} (choose from {', '.join(RNG_MODES)})"
            )
    return modes


def _csv(value: str) -> List[str]:
    return [item for item in (part.strip() for part in value.split(",")) if item]


def _halfwidth_flag(flag: str):
    """An argparse ``type`` that bounds a halfwidth to the open (0, 0.5).

    Same boundary-validation posture as ``--rng-mode``: reject the
    impossible configuration at the CLI with a clear message instead of
    letting it sink into the engine (``<= 0`` can never be satisfied,
    ``>= 0.5`` always is).
    """

    def parse(text: str) -> float:
        try:
            value = float(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{flag} expects a number, got {text!r}"
            ) from None
        if not (0 < value < 0.5):
            raise argparse.ArgumentTypeError(
                f"{flag} must be in the open interval (0, 0.5), got {text}"
            )
        return value

    return parse


def _chunk_policy_flag(text: str):
    """The argparse ``type`` for ``--chunk-policy`` spec strings."""
    try:
        return parse_chunk_policy(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_executor_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--executor",
        choices=sorted(EXECUTORS),
        default="serial",
        help="shard backend (default: serial)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=f"worker count for thread/process backends (default: all "
        f"{available_cpus()} available CPUs)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="fixed shard count (default: planner picks from workers/budget)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_CHUNK,
        help=f"trials per chunk between stop-rule checks (default: {DEFAULT_CHUNK})",
    )
    parser.add_argument(
        "--chunk-policy",
        type=_chunk_policy_flag,
        default=None,
        metavar="SPEC",
        help="adaptive chunk schedule: 'fixed[:SIZE]' or "
        "'geometric[:initial=I,factor=F,max=M]' — start small, grow as the "
        "Wilson interval tightens (default: fixed --chunk-size)",
    )
    parser.add_argument(
        "--stop-halfwidth",
        type=_halfwidth_flag("--stop-halfwidth"),
        default=None,
        help="Wilson early-exit half-width on the merged estimate "
        "(must lie in (0, 0.5))",
    )
    parser.add_argument(
        "--stream-progress",
        action="store_true",
        help="stream partial shard counts so the Wilson stop fires at "
        "chunk granularity across all workers",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        help="heartbeat deadline per shard in seconds; a silent shard is "
        "declared failed and retried (enables supervision)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=0,
        help="re-dispatches per failed shard before quarantine "
        "(> 0 enables supervision; see docs/robustness.md)",
    )
    parser.add_argument(
        "--chaos-spec",
        default=None,
        metavar="SPEC",
        help="inject a deterministic fault schedule, e.g. "
        "'seed=7,crash=0.3,slow=0.2,delay=0.01' "
        "(keys: seed, crash, kill, hang, slow, torn, sink, delay, hang-limit)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="record a runtime trace (spans, events, metrics) into DIR; "
        "read it back with `python -m repro.obs report DIR` "
        "(see docs/observability.md)",
    )


def _tracing(args):
    """The ``--trace`` context: a live recorder, or a no-op without it."""
    return tracing(args.trace) if getattr(args, "trace", None) else nullcontext()


def _planner(args) -> Optional[ShardPlanner]:
    return ShardPlanner(shard_count=args.shards) if args.shards else None


def _build_executor(args):
    """The executor argument for the run, honouring ``--chaos-spec``.

    Without chaos this is just the backend name (the layers below resolve
    and own it).  With ``--chaos-spec`` the backend is resolved here,
    wrapped in a :class:`~repro.parallel.chaos.ChaosExecutor`, and returned
    with a cleanup callable the command must invoke in a ``finally``.
    """
    if not getattr(args, "chaos_spec", None):
        return args.executor, None
    from repro.parallel.chaos import ChaosExecutor, FaultPolicy
    from repro.parallel.executors import resolve_executor

    try:
        policy = FaultPolicy.parse(args.chaos_spec)
    except ValueError as exc:
        raise SystemExit(f"error: --chaos-spec: {exc}") from exc
    inner, _owned = resolve_executor(args.executor, args.workers)
    instance = ChaosExecutor(inner, policy)
    return instance, instance.close


def _cmd_list(_args) -> int:
    print("workloads:")
    for name, (factory, randomness) in sorted(WORKLOADS.items()):
        print(f"  {name:24s} randomness={randomness:7s} {factory.__module__}:{factory.__name__}")
    print(f"executors: {', '.join(sorted(EXECUTORS))}")
    print(f"available CPUs: {available_cpus()}")
    return 0


def _cmd_estimate(args) -> int:
    shared, scoped = _parse_sizes(args.size)
    unknown = set(scoped) - {args.workload}
    if unknown:
        raise SystemExit(
            f"--size scopes {sorted(unknown)} name workloads other than "
            f"{args.workload!r}"
        )
    spec = workload_spec(
        args.workload,
        rng_mode=args.rng_mode,
        **_sizes_for(args.workload, shared, scoped, strict=True),
    )
    executor, cleanup = _build_executor(args)
    try:
        with _tracing(args):
            sharded = estimate_acceptance_sharded(
                spec,
                args.trials,
                seed=args.seed,
                executor=executor,
                workers=args.workers,
                planner=_planner(args),
                chunk_size=args.chunk_size,
                chunk_policy=args.chunk_policy,
                stop_halfwidth=args.stop_halfwidth,
                stream_progress=args.stream_progress,
                shard_timeout=args.shard_timeout,
                max_retries=args.max_retries,
            )
    finally:
        if cleanup is not None:
            cleanup()
    print(f"{args.workload} [{spec.rng_mode}] -> {sharded}")
    if args.trace:
        print(f"trace -> {args.trace} (read: python -m repro.obs report {args.trace})")
    for result in sharded.shard_results:
        print(
            f"  shard {result.shard.index}: trials [{result.shard.start}, "
            f"{result.shard.stop}) ran {result.trials}, accepted {result.accepted}"
        )
    report = sharded.report
    if report is not None:
        print(
            f"  supervision: attempts={sum(report.attempts.values())} "
            f"retries={report.retries} timeouts={report.timeouts} "
            f"repairs={report.pool_repairs} "
            f"quarantined={len(report.quarantined)}"
        )
        for bad in report.quarantined:
            print(
                f"    quarantined {bad.shard} after {bad.attempts} attempts: "
                f"{bad.failures[-1].message}"
            )
    return 0


def _cmd_campaign(args) -> int:
    workloads = _csv(args.workloads)
    for workload in workloads:
        if workload not in WORKLOADS:
            raise SystemExit(
                f"unknown workload {workload!r} (see `python -m repro.parallel.cli list`)"
            )
    shared, scoped = _parse_sizes(args.size)
    unknown = set(scoped) - set(workloads)
    if unknown:
        raise SystemExit(
            f"--size scopes {sorted(unknown)} name workloads not in this sweep "
            f"({', '.join(workloads)})"
        )
    entries = []
    strict = len(workloads) == 1  # one workload: an inapplicable key is a typo
    for workload in workloads:
        sizes = _sizes_for(workload, shared, scoped, strict=strict)
        entries.append((workload, sizes) if sizes else workload)
    campaign = Campaign.sweep(
        args.name,
        entries,
        rng_modes=tuple(_parse_rng_modes(args.rng_modes)),
        trial_budgets=tuple(int(t) for t in _csv(args.trials)),
        seeds=tuple(int(s) for s in _csv(args.seeds)),
        stop_halfwidth=args.stop_halfwidth,
    )
    if args.global_budget is not None:
        if args.global_budget <= 0:
            raise SystemExit(
                f"error: --global-budget must be positive, got {args.global_budget}"
            )
        if args.target_halfwidth is None:
            raise SystemExit("error: --global-budget requires --target-halfwidth")
    elif args.target_halfwidth is not None:
        raise SystemExit(
            "error: --target-halfwidth requires --global-budget "
            "(use --stop-halfwidth for a per-cell stop rule)"
        )
    sink = (
        JsonlSink(args.out, resume=not args.no_resume, fsync=args.fsync)
        if args.out
        else MemorySink()
    )
    skipped = sum(1 for cell in campaign.cells if sink.completed(cell))
    executor, cleanup = _build_executor(args)
    try:
        with _tracing(args):
            records = run_campaign(
                campaign,
                executor=executor,
                workers=args.workers,
                sink=sink,
                planner=_planner(args),
                chunk_size=args.chunk_size,
                chunk_policy=args.chunk_policy,
                cell_parallelism=args.cell_parallelism,
                stream_progress=args.stream_progress,
                on_cell_error=args.on_cell_error,
                cell_retries=args.cell_retries,
                shard_timeout=args.shard_timeout,
                max_retries=args.max_retries,
                global_budget=args.global_budget,
                target_halfwidth=args.target_halfwidth,
            )
    finally:
        if cleanup is not None:
            cleanup()
    failed = 0
    for record in records:
        if record.get("status") == "failed":
            failed += 1
            error = record.get("error", {})
            print(
                f"{record['cell']:48s} FAILED "
                f"{error.get('type', '?')}: {error.get('message', '')}"
            )
            continue
        print(
            f"{record['cell']:48s} p={record['probability']:.4f} "
            f"[{record['wilson_low']:.4f}, {record['wilson_high']:.4f}] "
            f"trials={record['trials']} shards={record['shards']} "
            f"{record['elapsed_sec']:.3f}s"
        )
    where = args.out if args.out else "(memory)"
    tail = f", {failed} failed" if failed else ""
    print(
        f"campaign {campaign.name!r}: {len(records)} cells run, "
        f"{skipped} resumed as complete{tail} -> {where}"
    )
    if args.global_budget is not None and records:
        consumed = sum(
            record.get("allocation", {}).get("consumed", 0) for record in records
        )
        converged = sum(
            1
            for record in records
            if record.get("allocation", {}).get("converged")
        )
        print(
            f"global budget: {consumed}/{args.global_budget} trials consumed, "
            f"{converged}/{len(records)} cells reached halfwidth "
            f"{args.target_halfwidth}"
        )
    if args.trace:
        print(f"trace -> {args.trace} (read: python -m repro.obs report {args.trace})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel.cli",
        description="Sharded Monte-Carlo estimates and experiment campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show workloads and backends").set_defaults(
        func=_cmd_list
    )

    estimate = sub.add_parser("estimate", help="one sharded acceptance estimate")
    estimate.add_argument("--workload", required=True, choices=sorted(WORKLOADS))
    estimate.add_argument(
        "--rng-mode",
        default="vector",
        choices=RNG_MODES,
        help="randomness derivation mode (validated here, not deep in the engine)",
    )
    estimate.add_argument("--trials", type=int, required=True)
    estimate.add_argument("--seed", type=int, default=0)
    estimate.add_argument("--size", action="append", metavar="[WORKLOAD:]KEY=VALUE")
    _add_executor_args(estimate)
    estimate.set_defaults(func=_cmd_estimate)

    campaign = sub.add_parser("campaign", help="run a sweep of cells")
    campaign.add_argument("--name", default="cli-campaign")
    campaign.add_argument(
        "--workloads", required=True, help="comma-separated registry names"
    )
    campaign.add_argument(
        "--rng-modes",
        default="vector",
        help=f"comma-separated modes from {{{', '.join(RNG_MODES)}}}",
    )
    campaign.add_argument("--trials", default="1024", help="comma-separated budgets")
    campaign.add_argument("--seeds", default="0", help="comma-separated master seeds")
    campaign.add_argument("--size", action="append", metavar="[WORKLOAD:]KEY=VALUE")
    campaign.add_argument(
        "--cell-parallelism",
        type=int,
        default=1,
        help="independent cells scheduled concurrently over the one pool",
    )
    campaign.add_argument("--out", default=None, help="JSON-lines result path")
    campaign.add_argument(
        "--no-resume",
        action="store_true",
        help="truncate --out instead of skipping completed cells",
    )
    campaign.add_argument(
        "--fsync",
        action="store_true",
        help="fsync the --out sink after every record (crash-consistent logs)",
    )
    campaign.add_argument(
        "--on-cell-error",
        choices=("raise", "skip", "retry"),
        default="raise",
        help="failing cell: abort the campaign (raise), record a "
        "status=failed record and continue (skip), or re-attempt then "
        "skip (retry)",
    )
    campaign.add_argument(
        "--cell-retries",
        type=int,
        default=1,
        help="re-attempts per failing cell under --on-cell-error retry",
    )
    campaign.add_argument(
        "--global-budget",
        type=int,
        default=None,
        metavar="TRIALS",
        help="one adaptive trial budget shared by every cell — the "
        "allocator starves converged cells and re-grants their budget to "
        "the widest intervals (requires --target-halfwidth)",
    )
    campaign.add_argument(
        "--target-halfwidth",
        type=_halfwidth_flag("--target-halfwidth"),
        default=None,
        help="Wilson half-width every cell should reach under "
        "--global-budget (must lie in (0, 0.5))",
    )
    _add_executor_args(campaign)
    campaign.set_defaults(func=_cmd_campaign)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        # Configuration contradictions from the layers below (serial
        # backend with --workers 4, --cell-parallelism 0, ...) are usage
        # errors at this boundary, not tracebacks.
        raise SystemExit(f"error: {exc}") from exc


if __name__ == "__main__":
    sys.exit(main())
