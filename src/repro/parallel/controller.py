"""Adaptive budget control: chunk schedules and the campaign allocator.

Two decisions used to be hardcoded integers threaded through every layer of
the stack: *how many trials to run between stop-rule checks* (the
``chunk_size`` of :func:`~repro.engine.montecarlo.estimate_acceptance_fast`)
and *how many trials each campaign cell gets* (the per-cell ``trials``
budget).  This module turns both into policy objects:

- **Chunk schedules** (:class:`FixedChunkPolicy`, :class:`GeometricChunkPolicy`)
  plug into the engine's chunk-schedule seam: before each chunk the trial
  loop asks the schedule for the next chunk size.  The geometric policy
  starts small — a lopsided verdict tightens its Wilson interval within a
  few trials, so a small first chunk lets the stop rule fire almost
  immediately — and grows the chunk geometrically as the interval tightens,
  amortizing per-chunk dispatch overhead once it is clear the run will be
  long.  The fixed policy is the default-compatible case: a constant size,
  exactly the historical behaviour.
- **The campaign allocator** (:class:`CampaignAllocator`) manages one
  *global* trial budget across all cells of a campaign.  It grants budget in
  rounds: a cheap probe round first, then need-proportional rounds where
  cells whose merged Wilson interval is still wide receive most of the
  remaining pool and cells that reached the target halfwidth are starved
  entirely.  Grants a converged cell did not consume flow back into the
  pool automatically — the campaign layer only ever subtracts *consumed*
  trials.

Decision-validity contract
--------------------------

Every trial's verdict is a pure function of ``(master seed, trial
counter)`` (see :mod:`repro.core.seeding`), and both kinds of policy only
ever decide *future counter ranges*: a chunk schedule partitions a shard's
fixed ``[start, stop)`` range into differently-sized prefixes, and the
allocator extends a cell's consumed prefix ``[0, consumed)`` by the next
installment ``[consumed, consumed + grant)``.  Policies therefore change
**when the stop rule is checked, never any trial's verdict** — a run under
any chunk policy is per-trial bit-identical to the fixed-chunk run over the
same counter range, and a retried shard (supervision) re-executes its
original range untouched because its payload was fixed at dispatch time.
The chunk-tail and controller test suites pin this contract.

Observability
-------------

Allocator decisions surface through :mod:`repro.obs`: each round emits a
``controller.round`` trace event with its grant table, convergence emits
``controller.converged``, and the ``controller.*`` counters
(``rounds``, ``grants``, ``granted_trials``, ``consumed_trials``,
``returned_trials``, ``converged_cells``, ``chunks``) accumulate in the
metrics registry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.montecarlo import DEFAULT_CHUNK
from repro.obs.runtime import get_metrics, record_event
from repro.simulation.metrics import wilson_interval


def observed_halfwidth(accepted: int, trials: int) -> float:
    """Half the Wilson interval width, ``inf`` before any trial has run."""
    if trials <= 0:
        return math.inf
    low, high = wilson_interval(accepted, trials)
    return (high - low) / 2


def validate_halfwidth(value: float, name: str = "halfwidth") -> float:
    """Reject stop/target halfwidths outside the meaningful open interval.

    A halfwidth is half the width of a confidence interval on a proportion:
    ``<= 0`` can never be satisfied and ``>= 0.5`` is satisfied by the empty
    estimate — both are configuration mistakes, not stop rules.
    """
    if not (0 < value < 0.5):
        raise ValueError(f"{name} must be in the open interval (0, 0.5), got {value}")
    return value


# ---------------------------------------------------------------------------
# chunk schedules
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FixedChunkPolicy:
    """The constant-size schedule — the historical behaviour as a policy.

    Frozen (hence picklable: policies ride to process-pool workers inside
    the shard options dict); per-call mutable state lives in the session
    object :meth:`session` returns.
    """

    chunk_size: int = DEFAULT_CHUNK

    def __post_init__(self):
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")

    def describe(self) -> str:
        return f"fixed:{self.chunk_size}"

    def session(self):
        """A fresh per-run decision function (stateless for fixed size)."""
        size = self.chunk_size

        def next_chunk(accepted: int, done: int, remaining: int) -> int:
            return size

        return next_chunk


@dataclass(frozen=True)
class GeometricChunkPolicy:
    """Start small, grow geometrically as the Wilson interval tightens.

    The first chunk is ``initial`` trials.  Before each later chunk the
    session compares the observed Wilson halfwidth against the narrowest
    halfwidth seen so far: if the interval tightened, the next chunk grows
    by ``factor`` (capped at ``max_chunk``); if it did not (the running
    estimate drifted), the size holds.  Lopsided workloads therefore stop
    within a few trials of satisfying the stop rule, while long unstopped
    runs quickly reach ``max_chunk`` and pay near-zero scheduling overhead.
    """

    initial: int = 8
    factor: float = 2.0
    max_chunk: int = 1024

    def __post_init__(self):
        if self.initial <= 0:
            raise ValueError("initial chunk must be positive")
        if self.factor < 1.0:
            raise ValueError("growth factor must be >= 1")
        if self.max_chunk < self.initial:
            raise ValueError("max_chunk must be >= initial")

    def describe(self) -> str:
        return f"geometric:initial={self.initial},factor={self.factor},max={self.max_chunk}"

    def session(self):
        """A fresh per-run decision function carrying the growth state."""
        return _GeometricSession(self)


class _GeometricSession:
    """Mutable per-run state of one :class:`GeometricChunkPolicy` use.

    Created engine-side by ``session()`` — never pickled; only the frozen
    policy crosses a process boundary.
    """

    def __init__(self, policy: GeometricChunkPolicy):
        self._policy = policy
        self._size = policy.initial
        self._best_halfwidth = math.inf

    def __call__(self, accepted: int, done: int, remaining: int) -> int:
        if done > 0:
            halfwidth = observed_halfwidth(accepted, done)
            if halfwidth < self._best_halfwidth:
                self._best_halfwidth = halfwidth
                self._size = min(
                    self._policy.max_chunk,
                    max(self._size + 1, int(self._size * self._policy.factor)),
                )
        get_metrics().counter("controller.chunks").inc()
        return self._size


CHUNK_POLICIES = ("fixed", "geometric")


def parse_chunk_policy(text: str):
    """Parse a ``--chunk-policy`` spec string into a policy object.

    Accepted forms::

        fixed                fixed:128
        geometric            geometric:initial=8,factor=2,max=1024

    Raises :class:`ValueError` on unknown names, malformed arguments, or
    out-of-range values (delegated to the policy constructors).
    """
    head, sep, rest = text.strip().partition(":")
    head = head.strip()
    if head == "fixed":
        if not sep:
            return FixedChunkPolicy()
        try:
            size = int(rest)
        except ValueError:
            raise ValueError(
                f"fixed chunk policy takes an integer size, got {rest!r}"
            ) from None
        return FixedChunkPolicy(chunk_size=size)
    if head == "geometric":
        kwargs = {}
        names = {"initial": int, "factor": float, "max": float}
        if sep and rest.strip():
            for item in rest.split(","):
                key, eq, value = item.partition("=")
                key = key.strip()
                if not eq or key not in names:
                    raise ValueError(
                        f"geometric chunk policy takes initial=, factor=, max= "
                        f"arguments, got {item.strip()!r}"
                    )
                try:
                    parsed = names[key](value.strip())
                except ValueError:
                    raise ValueError(
                        f"bad value for geometric chunk policy argument "
                        f"{item.strip()!r}"
                    ) from None
                kwargs["max_chunk" if key == "max" else key] = (
                    int(parsed) if key == "max" else parsed
                )
        return GeometricChunkPolicy(**kwargs)
    raise ValueError(
        f"unknown chunk policy {head!r} (choose from fixed[:SIZE], "
        f"geometric[:initial=I,factor=F,max=M])"
    )


# ---------------------------------------------------------------------------
# the campaign allocator
# ---------------------------------------------------------------------------


@dataclass
class CellLedger:
    """One cell's consumption state inside a :class:`CampaignAllocator`.

    ``consumed`` is the length of the cell's executed counter prefix
    ``[0, consumed)``; the next installment always starts at ``consumed``,
    which is what makes every allocator decision a *future-range* decision
    (see the module docstring's validity contract).
    """

    name: str
    consumed: int = 0
    accepted: int = 0
    converged: bool = False
    failed: bool = False
    installments: List[Dict] = field(default_factory=list)

    @property
    def halfwidth(self) -> float:
        return observed_halfwidth(self.accepted, self.consumed)


class CampaignAllocator:
    """One global trial budget, granted to campaign cells in rounds.

    Round 1 probes every cell with at most ``probe_trials`` (enough for the
    Wilson stop's ``min_trials`` gate to clear) so lopsided cells converge
    and return the rest of their fair share to the pool.  Every later round
    estimates each unconverged cell's *remaining need* from the observed
    interval — Wilson halfwidth shrinks like ``1/sqrt(n)``, so a cell at
    halfwidth ``w`` after ``n`` trials needs roughly ``n * ((w/target)^2 -
    1)`` more — and grants the pool need-proportionally, widest cells
    first, each grant floored at ``min_installment`` while the need
    estimate exceeds it.  Converged (and failed) cells receive nothing.

    The allocator only ever books *consumed* trials against the budget:
    an installment that converges mid-flight (the cooperative streamed stop)
    returns its unspent grant to the pool implicitly.  ``grants()`` returns
    an empty table when the pool is exhausted or no live cell remains —
    the campaign loop's termination condition.
    """

    def __init__(
        self,
        names: Sequence[str],
        global_budget: int,
        target_halfwidth: float,
        min_installment: int = DEFAULT_CHUNK,
        probe_trials: Optional[int] = None,
        need_margin: float = 1.25,
    ):
        if not names:
            raise ValueError("allocator needs at least one cell")
        if len(set(names)) != len(names):
            raise ValueError("cell names must be unique")
        if global_budget <= 0:
            raise ValueError("global_budget must be positive")
        validate_halfwidth(target_halfwidth, "target_halfwidth")
        if min_installment <= 0:
            raise ValueError("min_installment must be positive")
        if need_margin < 1.0:
            raise ValueError("need_margin must be >= 1")
        self.global_budget = int(global_budget)
        self.target_halfwidth = float(target_halfwidth)
        self.min_installment = int(min_installment)
        self.probe_trials = (
            int(probe_trials) if probe_trials is not None else 2 * self.min_installment
        )
        if self.probe_trials <= 0:
            raise ValueError("probe_trials must be positive")
        self.need_margin = float(need_margin)
        self.rounds = 0
        self._order = list(names)
        self.cells: Dict[str, CellLedger] = {
            name: CellLedger(name) for name in self._order
        }

    @property
    def consumed_total(self) -> int:
        return sum(cell.consumed for cell in self.cells.values())

    @property
    def remaining(self) -> int:
        return max(0, self.global_budget - self.consumed_total)

    def counts(self, name: str) -> Tuple[int, int]:
        """The cell's cumulative ``(accepted, consumed)`` counts so far."""
        cell = self.cells[name]
        return cell.accepted, cell.consumed

    def live(self) -> List[CellLedger]:
        """Cells still competing for budget, in declaration order."""
        return [
            self.cells[name]
            for name in self._order
            if not (self.cells[name].converged or self.cells[name].failed)
        ]

    def _need(self, cell: CellLedger, fair_share: int) -> int:
        """Estimated trials the cell still needs to reach the target."""
        halfwidth = cell.halfwidth
        if not math.isfinite(halfwidth):
            # Never probed (a starved round-1 straggler): fall back to an
            # even share of what is left.
            return max(self.min_installment, fair_share)
        ratio = halfwidth / self.target_halfwidth
        estimate = cell.consumed * (ratio * ratio - 1.0) * self.need_margin
        return max(self.min_installment, math.ceil(estimate))

    def grants(self) -> Dict[str, int]:
        """The next round's grant table; empty means the campaign is done.

        The sum of the grants never exceeds the remaining pool, and is at
        least 1 whenever the table is non-empty — so consuming the grants
        strictly shrinks the pool and the round loop terminates.
        """
        live = self.live()
        pool = self.remaining
        if pool <= 0 or not live:
            return {}
        self.rounds += 1
        grants: Dict[str, int] = {}
        if self.rounds == 1:
            fair, extra = divmod(pool, len(live))
            for index, cell in enumerate(live):
                want = min(fair + (1 if index < extra else 0), self.probe_trials)
                if want > 0:
                    grants[cell.name] = want
        else:
            fair_share = max(1, pool // len(live))
            needs = {cell.name: self._need(cell, fair_share) for cell in live}
            total_need = sum(needs.values())
            if total_need <= pool:
                grants = dict(needs)
            else:
                # Widest-first proportional split of the whole pool
                # (declaration order breaks halfwidth ties deterministically).
                ordered = sorted(
                    live,
                    key=lambda cell: (
                        -cell.halfwidth if math.isfinite(cell.halfwidth) else -math.inf,
                        self._order.index(cell.name),
                    ),
                )
                shares = {
                    cell.name: (pool * needs[cell.name]) // total_need
                    for cell in ordered
                }
                leftover = pool - sum(shares.values())
                for cell in ordered:
                    if leftover <= 0:
                        break
                    shares[cell.name] += 1
                    leftover -= 1
                grants = {name: n for name, n in shares.items() if n > 0}
        metrics = get_metrics()
        metrics.counter("controller.rounds").inc()
        metrics.counter("controller.grants").inc(len(grants))
        record_event(
            "controller.round",
            {
                "round": self.rounds,
                "pool": pool,
                "live_cells": len(live),
                "grants": dict(grants),
            },
        )
        return grants

    def settle(
        self, name: str, first_trial: int, granted: int, accepted: int, trials: int
    ) -> None:
        """Book one finished installment against the budget.

        ``first_trial`` must equal the cell's consumed prefix — installments
        extend the counter range contiguously, never rewrite it.  ``trials``
        may be short of ``granted`` (the streamed stop fired); only the
        consumed part is charged, the rest stays in the pool.
        """
        cell = self.cells[name]
        if first_trial != cell.consumed:
            raise ValueError(
                f"installment for {name!r} starts at trial {first_trial}, but "
                f"the cell's consumed prefix ends at {cell.consumed}"
            )
        if trials < 0 or accepted < 0 or accepted > trials:
            raise ValueError("invalid installment counts")
        cell.consumed += trials
        cell.accepted += accepted
        cell.installments.append(
            {
                "round": self.rounds,
                "first_trial": first_trial,
                "granted": granted,
                "trials": trials,
                "accepted": accepted,
            }
        )
        metrics = get_metrics()
        metrics.counter("controller.granted_trials").inc(granted)
        metrics.counter("controller.consumed_trials").inc(trials)
        if granted > trials:
            metrics.counter("controller.returned_trials").inc(granted - trials)
        if not cell.converged and cell.halfwidth <= self.target_halfwidth:
            cell.converged = True
            metrics.counter("controller.converged_cells").inc()
            record_event(
                "controller.converged",
                {
                    "cell": name,
                    "round": self.rounds,
                    "consumed": cell.consumed,
                    "halfwidth": cell.halfwidth,
                },
            )

    def fail(self, name: str) -> None:
        """Stop granting to a cell whose installments keep failing."""
        self.cells[name].failed = True
        record_event("controller.cell_failed", {"cell": name, "round": self.rounds})

    def history(self, name: str) -> Dict:
        """The cell's allocation record — enough to resume its counter range."""
        cell = self.cells[name]
        return {
            "global_budget": self.global_budget,
            "target_halfwidth": self.target_halfwidth,
            "converged": cell.converged,
            "rounds": self.rounds,
            "consumed": cell.consumed,
            "installments": list(cell.installments),
        }

    def summary(self) -> Dict:
        """Campaign-level totals for span attributes and CLI output."""
        cells = self.cells.values()
        return {
            "global_budget": self.global_budget,
            "target_halfwidth": self.target_halfwidth,
            "consumed": self.consumed_total,
            "remaining": self.remaining,
            "rounds": self.rounds,
            "cells": len(self.cells),
            "converged_cells": sum(1 for cell in cells if cell.converged),
            "failed_cells": sum(1 for cell in cells if cell.failed),
        }
