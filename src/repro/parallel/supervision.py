"""Worker supervision: shard deadlines, deterministic retry, quarantine.

The sharded executor of PR 4/5 assumes every dispatched shard eventually
reports.  One crashed worker (an exception, or a process killed outright),
one hung shard, and ``estimate_acceptance_sharded`` either raises mid-merge
or waits forever.  This module adds the layer that makes shard execution
*fault-tolerant* without touching its determinism contract:

- **Deadlines.** Every shard's progress-channel messages double as
  heartbeats (the streamed partials of PR 5, plus an explicit liveness ping
  at each chunk boundary — the ``heartbeat`` hook of
  :func:`~repro.engine.montecarlo.estimate_acceptance_fast`).  A shard that
  produces no heartbeat within ``shard_timeout`` is declared failed, its
  dispatch is stopped cooperatively, and on the process backend a worker
  that ignores the stop past ``kill_grace`` escalates to a pool repair
  (dead/hung processes reaped, replacements spawned —
  :meth:`~repro.parallel.executors.ProcessExecutor.repair`).

- **Deterministic retry.** A failed shard is re-dispatched with exponential
  backoff, up to ``max_retries`` times.  Because a shard is a counter range
  and every trial verdict is a pure function of ``(master seed, trial
  counter)``, the retried shard re-executes *bit-identically*: its partial
  updates repeat the original's cumulative ``(accepted, trials)`` prefix
  values exactly, so the never-regress rule of
  :class:`~repro.parallel.progress.StreamingAggregator` deduplicates them
  for free and the merged :class:`~repro.simulation.metrics.AcceptanceEstimate`
  is provably unchanged by any crash/retry schedule.

- **Quarantine.** A shard that fails ``max_retries + 1`` attempts is
  quarantined — execution continues for its siblings, and the structured
  :class:`RunReport` surfaces the shard, its attempt count, and every
  recorded failure, instead of one exception destroying the whole run.

The supervisor is backend-agnostic: it only needs the executor's
``start_run`` contract (per-run stop tokens) and, optionally, a ``repair()``
method for the escalation path.  On the serial backend supervised shards
execute one at a time on watcher threads — serial *ordering* is preserved,
at the cost of the shards no longer running on the caller's thread (the
price of being able to time one out).

Known limitation, stated honestly: a worker that hangs *non-cooperatively*
(never polling ``should_stop`` between chunks) can only be reclaimed on the
process backend, where ``repair()`` terminates it.  Thread workers cannot
be killed in CPython; the chaos harness's hang fault is cooperative for
exactly this reason.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.runtime import get_metrics, record_event
from repro.parallel.shards import Shard

# Main-loop wakeup period: outcome waits, deadline scans, and backoff
# release checks all happen at this granularity.
DEFAULT_TICK = 0.02


@dataclass(frozen=True)
class RetryPolicy:
    """When to give up on a shard attempt, and how to space the next one.

    ``max_retries`` bounds *re*-dispatches (0 = one attempt, no retry).
    ``shard_timeout`` is the heartbeat deadline in seconds (``None`` =
    never time out; crashes are still retried).  Backoff before retry
    ``n`` (1-based) is ``backoff_base * backoff_factor ** (n - 1)``,
    capped at ``backoff_max`` — deterministic, no jitter, so a retry
    schedule is reproducible.  ``kill_grace`` is how long a timed-out
    dispatch may ignore its cooperative stop before the supervisor
    escalates to a pool repair (process backend only).
    """

    max_retries: int = 2
    shard_timeout: Optional[float] = None
    backoff_base: float = 0.02
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    kill_grace: float = 1.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff bounds must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.kill_grace <= 0:
            raise ValueError("kill_grace must be positive")

    def backoff(self, retry: int) -> float:
        """Delay before retry number ``retry`` (1-based); deterministic."""
        if retry < 1:
            raise ValueError("retry numbers are 1-based")
        return min(self.backoff_base * self.backoff_factor ** (retry - 1),
                   self.backoff_max)


@dataclass(frozen=True)
class ShardFailure:
    """One recorded failure of one shard attempt.

    ``elapsed_sec`` is the monotonic offset from the supervised run's start
    to the moment the failure was recorded — retry spacing read off a
    report is therefore immune to wall-clock steps.
    """

    shard_index: int
    attempt: int  # 0-based attempt number that failed
    kind: str  # "error" (exception) | "timeout" (heartbeat deadline)
    message: str
    elapsed_sec: float = 0.0  # monotonic, from run start

    def as_dict(self) -> Dict[str, object]:
        return {
            "shard_index": self.shard_index,
            "attempt": self.attempt,
            "kind": self.kind,
            "message": self.message,
            "elapsed_sec": self.elapsed_sec,
        }


@dataclass(frozen=True)
class QuarantinedShard:
    """A shard that exhausted its retry budget, with its failure history."""

    shard: Shard
    attempts: int
    failures: Tuple[ShardFailure, ...]

    def as_dict(self) -> Dict[str, object]:
        return {
            "shard": self.shard.as_dict(),
            "attempts": self.attempts,
            "failures": [failure.as_dict() for failure in self.failures],
        }


@dataclass(frozen=True)
class RunReport:
    """The supervision ledger of one sharded run.

    ``attempts`` maps shard index to dispatch count; ``failures`` is every
    recorded failure in observation order; ``quarantined`` the shards that
    exhausted their budget.  ``ok`` means every non-skipped shard resolved
    — quarantine is the one outcome that makes a run not-ok (a cooperative
    stop skipping shards is normal operation).

    Timing carries both clocks: ``started_unix`` / ``finished_unix`` are
    wall-clock (for correlating with logs), ``duration_sec`` is a
    **monotonic** difference — a wall-clock step mid-run (NTP, suspend)
    shifts the unix pair but can never corrupt the duration, and the
    per-failure ``elapsed_sec`` offsets share the same monotonic origin.
    """

    attempts: Dict[int, int]
    failures: Tuple[ShardFailure, ...]
    quarantined: Tuple[QuarantinedShard, ...]
    retries: int = 0
    timeouts: int = 0
    pool_repairs: int = 0
    started_unix: float = 0.0
    finished_unix: float = 0.0
    duration_sec: float = 0.0  # monotonic, clock-step immune

    @property
    def ok(self) -> bool:
        return not self.quarantined

    def as_dict(self) -> Dict[str, object]:
        return {
            "attempts": dict(self.attempts),
            "failures": [failure.as_dict() for failure in self.failures],
            "quarantined": [shard.as_dict() for shard in self.quarantined],
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_repairs": self.pool_repairs,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "duration_sec": self.duration_sec,
            "ok": self.ok,
        }


class _Dispatch:
    """One in-flight attempt of one shard."""

    __slots__ = ("index", "attempt", "handle", "abandoned_at", "escalated")

    def __init__(self, index: int, attempt: int, handle):
        self.index = index
        self.attempt = attempt
        self.handle = handle
        self.abandoned_at: Optional[float] = None  # set when timed out
        self.escalated = False  # kill_grace repair already fired


class ShardSupervisor:
    """Run one set of shard payloads to completion under a retry policy.

    ``payloads`` are the sharded estimator's ``(target, shard, options)``
    tuples; each shard is dispatched as its *own* single-payload
    ``executor.start_run`` so it carries its own stop token — timing out
    one shard never disturbs its siblings.  A daemon watcher thread drains
    each dispatch and reports its outcome (result, exception, or nothing)
    onto an internal queue; the supervisor's main loop dispatches, applies
    deadlines, schedules retries, and quarantines.

    ``on_progress`` (the streaming aggregator's ``update``, when streaming)
    receives every real partial exactly as an unsupervised run would; the
    supervisor additionally treats *every* progress message — including the
    zero-trial liveness pings, which it filters out of the user channel —
    as that shard's heartbeat.  ``on_result`` fires on the supervisor
    thread for each accepted shard result (the estimator's Wilson stop
    hook).  ``request_stop`` is safe from any thread (the aggregator calls
    it from a drain/worker thread); it takes effect within one tick.
    """

    def __init__(
        self,
        executor,
        fn: Callable,
        payloads,
        policy: Optional[RetryPolicy] = None,
        on_progress: Optional[Callable[[int, int, int], None]] = None,
        on_result: Optional[Callable[[object], None]] = None,
        tick: float = DEFAULT_TICK,
        clock: Callable[[], float] = time.monotonic,
    ):
        payloads = list(payloads)
        self._executor = executor
        self._fn = fn
        self._policy = policy if policy is not None else RetryPolicy()
        self._user_progress = on_progress
        self._on_result = on_result
        self._tick = tick
        self._clock = clock
        self._payloads: Dict[int, object] = {}
        self._shards: Dict[int, Shard] = {}
        for payload in payloads:
            shard = payload[1]
            if shard.index in self._shards:
                raise ValueError(f"duplicate shard index {shard.index}")
            self._payloads[shard.index] = payload
            self._shards[shard.index] = shard
        self._outcomes: "queue.Queue" = queue.Queue()
        self._beat_lock = threading.Lock()
        self._beats: Dict[int, float] = {}
        self._stop_event = threading.Event()
        # Supervision ledger
        self._attempts: Dict[int, int] = {}
        self._failures: List[ShardFailure] = []
        self._failures_by_shard: Dict[int, List[ShardFailure]] = {}
        self._retries = 0
        self._timeouts = 0
        self._pool_repairs = 0
        self._start_mono = 0.0  # set by run(); failures record offsets from it
        # The serial backend runs a dispatch in the thread that iterates it
        # (our watcher), so more than one in-flight dispatch would introduce
        # concurrency the backend promises not to have.
        workers = getattr(executor, "workers", 1) or 1
        self._max_inflight = 1 if getattr(executor, "name", "") == "serial" else workers

    # -- progress / heartbeat -------------------------------------------------

    def _beat(self, shard_index: int, accepted: int, trials: int) -> None:
        with self._beat_lock:
            self._beats[shard_index] = self._clock()
        # Liveness pings are (0, 0); real partials always cover >= 1 trial.
        if self._user_progress is not None and trials > 0:
            self._user_progress(shard_index, accepted, trials)

    def _last_beat(self, shard_index: int) -> float:
        with self._beat_lock:
            return self._beats.get(shard_index, 0.0)

    # -- external stop (Wilson rule) ------------------------------------------

    def request_stop(self) -> None:
        """Cooperatively stop the whole run; callable from any thread."""
        self._stop_event.set()

    # -- internals -------------------------------------------------------------

    def _record_failure(self, index: int, attempt: int, kind: str, message: str) -> None:
        failure = ShardFailure(
            shard_index=index,
            attempt=attempt,
            kind=kind,
            message=message,
            elapsed_sec=self._clock() - self._start_mono,
        )
        self._failures.append(failure)
        self._failures_by_shard.setdefault(index, []).append(failure)
        record_event(
            "supervision.failure",
            {
                "shard": index,
                "attempt": attempt,
                "fail_kind": kind,
                "elapsed_sec": failure.elapsed_sec,
            },
        )

    def _try_repair(self) -> bool:
        repair = getattr(self._executor, "repair", None)
        if repair is None:
            return False
        try:
            repair()
        except Exception:
            return False
        self._pool_repairs += 1
        record_event("supervision.pool_repair", {"repairs": self._pool_repairs})
        return True

    def _watch(self, dispatch: _Dispatch) -> None:
        """Drain one dispatch on its own daemon thread; report the outcome."""
        result = None
        error: Optional[BaseException] = None
        try:
            for item in dispatch.handle.results():
                result = item
        except BaseException as exc:  # delivered to the main loop, not raised
            error = exc
        self._outcomes.put((dispatch, result, error))

    def _dispatch(self, index: int, inflight: set) -> bool:
        """Start one attempt of shard ``index``; False if dispatch failed."""
        attempt = self._attempts.get(index, 0)
        self._attempts[index] = attempt + 1
        if attempt > 0:
            self._retries += 1
        record_event("supervision.dispatch", {"shard": index, "attempt": attempt})
        payload = self._payloads[index]
        handle = None
        for round_ in (0, 1):
            try:
                handle = self._executor.start_run(
                    self._fn, [payload], on_progress=self._beat
                )
                break
            except Exception as exc:
                # A broken process pool rejects submissions outright; repair
                # once and retry the dispatch before charging the shard.
                if round_ == 0 and self._try_repair():
                    continue
                self._record_failure(
                    index, attempt, "error", f"dispatch failed: {exc!r}"
                )
                return False
        with self._beat_lock:
            self._beats[index] = self._clock()
        dispatch = _Dispatch(index, attempt, handle)
        inflight.add(dispatch)
        threading.Thread(
            target=self._watch,
            args=(dispatch,),
            name=f"repro-supervise-{index}",
            daemon=True,
        ).start()
        return True

    def run(self) -> Tuple[Dict[int, object], RunReport]:
        """Supervise every shard to a result, quarantine, or stop-skip.

        Returns ``(results, report)`` where ``results`` maps shard index to
        the accepted :class:`~repro.parallel.executors.ShardResult` —
        complete results always, partial results only once a global stop
        was requested (matching the unsupervised Wilson-stop semantics,
        where cancelled shards report the prefix they ran and never-started
        shards are skipped).
        """
        policy = self._policy
        self._start_mono = self._clock()
        started_unix = time.time()
        pending: List[int] = sorted(self._shards)  # eligible, FIFO by index
        not_before: Dict[int, float] = {}
        results: Dict[int, object] = {}
        quarantined: Dict[int, QuarantinedShard] = {}
        inflight: set = set()
        stop_propagated = False

        def retry_or_quarantine(index: int) -> None:
            failures = self._failures_by_shard.get(index, [])
            if self._stop_event.is_set():
                return  # stopping: no retries, the shard is skipped
            if len(failures) > policy.max_retries:
                quarantined[index] = QuarantinedShard(
                    shard=self._shards[index],
                    attempts=self._attempts.get(index, 0),
                    failures=tuple(failures),
                )
                record_event(
                    "supervision.quarantine",
                    {"shard": index, "attempts": self._attempts.get(index, 0)},
                )
                return
            backoff = policy.backoff(len(failures))
            not_before[index] = self._clock() + backoff
            pending.append(index)
            pending.sort()
            record_event(
                "supervision.retry",
                {
                    "shard": index,
                    "next_attempt": self._attempts.get(index, 0),
                    "backoff_sec": backoff,
                },
            )

        while True:
            now = self._clock()

            # Propagate an external stop exactly once: stop every in-flight
            # dispatch, drop everything not yet started.
            if self._stop_event.is_set() and not stop_propagated:
                stop_propagated = True
                pending.clear()
                for dispatch in inflight:
                    dispatch.handle.request_stop()

            # Dispatch eligible shards up to the in-flight cap.
            while pending and len(inflight) < self._max_inflight:
                ready = [
                    index for index in pending if not_before.get(index, 0.0) <= now
                ]
                if not ready:
                    break
                index = ready[0]
                pending.remove(index)
                if not self._dispatch(index, inflight):
                    retry_or_quarantine(index)

            if not inflight and not pending:
                # Every shard is resolved (result or quarantine) or was
                # dropped by a global stop — supervision is done.
                break

            # Wait for one outcome (or a tick, for deadline scans).
            try:
                dispatch, result, error = self._outcomes.get(timeout=self._tick)
            except queue.Empty:
                dispatch = result = error = None

            if dispatch is not None:
                inflight.discard(dispatch)
                index = dispatch.index
                if index in results:
                    pass  # already resolved by a sibling attempt
                elif error is not None:
                    if dispatch.abandoned_at is None:
                        self._record_failure(
                            index, dispatch.attempt, "error", repr(error)
                        )
                        retry_or_quarantine(index)
                    # abandoned dispatches already charged a timeout failure
                elif result is not None and (
                    result.trials == self._shards[index].trials
                    or self._stop_event.is_set()
                ):
                    # Complete — or partial under a global stop, which the
                    # unsupervised path also reports.  A late completion from
                    # an abandoned attempt is free (bit-identical) work.
                    quarantined.pop(index, None)
                    if index in pending:
                        pending.remove(index)
                    results[index] = result
                    if self._on_result is not None:
                        self._on_result(result)
                elif dispatch.abandoned_at is None:
                    # Partial (or empty) outcome without a stop: the attempt
                    # went nowhere — count it and retry.
                    self._record_failure(
                        index,
                        dispatch.attempt,
                        "error",
                        "attempt returned no complete result",
                    )
                    retry_or_quarantine(index)

            # Heartbeat deadlines + kill-grace escalation.
            if policy.shard_timeout is not None:
                now = self._clock()
                for dispatch in list(inflight):
                    index = dispatch.index
                    if dispatch.abandoned_at is None:
                        if now - self._last_beat(index) > policy.shard_timeout:
                            self._timeouts += 1
                            dispatch.abandoned_at = now
                            self._record_failure(
                                index,
                                dispatch.attempt,
                                "timeout",
                                f"no heartbeat within {policy.shard_timeout}s",
                            )
                            dispatch.handle.request_stop()
                            retry_or_quarantine(index)
                    elif (
                        not dispatch.escalated
                        and now - dispatch.abandoned_at > policy.kill_grace
                    ):
                        # The worker ignored its cooperative stop: reap it
                        # (process backend).  Its futures then fail and the
                        # watcher delivers the (already-charged) outcome.
                        dispatch.escalated = True
                        self._try_repair()

        report = RunReport(
            attempts=dict(self._attempts),
            failures=tuple(self._failures),
            quarantined=tuple(
                quarantined[index] for index in sorted(quarantined)
            ),
            retries=self._retries,
            timeouts=self._timeouts,
            pool_repairs=self._pool_repairs,
            started_unix=started_unix,
            finished_unix=time.time(),
            duration_sec=self._clock() - self._start_mono,
        )
        # Mirror the ledger into the metrics registry so traces and
        # `repro.obs report` see supervision activity without re-parsing
        # supervision records.
        metrics = get_metrics()
        if self._retries:
            metrics.counter("supervision.retries").inc(self._retries)
        if self._timeouts:
            metrics.counter("supervision.timeouts").inc(self._timeouts)
        if self._pool_repairs:
            metrics.counter("supervision.pool_repairs").inc(self._pool_repairs)
        if quarantined:
            metrics.counter("supervision.quarantined").inc(len(quarantined))
        return results, report
