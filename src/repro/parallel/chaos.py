"""Deterministic chaos injection for the sharded executor stack.

Robustness claims are only as good as the faults they were tested against,
so this module makes fault injection a *first-class, seeded, deterministic*
harness rather than a pile of ad-hoc monkeypatches:

- :class:`FaultPolicy` — a pure, seeded decision function: whether shard
  attempt ``(shard_index, attempt)`` gets a fault, and which kind, is a
  SplitMix64 mix of the policy seed — the same policy always produces the
  same fault schedule, which the tests assert directly.
- :class:`ChaosExecutor` — wraps any executor backend; each dispatched
  shard payload is (deterministically) assigned a fault instruction that a
  worker-side trampoline executes before/around the real shard body.  The
  injected schedule is recorded parent-side in ``injected``.
- :class:`ChaosSink` — wraps a campaign sink with deterministic write
  failures, for exercising the campaign degradation paths.

Fault kinds
-----------

``crash``
    The worker raises :class:`ChaosWorkerCrash` before running its shard —
    the garden-variety worker exception.
``kill``
    The worker process SIGKILLs itself (process backend; in-process
    backends degrade it to a crash because killing the host process would
    take the test suite with it).  This is the fault that breaks a
    ``ProcessPoolExecutor`` outright and exercises
    :meth:`~repro.parallel.executors.ProcessExecutor.repair`.
``hang``
    The worker stops making progress but keeps polling ``should_stop`` —
    a *cooperative* hang, reclaimable on every backend (CPython threads
    cannot be killed; see :mod:`repro.parallel.supervision`).  A hung
    worker raises :class:`ChaosWorkerHang` once stopped, or after
    ``hang_limit`` as a backstop against leaking workers in tests.
``slow``
    The worker sleeps ``slow_delay`` seconds before running normally —
    stragglers, for exercising deadlines without failures.
``torn``
    The worker emits a torn/garbage progress message before running
    normally: a regressive partial through the publish channel and (on the
    process backend) a malformed item straight onto the progress queue —
    the router and aggregator must shrug both off.

All rates are per *attempt*, so a retried shard redraws its fate — a crash
schedule with rate < 1 terminates with probability 1 under retry, and the
supervision tests pick seeds where it terminates within the retry budget.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.seeding import splitmix64
from repro.obs.runtime import get_metrics, record_event
from repro.parallel.shards import Shard

_FAULT_KINDS = ("crash", "kill", "hang", "slow", "torn")
_MASK64 = (1 << 64) - 1


class ChaosWorkerCrash(RuntimeError):
    """The injected worker exception."""


class ChaosWorkerHang(RuntimeError):
    """Raised by a cooperatively hung worker once it is told to stop."""


class ChaosSinkError(RuntimeError):
    """The injected sink write failure."""


@dataclass(frozen=True)
class FaultPolicy:
    """A seeded, pure fault schedule over ``(shard_index, attempt)``.

    Rates are probabilities in ``[0, 1]``; their sum must not exceed 1
    (the remainder is the no-fault outcome).  ``decide`` is a pure
    function — no internal state, no wall clock — so the schedule is
    reproducible from the seed alone.
    """

    seed: int = 0
    crash_rate: float = 0.0
    kill_rate: float = 0.0
    hang_rate: float = 0.0
    slow_rate: float = 0.0
    torn_rate: float = 0.0
    sink_error_rate: float = 0.0
    slow_delay: float = 0.02
    hang_limit: float = 10.0

    def __post_init__(self):
        rates = self._rates()
        for kind, rate in rates:
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind}_rate must be in [0, 1], got {rate}")
        if sum(rate for _, rate in rates) > 1.0 + 1e-9:
            raise ValueError("fault rates must sum to at most 1")
        if not 0.0 <= self.sink_error_rate <= 1.0:
            raise ValueError("sink_error_rate must be in [0, 1]")
        if self.slow_delay < 0 or self.hang_limit <= 0:
            raise ValueError("slow_delay must be >= 0 and hang_limit > 0")

    def _rates(self) -> Tuple[Tuple[str, float], ...]:
        return (
            ("crash", self.crash_rate),
            ("kill", self.kill_rate),
            ("hang", self.hang_rate),
            ("slow", self.slow_rate),
            ("torn", self.torn_rate),
        )

    @staticmethod
    def _uniform(*words: int) -> float:
        mixed = 0
        for word in words:
            mixed = splitmix64((mixed ^ word) & _MASK64)
        return mixed / float(1 << 64)

    def decide(self, shard_index: int, attempt: int) -> Optional[str]:
        """The fault (or ``None``) for one shard attempt — pure and seeded.

        >>> policy = FaultPolicy(seed=1, crash_rate=1.0)
        >>> policy.decide(0, 0)
        'crash'
        >>> FaultPolicy(seed=1).decide(0, 0) is None
        True
        """
        draw = self._uniform(self.seed, 0x5348_4152_4421 + shard_index, attempt)
        cumulative = 0.0
        for kind, rate in self._rates():
            cumulative += rate
            if rate > 0.0 and draw < cumulative:
                return kind
        return None

    def decide_sink(self, write_index: int) -> bool:
        """Whether sink write number ``write_index`` (0-based) fails."""
        if self.sink_error_rate <= 0.0:
            return False
        draw = self._uniform(self.seed, 0x53_494E_4B21, write_index)
        return draw < self.sink_error_rate

    @classmethod
    def parse(cls, spec: str) -> "FaultPolicy":
        """Build a policy from a ``--chaos-spec`` string.

        Comma-separated ``key=value`` pairs; keys are ``seed``, the rate
        shorthands ``crash``/``kill``/``hang``/``slow``/``torn``/``sink``,
        and the tunables ``delay`` (slow_delay) / ``hang-limit``.

        >>> FaultPolicy.parse("seed=7,crash=0.25,slow=0.5,delay=0.01")
        ... # doctest: +ELLIPSIS
        FaultPolicy(seed=7, crash_rate=0.25, ...)
        """
        aliases = {
            "crash": "crash_rate",
            "kill": "kill_rate",
            "hang": "hang_rate",
            "slow": "slow_rate",
            "torn": "torn_rate",
            "sink": "sink_error_rate",
            "delay": "slow_delay",
            "hang-limit": "hang_limit",
            "hang_limit": "hang_limit",
        }
        kwargs: Dict[str, object] = {}
        for pair in spec.split(","):
            pair = pair.strip()
            if not pair:
                continue
            key, sep, value = pair.partition("=")
            if not sep:
                raise ValueError(f"chaos spec expects key=value pairs, got {pair!r}")
            key = key.strip()
            if key == "seed":
                kwargs["seed"] = int(value)
            elif key in aliases:
                kwargs[aliases[key]] = float(value)
            else:
                raise ValueError(
                    f"unknown chaos spec key {key!r} (choose from seed, "
                    f"{', '.join(sorted(set(aliases) - {'hang_limit'}))})"
                )
        return cls(**kwargs)


def _find_shard(payload) -> Optional[Shard]:
    """The :class:`Shard` inside an executor payload, if any."""
    if isinstance(payload, tuple):
        for element in payload:
            if isinstance(element, Shard):
                return element
    return None


def _chaos_body(wrapped, should_stop, publish=None):
    """Worker-side trampoline: execute the fault, then the real shard body.

    Module-level (and built from picklable parts) so it crosses the process
    boundary exactly like the real shard body does.
    """
    fn, kind, params, payload = wrapped
    if kind == "crash":
        raise ChaosWorkerCrash(f"injected crash (shard {params.get('shard_index')})")
    if kind == "kill":
        if params.get("in_process"):
            # Killing the host process would take the caller with it.
            raise ChaosWorkerCrash(
                f"injected kill degraded to crash in-process "
                f"(shard {params.get('shard_index')})"
            )
        os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover - process dies
    if kind == "hang":
        deadline = time.monotonic() + params.get("hang_limit", 10.0)
        while not should_stop() and time.monotonic() < deadline:
            time.sleep(0.005)
        raise ChaosWorkerHang(f"injected hang (shard {params.get('shard_index')})")
    if kind == "slow":
        time.sleep(params.get("slow_delay", 0.02))
    if kind == "torn":
        shard_index = params.get("shard_index", 0)
        if publish is not None:
            # A regressive partial: cumulative trials going backwards.  The
            # aggregator's never-regress rule must drop it.
            publish(shard_index, 0, -1)
        from repro.parallel import executors as _executors

        if _executors._WORKER_QUEUE is not None:
            # A malformed item straight onto the progress queue — the
            # router's drain loop must count and drop it, not die.
            _executors._WORKER_QUEUE.put(("torn-progress-message",))
    return fn(payload, should_stop, publish)


class ChaosExecutor:
    """Wrap an executor so dispatched shards suffer a seeded fault schedule.

    Fault decisions happen *parent-side* at dispatch time (pure in
    ``(shard_index, attempt)``), so the injected schedule is recorded in
    ``injected`` as ``(shard_index, attempt, kind)`` triples and is
    directly assertable — the determinism tests run the same policy twice
    and compare schedules.  Attempt numbers count this wrapper's dispatches
    per shard index, which under :class:`~repro.parallel.supervision.ShardSupervisor`
    coincide with the supervisor's attempt numbers.

    Payloads without a :class:`Shard` (or non-shard runs) pass through
    unfaulted.  Everything else — stop tokens, streaming, ``repair()`` —
    delegates to the wrapped executor.
    """

    def __init__(self, inner, policy: FaultPolicy):
        self.inner = inner
        self.policy = policy
        self.injected: List[Tuple[int, int, str]] = []
        self._attempts: Dict[int, int] = {}
        self._lock = threading.Lock()

    @property
    def name(self) -> str:
        return f"chaos+{self.inner.name}"

    @property
    def workers(self) -> int:
        return self.inner.workers

    @property
    def in_process(self) -> bool:
        return getattr(self.inner, "in_process", True)

    def start_run(self, fn, payloads, on_progress=None):
        wrapped = []
        in_process = self.in_process
        for payload in payloads:
            shard = _find_shard(payload)
            kind = None
            params: Dict[str, object] = {"in_process": in_process}
            if shard is not None:
                with self._lock:
                    attempt = self._attempts.get(shard.index, 0)
                    self._attempts[shard.index] = attempt + 1
                kind = self.policy.decide(shard.index, attempt)
                params.update(
                    shard_index=shard.index,
                    slow_delay=self.policy.slow_delay,
                    hang_limit=self.policy.hang_limit,
                )
                if kind is not None:
                    with self._lock:
                        self.injected.append((shard.index, attempt, kind))
                    # Parent-side audit trail: every injected fault lands in
                    # the trace (and metrics), so a chaos run is auditable
                    # from its flight record alone.
                    record_event(
                        "chaos.inject",
                        {"fault": kind, "shard": shard.index, "attempt": attempt},
                    )
                    get_metrics().counter(f"chaos.injected.{kind}").inc()
            wrapped.append((fn, kind, params, payload))
        return self.inner.start_run(_chaos_body, wrapped, on_progress=on_progress)

    def request_stop(self) -> None:
        self.inner.request_stop()

    def progress_stats(self):
        stats = getattr(self.inner, "progress_stats", None)
        return stats() if stats is not None else None

    def worker_metrics(self, run_id=None):
        metrics = getattr(self.inner, "worker_metrics", None)
        return metrics(run_id) if metrics is not None else None

    def repair(self) -> None:
        repair = getattr(self.inner, "repair", None)
        if repair is None:
            raise AttributeError(f"{self.inner.name} executor has no repair()")
        repair()

    def close(self) -> None:
        self.inner.close()

    def __enter__(self) -> "ChaosExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ChaosSink:
    """Wrap a campaign sink with deterministic write failures.

    Write number ``n`` (0-based, counted across the sink's lifetime) fails
    with :class:`ChaosSinkError` iff ``policy.decide_sink(n)`` — before the
    record reaches the wrapped sink, modelling a full disk / closed pipe at
    the worst moment.  ``completed`` delegates, so resume semantics are the
    wrapped sink's.
    """

    def __init__(self, inner, policy: FaultPolicy):
        self.inner = inner
        self.policy = policy
        self.writes = 0
        self.failed_writes = 0
        self._lock = threading.Lock()

    def completed(self, cell) -> bool:
        return self.inner.completed(cell)

    def write(self, record) -> None:
        with self._lock:
            index = self.writes
            self.writes += 1
            fail = self.policy.decide_sink(index)
            if fail:
                self.failed_writes += 1
        if fail:
            raise ChaosSinkError(f"injected sink failure on write {index}")
        self.inner.write(record)

    @property
    def records(self):
        return self.inner.records
