"""Exact bit strings — the currency of verification complexity.

Definition 2.1 measures a scheme by the *length in bits* of the labels
(deterministic) or certificates (randomized) it ships, so this library never
exchanges Python objects between nodes: provers emit :class:`BitString`
labels, randomized verifiers emit :class:`BitString` certificates, and every
field inside them is packed at an explicit width.  The sizes the benchmarks
report are therefore the honest sizes of the encodings, not estimates.

A :class:`BitString` is an immutable ``(value, length)`` pair where ``value``
is the big-endian integer reading of the bits.  :class:`BitWriter` and
:class:`BitReader` provide sequential packing/unpacking so schemes can define
small codecs without bit-twiddling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

# Bit expansions of every byte value, most-significant bit first.  One table
# lookup per byte turns bit extraction into an O(length) pass instead of the
# O(length) big-int shifts (each itself O(length / 64) word operations) that a
# per-index ``value >> i`` loop costs.
_BYTE_BITS: Tuple[Tuple[int, ...], ...] = tuple(
    tuple((byte >> (7 - i)) & 1 for i in range(8)) for byte in range(256)
)


@dataclass(frozen=True)
class BitString:
    """An immutable sequence of bits.

    ``value`` holds the bits read big-endian (first bit = most significant);
    ``length`` may exceed the bit length of ``value`` (leading zeros count).

    >>> BitString.from_int(5, 4).bits()
    [0, 1, 0, 1]
    >>> (BitString.from_int(1, 2) + BitString.from_int(3, 2)).bits()
    [0, 1, 1, 1]
    """

    value: int
    length: int

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError("bit string length must be non-negative")
        if self.value < 0:
            raise ValueError("bit string value must be non-negative")
        if self.value.bit_length() > self.length:
            raise ValueError(
                f"value {self.value} does not fit in {self.length} bits"
            )

    # -- constructors ------------------------------------------------------

    @staticmethod
    def empty() -> "BitString":
        """The zero-length bit string."""
        return BitString(0, 0)

    @staticmethod
    def from_int(value: int, width: int) -> "BitString":
        """Encode ``value`` in exactly ``width`` bits (big-endian)."""
        return BitString(value, width)

    @staticmethod
    def from_bits(bits: Iterable[int]) -> "BitString":
        """Build from an iterable of 0/1 values.

        >>> BitString.from_bits([1, 0, 1]).value
        5
        """
        value = 0
        length = 0
        for bit in bits:
            if bit not in (0, 1):
                raise ValueError(f"bits must be 0 or 1, got {bit}")
            value = (value << 1) | bit
            length += 1
        return BitString(value, length)

    @staticmethod
    def concat(parts: Sequence["BitString"]) -> "BitString":
        """Concatenate many bit strings left-to-right."""
        value = 0
        length = 0
        for part in parts:
            value = (value << part.length) | part.value
            length += part.length
        return BitString(value, length)

    # -- views -------------------------------------------------------------

    def bit_tuple(self) -> Tuple[int, ...]:
        """The bits as an immutable tuple, first bit first — memoized.

        Extraction runs once per instance via a single ``int.to_bytes`` pass
        and a 256-entry expansion table; repeated callers (the fingerprint
        layer evaluates label polynomials on every verification trial) hit
        the cache.  The cache lives outside the dataclass fields, so
        equality and hashing are untouched.
        """
        cached = getattr(self, "_bit_cache", None)
        if cached is None:
            if self.length == 0:
                cached = ()
            else:
                nbytes = (self.length + 7) // 8
                expansions = _BYTE_BITS
                flat: List[int] = []
                for byte in self.value.to_bytes(nbytes, "big"):
                    flat.extend(expansions[byte])
                cached = tuple(flat[8 * nbytes - self.length :])
            object.__setattr__(self, "_bit_cache", cached)
        return cached

    def bits(self) -> List[int]:
        """The bits as a list, first bit first."""
        return list(self.bit_tuple())

    def __iter__(self) -> Iterator[int]:
        return iter(self.bit_tuple())

    def __len__(self) -> int:
        return self.length

    def __add__(self, other: "BitString") -> "BitString":
        return BitString(
            (self.value << other.length) | other.value, self.length + other.length
        )

    def slice(self, start: int, width: int) -> "BitString":
        """The ``width`` bits beginning at offset ``start`` (0 = first bit)."""
        if start < 0 or width < 0 or start + width > self.length:
            raise ValueError(
                f"slice [{start}, {start + width}) out of range for length {self.length}"
            )
        shift = self.length - start - width
        mask = (1 << width) - 1
        return BitString((self.value >> shift) & mask, width)

    def to_hex(self) -> str:
        """Hex rendering, useful in logs; zero-padded to the nibble."""
        nibbles = (self.length + 3) // 4
        return f"{self.value:0{max(nibbles, 1)}x}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BitString({self.to_hex()}, len={self.length})"


def bits_for(value_count: int) -> int:
    """Minimum width that can represent ``value_count`` distinct values.

    >>> bits_for(1)
    0
    >>> bits_for(2)
    1
    >>> bits_for(1000)
    10
    """
    if value_count < 1:
        raise ValueError("need at least one representable value")
    return (value_count - 1).bit_length()


def bits_for_max(max_value: int) -> int:
    """Width needed to store integers in ``[0, max_value]``."""
    if max_value < 0:
        raise ValueError("max_value must be non-negative")
    return bits_for(max_value + 1)


class BitWriter:
    """Sequential packer producing a :class:`BitString`.

    >>> writer = BitWriter()
    >>> writer.write_uint(3, 4)
    >>> writer.write_flag(True)
    >>> writer.finish().bits()
    [0, 0, 1, 1, 1]
    """

    def __init__(self) -> None:
        self._value = 0
        self._length = 0

    def write_uint(self, value: int, width: int) -> None:
        """Append ``value`` in exactly ``width`` bits."""
        if value < 0:
            raise ValueError("write_uint encodes non-negative integers only")
        if value.bit_length() > width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._value = (self._value << width) | value
        self._length += width

    def write_flag(self, flag: bool) -> None:
        """Append a single bit."""
        self.write_uint(1 if flag else 0, 1)

    def write_bitstring(self, bit_string: BitString) -> None:
        """Append an existing bit string verbatim."""
        self._value = (self._value << bit_string.length) | bit_string.value
        self._length += bit_string.length

    def write_varuint(self, value: int) -> None:
        """Append a self-delimiting unsigned integer (4-bit groups, LEB-style).

        Each group is 1 continuation bit + 3 payload bits; small numbers stay
        small and no external width needs to be agreed upon.
        """
        if value < 0:
            raise ValueError("varuint encodes non-negative integers only")
        groups = []
        while True:
            groups.append(value & 0b111)
            value >>= 3
            if value == 0:
                break
        for index, group in enumerate(groups):
            continuation = 1 if index + 1 < len(groups) else 0
            self.write_uint((continuation << 3) | group, 4)

    @property
    def length(self) -> int:
        """Bits written so far."""
        return self._length

    def finish(self) -> BitString:
        """Return everything written as one bit string."""
        return BitString(self._value, self._length)


class BitReader:
    """Sequential unpacker over a :class:`BitString`.

    Raises :class:`ValueError` on over-read, which verifiers treat as a
    malformed label (and therefore reject) — a forged label must never crash
    the verifier.
    """

    def __init__(self, bit_string: BitString):
        self._bits = bit_string
        self._offset = 0

    def read_uint(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer."""
        piece = self._bits.slice(self._offset, width)
        self._offset += width
        return piece.value

    def read_flag(self) -> bool:
        """Read a single bit as a boolean."""
        return self.read_uint(1) == 1

    def read_bitstring(self, width: int) -> BitString:
        """Read ``width`` bits as a fresh bit string."""
        piece = self._bits.slice(self._offset, width)
        self._offset += width
        return piece

    def read_varuint(self) -> int:
        """Inverse of :meth:`BitWriter.write_varuint`."""
        value = 0
        shift = 0
        while True:
            group = self.read_uint(4)
            value |= (group & 0b111) << shift
            shift += 3
            if not group & 0b1000:
                return value
            if shift > 96:  # defensive: forged labels must not loop forever
                raise ValueError("varuint too long")

    @property
    def remaining(self) -> int:
        """Bits not yet consumed."""
        return self._bits.length - self._offset

    def expect_exhausted(self) -> None:
        """Raise unless every bit has been consumed (strict codecs)."""
        if self.remaining != 0:
            raise ValueError(f"{self.remaining} unread bits remain")
