"""Polynomial identity fingerprints over ``GF(p)`` — Lemma A.1.

This is the randomness engine behind every upper bound in the paper.  A
``lam``-bit string ``a = a_0 ... a_{lam-1}`` is read as the polynomial

    A(x) = a_0 + a_1 x + ... + a_{lam-1} x^{lam-1}   over GF(p),

for a fixed prime ``3*lam < p < 6*lam``.  A *fingerprint* is the pair
``(x, A(x))`` for a uniformly random ``x``; it occupies ``2 * ceil(log2 p)``
= ``O(log lam)`` bits.  Checking a fingerprint against a local string ``b``
means evaluating ``B(x)`` and comparing:

- **completeness** — if ``a == b`` the polynomials are identical, so the
  check passes for *every* ``x`` (this is why all schemes built on
  fingerprints are one-sided);
- **soundness** — if ``a != b``, the two distinct polynomials of degree
  ``< lam`` agree on at most ``lam - 1`` of the ``p > 3*lam`` points, so the
  check passes with probability ``< 1/3``.

``repetitions`` independent fingerprints drive the failure probability to
``(1/3)^t`` at a ``t``-fold size cost — the paper's epsilon-tuning knob.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

from repro.core.bitstrings import BitReader, BitString, BitWriter, bits_for_max
from repro.substrates.gf import PrimeField, numpy_available, vectorizable_prime
from repro.substrates.primes import fingerprint_prime

# A fingerprint stripped of its bit packing: the total packed width plus the
# ``(x, A(x))`` point list.  The batched engine ships these between co-located
# verifier contexts instead of real bit strings — the packing is lossless and
# both ends share one scheme instance, so accept/reject decisions are
# unchanged while the BitWriter/BitReader round-trip disappears from the
# per-trial cost.
RawFingerprint = Tuple[int, Tuple[Tuple[int, int], ...]]


@dataclass(frozen=True)
class FingerprintVectorSpec:
    """Everything the vectorized trial-chunk kernel needs about one node.

    Produced by the optional ``engine_vector_spec`` scheme hook (see
    :mod:`repro.engine.kernels`) for schemes whose certificates are pure
    polynomial fingerprints.  ``own`` / ``stored`` are int64 numpy arrays of
    highest-degree-first coefficients — ``own`` for the polynomial this node
    evaluates when *sending*, ``stored[q]`` for the replica it checks the
    port-``q`` message against.  ``draws`` is the number of ``randrange``
    query points drawn per half-edge certificate call (``sub_points`` per
    sub-certificate, times the boosting factor for wrapped schemes), and
    ``certificate_bits`` the packed width of one sub-certificate — the two
    quantities the scalar ``check_raw`` validates before any arithmetic.
    ``accepts_when_checks_pass`` is the node's trial-invariant residual
    verdict (for the Theorem 3.1 compiler: the base verifier's decision on
    the stored replicas).
    """

    prime: int
    sub_points: int
    certificate_bits: int
    draws: int
    own: "object"
    stored: Tuple["object", ...]
    accepts_when_checks_pass: bool


@dataclass(frozen=True)
class FingerprintParams:
    """The public parameters of a fingerprint family for ``lam``-bit inputs."""

    lam: int
    prime: int
    coordinate_bits: int

    @property
    def certificate_bits(self) -> int:
        """Bits per single fingerprint: the point ``x`` plus the value."""
        return 2 * self.coordinate_bits


class Fingerprinter:
    """Produces and checks fingerprints of ``lam``-bit strings.

    Instances are deterministic public objects — the prime is a function of
    ``lam`` alone, so sender and receiver agree on the field without
    communicating.

    >>> fp = Fingerprinter(16)
    >>> rng = random.Random(7)
    >>> data = BitString.from_int(0xBEEF, 16)
    >>> fp.check(data, fp.make(data, rng))
    True
    """

    def __init__(self, lam: int, repetitions: int = 1):
        if lam < 0:
            raise ValueError("lam must be non-negative")
        if repetitions < 1:
            raise ValueError("need at least one repetition")
        self.lam = lam
        self.repetitions = repetitions
        prime = fingerprint_prime(lam)
        self.field = PrimeField(prime)
        self.params = FingerprintParams(
            lam=lam,
            prime=prime,
            coordinate_bits=bits_for_max(prime - 1),
        )
        # Total fingerprint size, 2 * ceil(log2 p) * repetitions bits — a
        # plain attribute because the batched engine reads it per message.
        self.certificate_bits = self.params.certificate_bits * repetitions
        # Coefficient extraction per distinct input string.  Verification
        # loops fingerprint the same handful of label replicas thousands of
        # times (and re-parse them into fresh-but-equal BitString objects),
        # so the cache is keyed by value, not identity.
        self._coefficients = lru_cache(maxsize=1024)(self._extract_coefficients)

    @staticmethod
    @lru_cache(maxsize=256)
    def shared(lam: int, repetitions: int = 1) -> "Fingerprinter":
        """A process-wide memoized instance for ``(lam, repetitions)``.

        Instances are deterministic public objects, so sharing them is safe;
        schemes that used to build a fingerprinter per node (or per
        certificate call) route through here and pay the prime search and
        field construction once per parameter pair.
        """
        return Fingerprinter(lam, repetitions=repetitions)

    # -- sizes ---------------------------------------------------------------

    def soundness_error(self) -> float:
        """Upper bound on ``Pr[check passes | strings differ]``.

        ``((lam - 1) / p) ** repetitions`` — strictly below ``(1/3)^t``.
        """
        if self.lam <= 1:
            # Degenerate: distinct 1-bit strings are the polynomials 0 and 1,
            # which agree nowhere, and length-0 strings are always equal.
            return 0.0
        return ((self.lam - 1) / self.params.prime) ** self.repetitions

    # -- operations ------------------------------------------------------------

    def _extract_coefficients(self, data: BitString) -> Tuple[int, ...]:
        if data.length != self.lam:
            raise ValueError(
                f"fingerprinter for {self.lam}-bit strings got {data.length} bits"
            )
        return data.bit_tuple()

    def sample_points(self, data: BitString, rng: random.Random) -> Tuple[Tuple[int, int], ...]:
        """Draw ``repetitions`` fingerprint points ``(x, A(x))`` of ``data``.

        The evaluation points are drawn first (the same ``rng`` consumption
        order as interleaved draw-evaluate loops) and the polynomial is then
        evaluated at all of them in one multi-point pass.
        """
        coefficients = self._coefficients(data)
        prime = self.params.prime
        xs = [rng.randrange(prime) for _ in range(self.repetitions)]
        values = self.field.poly_eval_many(coefficients, xs)
        return tuple(zip(xs, values))

    def make(self, data: BitString, rng: random.Random) -> BitString:
        """Fingerprint ``data``: ``repetitions`` pairs ``(x, A(x))``."""
        writer = BitWriter()
        width = self.params.coordinate_bits
        for x, value in self.sample_points(data, rng):
            writer.write_uint(x, width)
            writer.write_uint(value, width)
        return writer.finish()

    # -- unpacked (engine) operations ------------------------------------------
    #
    # The batched engine never ships certificates over a wire, so it works
    # on RawFingerprint objects and on *reversed* coefficient tuples cached
    # in per-node contexts — the Horner loops below run on locals with no
    # cache lookups or packing in the per-trial path.  The recurrence is
    # deliberately inlined here rather than shared with PrimeField.poly_eval:
    # these two loops are the hottest code in the repository (one execution
    # per fingerprint point per trial), and a shared kernel would add a
    # function call per point.

    def reversed_coefficients(self, data: BitString) -> Tuple[int, ...]:
        """``data``'s polynomial coefficients, highest degree first.

        The shape the Horner evaluations of :meth:`sample_raw` /
        :meth:`check_raw` consume; engine contexts compute this once per
        label replica at plan-compile time.
        """
        return tuple(reversed(self._coefficients(data)))

    def make_raw(self, data: BitString, rng: random.Random) -> RawFingerprint:
        """The unpacked form of :meth:`make`: ``(packed width, points)``.

        The drawn points are identical to what :meth:`make` would pack for
        the same ``rng`` state.
        """
        return self.sample_raw(self.reversed_coefficients(data), rng)

    def sample_raw(
        self, reversed_coefficients: Tuple[int, ...], rng: random.Random
    ) -> RawFingerprint:
        """Draw an unpacked fingerprint from precomputed coefficients."""
        prime = self.params.prime
        randrange = rng.randrange
        points = []
        for _ in range(self.repetitions):
            x = randrange(prime)
            accumulator = 0
            for coefficient in reversed_coefficients:
                accumulator = (accumulator * x + coefficient) % prime
            points.append((x, accumulator))
        return (self.certificate_bits, tuple(points))

    def check_raw(
        self, reversed_coefficients: Tuple[int, ...], certificate: RawFingerprint
    ) -> bool:
        """:meth:`check` for an unpacked certificate.

        Decision-identical to packing the points with the *sender's*
        fingerprinter and running :meth:`check`, provided sender and
        receiver use the same ``repetitions`` (always true when both ends
        run one scheme instance): equal packed widths then imply equal
        coordinate widths, so the unpacking this method skips would have
        recovered exactly ``points``.
        """
        packed_bits, points = certificate
        if packed_bits != self.certificate_bits or len(points) != self.repetitions:
            return False
        prime = self.params.prime
        for x, claimed in points:
            if x >= prime or claimed >= prime:
                return False
            accumulator = 0
            for coefficient in reversed_coefficients:
                accumulator = (accumulator * x + coefficient) % prime
            if accumulator != claimed:
                return False
        return True

    # -- vectorized (numpy) backend ---------------------------------------------
    #
    # The batched engine's Monte-Carlo chunks evaluate the *same* label
    # polynomial at hundreds of query points (one per trial and repetition).
    # The chunk kernel below runs that as a single vectorized Horner pass:
    # bit-identical values to the scalar loops above (int64 stays exact for
    # every fingerprint prime), at a fraction of the interpreted cost.

    def vectorizable(self) -> bool:
        """True when this fingerprinter's field supports the numpy kernels."""
        return numpy_available() and vectorizable_prime(self.params.prime)

    def eval_chunk(self, reversed_coefficients: Tuple[int, ...], xs):
        """Evaluate the polynomial at an array of points — numpy backend.

        ``reversed_coefficients`` is the highest-degree-first shape of
        :meth:`reversed_coefficients` (cached in engine contexts); ``xs``
        may have any shape (typically ``(trials, repetitions)``).  Entries
        need not be reduced modulo the prime — out-of-field query points
        evaluate like their scalar counterparts, and rejection of
        out-of-range coordinates stays the caller's job, as in
        :meth:`check_raw`.  Requires :meth:`vectorizable`.
        """
        return self.field.poly_eval_chunk(reversed_coefficients, xs, descending=True)

    def check(self, data: BitString, certificate: BitString) -> bool:
        """Evaluate ``data``'s polynomial at the certificate's points.

        Returns False on malformed certificates (wrong size, coordinates
        outside the field) — forged messages must be rejected, not trusted.
        """
        if certificate.length != self.certificate_bits:
            return False
        width = self.params.coordinate_bits
        reader = BitReader(certificate)
        points = tuple(
            (reader.read_uint(width), reader.read_uint(width))
            for _ in range(self.repetitions)
        )
        return self._check_points(data, points)

    def _check_points(self, data: BitString, points) -> bool:
        return self.check_raw(
            self.reversed_coefficients(data), (self.certificate_bits, points)
        )


def repetitions_for_error(target_error: float) -> int:
    """Repetitions needed to push one-sided error below ``target_error``.

    Each fingerprint errs with probability < 1/3, so ``t`` repetitions err
    with probability < ``(1/3)^t`` — the ``O(log 1/delta)`` of footnote 1.

    >>> repetitions_for_error(1e-6)
    13
    """
    if not 0 < target_error < 1:
        raise ValueError("target_error must be in (0, 1)")
    repetitions = 1
    error = 1.0 / 3.0
    while error >= target_error:
        repetitions += 1
        error /= 3.0
    return repetitions
