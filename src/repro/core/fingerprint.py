"""Polynomial identity fingerprints over ``GF(p)`` — Lemma A.1.

This is the randomness engine behind every upper bound in the paper.  A
``lam``-bit string ``a = a_0 ... a_{lam-1}`` is read as the polynomial

    A(x) = a_0 + a_1 x + ... + a_{lam-1} x^{lam-1}   over GF(p),

for a fixed prime ``3*lam < p < 6*lam``.  A *fingerprint* is the pair
``(x, A(x))`` for a uniformly random ``x``; it occupies ``2 * ceil(log2 p)``
= ``O(log lam)`` bits.  Checking a fingerprint against a local string ``b``
means evaluating ``B(x)`` and comparing:

- **completeness** — if ``a == b`` the polynomials are identical, so the
  check passes for *every* ``x`` (this is why all schemes built on
  fingerprints are one-sided);
- **soundness** — if ``a != b``, the two distinct polynomials of degree
  ``< lam`` agree on at most ``lam - 1`` of the ``p > 3*lam`` points, so the
  check passes with probability ``< 1/3``.

``repetitions`` independent fingerprints drive the failure probability to
``(1/3)^t`` at a ``t``-fold size cost — the paper's epsilon-tuning knob.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.bitstrings import BitReader, BitString, BitWriter, bits_for_max
from repro.substrates.gf import PrimeField
from repro.substrates.primes import fingerprint_prime


@dataclass(frozen=True)
class FingerprintParams:
    """The public parameters of a fingerprint family for ``lam``-bit inputs."""

    lam: int
    prime: int
    coordinate_bits: int

    @property
    def certificate_bits(self) -> int:
        """Bits per single fingerprint: the point ``x`` plus the value."""
        return 2 * self.coordinate_bits


class Fingerprinter:
    """Produces and checks fingerprints of ``lam``-bit strings.

    Instances are deterministic public objects — the prime is a function of
    ``lam`` alone, so sender and receiver agree on the field without
    communicating.

    >>> fp = Fingerprinter(16)
    >>> rng = random.Random(7)
    >>> data = BitString.from_int(0xBEEF, 16)
    >>> fp.check(data, fp.make(data, rng))
    True
    """

    def __init__(self, lam: int, repetitions: int = 1):
        if lam < 0:
            raise ValueError("lam must be non-negative")
        if repetitions < 1:
            raise ValueError("need at least one repetition")
        self.lam = lam
        self.repetitions = repetitions
        prime = fingerprint_prime(lam)
        self.field = PrimeField(prime)
        self.params = FingerprintParams(
            lam=lam,
            prime=prime,
            coordinate_bits=bits_for_max(prime - 1),
        )

    # -- sizes ---------------------------------------------------------------

    @property
    def certificate_bits(self) -> int:
        """Total fingerprint size: ``2 * ceil(log2 p) * repetitions`` bits."""
        return self.params.certificate_bits * self.repetitions

    def soundness_error(self) -> float:
        """Upper bound on ``Pr[check passes | strings differ]``.

        ``((lam - 1) / p) ** repetitions`` — strictly below ``(1/3)^t``.
        """
        if self.lam <= 1:
            # Degenerate: distinct 1-bit strings are the polynomials 0 and 1,
            # which agree nowhere, and length-0 strings are always equal.
            return 0.0
        return ((self.lam - 1) / self.params.prime) ** self.repetitions

    # -- operations ------------------------------------------------------------

    def _coefficients(self, data: BitString) -> list:
        if data.length != self.lam:
            raise ValueError(
                f"fingerprinter for {self.lam}-bit strings got {data.length} bits"
            )
        return data.bits()

    def make(self, data: BitString, rng: random.Random) -> BitString:
        """Fingerprint ``data``: ``repetitions`` pairs ``(x, A(x))``."""
        coefficients = self._coefficients(data)
        writer = BitWriter()
        for _ in range(self.repetitions):
            x = rng.randrange(self.params.prime)
            value = self.field.poly_eval(coefficients, x)
            writer.write_uint(x, self.params.coordinate_bits)
            writer.write_uint(value, self.params.coordinate_bits)
        return writer.finish()

    def check(self, data: BitString, certificate: BitString) -> bool:
        """Evaluate ``data``'s polynomial at the certificate's points.

        Returns False on malformed certificates (wrong size, coordinates
        outside the field) — forged messages must be rejected, not trusted.
        """
        if certificate.length != self.certificate_bits:
            return False
        coefficients = self._coefficients(data)
        reader = BitReader(certificate)
        for _ in range(self.repetitions):
            x = reader.read_uint(self.params.coordinate_bits)
            claimed = reader.read_uint(self.params.coordinate_bits)
            if x >= self.params.prime or claimed >= self.params.prime:
                return False
            if self.field.poly_eval(coefficients, x) != claimed:
                return False
        return True


def repetitions_for_error(target_error: float) -> int:
    """Repetitions needed to push one-sided error below ``target_error``.

    Each fingerprint errs with probability < 1/3, so ``t`` repetitions err
    with probability < ``(1/3)^t`` — the ``O(log 1/delta)`` of footnote 1.

    >>> repetitions_for_error(1e-6)
    13
    """
    if not 0 < target_error < 1:
        raise ValueError("target_error must be in (0, 1)")
    repetitions = 1
    error = 1.0 / 3.0
    while error >= target_error:
        repetitions += 1
        error /= 3.0
    return repetitions
