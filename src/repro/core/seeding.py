"""Deterministic seed derivation shared by every Monte-Carlo driver.

The repository used to derive per-trial seeds as ``hash((seed, trial))`` —
an *accidental* mixing function: Python's tuple hash is an implementation
detail, is not designed for statistical quality, and (for str/bytes inputs)
varies across interpreter invocations under ``PYTHONHASHSEED``.  Every
repeated-verification loop (``estimate_acceptance``, the batched engine,
the self-stabilization simulator, run-level majority voting) now derives
trial seeds through the explicit integer mix in this module, so all of them
agree on the probability space and results are reproducible by
construction.

The mix is **SplitMix64** (Steele, Lea & Flood, "Fast splittable
pseudorandom number generators", OOPSLA 2014) — the finalizer used by
``java.util.SplittableRandom`` and the reference seeder of xoshiro.  It is
a bijection on 64-bit words whose output passes BigCrush, which makes it a
sound way to turn a (seed, counter) pair into decorrelated child seeds.

Three derivation layers live here:

- :func:`derive_trial_seed` — the per-trial seed of a Monte-Carlo loop
  (trial ``i`` of a run with master seed ``s``);
- :func:`derive_stream_seed` — the engine's *fast* per-(node, port) RNG
  seed (``rng_mode="fast"`` in :mod:`repro.engine`), replacing the
  string-seeded ``random.Random(f"{seed}|{node!r}|{port}")`` construction
  whose SHA-512 seeding dominates tight trial loops.  The compatibility
  mode of the engine keeps the string construction so historical seeds
  reproduce bit-for-bit.
- the **counter-based stream** (``rng_mode="vector"`` in
  :mod:`repro.engine`): :func:`stream_word` maps a ``(stream_seed,
  counter)`` pair straight to a 64-bit word through the SplitMix64 stream
  step plus finalizer — a pure bijection per counter, with no sequential
  generator state at all.  Because word ``k`` is a closed-form function of
  ``k``, a whole Monte-Carlo chunk's draws evaluate as one numpy ``uint64``
  array op (:func:`splitmix64_array` / :func:`stream_words`), and the
  scalar adapter :class:`CounterRng` replays the exact same words one call
  at a time — the two implementations are bit-identical by construction
  and property-tested per trial.
"""

from __future__ import annotations

try:  # numpy backs the vectorized stream kernels; scalar paths never need it
    import numpy as _np
except ImportError:  # pragma: no cover - the image ships numpy
    _np = None

_MASK64 = (1 << 64) - 1

# SplitMix64 constants (Steele et al. 2014).
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB


def splitmix64(x: int) -> int:
    """The SplitMix64 finalizer: a high-quality 64-bit bijective mix.

    >>> splitmix64(0) == splitmix64(0)
    True
    >>> splitmix64(0) != splitmix64(1)
    True
    """
    x = (x + _GOLDEN_GAMMA) & _MASK64
    x = ((x ^ (x >> 30)) * _MIX_1) & _MASK64
    x = ((x ^ (x >> 27)) * _MIX_2) & _MASK64
    return x ^ (x >> 31)


def derive_trial_seed(seed: int, trial: int) -> int:
    """The seed of trial number ``trial`` in a run with master seed ``seed``.

    Two SplitMix64 applications: the master seed is finalized once, offset
    by the trial counter scaled by the golden gamma (the SplitMix64 stream
    step), and finalized again.  Distinct ``(seed, trial)`` pairs therefore
    land on distinct points of a well-mixed 64-bit sequence instead of on
    the ad-hoc lattice ``hash((seed, trial))`` produced.

    >>> derive_trial_seed(0, 0) != derive_trial_seed(0, 1)
    True
    >>> derive_trial_seed(1, 0) != derive_trial_seed(0, 0)
    True
    """
    base = splitmix64(seed & _MASK64)
    return splitmix64((base + trial * _GOLDEN_GAMMA) & _MASK64)


def derive_trial_seed_array(seed: int, start: int, stop: int) -> "object":
    """Vectorized :func:`derive_trial_seed` over the counter range [start, stop).

    ``result[i] == derive_trial_seed(seed, start + i)`` bit for bit: the
    scalar mix reduces every intermediate modulo ``2**64`` exactly as the
    ``uint64`` lanes wrap.  This is the seed-slicing kernel of the sharded
    executor (:mod:`repro.parallel`): a shard owning trial counters
    ``[start, stop)`` derives its seeds as one array op, independent of
    every other shard.
    """
    if _np is None:  # pragma: no cover - callers gate on numpy availability
        raise RuntimeError("numpy backend requested but numpy is unavailable")
    base = splitmix64(seed & _MASK64)
    counters = _np.arange(start, stop, dtype=_np.uint64)
    return splitmix64_array(
        _np.uint64(base) + counters * _np.uint64(_GOLDEN_GAMMA)
    )


def trial_seed_slice(seed: int, start: int, stop: int, seed_mode: str = "mix"):
    """The per-trial seeds of counters ``[start, stop)`` as a Python list.

    The one entry point every chunked/sharded driver uses to materialize a
    trial-counter range, so shard partitioning cannot drift from the
    sequential derivation: concatenating the slices of a partition of
    ``[0, trials)`` reproduces, element for element, the seeds a
    single-process run derives.  ``seed_mode="mix"`` takes the vectorized
    SplitMix64 kernel when numpy is present (bit-identical to the scalar
    mix); ``"legacy"`` always derives scalar ``hash((seed, trial))`` values.
    """
    if stop <= start:
        return []
    if seed_mode == "mix" and _np is not None:
        return [int(word) for word in derive_trial_seed_array(seed, start, stop)]
    trial_seed = resolve_trial_seed(seed_mode)
    return [trial_seed(seed, trial) for trial in range(start, stop)]


def resolve_trial_seed(seed_mode: str):
    """The per-trial derivation function for a ``seed_mode`` knob.

    ``"mix"`` selects :func:`derive_trial_seed`, ``"legacy"``
    :func:`legacy_trial_seed`; anything else raises :class:`ValueError`.
    Every Monte-Carlo entry point dispatches through here so the two modes
    cannot drift apart between call sites.
    """
    if seed_mode == "mix":
        return derive_trial_seed
    if seed_mode == "legacy":
        return legacy_trial_seed
    raise ValueError(f"unknown seed_mode {seed_mode!r}")


def legacy_trial_seed(seed: int, trial: int) -> int:
    """The historical per-trial derivation, kept for reproducing old runs.

    This is the exact expression ``estimate_acceptance`` shipped with; pass
    ``seed_mode="legacy"`` to the Monte-Carlo drivers to reproduce results
    recorded before the SplitMix64 fix.
    """
    return hash((seed, trial))


def stream_word(stream_seed: int, index: int) -> int:
    """Word ``index`` of the counter-based SplitMix64 stream ``stream_seed``.

    The classic SplitMix64 generator steps its state by the golden gamma and
    finalizes; here the state is *computed* instead of stepped, so any word
    of the stream is addressable in O(1) — the property the vectorized RNG
    mode is built on.  Bit-identical to :func:`splitmix64_array` applied to
    ``stream_seed + index * gamma``.

    >>> stream_word(7, 0) != stream_word(7, 1)
    True
    >>> stream_word(7, 3) == stream_word(7, 3)
    True
    """
    return splitmix64((stream_seed + index * _GOLDEN_GAMMA) & _MASK64)


def splitmix64_array(x: "object") -> "object":
    """The numpy ``uint64`` kernel of :func:`splitmix64` — elementwise.

    ``x`` is anything convertible to a ``uint64`` array (entries already
    reduced mod ``2**64``); the result holds ``splitmix64(entry)`` for every
    entry, bit-identical to the scalar mix (``uint64`` lanes wrap exactly
    like the ``& _MASK64`` reductions above).
    """
    if _np is None:  # pragma: no cover - callers gate on numpy availability
        raise RuntimeError("numpy backend requested but numpy is unavailable")
    u64 = _np.uint64
    x = _np.asarray(x, dtype=u64) + u64(_GOLDEN_GAMMA)
    x = (x ^ (x >> u64(30))) * u64(_MIX_1)
    x = (x ^ (x >> u64(27))) * u64(_MIX_2)
    return x ^ (x >> u64(31))


def stream_words(stream_seeds: "object", counters: "object") -> "object":
    """``words[i, j] = stream_word(stream_seeds[i], counters[j])``, batched.

    One broadcasted array op per Monte-Carlo chunk: rows are trials (one
    stream seed each), columns are the chunk's flat draw counters.  This is
    the whole-chunk draw kernel of ``rng_mode="vector"``.
    """
    if _np is None:  # pragma: no cover - callers gate on numpy availability
        raise RuntimeError("numpy backend requested but numpy is unavailable")
    u64 = _np.uint64
    seeds = _np.asarray(stream_seeds, dtype=u64)
    steps = _np.asarray(counters, dtype=u64) * u64(_GOLDEN_GAMMA)
    return splitmix64_array(seeds[:, None] + steps[None, :])


def derive_stream_seed_array(trial_seeds: "object", node_index: int, port: int) -> "object":
    """Vectorized :func:`derive_stream_seed` over a chunk of trial seeds.

    ``trial_seeds`` must already be reduced into ``[0, 2**64)`` (mask
    negative legacy-mode seeds with ``& ((1 << 64) - 1)`` first); the result
    is bit-identical to the scalar derivation per entry.
    """
    base = splitmix64_array(trial_seeds)
    tag = ((node_index + 1) << 20) ^ (port + 1)
    return splitmix64_array(base ^ _np.uint64(splitmix64(tag & _MASK64)))


class CounterRng:
    """Scalar adapter over the counter-based stream, ``random.Random``-shaped.

    The engine's ``rng_mode="vector"`` draws whole chunks through
    :func:`stream_words`; this class replays the identical word sequence one
    call at a time so the *scalar* hook path can run the same probability
    point (and so the bit-identity property tests have a per-trial oracle).
    It deliberately implements only the two methods the engine hook
    contract allows certificate generators to call — :meth:`randrange` and
    :meth:`getrandbits` — because every other ``random.Random`` method has
    data-dependent word consumption that a counter-addressed kernel cannot
    replay.

    :meth:`randrange` reduces a stream word modulo ``n``; the modulo bias is
    below ``n / 2**64`` (< ``2**-33`` for every fingerprint field), orders
    of magnitude under what any statistical test here could resolve, and —
    unlike rejection sampling — keeps word consumption a pure function of
    the call count.
    """

    __slots__ = ("stream_seed", "counter")

    def __init__(self, stream_seed: int = 0):
        self.seed(stream_seed)

    def seed(self, stream_seed: int) -> None:
        """Rebase the stream; the counter restarts at word 0."""
        self.stream_seed = stream_seed & _MASK64
        self.counter = 0

    def randrange(self, n: int) -> int:
        """A draw from ``[0, n)`` — one stream word, reduced modulo ``n``."""
        if n <= 0:
            raise ValueError("empty range for randrange()")
        word = stream_word(self.stream_seed, self.counter)
        self.counter += 1
        return word % n

    def getrandbits(self, k: int) -> int:
        """``k`` random bits from ``ceil(k / 64)`` stream words.

        Words assemble little-endian (word ``j`` holds bits ``64j`` and up)
        and the top word is truncated to the remaining width — the exact
        layout the packed-``uint64`` parity kernel reproduces per mask.
        """
        if k <= 0:
            raise ValueError("number of bits must be greater than zero")
        words = (k + 63) // 64
        base = self.counter
        value = 0
        for j in range(words):
            value |= stream_word(self.stream_seed, base + j) << (64 * j)
        self.counter = base + words
        return value & ((1 << k) - 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CounterRng seed={self.stream_seed:#x} counter={self.counter}>"


def derive_stream_seed(trial_seed: int, node_index: int, port: int) -> int:
    """Fast integer seed for the (node, port) certificate stream of a trial.

    ``port=-1`` addresses the node-shared stream (``randomness="node"``)
    and ``node_index=-1`` the global public-coin stream
    (``randomness="shared"``); real ports and node indices are
    non-negative, so the three address spaces cannot collide.
    """
    base = splitmix64(trial_seed & _MASK64)
    tag = ((node_index + 1) << 20) ^ (port + 1)
    return splitmix64((base ^ splitmix64(tag & _MASK64)) & _MASK64)
