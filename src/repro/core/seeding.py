"""Deterministic seed derivation shared by every Monte-Carlo driver.

The repository used to derive per-trial seeds as ``hash((seed, trial))`` —
an *accidental* mixing function: Python's tuple hash is an implementation
detail, is not designed for statistical quality, and (for str/bytes inputs)
varies across interpreter invocations under ``PYTHONHASHSEED``.  Every
repeated-verification loop (``estimate_acceptance``, the batched engine,
the self-stabilization simulator, run-level majority voting) now derives
trial seeds through the explicit integer mix in this module, so all of them
agree on the probability space and results are reproducible by
construction.

The mix is **SplitMix64** (Steele, Lea & Flood, "Fast splittable
pseudorandom number generators", OOPSLA 2014) — the finalizer used by
``java.util.SplittableRandom`` and the reference seeder of xoshiro.  It is
a bijection on 64-bit words whose output passes BigCrush, which makes it a
sound way to turn a (seed, counter) pair into decorrelated child seeds.

Two derivation layers live here:

- :func:`derive_trial_seed` — the per-trial seed of a Monte-Carlo loop
  (trial ``i`` of a run with master seed ``s``);
- :func:`derive_stream_seed` — the engine's *fast* per-(node, port) RNG
  seed (``rng_mode="fast"`` in :mod:`repro.engine`), replacing the
  string-seeded ``random.Random(f"{seed}|{node!r}|{port}")`` construction
  whose SHA-512 seeding dominates tight trial loops.  The compatibility
  mode of the engine keeps the string construction so historical seeds
  reproduce bit-for-bit.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1

# SplitMix64 constants (Steele et al. 2014).
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB


def splitmix64(x: int) -> int:
    """The SplitMix64 finalizer: a high-quality 64-bit bijective mix.

    >>> splitmix64(0) == splitmix64(0)
    True
    >>> splitmix64(0) != splitmix64(1)
    True
    """
    x = (x + _GOLDEN_GAMMA) & _MASK64
    x = ((x ^ (x >> 30)) * _MIX_1) & _MASK64
    x = ((x ^ (x >> 27)) * _MIX_2) & _MASK64
    return x ^ (x >> 31)


def derive_trial_seed(seed: int, trial: int) -> int:
    """The seed of trial number ``trial`` in a run with master seed ``seed``.

    Two SplitMix64 applications: the master seed is finalized once, offset
    by the trial counter scaled by the golden gamma (the SplitMix64 stream
    step), and finalized again.  Distinct ``(seed, trial)`` pairs therefore
    land on distinct points of a well-mixed 64-bit sequence instead of on
    the ad-hoc lattice ``hash((seed, trial))`` produced.

    >>> derive_trial_seed(0, 0) != derive_trial_seed(0, 1)
    True
    >>> derive_trial_seed(1, 0) != derive_trial_seed(0, 0)
    True
    """
    base = splitmix64(seed & _MASK64)
    return splitmix64((base + trial * _GOLDEN_GAMMA) & _MASK64)


def resolve_trial_seed(seed_mode: str):
    """The per-trial derivation function for a ``seed_mode`` knob.

    ``"mix"`` selects :func:`derive_trial_seed`, ``"legacy"``
    :func:`legacy_trial_seed`; anything else raises :class:`ValueError`.
    Every Monte-Carlo entry point dispatches through here so the two modes
    cannot drift apart between call sites.
    """
    if seed_mode == "mix":
        return derive_trial_seed
    if seed_mode == "legacy":
        return legacy_trial_seed
    raise ValueError(f"unknown seed_mode {seed_mode!r}")


def legacy_trial_seed(seed: int, trial: int) -> int:
    """The historical per-trial derivation, kept for reproducing old runs.

    This is the exact expression ``estimate_acceptance`` shipped with; pass
    ``seed_mode="legacy"`` to the Monte-Carlo drivers to reproduce results
    recorded before the SplitMix64 fix.
    """
    return hash((seed, trial))


def derive_stream_seed(trial_seed: int, node_index: int, port: int) -> int:
    """Fast integer seed for the (node, port) certificate stream of a trial.

    ``port=-1`` addresses the node-shared stream (``randomness="node"``)
    and ``node_index=-1`` the global public-coin stream
    (``randomness="shared"``); real ports and node indices are
    non-negative, so the three address spaces cannot collide.
    """
    base = splitmix64(trial_seed & _MASK64)
    tag = ((node_index + 1) << 20) ^ (port + 1)
    return splitmix64((base ^ splitmix64(tag & _MASK64)) & _MASK64)
