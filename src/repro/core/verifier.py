"""One-round execution engines for deterministic and randomized schemes.

These engines wire the prover, the synchronous round of
:mod:`repro.simulation.network`, and the per-node verifiers together exactly
as Section 2.2 specifies:

- **Deterministic run** — each node ships its full label to every neighbor;
  the configuration is *accepted* iff every node outputs TRUE.
- **Randomized run** — labels stay put; each node derives an independent RNG
  per port (edge-independent randomness, Definition 4.5, or a node-shared RNG
  on request), generates one certificate per port, and only certificates
  travel.  Acceptance is again the conjunction of the node outputs.

A verifier that raises :class:`ValueError` while parsing a message is treated
as rejecting: forged labels are allowed to be arbitrary bit strings, and a
malformed one must not crash the network — it must be *detected*.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Literal, Optional, Tuple

from repro.core.bitstrings import BitString
from repro.core.configuration import Configuration
from repro.core.scheme import (
    LabelView,
    ProofLabelingScheme,
    RandomizedScheme,
    SchemeParams,
    VerifierView,
    derive_rng,
    derive_shared_rng,
)
from repro.graphs.port_graph import Node

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.metrics import AcceptanceEstimate
    from repro.simulation.network import RoundStats

# repro.simulation modules import repro.core, so the engine pulls its two
# simulation helpers in lazily (first call) to keep both package __init__
# orders importable.
_exchange_messages = None


def _exchange(graph, outbox):
    global _exchange_messages
    if _exchange_messages is None:
        from repro.simulation.network import exchange_messages

        _exchange_messages = exchange_messages
    return _exchange_messages(graph, outbox)

RandomnessMode = Literal["edge", "node", "shared"]


@dataclass
class DeterministicRun:
    """Outcome of one deterministic verification round."""

    accepted: bool
    node_outputs: Dict[Node, bool]
    labels: Dict[Node, BitString]
    max_label_bits: int
    round_stats: "RoundStats"

    @property
    def rejecting_nodes(self) -> Tuple[Node, ...]:
        return tuple(
            node for node, output in sorted(self.node_outputs.items(), key=repr)
            if not output
        )


@dataclass
class RandomizedRun:
    """Outcome of one randomized verification round."""

    accepted: bool
    node_outputs: Dict[Node, bool]
    labels: Dict[Node, BitString]
    certificates: Dict[Tuple[Node, int], BitString]
    max_certificate_bits: int
    round_stats: "RoundStats"

    @property
    def rejecting_nodes(self) -> Tuple[Node, ...]:
        return tuple(
            node for node, output in sorted(self.node_outputs.items(), key=repr)
            if not output
        )


def _guarded_verify(scheme, view: VerifierView) -> bool:
    """Run a node verifier, mapping parse failures to rejection."""
    try:
        return bool(scheme.verify_at(view))
    except ValueError:
        return False


def verify_deterministic(
    scheme: ProofLabelingScheme,
    configuration: Configuration,
    labels: Optional[Dict[Node, BitString]] = None,
) -> DeterministicRun:
    """Execute a PLS round.

    ``labels`` defaults to the honest prover's assignment; pass a forged
    assignment to exercise the soundness direction.
    """
    if labels is None:
        labels = scheme.prover(configuration)
    graph = configuration.graph
    params = SchemeParams.from_configuration(configuration)

    outbox = {
        (node, port): labels[node]
        for node in graph.nodes
        for port in range(graph.degree(node))
    }
    inbox, stats = _exchange(graph, outbox)

    node_outputs: Dict[Node, bool] = {}
    for node in graph.nodes:
        view = VerifierView(
            node=node,
            state=configuration.state(node),
            degree=graph.degree(node),
            params=params,
            own_label=labels[node],
            messages=tuple(
                inbox[(node, port)] for port in range(graph.degree(node))
            ),
        )
        node_outputs[node] = _guarded_verify(scheme, view)

    return DeterministicRun(
        accepted=all(node_outputs.values()),
        node_outputs=node_outputs,
        labels=labels,
        max_label_bits=max((label.length for label in labels.values()), default=0),
        round_stats=stats,
    )


def verify_randomized(
    scheme: RandomizedScheme,
    configuration: Configuration,
    seed: int = 0,
    labels: Optional[Dict[Node, BitString]] = None,
    randomness: RandomnessMode = "edge",
) -> RandomizedRun:
    """Execute one RPLS round with the given random seed.

    ``randomness="edge"`` gives each (node, port) pair its own RNG stream —
    the edge-independent model of Definition 4.5 under which all of the
    paper's upper bounds operate.  ``randomness="node"`` shares one stream per
    node across its ports, the relaxation mentioned among the open questions.
    ``randomness="shared"`` is the public-coin model of the same open
    question: every certificate call *and* every verifier sees a fresh
    generator over one global coin sequence (:func:`derive_shared_rng`).
    """
    if labels is None:
        labels = scheme.prover(configuration)
    graph = configuration.graph
    params = SchemeParams.from_configuration(configuration)

    certificates: Dict[Tuple[Node, int], BitString] = {}
    for node in graph.nodes:
        label_view = LabelView(
            node=node,
            state=configuration.state(node),
            degree=graph.degree(node),
            params=params,
            own_label=labels[node],
        )
        node_rng = derive_rng(seed, node, None) if randomness == "node" else None
        for port in range(graph.degree(node)):
            if randomness == "shared":
                rng = derive_shared_rng(seed)
            else:
                rng = node_rng if node_rng is not None else derive_rng(seed, node, port)
            try:
                certificates[(node, port)] = scheme.certificate(label_view, port, rng)
            except ValueError:
                # A forged label the node cannot even parse: it emits nothing
                # useful.  Receivers see a malformed certificate and reject;
                # the node itself rejects when verifying its own label.
                certificates[(node, port)] = BitString.empty()

    inbox, stats = _exchange(graph, certificates)

    node_outputs: Dict[Node, bool] = {}
    for node in graph.nodes:
        view = VerifierView(
            node=node,
            state=configuration.state(node),
            degree=graph.degree(node),
            params=params,
            own_label=labels[node],
            messages=tuple(
                inbox[(node, port)] for port in range(graph.degree(node))
            ),
            shared_rng=derive_shared_rng(seed) if randomness == "shared" else None,
        )
        node_outputs[node] = _guarded_verify(scheme, view)

    return RandomizedRun(
        accepted=all(node_outputs.values()),
        node_outputs=node_outputs,
        labels=labels,
        certificates=certificates,
        max_certificate_bits=max(
            (certificate.length for certificate in certificates.values()), default=0
        ),
        round_stats=stats,
    )


def estimate_acceptance(
    scheme: RandomizedScheme,
    configuration: Configuration,
    trials: int,
    seed: int = 0,
    labels: Optional[Dict[Node, BitString]] = None,
    randomness: RandomnessMode = "edge",
    seed_mode: Literal["mix", "legacy"] = "mix",
) -> "AcceptanceEstimate":
    """Monte-Carlo estimate of the acceptance probability — reference path.

    The prover runs once (labels are deterministic); each trial re-randomizes
    only the certificates, which is exactly the probability space of
    Section 2.2.

    Trial ``i`` runs with seed ``derive_trial_seed(seed, i)`` — the explicit
    SplitMix64 mix of :mod:`repro.core.seeding`, shared with the batched
    engine so both paths sample identical trial sequences.  The historical
    derivation ``hash((seed, trial))`` (an accidental mixing function) is
    available as ``seed_mode="legacy"`` for reproducing old results.

    This loop deliberately stays unoptimized: it is the reference oracle the
    batched engine (:mod:`repro.engine`) is tested against.  For hot
    Monte-Carlo loops, compile a :class:`~repro.engine.plan.VerificationPlan`
    and use :func:`~repro.engine.montecarlo.estimate_acceptance_fast`, which
    produces identical per-trial decisions at a fraction of the cost.
    """
    from repro.core.seeding import resolve_trial_seed
    from repro.simulation.metrics import AcceptanceEstimate  # lazy: import cycle

    if trials <= 0:
        raise ValueError("trials must be positive")
    trial_seed = resolve_trial_seed(seed_mode)
    if labels is None:
        labels = scheme.prover(configuration)
    accepted = 0
    for trial in range(trials):
        run = verify_randomized(
            scheme,
            configuration,
            seed=trial_seed(seed, trial),
            labels=labels,
            randomness=randomness,
        )
        if run.accepted:
            accepted += 1
    return AcceptanceEstimate(accepted=accepted, trials=trials)
