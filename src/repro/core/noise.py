"""Two-sided schemes from channel noise.

Every concrete scheme in this library is one-sided (legal configurations are
accepted with probability 1), matching the paper's Section 5 remark.  The
paper's *two-sided* machinery — the 2/3-2/3 error model of Section 2.2, the
run-level majority boosting of footnote 1, and the ε-rounded-distribution
crossing attack of Proposition 4.6 — still needs genuinely two-sided objects
to exercise.  This module manufactures them the way they arise in practice:
**unreliable links**.

:class:`NoisyChannelRPLS` wraps any RPLS and flips each certificate bit
independently with probability ``flip_probability`` at the sender.  The
wrapped scheme is still a legitimate RPLS (the noise is just part of the
randomized certificate generator, and it stays edge-independent if the base
is), but it now errs on legal configurations: a single flipped bit usually
breaks a fingerprint match, so

    Pr[accept legal]  >=  (1 - p) ** B

where ``B`` is the total number of certificate bits shipped in the round
(:meth:`NoisyChannelRPLS.completeness_lower_bound` computes this exactly).
Choosing ``p`` small enough keeps the scheme inside the paper's
``p_accept >= 2/3`` regime, and footnote 1's majority vote
(:func:`repro.core.boosting.majority_decision`) then drives the error down —
the standard BPP-style amplification the tests verify end-to-end.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.core.bitstrings import BitString
from repro.core.configuration import Configuration
from repro.core.scheme import LabelView, RandomizedScheme, SchemeParams, VerifierView
from repro.graphs.port_graph import Node


class NoisyChannelRPLS(RandomizedScheme):
    """A base RPLS whose certificates traverse a binary symmetric channel.

    ``flip_probability`` is the per-bit flip rate ``p`` of the channel.  The
    flips are sampled from the same per-(node, port) RNG stream as the base
    certificate, so Definition 4.5 edge-independence is preserved.
    """

    def __init__(self, base: RandomizedScheme, flip_probability: float):
        if not 0 <= flip_probability < 0.5:
            raise ValueError("flip probability must be in [0, 0.5)")
        super().__init__(base.predicate)
        self.base = base
        self.flip_probability = flip_probability
        self.one_sided = flip_probability == 0 and base.one_sided
        self.edge_independent = base.edge_independent
        self.name = f"noisy({base.name}, p={flip_probability})"

    def prover(self, configuration: Configuration) -> Dict[Node, BitString]:
        return self.base.prover(configuration)

    def certificate(self, view: LabelView, port: int, rng: random.Random) -> BitString:
        clean = self.base.certificate(view, port, rng)
        if self.flip_probability == 0 or clean.length == 0:
            return clean
        value = clean.value
        for position in range(clean.length):
            if rng.random() < self.flip_probability:
                value ^= 1 << position
        return BitString(value, clean.length)

    def verify_at(self, view: VerifierView) -> bool:
        return self.base.verify_at(view)

    def round_bits(self, configuration: Configuration, seed: int = 0) -> int:
        """Total certificate bits shipped in one verification round (both
        directions of every edge)."""
        labels = self.base.prover(configuration)
        params = SchemeParams.from_configuration(configuration)
        total = 0
        for node in configuration.graph.nodes:
            view = LabelView(
                node=node,
                state=configuration.state(node),
                degree=configuration.graph.degree(node),
                params=params,
                own_label=labels[node],
            )
            for port in range(configuration.graph.degree(node)):
                rng = random.Random(f"{seed}|{node!r}|{port}")
                total += self.base.certificate(view, port, rng).length
        return total

    def completeness_lower_bound(self, configuration: Configuration) -> float:
        """``(1 - p) ** B``: accept-probability floor on a legal configuration.

        A run with zero flipped bits is distributed exactly like the base
        scheme's run, which accepts legal configurations with probability 1
        (one-sided base) — so no-flips implies accept.
        """
        return (1.0 - self.flip_probability) ** self.round_bits(configuration)


def flip_probability_for_completeness(
    target: float, round_bits: int
) -> float:
    """The largest per-bit flip rate keeping ``(1-p)^B >= target``.

    >>> round(flip_probability_for_completeness(2/3, 100), 6)
    0.004046
    """
    if not 0 < target < 1:
        raise ValueError("target must be in (0, 1)")
    if round_bits <= 0:
        return 0.49
    return min(0.49, 1.0 - target ** (1.0 / round_bits))
