"""Core of the reproduction: the proof-labeling-scheme framework itself.

The paper's contribution is a *model* plus generic transformations on it, so
the core package carries:

- exact bit accounting (:mod:`repro.core.bitstrings`,
  :mod:`repro.core.encoding`) — verification complexity is a bit count
  (Definition 2.1), so labels and certificates are real bit strings, not
  Python objects whose size we hand-wave;
- configurations (:mod:`repro.core.configuration`) — a port-numbered graph
  plus a state per node (Section 2.1);
- the scheme abstractions (:mod:`repro.core.scheme`) and one-round execution
  engines (:mod:`repro.core.verifier`) for deterministic PLS and randomized
  RPLS (Section 2.2);
- the ``GF(p)`` polynomial fingerprints of Lemma A.1
  (:mod:`repro.core.fingerprint`);
- the Theorem 3.1 compiler turning any PLS into an RPLS with exponentially
  smaller certificates (:mod:`repro.core.compiler`);
- the universal schemes of Lemma 3.3 / Corollary 3.4
  (:mod:`repro.core.universal`);
- error boosting per the paper's footnote 1 (:mod:`repro.core.boosting`);
- genuinely two-sided schemes via binary-symmetric channel noise
  (:mod:`repro.core.noise`), exercising the Section 2.2 two-sided error
  model and footnote 1's majority amplification.
"""

from repro.core.bitstrings import BitString, BitReader, BitWriter
from repro.core.configuration import Configuration, NodeState
from repro.core.predicate import Predicate
from repro.core.scheme import ProofLabelingScheme, RandomizedScheme
from repro.core.verifier import (
    estimate_acceptance,
    verify_deterministic,
    verify_randomized,
)
from repro.core.fingerprint import Fingerprinter
from repro.core.compiler import FingerprintCompiledRPLS
from repro.core.universal import UniversalPLS, UniversalRPLS
from repro.core.boosting import BoostedRPLS
from repro.core.noise import NoisyChannelRPLS
from repro.core.shared import SharedCoinsCompiledRPLS

__all__ = [
    "BitReader",
    "BitString",
    "BitWriter",
    "BoostedRPLS",
    "NoisyChannelRPLS",
    "Configuration",
    "FingerprintCompiledRPLS",
    "Fingerprinter",
    "NodeState",
    "Predicate",
    "ProofLabelingScheme",
    "RandomizedScheme",
    "SharedCoinsCompiledRPLS",
    "UniversalPLS",
    "UniversalRPLS",
    "estimate_acceptance",
    "verify_deterministic",
    "verify_randomized",
]
