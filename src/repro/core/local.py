"""Radius-t local checking — the label-free floor of the hierarchy.

The paper's related work cites Göös and Suomela's *locally checkable proofs*
[21], where nodes decide from their radius-``t`` neighborhood rather than a
single label exchange.  This module implements the radius-``t`` view and the
class of predicates that need **no labels at all** once the radius covers
their violation witnesses — the floor against which every positive
verification-complexity bound in the library is measured.

A :class:`BallChecker` is a local rule of radius ``t``: the global predicate
is, by definition, the conjunction of the rule over all balls (a universal,
"forbidden-substructure" property).  Such predicates are verifiable with
0-bit labels at radius ``t``:

- completeness: every ball of a legal configuration passes its check;
- soundness: a violating configuration contains a witness of radius ``t``,
  and the witness's center node sees all of it and rejects — no labels exist
  to forge.

Existential predicates (``exists`` a spanning tree / a long cycle / an
automorphism) are exactly the ones this cannot express: far-away nodes must
accept without seeing the witness, which is why the paper's schemes carry
labels pointing at it.  The module therefore draws the line the paper's
introduction describes between locally checkable predicates and those
needing proofs.

Ball convention: the radius-``t`` view of ``v`` contains every node at hop
distance ``<= t`` from ``v`` and every edge with at least one endpoint at
distance ``< t`` (an edge between two distance-``t`` nodes is not visible —
observing it would take ``t + 1`` hops of communication).  States of all
ball nodes are visible, as in [21].
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.core.configuration import Configuration, NodeState
from repro.core.predicate import Predicate
from repro.graphs.port_graph import Node, PortGraph
from repro.substrates.bfs import bfs_layers
from repro.substrates.cycles import girth


@dataclass(frozen=True)
class BallView:
    """The radius-``t`` neighborhood of a center node.

    ``graph`` is the visible subgraph (its port numbers are the *original*
    port numbers, so degrees inside the ball may be smaller than true
    degrees); ``true_degree`` carries the center's real degree, which a node
    always knows.
    """

    center: Node
    radius: int
    graph: PortGraph
    states: Dict[Node, NodeState]
    distances: Dict[Node, int]
    true_degree: int

    def state_of(self, node: Node) -> NodeState:
        return self.states[node]


def extract_ball(configuration: Configuration, center: Node, radius: int) -> BallView:
    """Build the radius-``t`` view of ``center``."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    graph = configuration.graph
    tree = bfs_layers(graph, center)
    members: Set[Node] = {
        node for node, dist in tree.dist.items() if dist <= radius
    }
    visible = PortGraph()
    for node in members:
        visible.add_node(node)
    seen: Set[frozenset] = set()
    for node in members:
        if tree.dist[node] >= radius:
            continue  # edges are visible only from interior endpoints
        for _port, neighbor, _reverse in graph.ports(node):
            key = frozenset((node, neighbor))
            if neighbor in members and key not in seen:
                seen.add(key)
                visible.add_edge(node, neighbor)
    return BallView(
        center=center,
        radius=radius,
        graph=visible,
        states={node: configuration.state(node) for node in members},
        distances={node: tree.dist[node] for node in members},
        true_degree=graph.degree(center),
    )


class BallChecker(ABC):
    """A radius-``t`` local rule; the global predicate is its conjunction."""

    name: str = "ball-checker"
    radius: int = 1

    @abstractmethod
    def check_ball(self, ball: BallView) -> bool:
        """Decide at one center from its radius-``t`` view."""


class LocallyCheckedPredicate(Predicate):
    """The predicate "every ball passes ``checker``" — 0-bit verifiable."""

    def __init__(self, checker: BallChecker):
        self.checker = checker
        self.name = f"locally({checker.name}, t={checker.radius})"

    def holds(self, configuration: Configuration) -> bool:
        return all(
            self.checker.check_ball(
                extract_ball(configuration, node, self.checker.radius)
            )
            for node in configuration.graph.nodes
        )


def verify_locally(
    configuration: Configuration, checker: BallChecker
) -> Tuple[bool, List[Node]]:
    """Run the 0-label radius-``t`` verifier; returns (accepted, rejectors)."""
    rejecting = [
        node
        for node in configuration.graph.nodes
        if not checker.check_ball(
            extract_ball(configuration, node, checker.radius)
        )
    ]
    return not rejecting, rejecting


# ---------------------------------------------------------------------------
# concrete checkers
# ---------------------------------------------------------------------------


class ProperColoringChecker(BallChecker):
    """Radius 1: my color differs from every neighbor's color.

    The same predicate as ``schemes.coloring`` — but with states visible in
    the ball, the label republishing the color disappears: 0 bits.
    """

    name = "proper-coloring"
    radius = 1

    def check_ball(self, ball: BallView) -> bool:
        own = ball.state_of(ball.center).get("color")
        if own is None:
            return False
        return all(
            ball.state_of(neighbor).get("color") != own
            for neighbor in ball.graph.neighbors(ball.center)
        )


class MISChecker(BallChecker):
    """Radius 1: the ``in_mis`` marks are independent and maximal around me.

    Contrast with :class:`repro.schemes.mis.MISPLS`, which pays 1 bit per
    node to republish the mark — here the ball shows states directly.
    """

    name = "mis"
    radius = 1

    def check_ball(self, ball: BallView) -> bool:
        own = bool(ball.state_of(ball.center).get("in_mis"))
        marked_neighbors = sum(
            1
            for neighbor in ball.graph.neighbors(ball.center)
            if ball.state_of(neighbor).get("in_mis")
        )
        if own:
            return marked_neighbors == 0
        return marked_neighbors >= 1


class MaxDegreeChecker(BallChecker):
    """Radius 0: my degree is at most ``bound`` — no communication at all."""

    name = "max-degree"
    radius = 0

    def __init__(self, bound: int):
        if bound < 0:
            raise ValueError("degree bound must be non-negative")
        self.bound = bound
        self.name = f"max-degree-{bound}"

    def check_ball(self, ball: BallView) -> bool:
        return ball.true_degree <= self.bound


class GirthAtLeastChecker(BallChecker):
    """Radius ``floor(g/2)``: no simple cycle with fewer than ``g`` nodes.

    A cycle of length ``c < g`` has diameter ``floor(c/2) <= floor((g-1)/2)
    <= floor(g/2)``... more precisely every node of a ``c``-cycle sees the
    whole cycle (all nodes within ``floor(c/2)``, all edges incident to
    nodes within ``floor(c/2) <= radius - 1`` when ``c <= 2*radius - 1``, and
    the two "far" edges of an even cycle from its antipode's neighbors).
    Setting ``radius = floor(g/2)`` makes every too-short cycle fully visible
    from each of its members, so its members reject — 0-bit verification of
    ``girth >= g``.
    """

    name = "girth-at-least"
    radius = 1

    def __init__(self, girth: int):
        if girth < 3:
            raise ValueError("girth bounds below 3 are vacuous")
        self.girth = girth
        self.radius = girth // 2
        self.name = f"girth-at-least-{girth}"

    def check_ball(self, ball: BallView) -> bool:
        # Reject iff the visible ball contains a simple cycle shorter than g.
        # Soundness of the rule: every visible edge is a real edge, so a
        # visible short cycle is a real short cycle; completeness: a legal
        # (girth >= g) configuration has no short cycle anywhere, visible or
        # not.
        visible_girth = girth(ball.graph)
        return visible_girth is None or visible_girth >= self.girth
