"""A deterministic, self-delimiting binary codec for structured values.

Node *states* (Section 2.1) carry structured data — identities, per-port edge
weights, algorithm outputs such as parent pointers or tree markings.  Two
places need a faithful bit encoding of whole states:

- the universal scheme of Lemma 3.3 ships a representation of the entire
  configuration, so its label size depends on how states are encoded;
- the definition of verification complexity is parameterized by ``k``, the
  number of bits needed to encode a state, so ``Configuration.state_bits``
  must be a real number, not a guess.

The codec is type-tagged and self-delimiting, supporting exactly the value
shapes states use: ``None``, ``bool``, non-negative ``int`` (varuint),
negative ``int``, ``str`` (ASCII), :class:`BitString`, and
tuples/lists/dicts of the above.  Encoding is canonical (dict keys sorted),
so equal values produce identical bit strings — which is what lets fingerprint
equality stand in for value equality.
"""

from __future__ import annotations

from typing import Any

from repro.core.bitstrings import BitReader, BitString, BitWriter

_TAG_NONE = 0
_TAG_FALSE = 1
_TAG_TRUE = 2
_TAG_UINT = 3
_TAG_NEGINT = 4
_TAG_STR = 5
_TAG_BITS = 6
_TAG_TUPLE = 7
_TAG_DICT = 8

_TAG_WIDTH = 4


def _write_value(writer: BitWriter, value: Any) -> None:
    if value is None:
        writer.write_uint(_TAG_NONE, _TAG_WIDTH)
    elif value is False:
        writer.write_uint(_TAG_FALSE, _TAG_WIDTH)
    elif value is True:
        writer.write_uint(_TAG_TRUE, _TAG_WIDTH)
    elif isinstance(value, int):
        if value >= 0:
            writer.write_uint(_TAG_UINT, _TAG_WIDTH)
            writer.write_varuint(value)
        else:
            writer.write_uint(_TAG_NEGINT, _TAG_WIDTH)
            writer.write_varuint(-value)
    elif isinstance(value, str):
        writer.write_uint(_TAG_STR, _TAG_WIDTH)
        data = value.encode("utf-8")
        writer.write_varuint(len(data))
        for byte in data:
            writer.write_uint(byte, 8)
    elif isinstance(value, BitString):
        writer.write_uint(_TAG_BITS, _TAG_WIDTH)
        writer.write_varuint(value.length)
        writer.write_bitstring(value)
    elif isinstance(value, (tuple, list)):
        writer.write_uint(_TAG_TUPLE, _TAG_WIDTH)
        writer.write_varuint(len(value))
        for item in value:
            _write_value(writer, item)
    elif isinstance(value, dict):
        writer.write_uint(_TAG_DICT, _TAG_WIDTH)
        keys = sorted(value)
        writer.write_varuint(len(keys))
        for key in keys:
            if not isinstance(key, str):
                raise TypeError(f"dict keys must be str, got {type(key).__name__}")
            _write_value(writer, key)
            _write_value(writer, value[key])
    else:
        raise TypeError(f"cannot encode value of type {type(value).__name__}")


def _read_value(reader: BitReader) -> Any:
    tag = reader.read_uint(_TAG_WIDTH)
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_UINT:
        return reader.read_varuint()
    if tag == _TAG_NEGINT:
        return -reader.read_varuint()
    if tag == _TAG_STR:
        count = reader.read_varuint()
        data = bytes(reader.read_uint(8) for _ in range(count))
        return data.decode("utf-8")
    if tag == _TAG_BITS:
        width = reader.read_varuint()
        return reader.read_bitstring(width)
    if tag == _TAG_TUPLE:
        count = reader.read_varuint()
        return tuple(_read_value(reader) for _ in range(count))
    if tag == _TAG_DICT:
        count = reader.read_varuint()
        result = {}
        for _ in range(count):
            key = _read_value(reader)
            result[key] = _read_value(reader)
        return result
    raise ValueError(f"unknown tag {tag}")


def encode_value(value: Any) -> BitString:
    """Encode a structured value canonically.

    >>> encode_value((1, "ab")) == encode_value((1, "ab"))
    True
    >>> encode_value({"b": 1, "a": 2}) == encode_value({"a": 2, "b": 1})
    True
    """
    writer = BitWriter()
    _write_value(writer, value)
    return writer.finish()


def decode_value(bit_string: BitString) -> Any:
    """Inverse of :func:`encode_value` (strict: consumes every bit).

    >>> decode_value(encode_value([1, None, True]))
    (1, None, True)
    """
    reader = BitReader(bit_string)
    value = _read_value(reader)
    reader.expect_exhausted()
    return value


def encoded_bits(value: Any) -> int:
    """Number of bits :func:`encode_value` uses for ``value``."""
    return encode_value(value).length
