"""Configurations: a port-numbered graph plus a state per node (Section 2.1).

A configuration ``Gs`` is a graph ``G = (V, E)`` together with a state
assignment ``s : V -> S``.  The state of a node holds *all local input*: its
identity, the weights of its incident edges (indexed by port), and any
algorithm output being verified (parent pointers, tree markings, colors,
flows, ...).

Conventions used across the library (every scheme documents which fields it
reads):

========================  =====================================================
state field               meaning
========================  =====================================================
``weights``               tuple, one integer weight per port (symmetric:
                          both endpoints of an edge see the same weight)
``tree``                  tuple of 0/1 per port — marks the edges of a claimed
                          spanning structure (symmetric)
``parent_port``           port of the claimed parent (or ``None`` at a root)
``color``                 claimed color for the coloring predicate
``payload``               opaque :class:`BitString` data for ``Unif``
                          (Lemma C.3's ``s'(u)``)
``source`` / ``target``   booleans marking ``s`` and ``t`` for flow predicates
``flow``                  tuple per port: signed flow on each incident edge
========================  =====================================================

``NodeState`` is immutable; corruption helpers produce modified copies, so a
legal configuration can never be mutated into an illegal one by accident.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Dict, Hashable, Iterable, Mapping, Optional, Tuple

from repro.core.bitstrings import bits_for_max
from repro.core.encoding import encode_value
from repro.graphs.port_graph import Node, PortGraph


@dataclass(frozen=True)
class NodeState:
    """The full local input of one node.

    ``node_id`` is the identity ``Id(v)`` (unique across the network unless
    the configuration is anonymous); ``fields`` carries everything else.
    """

    node_id: int
    fields: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "fields", MappingProxyType(dict(self.fields)))

    def get(self, name: str, default: Any = None) -> Any:
        """Read a state field."""
        return self.fields.get(name, default)

    def with_fields(self, **updates: Any) -> "NodeState":
        """A copy with some fields replaced (used by corruption helpers)."""
        merged = dict(self.fields)
        merged.update(updates)
        return NodeState(self.node_id, merged)

    def encoded_bits(self) -> int:
        """Exact size of this state under the canonical codec — the ``k`` of
        Lemma 3.3 / Corollary 3.4."""
        return encode_value(self.canonical_value()).length

    def canonical_value(self) -> Tuple[int, Dict[str, Any]]:
        """The codec-ready value: ``(id, fields)`` with plain containers."""
        return (self.node_id, {key: self.fields[key] for key in sorted(self.fields)})


class Configuration:
    """A graph plus its state assignment; the object every scheme consumes.

    The constructor validates that states cover exactly the node set and that
    identities are pairwise distinct (unless ``anonymous=True``; the paper
    notes PLS definitions do not require identities, and some predicates such
    as ``Unif`` make sense without them).
    """

    def __init__(
        self,
        graph: PortGraph,
        states: Mapping[Node, NodeState],
        anonymous: bool = False,
    ):
        if set(states) != set(graph.nodes):
            missing = set(graph.nodes) ^ set(states)
            raise ValueError(f"states must cover exactly the node set; mismatch on {missing}")
        if not anonymous:
            ids = [state.node_id for state in states.values()]
            if len(set(ids)) != len(ids):
                raise ValueError("node identities must be pairwise distinct")
        self.graph = graph
        self.states: Dict[Node, NodeState] = dict(states)
        self.anonymous = anonymous

    # -- sizes ----------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return self.graph.node_count

    @property
    def edge_count(self) -> int:
        return self.graph.edge_count

    @property
    def id_bits(self) -> int:
        """Width sufficient to pack any identity in this configuration."""
        return max(bits_for_max(max(s.node_id for s in self.states.values())), 1)

    @property
    def port_bits(self) -> int:
        """Width sufficient to pack any port number (plus a null sentinel)."""
        return max(bits_for_max(self.graph.max_degree), 1)

    @property
    def state_bits(self) -> int:
        """``k`` — the maximum encoded state size, per Lemma 3.3."""
        return max(state.encoded_bits() for state in self.states.values())

    # -- access ----------------------------------------------------------------

    def state(self, node: Node) -> NodeState:
        return self.states[node]

    def node_id(self, node: Node) -> int:
        return self.states[node].node_id

    def node_by_id(self, node_id: int) -> Node:
        """Inverse identity lookup (O(n); used by provers, never verifiers)."""
        for node, state in self.states.items():
            if state.node_id == node_id:
                return node
        raise KeyError(f"no node with id {node_id}")

    def edge_weight(self, node: Node, port: int) -> int:
        """The weight of the edge on ``port`` of ``node`` (default 1)."""
        weights = self.states[node].get("weights")
        if weights is None:
            return 1
        return weights[port]

    def weight_key(self, node: Node, port: int) -> Tuple[int, int, int]:
        """Total-order tie-broken weight ``(w, min_id, max_id)``.

        Distinct keys for distinct edges make the MST unique, which the
        Borůvka-trace scheme relies on (see DESIGN.md).
        """
        neighbor = self.graph.neighbor(node, port)
        id_a, id_b = self.node_id(node), self.node_id(neighbor)
        return (
            self.edge_weight(node, port),
            min(id_a, id_b),
            max(id_a, id_b),
        )

    def is_tree_port(self, node: Node, port: int) -> bool:
        """True if the edge on ``port`` is marked as part of the claimed tree."""
        marks = self.states[node].get("tree")
        if marks is None:
            return False
        return bool(marks[port])

    def tree_edges(self) -> Iterable[Tuple[Node, int, Node, int]]:
        """All marked tree edges (asserts the marking is symmetric)."""
        for u, pu, v, pv in self.graph.edges():
            mark_u = self.is_tree_port(u, pu)
            mark_v = self.is_tree_port(v, pv)
            if mark_u != mark_v:
                raise ValueError(
                    f"asymmetric tree marking on edge {{{u!r}, {v!r}}}"
                )
            if mark_u:
                yield u, pu, v, pv

    # -- modification (copy-based) ----------------------------------------------

    def with_state(self, node: Node, new_state: NodeState) -> "Configuration":
        """A copy of the configuration with one node's state replaced."""
        states = dict(self.states)
        states[node] = new_state
        return Configuration(self.graph, states, anonymous=self.anonymous)

    def with_graph(self, new_graph: PortGraph) -> "Configuration":
        """Same states on a different (e.g. crossed) graph.

        Crossing preserves ports, so per-port state fields (weights, tree
        marks) remain well-formed — they now describe the crossed edges, which
        is exactly the semantics of crossing a *configuration* in Section 4.
        """
        return Configuration(new_graph, self.states, anonymous=self.anonymous)

    def copy(self) -> "Configuration":
        return Configuration(self.graph.copy(), dict(self.states), anonymous=self.anonymous)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Configuration(n={self.node_count}, m={self.edge_count}, "
            f"k={self.state_bits})"
        )


def simple_states(
    graph: PortGraph,
    ids: Optional[Mapping[Node, int]] = None,
    **common_fields: Any,
) -> Dict[Node, NodeState]:
    """States with sequential (or given) identities and shared extra fields.

    >>> from repro.graphs.port_graph import path_graph
    >>> graph = path_graph(3)
    >>> states = simple_states(graph)
    >>> sorted(state.node_id for state in states.values())
    [0, 1, 2]
    """
    states = {}
    for index, node in enumerate(graph.nodes):
        node_id = ids[node] if ids is not None else index
        states[node] = NodeState(node_id, dict(common_fields))
    return states
