"""The universal schemes: Lemma 3.3 (PLS) and Corollary 3.4 (RPLS).

**Universal PLS** (Appendix B).  Every node receives the same label: a
canonical binary representation ``R`` of the *entire configuration*
(adjacency with ports, plus every node's state), prefixed by the node's own
identity.  The verifier at ``v``:

1. checks its label's identity field equals its true ``Id(v)`` (so labels
   authenticate identities — a node cannot impersonate another);
2. checks every neighbor carries bit-identical ``R`` (by connectivity, all
   nodes then agree on one global ``R``);
3. decodes ``R`` and checks its own row: state matches, degree matches, and
   for each port ``i`` the row names exactly the identity its port-``i``
   neighbor claims, with reciprocal port numbers inside ``R``;
4. evaluates the predicate on the decoded configuration (local computation is
   unbounded in this model).

If every node accepts, the identity map ``v -> row(Id(v))`` is an isomorphism
between the actual configuration and ``R`` (identities are unique), hence the
predicate truly holds.  Label size is ``O(m log n + n log n + n k)`` bits,
the adjacency-list variant of the paper's ``O(min{n^2, m log n} + nk)``.

**Universal RPLS** (Corollary 3.4) is literally the Theorem 3.1 compiler
applied to the universal PLS: certificates shrink to
``O(log(n + m + nk)) = O(log n + log k)`` bits.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.core.bitstrings import BitReader, BitString, BitWriter
from repro.core.compiler import FingerprintCompiledRPLS
from repro.core.configuration import Configuration, NodeState
from repro.core.encoding import decode_value, encode_value
from repro.core.predicate import Predicate
from repro.core.scheme import ProofLabelingScheme, VerifierView
from repro.graphs.port_graph import Node, PortGraph

# A row of the representation: (id, state fields, ((neighbor_id, reverse_port), ...)).
Row = Tuple[int, Dict[str, Any], Tuple[Tuple[int, int], ...]]


def encode_configuration(configuration: Configuration) -> BitString:
    """Canonical binary representation ``R`` of a whole configuration.

    Rows are sorted by identity, so isomorphic-with-equal-ids configurations
    encode identically — the property the label-equality check relies on.
    """
    rows: List[Row] = []
    graph = configuration.graph
    for node in sorted(graph.nodes, key=configuration.node_id):
        node_id, fields = configuration.state(node).canonical_value()
        adjacency = tuple(
            (configuration.node_id(neighbor), reverse_port)
            for _port, neighbor, reverse_port in graph.ports(node)
        )
        rows.append((node_id, fields, adjacency))
    return encode_value(tuple(rows))


def decode_configuration(representation: BitString) -> Configuration:
    """Rebuild a configuration from ``R``; raises :class:`ValueError` if forged.

    Node keys of the result are the identities themselves.
    """
    rows = decode_value(representation)
    if not isinstance(rows, tuple):
        raise ValueError("representation must decode to a tuple of rows")
    spec: Dict[Node, List[Tuple[Node, int]]] = {}
    states: Dict[Node, NodeState] = {}
    id_of: Dict[int, int] = {}
    for row in rows:
        if not (isinstance(row, tuple) and len(row) == 3):
            raise ValueError("malformed row")
        node_id, fields, adjacency = row
        if not isinstance(node_id, int) or node_id in id_of:
            raise ValueError("row identities must be unique integers")
        id_of[node_id] = node_id
        if not isinstance(fields, dict):
            raise ValueError("state fields must decode to a dict")
        states[node_id] = NodeState(node_id, fields)
        spec[node_id] = []
        for entry in adjacency:
            if not (isinstance(entry, tuple) and len(entry) == 2):
                raise ValueError("malformed adjacency entry")
            neighbor_id, reverse_port = entry
            spec[node_id].append((neighbor_id, reverse_port))
    for node_id, half_edges in spec.items():
        for neighbor_id, _reverse_port in half_edges:
            if neighbor_id not in spec:
                raise ValueError(f"adjacency references unknown id {neighbor_id}")
    graph = PortGraph.from_port_spec(spec)
    return Configuration(graph, states)


class UniversalPLS(ProofLabelingScheme):
    """Lemma 3.3: a PLS for *any* predicate, with configuration-sized labels."""

    def __init__(self, predicate: Predicate):
        super().__init__(predicate)
        self.name = f"universal-pls({predicate.name})"

    @staticmethod
    def _pack(node_id: int, representation: BitString) -> BitString:
        writer = BitWriter()
        writer.write_varuint(node_id)
        writer.write_bitstring(representation)
        return writer.finish()

    @staticmethod
    def _unpack(label: BitString) -> Tuple[int, BitString]:
        reader = BitReader(label)
        node_id = reader.read_varuint()
        representation = reader.read_bitstring(reader.remaining)
        return node_id, representation

    def prover(self, configuration: Configuration) -> Dict[Node, BitString]:
        representation = encode_configuration(configuration)
        return {
            node: self._pack(configuration.node_id(node), representation)
            for node in configuration.graph.nodes
        }

    def verify_at(self, view: VerifierView) -> bool:
        claimed_id, representation = self._unpack(view.own_label)
        # (1) identity authentication.
        if claimed_id != view.state.node_id:
            return False
        # (2) global agreement on R.
        neighbor_ids = []
        for message in view.messages:
            neighbor_id, neighbor_representation = self._unpack(message)
            if neighbor_representation != representation:
                return False
            neighbor_ids.append(neighbor_id)
        # (3) local consistency of R with the actual neighborhood.
        decoded = decode_configuration(representation)  # ValueError -> reject
        if claimed_id not in decoded.states:
            return False
        row_state = decoded.state(claimed_id)
        own_id, own_fields = view.state.canonical_value()
        if encode_value(row_state.canonical_value()) != encode_value(
            (own_id, own_fields)
        ):
            return False
        if decoded.graph.degree(claimed_id) != view.degree:
            return False
        for port, neighbor_claimed_id in enumerate(neighbor_ids):
            listed_neighbor = decoded.graph.neighbor(claimed_id, port)
            listed_reverse = decoded.graph.reverse_port(claimed_id, port)
            if listed_neighbor != neighbor_claimed_id:
                return False
            if decoded.graph.half_edge(listed_neighbor, listed_reverse) != (
                claimed_id,
                port,
            ):
                return False
        # (4) the predicate itself, on the agreed representation.
        return self.predicate.holds(decoded)


class UniversalRPLS(FingerprintCompiledRPLS):
    """Corollary 3.4: ``O(log n + log k)``-bit certificates for any predicate."""

    def __init__(self, predicate: Predicate, repetitions: int = 1):
        super().__init__(UniversalPLS(predicate), repetitions=repetitions)
        self.name = f"universal-rpls({predicate.name})"


def universal_label_bits_formula(
    node_count: int, edge_count: int, state_bits: int
) -> int:
    """The Lemma 3.3 bound ``O(min{n^2, m log n} + n*k)`` as a number.

    Used by benchmarks to compare measured label sizes against the paper's
    formula (up to the constant the encoding contributes).
    """
    import math

    if node_count <= 1:
        return state_bits
    log_n = max(1, math.ceil(math.log2(node_count)))
    return min(node_count**2, 2 * edge_count * log_n) + node_count * state_bits
