"""Public-coin compilation: O(1)-bit certificates with shared randomness.

Section 6 of the paper asks: *"what about the model that allows shared
randomness between nodes?"* — in particular, whether the
``Omega(log log r / s)`` crossing bound of Theorem 4.7 (proved for
edge-independent schemes) survives.  This module answers constructively:
**it does not**.

With public coins the 2-party equality sub-protocol inside the Theorem 3.1
compiler no longer needs to ship the evaluation point ``x`` of Lemma A.1 —
or any field element at all.  The textbook public-coin EQ protocol is the
random inner product over GF(2): the coins name a uniformly random subset of
bit positions, each party sends the parity of its string on that subset, and
two different strings disagree with probability exactly 1/2 per coin draw.
``t`` parities give one-sided error ``2^-t`` at a certificate cost of
**t bits — independent of κ and of n**.

:class:`SharedCoinsCompiledRPLS` plugs this into the Theorem 3.1 replication
skeleton: labels still replicate the neighborhood, but certificates shrink
from ``2*ceil(log2 p) = O(log kappa)`` to the constant ``t``.  For MST this
sits far below the ``Omega(log log n)`` certificates any *edge-independent*
scheme must pay (Theorem 5.1) — exhibited in benchmark E17.

The scheme is deliberately **not** edge-independent (all certificates are
functions of the same coins), so it contradicts no theorem in the paper; it
marks out exactly where Definition 4.5 does work in the lower bounds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.bitstrings import BitString
from repro.core.compiler import FingerprintCompiledRPLS
from repro.core.configuration import Configuration
from repro.core.scheme import LabelView, ProofLabelingScheme, VerifierView
from repro.graphs.port_graph import Node


@dataclass(frozen=True)
class _SharedCoinsNodeContext:
    """Per-node trial-invariant state for the engine fast path."""

    width: int
    own_value: int
    stored_values: Tuple[int, ...]
    base_accepts: bool


@dataclass(frozen=True)
class ParityVectorSpec:
    """One node's description for the packed-``uint64`` parity chunk kernel.

    The GF(2) counterpart of
    :class:`~repro.core.fingerprint.FingerprintVectorSpec`: shared-coins
    certificates are inner products ``parity(value & mask)`` over the
    round's public masks, so a node's entire per-trial behaviour is its
    replica *values* (``own_value`` sent, ``stored_values[q]`` checked
    against port ``q``'s message) plus the trial-invariant base verdict.
    ``width`` is the replica bit-width the masks are drawn at and
    ``repetitions`` the number of masks (= certificate bits) per trial —
    the two quantities that fix the shared coin consumption.  See
    :mod:`repro.engine.kernels` for how specs compile into packed XOR-diff
    words.
    """

    width: int
    repetitions: int
    own_value: int
    stored_values: Tuple[int, ...]
    accepts_when_checks_pass: bool


def _parity(value: int) -> int:
    return bin(value).count("1") & 1


class SharedCoinsCompiledRPLS(FingerprintCompiledRPLS):
    """Theorem 3.1 replication + public-coin inner-product equality.

    Must be run under ``randomness="shared"`` (the engine then hands every
    sender the same coin stream and exposes it to verifiers via
    ``view.shared_rng``); running it under a private-coin mode fails loudly
    at verification, because the model mismatch would otherwise silently
    destroy soundness.
    """

    one_sided = True
    edge_independent = False

    def __init__(self, base: ProofLabelingScheme, repetitions: int = 2):
        super().__init__(base, repetitions=max(1, repetitions))
        self.name = f"shared-coins({base.name})"

    def _masks(self, rng: random.Random, width: int) -> list:
        """The round's ``t`` random GF(2) masks, identical at every node."""
        return [rng.getrandbits(width) if width else 0 for _ in range(self.repetitions)]

    def certificate(self, view: LabelView, port: int, rng: random.Random) -> BitString:
        _kappa, replicas = self._parse_label(view)
        own = replicas[0]
        masks = self._masks(rng, own.length)
        return BitString.from_bits(
            [_parity(own.value & mask) for mask in masks]
        )

    def verify_at(self, view: VerifierView) -> bool:
        if view.shared_rng is None:
            raise ValueError(
                "shared-coins scheme requires randomness='shared' "
                "(verifier received no public coin stream)"
            )
        kappa, replicas = self._parse_label(view)
        width = self._replica_width(kappa)
        masks = self._masks(view.shared_rng, width)
        for port in range(view.degree):
            stored_copy = replicas[port + 1]
            expected = BitString.from_bits(
                [_parity(stored_copy.value & mask) for mask in masks]
            )
            if view.messages[port] != expected:
                return False
        own_base_label = self._unreplica(replicas[0], kappa)
        neighbor_base_labels = tuple(
            self._unreplica(replicas[port + 1], kappa) for port in range(view.degree)
        )
        base_view = VerifierView(
            node=view.node,
            state=view.state,
            degree=view.degree,
            params=view.params,
            own_label=own_base_label,
            messages=neighbor_base_labels,
        )
        return self.base.verify_at(base_view)

    # -- batched-engine fast path ------------------------------------------------
    #
    # Overrides the fingerprint compiler's hooks: certificates here are
    # GF(2) parities, not polynomial fingerprints.  The parent hook already
    # parses the label and precomputes the base verdict, so only the replica
    # values are retained.

    def engine_node_context(self, view: LabelView) -> _SharedCoinsNodeContext:
        kappa, replicas, base_accepts = self._engine_parse(view)
        return _SharedCoinsNodeContext(
            width=self._replica_width(kappa),
            own_value=replicas[0].value,
            stored_values=tuple(replica.value for replica in replicas[1:]),
            base_accepts=base_accepts,
        )

    def engine_certificate(
        self, context: _SharedCoinsNodeContext, port: int, rng: random.Random
    ) -> Tuple[int, ...]:
        masks = self._masks(rng, context.width)
        own_value = context.own_value
        return tuple(_parity(own_value & mask) for mask in masks)

    def engine_vector_spec(self, context) -> Optional[ParityVectorSpec]:
        """Describe this context to the packed-parity trial-chunk kernel.

        Public-coin certificates are GF(2) inner products, so the
        vectorized *fingerprint* kernel does not apply — instead the
        :class:`ParityVectorSpec` feeds the packed-``uint64`` popcount
        kernel of :mod:`repro.engine.kernels`, which batches every
        ``parity((own ^ stored) & mask)`` check of a Monte-Carlo chunk into
        a few array ops with per-trial verdicts identical to
        :meth:`engine_verify`.  Returns ``None`` (scalar fallback) for
        contexts another subclass produced."""
        if not isinstance(context, _SharedCoinsNodeContext):
            return None
        return ParityVectorSpec(
            width=context.width,
            repetitions=self.repetitions,
            own_value=context.own_value,
            stored_values=context.stored_values,
            accepts_when_checks_pass=context.base_accepts,
        )

    def engine_verify(self, context: _SharedCoinsNodeContext, messages, shared_rng) -> bool:
        if shared_rng is None:
            # Model mismatch: the one-shot verifier raises (and therefore
            # rejects) when run without public coins.
            return False
        masks = self._masks(shared_rng, context.width)
        for stored_value, message in zip(context.stored_values, messages):
            expected = tuple(_parity(stored_value & mask) for mask in masks)
            if message != expected:
                return False
        return context.base_accepts

    def verification_complexity(
        self, configuration: Configuration, seed: int = 0
    ) -> int:
        """Always exactly ``repetitions`` bits — the whole point."""
        return self.repetitions

    def soundness_error(self, configuration: Configuration) -> float:
        """Per-edge probability a differing replica passes all ``t`` parities."""
        return 0.5**self.repetitions
