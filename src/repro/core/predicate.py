"""Boolean predicates over configurations.

A proof-labeling scheme certifies a predicate ``P`` over a family ``F`` of
configurations (Section 2.2).  Predicates here are plain callables wrapped
with a name — they are evaluated *centrally* (by tests, benchmarks, and the
universal scheme's verifier, which is allowed unbounded local computation per
Appendix B), never by the distributed verifier directly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from repro.core.configuration import Configuration


class Predicate(ABC):
    """A named boolean predicate over configurations."""

    name: str = "predicate"

    @abstractmethod
    def holds(self, configuration: Configuration) -> bool:
        """Evaluate the predicate on a configuration."""

    def __call__(self, configuration: Configuration) -> bool:
        return self.holds(configuration)

    def __and__(self, other: "Predicate") -> "Predicate":
        return AndPredicate(self, other)

    def __invert__(self) -> "Predicate":
        return NotPredicate(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Predicate {self.name}>"


class FunctionPredicate(Predicate):
    """Adapter turning a plain function into a :class:`Predicate`.

    >>> always = FunctionPredicate("always", lambda config: True)
    >>> always.name
    'always'
    """

    def __init__(self, name: str, function: Callable[[Configuration], bool]):
        self.name = name
        self._function = function

    def holds(self, configuration: Configuration) -> bool:
        return bool(self._function(configuration))


class AndPredicate(Predicate):
    """Conjunction — used by Theorem 3.5's ``Unif ∧ Sym`` construction."""

    def __init__(self, left: Predicate, right: Predicate):
        self.left = left
        self.right = right
        self.name = f"({left.name} and {right.name})"

    def holds(self, configuration: Configuration) -> bool:
        return self.left.holds(configuration) and self.right.holds(configuration)


class NotPredicate(Predicate):
    """Negation (used by tests to build illegal-instance families)."""

    def __init__(self, inner: Predicate):
        self.inner = inner
        self.name = f"not {inner.name}"

    def holds(self, configuration: Configuration) -> bool:
        return not self.inner.holds(configuration)
