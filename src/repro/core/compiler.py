"""The Theorem 3.1 compiler: any PLS becomes an RPLS with ``O(log kappa)`` certificates.

Construction (Appendix A): given a deterministic scheme ``(p, v)`` with
verification complexity ``kappa``:

1. **Replication** — the new prover gives every node the vector
   ``l'(v) = (l(v), l(w_1), ..., l(w_d))`` of its own label and all of its
   neighbors' labels, ordered by port.
2. **Fingerprint exchange** — instead of shipping labels, each node ships a
   fingerprint ``(x, P_v(x))`` of its *own* label replica (Lemma A.1).  Here
   one independent fingerprint is drawn per port, so the scheme is
   edge-independent (Definition 4.5).
3. **Verification** — node ``v`` checks each received fingerprint against
   the copy of that neighbor's label stored in ``l'(v)``; if all match, it
   runs the original deterministic verifier on its stored copies.

Correctness: on a legal configuration with honest labels every stored copy
equals the neighbor's true label, fingerprints match with probability 1, and
the base verifier accepts — the compiled scheme is **one-sided**.  On an
illegal configuration, either all stored copies are consistent (then the base
verifier rejects somewhere, deterministically), or two adjacent nodes
disagree about some label, and the fingerprint check across that edge fails
with probability > 2/3 per Lemma A.1.

Sizes: base labels are padded to ``kappa`` bits and prefixed with their true
length, so the fingerprinted record has ``lam = kappa + ceil(log2(kappa+1))``
bits and the certificate ``2 * ceil(log2 p) = O(log kappa)`` bits for the
prime ``3*lam < p < 6*lam``.  The compiled *labels* grow to ``O(deg * kappa)``
bits, which Definition 2.1 does not charge for — only certificates travel.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.bitstrings import BitReader, BitString, BitWriter, bits_for_max
from repro.core.configuration import Configuration
from repro.core.fingerprint import Fingerprinter, FingerprintVectorSpec
from repro.core.scheme import (
    LabelView,
    ProofLabelingScheme,
    RandomizedScheme,
    VerifierView,
)
from repro.graphs.port_graph import Node


@dataclass(frozen=True)
class _CompiledNodeContext:
    """Per-node trial-invariant state for the engine fast path.

    Coefficients are stored highest-degree-first — the shape the Horner
    loops of :meth:`Fingerprinter.sample_raw` / :meth:`~Fingerprinter.check_raw`
    consume directly.
    """

    fingerprinter: Fingerprinter
    own_coefficients: Tuple[int, ...]
    stored_coefficients: Tuple[Tuple[int, ...], ...]
    base_accepts: bool


class FingerprintCompiledRPLS(RandomizedScheme):
    """The RPLS produced by applying Theorem 3.1 to a deterministic scheme.

    ``repetitions`` controls the epsilon-tuning of Section 1: ``t``
    independent fingerprints per certificate push the per-edge soundness
    error below ``(1/3)^t`` at a ``t``-fold certificate-size cost.
    """

    one_sided = True
    edge_independent = True

    def __init__(self, base: ProofLabelingScheme, repetitions: int = 1):
        super().__init__(base.predicate)
        if repetitions < 1:
            raise ValueError("need at least one repetition")
        self.base = base
        self.repetitions = repetitions
        self.name = f"compiled({base.name})"

    # -- label layout -----------------------------------------------------------
    #
    # compiled label := varuint(kappa) || replica_0 || replica_1 || ... || replica_d
    # replica       := uint(true_length, len_width) || label_bits || zero padding
    #
    # All replicas have the fixed width len_width + kappa, so a node that
    # knows its own degree can parse its label without further framing, and
    # equality of replicas (as bit strings) is equivalent to equality of the
    # underlying base labels.

    @staticmethod
    def _replica(label: BitString, kappa: int) -> BitString:
        len_width = bits_for_max(kappa)
        writer = BitWriter()
        writer.write_uint(label.length, len_width)
        writer.write_bitstring(label)
        writer.write_uint(0, kappa - label.length)
        return writer.finish()

    @staticmethod
    def _replica_width(kappa: int) -> int:
        return bits_for_max(kappa) + kappa

    @staticmethod
    def _unreplica(replica: BitString, kappa: int) -> BitString:
        len_width = bits_for_max(kappa)
        reader = BitReader(replica)
        true_length = reader.read_uint(len_width)
        if true_length > kappa:
            raise ValueError("replica claims a label longer than kappa")
        return replica.slice(len_width, true_length)

    def _parse_label(self, view: LabelView) -> Tuple[int, List[BitString]]:
        """Split a compiled label into ``kappa`` and ``degree + 1`` replicas."""
        reader = BitReader(view.own_label)
        kappa = reader.read_varuint()
        width = self._replica_width(kappa)
        replicas = [reader.read_bitstring(width) for _ in range(view.degree + 1)]
        reader.expect_exhausted()
        return kappa, replicas

    # -- scheme interface ----------------------------------------------------------

    def prover(self, configuration: Configuration) -> Dict[Node, BitString]:
        base_labels = self.base.prover(configuration)
        kappa = max((label.length for label in base_labels.values()), default=0)
        graph = configuration.graph
        compiled: Dict[Node, BitString] = {}
        for node in graph.nodes:
            writer = BitWriter()
            writer.write_varuint(kappa)
            writer.write_bitstring(self._replica(base_labels[node], kappa))
            for port in range(graph.degree(node)):
                neighbor = graph.neighbor(node, port)
                writer.write_bitstring(self._replica(base_labels[neighbor], kappa))
            compiled[node] = writer.finish()
        return compiled

    def _fingerprinter(self, kappa: int) -> Fingerprinter:
        return Fingerprinter.shared(
            self._replica_width(kappa), repetitions=self.repetitions
        )

    def certificate(self, view: LabelView, port: int, rng: random.Random) -> BitString:
        kappa, replicas = self._parse_label(view)
        return self._fingerprinter(kappa).make(replicas[0], rng)

    def verify_at(self, view: VerifierView) -> bool:
        kappa, replicas = self._parse_label(view)
        fingerprinter = self._fingerprinter(kappa)
        for port in range(view.degree):
            stored_copy = replicas[port + 1]
            if not fingerprinter.check(stored_copy, view.messages[port]):
                return False
        own_base_label = self._unreplica(replicas[0], kappa)
        neighbor_base_labels = tuple(
            self._unreplica(replicas[port + 1], kappa) for port in range(view.degree)
        )
        base_view = VerifierView(
            node=view.node,
            state=view.state,
            degree=view.degree,
            params=view.params,
            own_label=own_base_label,
            messages=neighbor_base_labels,
        )
        return self.base.verify_at(base_view)

    # -- batched-engine fast path ------------------------------------------------
    #
    # The compiled verifier re-parses its label on every certificate call and
    # every verification — all trial-invariant work.  The engine hooks parse
    # once per plan: the context caches the replicas, the fingerprinter, and
    # the *base verifier's verdict on the stored copies*, which is a pure
    # function of the label (only the fingerprint exchange is randomized).
    # See repro.engine.plan for the protocol contract.

    def _engine_parse(self, view: LabelView) -> Tuple[int, List[BitString], bool]:
        """Parse once and settle the trial-invariant base verdict.

        Shared by this class's hooks and the shared-coins subclass's.
        Raises :class:`ValueError` (from :meth:`_parse_label`) for labels
        the node cannot parse at all.
        """
        kappa, replicas = self._parse_label(view)
        try:
            own_base_label = self._unreplica(replicas[0], kappa)
            neighbor_base_labels = tuple(
                self._unreplica(replicas[port + 1], kappa)
                for port in range(view.degree)
            )
            base_view = VerifierView(
                node=view.node,
                state=view.state,
                degree=view.degree,
                params=view.params,
                own_label=own_base_label,
                messages=neighbor_base_labels,
            )
            base_accepts = bool(self.base.verify_at(base_view))
        except ValueError:
            # The one-shot verifier hits this after the fingerprint checks
            # and rejects; with or without matching fingerprints the node's
            # output is False, so a constant False verdict is equivalent.
            base_accepts = False
        return kappa, replicas, base_accepts

    def engine_node_context(self, view: LabelView) -> "_CompiledNodeContext":
        kappa, replicas, base_accepts = self._engine_parse(view)
        fingerprinter = self._fingerprinter(kappa)
        return _CompiledNodeContext(
            fingerprinter=fingerprinter,
            own_coefficients=fingerprinter.reversed_coefficients(replicas[0]),
            stored_coefficients=tuple(
                fingerprinter.reversed_coefficients(replica)
                for replica in replicas[1:]
            ),
            base_accepts=base_accepts,
        )

    def engine_certificate(
        self, context: "_CompiledNodeContext", port: int, rng: random.Random
    ):
        return context.fingerprinter.sample_raw(context.own_coefficients, rng)

    def engine_verify(self, context: "_CompiledNodeContext", messages, shared_rng) -> bool:
        check_raw = context.fingerprinter.check_raw
        for stored_copy, message in zip(context.stored_coefficients, messages):
            if not check_raw(stored_copy, message):
                return False
        return context.base_accepts

    def engine_vector_spec(
        self, context: "_CompiledNodeContext"
    ) -> Optional[FingerprintVectorSpec]:
        """Describe this context to the vectorized trial-chunk kernel.

        Compiled certificates are pure polynomial fingerprints, so a node's
        entire per-trial behaviour is captured by its coefficient arrays plus
        the trial-invariant base verdict; :mod:`repro.engine.kernels` then
        replays whole Monte-Carlo chunks through batched numpy Horner passes
        with decisions identical to :meth:`engine_certificate` /
        :meth:`engine_verify`.  Returns ``None`` (scalar fallback) when numpy
        is unavailable or a subclass swapped the certificate format (the
        shared-coins compiler).
        """
        if not isinstance(context, _CompiledNodeContext):
            return None
        fingerprinter = context.fingerprinter
        if not fingerprinter.vectorizable():
            return None
        import numpy

        return FingerprintVectorSpec(
            prime=fingerprinter.params.prime,
            sub_points=fingerprinter.repetitions,
            certificate_bits=fingerprinter.certificate_bits,
            draws=fingerprinter.repetitions,
            own=numpy.asarray(context.own_coefficients, dtype=numpy.int64),
            stored=tuple(
                numpy.asarray(coefficients, dtype=numpy.int64)
                for coefficients in context.stored_coefficients
            ),
            accepts_when_checks_pass=context.base_accepts,
        )

    # -- reporting -------------------------------------------------------------------

    def label_complexity(self, configuration: Configuration) -> int:
        """Size of the compiled labels (not charged by Definition 2.1)."""
        labels = self.prover(configuration)
        return max((label.length for label in labels.values()), default=0)

    def soundness_error(self, configuration: Configuration) -> float:
        """Per-edge probability that an inconsistent replica slips through."""
        base_kappa = self.base.verification_complexity(configuration)
        return self._fingerprinter(base_kappa).soundness_error()
