"""Error boosting — the paper's footnote 1.

"We can boost the probability of correctness to ``1 - delta`` by repeating
the verification procedure ``O(log(1/delta))`` times independently and
outputting the majority of outcomes."

Two flavours live here:

- :class:`BoostedRPLS` — *certificate-level* repetition for one-sided
  schemes: each certificate carries ``t`` independent sub-certificates and a
  node accepts only if every repetition accepts.  Legal configurations are
  still accepted with probability 1; an illegal configuration survives all
  ``t`` independent rounds with probability at most ``(1 - p_reject)^t <=
  2^-t``.  Every concrete scheme in this library is one-sided, so this is the
  flavour the benchmarks sweep.
- :func:`majority_decision` — *run-level* majority for two-sided schemes:
  the global verification outcome (a single accept/reject bit) is resampled
  ``t`` times and the majority wins.  This matches the footnote literally;
  it is a property of how the surrounding system consumes the verifier's
  output rather than of the message protocol, which is why it is a driver
  function and not a scheme wrapper.
"""

from __future__ import annotations

import math
import random
from dataclasses import replace
from typing import Dict, Optional

from repro.core.bitstrings import BitReader, BitString, BitWriter
from repro.core.configuration import Configuration
from repro.core.fingerprint import FingerprintVectorSpec
from repro.core.scheme import (
    LabelView,
    RandomizedScheme,
    VerifierView,
    engine_hooks_available,
)
from repro.core.seeding import derive_trial_seed
from repro.graphs.port_graph import Node


class BoostedRPLS(RandomizedScheme):
    """Certificate-level repetition of a one-sided RPLS.

    Certificates are framed with per-repetition varuint lengths so the
    receiver can split them without out-of-band agreement; the framing adds
    ``O(t log kappa)`` bits, preserving the asymptotics.
    """

    one_sided = True
    edge_independent = True

    def __init__(self, base: RandomizedScheme, repetitions: int):
        if repetitions < 1:
            raise ValueError("need at least one repetition")
        if not base.one_sided:
            raise ValueError(
                "certificate-level boosting requires a one-sided base scheme; "
                "use majority_decision for two-sided schemes"
            )
        super().__init__(base.predicate)
        self.base = base
        self.repetitions = repetitions
        self.name = f"boosted({base.name}, t={repetitions})"

    def prover(self, configuration: Configuration) -> Dict[Node, BitString]:
        return self.base.prover(configuration)

    def certificate(self, view: LabelView, port: int, rng: random.Random) -> BitString:
        writer = BitWriter()
        for _ in range(self.repetitions):
            sub_certificate = self.base.certificate(view, port, rng)
            writer.write_varuint(sub_certificate.length)
            writer.write_bitstring(sub_certificate)
        return writer.finish()

    def _split(self, certificate: BitString) -> list:
        reader = BitReader(certificate)
        parts = []
        for _ in range(self.repetitions):
            width = reader.read_varuint()
            parts.append(reader.read_bitstring(width))
        reader.expect_exhausted()
        return parts

    def verify_at(self, view: VerifierView) -> bool:
        split_messages = [self._split(message) for message in view.messages]
        for repetition in range(self.repetitions):
            round_view = VerifierView(
                node=view.node,
                state=view.state,
                degree=view.degree,
                params=view.params,
                own_label=view.own_label,
                messages=tuple(parts[repetition] for parts in split_messages),
            )
            if not self.base.verify_at(round_view):
                return False
        return True

    def error_upper_bound(self) -> float:
        """``Pr[accept an illegal configuration] <= (1/2)^t``."""
        return 0.5**self.repetitions

    # -- batched-engine fast path ------------------------------------------------
    #
    # Boosting is pure repetition, so the wrapper's fast path exists exactly
    # when the base scheme has one: the context is the base context, and a
    # certificate is the tuple of ``t`` base certificates drawn from one
    # stream (the same rng consumption order as the packed path).

    def engine_ready(self) -> bool:
        return engine_hooks_available(self.base)

    def engine_node_context(self, view: LabelView):
        return self.base.engine_node_context(view)

    def engine_certificate(self, context, port: int, rng: random.Random):
        base_certificate = self.base.engine_certificate
        return tuple(
            base_certificate(context, port, rng) for _ in range(self.repetitions)
        )

    def engine_verify(self, context, messages, shared_rng) -> bool:
        base_verify = self.base.engine_verify
        for repetition in range(self.repetitions):
            # The packed path rebuilds each repetition's view without the
            # public-coin stream, so the base verifier sees None there too.
            round_messages = tuple(message[repetition] for message in messages)
            if not base_verify(context, round_messages, None):
                return False
        return True

    def engine_vector_spec(self, context):
        """Boosting is ``t``-fold repetition, so the vectorized description
        is the base scheme's with ``t`` times the query-point draws per
        half-edge: the boosted certificate call draws all ``t``
        sub-certificates from one stream in sequence, and the boosted
        verifier accepts exactly when every sub-certificate point checks.
        Only fingerprint specs compose this way — a parity spec's coin
        consumption is re-derived by the *verifier*, which boosting runs
        without public coins (a degenerate always-reject); those plans stay
        on the scalar path."""
        spec_hook = getattr(self.base, "engine_vector_spec", None)
        if spec_hook is None:
            return None
        spec = spec_hook(context)
        if not isinstance(spec, FingerprintVectorSpec):
            return None
        return replace(spec, draws=spec.draws * self.repetitions)


def repetitions_for_delta(delta: float, per_round_error: float = 0.5) -> int:
    """Smallest ``t`` with ``per_round_error^t <= delta`` — the footnote's
    ``O(log(1/delta))``.

    >>> repetitions_for_delta(1e-3)
    10
    """
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    if not 0 < per_round_error < 1:
        raise ValueError("per_round_error must be in (0, 1)")
    return max(1, math.ceil(math.log(delta) / math.log(per_round_error)))


def majority_decision(
    scheme: RandomizedScheme,
    configuration: Configuration,
    repetitions: int,
    seed: int = 0,
    labels: Optional[Dict[Node, BitString]] = None,
) -> bool:
    """Run-level majority vote over ``repetitions`` independent verifications.

    Implements footnote 1 for two-sided schemes: if a single run is correct
    with probability ``2/3``, a Chernoff bound puts the majority's error at
    ``exp(-Omega(t))``.
    """
    from repro.core.verifier import verify_randomized  # local import: avoid cycle

    if repetitions < 1:
        raise ValueError("need at least one repetition")
    if labels is None:
        labels = scheme.prover(configuration)
    accepts = 0
    for repetition in range(repetitions):
        run = verify_randomized(
            scheme,
            configuration,
            seed=derive_trial_seed(seed, repetition),
            labels=labels,
        )
        if run.accepted:
            accepts += 1
    return accepts * 2 > repetitions
