"""The PLS / RPLS abstractions (Section 2.2).

Locality is enforced by construction: verifiers never see the configuration.
They receive a :class:`VerifierView` carrying exactly what the model grants a
node — its own state, its own label, the per-port incoming messages (labels in
a PLS, certificates in an RPLS), and the family-level constants
(:class:`SchemeParams`) every scheme is allowed to know (``n``, field widths).
A scheme that tried to peek at a neighbor's state simply has no handle to do
so.

Deterministic scheme (:class:`ProofLabelingScheme`):

- ``prover(config) -> {node: BitString}`` — the oracle's label assignment,
  only ever called on configurations (legal ones in the completeness
  direction; adversarial labels come from :mod:`repro.simulation.adversary`);
- ``verify_at(view) -> bool`` — the one-round verifier at a node.

Randomized scheme (:class:`RandomizedScheme`):

- same prover; labels stay *private* to each node;
- ``certificate(view, port, rng) -> BitString`` — the randomized certificate
  node ``v`` generates for the neighbor on ``port`` (Definition 2.1 measures
  the maximum length of these);
- ``verify_at(view) -> bool`` — decides from own state + own label + the
  certificates received on each port.

Verification complexity (Definition 2.1) is computed by actually producing
the labels/certificates and measuring them.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.bitstrings import BitString
from repro.core.configuration import Configuration, NodeState
from repro.core.predicate import Predicate
from repro.graphs.port_graph import Node


@dataclass(frozen=True)
class SchemeParams:
    """Family-level constants a node may use to parse labels.

    The paper's schemes implicitly know the family they run on (labels for
    ``n``-node networks use ``O(log n)``-bit fields); these are those shared
    constants, derived once from the configuration and handed to every view.
    """

    node_count: int
    id_bits: int
    port_bits: int
    max_degree: int
    state_bits: int

    @staticmethod
    def from_configuration(configuration: Configuration) -> "SchemeParams":
        return SchemeParams(
            node_count=configuration.node_count,
            id_bits=configuration.id_bits,
            port_bits=configuration.port_bits,
            max_degree=configuration.graph.max_degree,
            state_bits=configuration.state_bits,
        )


@dataclass(frozen=True)
class LabelView:
    """A node's private inputs: state, degree, label, family constants."""

    node: Node
    state: NodeState
    degree: int
    params: SchemeParams
    own_label: BitString


@dataclass(frozen=True)
class VerifierView(LabelView):
    """A :class:`LabelView` plus the messages received, indexed by port.

    In a PLS run ``messages[i]`` is the full label of the port-``i`` neighbor;
    in an RPLS run it is the certificate that neighbor generated for the
    shared edge.

    ``shared_rng`` is populated only under the public-coin model
    (``randomness="shared"``): it is a fresh stream over the round's shared
    coins, identical at every node, so verifiers can re-derive the random
    choices the senders used.  It is ``None`` in the private-coin modes the
    paper's definitions use.
    """

    messages: Tuple[BitString, ...] = ()
    shared_rng: Optional[random.Random] = None


class ProofLabelingScheme(ABC):
    """A deterministic proof-labeling scheme ``(p, v)`` for ``(F, P)``."""

    name: str = "pls"

    def __init__(self, predicate: Predicate):
        self.predicate = predicate

    @abstractmethod
    def prover(self, configuration: Configuration) -> Dict[Node, BitString]:
        """The oracle: assign a label to every node of a legal configuration."""

    @abstractmethod
    def verify_at(self, view: VerifierView) -> bool:
        """The verifier at one node; ``view.messages`` are neighbor labels."""

    def verification_complexity(self, configuration: Configuration) -> int:
        """Maximum label length (bits) the prover assigns — Definition 2.1."""
        labels = self.prover(configuration)
        return max((label.length for label in labels.values()), default=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r} for {self.predicate.name!r}>"


class RandomizedScheme(ABC):
    """A randomized proof-labeling scheme (RPLS).

    ``one_sided`` declares the error model: one-sided schemes accept legal
    configurations with probability 1 and reject illegal ones with
    probability >= 1/2; two-sided schemes achieve >= 2/3 on both sides.
    ``edge_independent`` declares Definition 4.5 compliance — every scheme in
    this library draws fresh randomness per (node, port), so the flag is True
    throughout, but the engine honours it when deriving RNG streams.
    """

    name: str = "rpls"
    one_sided: bool = True
    edge_independent: bool = True

    def __init__(self, predicate: Predicate):
        self.predicate = predicate

    @abstractmethod
    def prover(self, configuration: Configuration) -> Dict[Node, BitString]:
        """The oracle: assign a (private) label to every node."""

    @abstractmethod
    def certificate(self, view: LabelView, port: int, rng: random.Random) -> BitString:
        """The randomized certificate for the neighbor on ``port``."""

    @abstractmethod
    def verify_at(self, view: VerifierView) -> bool:
        """The verifier; ``view.messages`` are the received certificates."""

    def verification_complexity(
        self, configuration: Configuration, seed: int = 0
    ) -> int:
        """Maximum certificate length over one full sampled round.

        Certificate lengths in this library are deterministic functions of
        the label layout (only the contents are random), so one sample is
        exact; the seed parameter exists for schemes that vary.
        """
        labels = self.prover(configuration)
        params = SchemeParams.from_configuration(configuration)
        longest = 0
        for node in configuration.graph.nodes:
            view = LabelView(
                node=node,
                state=configuration.state(node),
                degree=configuration.graph.degree(node),
                params=params,
                own_label=labels[node],
            )
            for port in range(configuration.graph.degree(node)):
                rng = derive_rng(seed, node, port)
                longest = max(longest, self.certificate(view, port, rng).length)
        return longest

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sided = "one-sided" if self.one_sided else "two-sided"
        return f"<{type(self).__name__} {self.name!r} ({sided}) for {self.predicate.name!r}>"


def engine_hooks_available(scheme: "RandomizedScheme") -> bool:
    """True when ``scheme`` offers the batched-engine fast-path hooks.

    The single definition of engine readiness: a scheme is hook-capable when
    it defines ``engine_node_context`` and its optional ``engine_ready()``
    gate (used by wrappers whose support depends on the wrapped scheme)
    agrees.  Both :class:`repro.engine.plan.VerificationPlan` and wrapper
    schemes delegating readiness to their base consult this helper.
    """
    if getattr(scheme, "engine_node_context", None) is None:
        return False
    ready = getattr(scheme, "engine_ready", None)
    return True if ready is None else bool(ready())


# The stream-key format below is the definition of every RNG stream in the
# system.  The batched engine (repro.engine.plan) rebuilds the same keys from
# a per-trial prefix plus these suffixes to honour its bit-identical compat
# guarantee — change the format only through these helpers.

SHARED_RNG_SUFFIX = "|shared"


def rng_stream_suffix(node: Node, port: Optional[int]) -> str:
    """The seed-independent tail of a (node, port) stream key.

    The full key is ``f"{seed}{rng_stream_suffix(node, port)}"``;
    ``port=None`` addresses the node-shared stream.
    """
    if port is None:
        return f"|{node!r}|node"
    return f"|{node!r}|{port}"


def derive_rng(seed: int, node: Node, port: Optional[int]) -> random.Random:
    """A deterministic child RNG for a (node, port) pair.

    Edge-independent randomness (Definition 4.5): each certificate draws from
    its own stream.  Passing ``port=None`` yields the node-shared stream used
    by the non-edge-independent mode the paper's open questions mention.
    """
    return random.Random(f"{seed}{rng_stream_suffix(node, port)}")


def derive_shared_rng(seed: int) -> random.Random:
    """The public-coin stream for a round: identical at every node.

    Each caller receives a *fresh* generator over the same sequence, so all
    nodes (senders and verifiers alike) observe exactly the same coins —
    the shared-randomness model of the paper's Section 6 open questions.
    """
    return random.Random(f"{seed}{SHARED_RNG_SUFFIX}")
