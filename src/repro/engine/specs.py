"""Declarative verdict specs: the whole scheme zoo on the engine fast path.

Every randomized scheme in this repository reduces to one of three verdict
kernels the engine already vectorizes (:mod:`repro.engine.kernels`,
:mod:`repro.substrates.gf`):

- **fingerprint** — polynomial-identity fingerprints over ``GF(p)``
  (Lemma A.1): the Theorem 3.1 compiler and everything built on it,
  executed by the batched Horner kernel;
- **parity** — packed-``uint64`` GF(2) inner products: the Section 6
  shared-coins compiler, executed by the popcount-parity kernel (public
  coins, so ``randomness="shared"``);
- **threshold** — ``t``-fold repetition of a one-sided fingerprint base
  (footnote 1 boosting): accept iff every repetition accepts.

A :class:`VerdictSpec` names a scheme as *(label parser, kernel family,
parameters)*: the label parser is the deterministic base scheme whose
labels the kernel checks, the family picks the wrapper, and the parameters
(repetitions, workload builders) finish the description.  Registering a
spec is all it takes to put a scheme on the fast path — the registry is
what the differential identity matrix (``tests/test_verdict_specs.py``),
the cross-mode consistency suite, the campaign workload factories
(:mod:`repro.parallel.factories`), and the benchmark smoke harness iterate,
so a scheme missing from the registry (or drifting from its legacy oracle)
fails tier-1 by construction.

The registry never *replaces* the legacy oracle: ``verify_randomized`` /
``estimate_acceptance`` stay the unoptimized reference, and every spec's
engine decisions are pinned to it per trial.

Typical use::

    from repro.engine.specs import get_spec, scheme_for, spec_plan

    spec = get_spec("biconnectivity")
    plan = spec_plan("biconnectivity", configuration, rng_mode="vector")
    estimate = estimate_acceptance_fast(plan, 10_000)

Unknown names raise :class:`UnknownSchemeError` — the explicit fallback.
There is deliberately no silent degradation: a caller asking for an
unregistered scheme must either register a spec or route through the
legacy oracle on purpose.

Scheme instances are memoized per spec (:func:`scheme_for`), which is what
makes :class:`~repro.engine.cache.PlanCache` keying work on *spec
identity*: the cache keys schemes by ``id()``, so two resolutions of the
same spec share one scheme object and hit, while distinct specs (even over
the same base parser) never alias.

Workload builders take only primitive arguments and thread witnesses
internally (planted Hamiltonian cycles, planted long cycles), so every
entry point here is picklable and deterministic — the contract
:mod:`repro.parallel.spec` requires of anything a worker process rebuilds.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.core.boosting import BoostedRPLS
from repro.core.compiler import FingerprintCompiledRPLS
from repro.core.scheme import RandomizedScheme, engine_hooks_available
from repro.core.shared import SharedCoinsCompiledRPLS
from repro.engine.plan import VerificationPlan, compile_fast_plan

FAMILIES = ("fingerprint", "parity", "threshold")

#: randomness mode each kernel family runs under (parity = public coins).
FAMILY_RANDOMNESS = {
    "fingerprint": "edge",
    "parity": "shared",
    "threshold": "edge",
}


class UnknownSchemeError(KeyError):
    """An unregistered scheme name — the explicit no-silent-fallback error."""


@dataclass(frozen=True)
class VerdictSpec:
    """One scheme as (label parser, kernel family, parameters).

    ``base`` is a zero-argument factory for the deterministic base scheme
    (the label parser); ``family`` selects the kernel wrapper around it.
    ``scheme`` overrides both for schemes that ship their own engine hooks
    pre-wired (``DirectUnifRPLS``, ``UniversalRPLS`` subclasses) — the
    family then documents which kernel the scheme's hooks feed.

    ``workload`` builds the spec's default *clean* configuration (predicate
    holds; the prover's labels are honest) from a seed; ``fault`` builds a
    *violating* configuration over the same node set, so honest labels can
    be replayed against it (the classic stale-state workload).  Both must
    be module-level and deterministic.
    """

    name: str
    family: str
    workload: Callable[[int], object]
    base: Optional[Callable[[], object]] = None
    scheme: Optional[Callable[[], RandomizedScheme]] = None
    repetitions: int = 1
    fault: Optional[Callable[[int], object]] = None
    note: str = ""

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(
                f"unknown kernel family {self.family!r} (choose from {FAMILIES})"
            )
        if (self.base is None) == (self.scheme is None):
            raise ValueError(
                f"spec {self.name!r} needs exactly one of base= or scheme="
            )
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")

    @property
    def randomness(self) -> str:
        """The randomness mode this spec's scheme verifies under."""
        return FAMILY_RANDOMNESS[self.family]


def build_scheme(spec: VerdictSpec) -> RandomizedScheme:
    """Construct a fresh engine-ready scheme from a spec.

    Dispatch on the kernel family: fingerprint wraps the base parser in the
    Theorem 3.1 compiler, parity in the shared-coins compiler, threshold in
    certificate boosting over the compiled base.  The result always carries
    engine hooks — asserted here, so a wrapper losing its hooks fails at
    build time, not as a silent generic-path fallback.
    """
    if spec.scheme is not None:
        scheme = spec.scheme()
    elif spec.family == "fingerprint":
        scheme = FingerprintCompiledRPLS(spec.base(), repetitions=spec.repetitions)
    elif spec.family == "parity":
        scheme = SharedCoinsCompiledRPLS(spec.base(), repetitions=spec.repetitions)
    else:  # threshold
        scheme = BoostedRPLS(FingerprintCompiledRPLS(spec.base()), spec.repetitions)
    if not engine_hooks_available(scheme):
        raise RuntimeError(
            f"spec {spec.name!r} built a scheme without engine hooks"
        )
    return scheme


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, VerdictSpec] = {}
_SCHEME_MEMO: Dict[str, RandomizedScheme] = {}
_LOCK = threading.Lock()


def register(spec: VerdictSpec) -> VerdictSpec:
    """Add a spec to the registry; duplicate names are an error."""
    with _LOCK:
        if spec.name in _REGISTRY:
            raise ValueError(f"verdict spec {spec.name!r} already registered")
        _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> VerdictSpec:
    """The registered spec, or :class:`UnknownSchemeError` — never a guess."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownSchemeError(
            f"no verdict spec registered for {name!r} "
            f"(choose from {sorted(_REGISTRY)}); register a VerdictSpec or "
            "use the legacy estimate_acceptance oracle explicitly"
        ) from None


def spec_names() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def iter_specs() -> Iterator[VerdictSpec]:
    """Specs in name order — the iteration order every generated matrix uses."""
    for name in spec_names():
        yield _REGISTRY[name]


def scheme_for(spec: VerdictSpec) -> RandomizedScheme:
    """The memoized scheme instance of a registered spec.

    One instance per spec name, process-wide: schemes are stateless after
    construction, and a stable identity is what lets
    :class:`~repro.engine.cache.PlanCache` (which keys schemes by ``id()``)
    key plans on spec identity.
    """
    with _LOCK:
        scheme = _SCHEME_MEMO.get(spec.name)
        if scheme is None:
            scheme = _SCHEME_MEMO[spec.name] = build_scheme(spec)
        return scheme


def clean_configuration(spec: VerdictSpec, seed: int = 0):
    """The spec's default legal workload (predicate holds)."""
    return spec.workload(seed)


def fault_configuration(spec: VerdictSpec, seed: int = 0):
    """The spec's violating workload over the same node set, if declared."""
    if spec.fault is None:
        return None
    return spec.fault(seed)


def spec_plan(
    name: str,
    configuration=None,
    labels=None,
    rng_mode: str = "compat",
    seed: int = 0,
    cache=None,
) -> VerificationPlan:
    """Compile a guaranteed-fast-path plan for a registered scheme.

    ``configuration=None`` uses the spec's default clean workload at
    ``seed``.  Pass a :class:`~repro.engine.cache.PlanCache` as ``cache``
    to resolve through it (keyed on the memoized scheme instance, i.e. on
    spec identity).  Unknown names raise :class:`UnknownSchemeError`.
    """
    spec = get_spec(name)
    scheme = scheme_for(spec)
    if configuration is None:
        configuration = clean_configuration(spec, seed)
    if cache is not None:
        return cache.get(
            scheme,
            configuration,
            labels=labels,
            randomness=spec.randomness,
            rng_mode=rng_mode,
        )
    return compile_fast_plan(
        scheme,
        configuration,
        labels=labels,
        randomness=spec.randomness,
        rng_mode=rng_mode,
    )


# ---------------------------------------------------------------------------
# workload builders (module-level: picklable, deterministic, primitive args)
# ---------------------------------------------------------------------------
#
# Scheme imports stay inside the builders: repro.schemes modules lazily
# import repro.engine for their *_engine_plan helpers, so module-level
# imports here would tie the packages into a cycle.


def _spanning_tree_clean(seed: int):
    from repro.graphs.generators import spanning_tree_configuration

    return spanning_tree_configuration(14, 4, seed=seed)


def _spanning_tree_fault(seed: int):
    from repro.graphs.generators import corrupt_spanning_tree

    return corrupt_spanning_tree(_spanning_tree_clean(seed), seed=seed + 1)


def _uniform_clean(seed: int):
    from repro.graphs.generators import uniform_configuration

    return uniform_configuration(10, 16, equal=True, seed=seed)


def _uniform_fault(seed: int):
    from repro.graphs.generators import uniform_configuration

    return uniform_configuration(10, 16, equal=False, seed=seed)


def _mst_clean(seed: int):
    from repro.graphs.generators import mst_configuration

    return mst_configuration(10, seed=seed)


def _mst_fault(seed: int):
    from repro.graphs.generators import corrupt_mst_swap

    return corrupt_mst_swap(_mst_clean(seed), seed=seed + 1)


def _flow_clean(seed: int):
    from repro.graphs.generators import flow_configuration

    return flow_configuration(2, path_length=3, decoy_edges=1, seed=seed)


def _flow_fault(seed: int):
    from repro.graphs.generators import corrupt_claimed_k

    return corrupt_claimed_k(_flow_clean(seed))


def _distance_clean(seed: int):
    from repro.graphs.workloads import distance_configuration

    return distance_configuration(10, 3, seed=seed, weighted=True)


def _distance_fault(seed: int):
    from repro.graphs.workloads import corrupt_distance

    return corrupt_distance(_distance_clean(seed), seed=seed + 1)


def _acyclicity_clean(seed: int):
    from repro.graphs.generators import tree_only_configuration

    return tree_only_configuration(12, seed=seed)


def _acyclicity_fault(seed: int):
    from repro.graphs.generators import spanning_tree_configuration

    # Same node set, three chords: every chord closes a cycle.
    return spanning_tree_configuration(12, 3, seed=seed)


def _biconnectivity_clean(seed: int):
    from repro.graphs.generators import random_biconnected_configuration

    return random_biconnected_configuration(12, seed=seed)


def _biconnectivity_fault(seed: int):
    from repro.graphs.generators import tree_only_configuration

    # A tree on the same nodes: every internal node is a cut vertex.
    return tree_only_configuration(12, seed=seed)


def _bipartiteness_clean(seed: int):
    from repro.graphs.workloads import random_bipartite_configuration

    return random_bipartite_configuration(6, 6, extra_edges=3, seed=seed)


def _bipartiteness_fault(seed: int):
    from repro.graphs.workloads import odd_cycle_configuration

    return odd_cycle_configuration(12, seed=seed)


def _coloring_clean(seed: int):
    from repro.graphs.generators import colored_configuration

    return colored_configuration(12, 3, proper=True, seed=seed)


def _coloring_fault(seed: int):
    from repro.graphs.generators import colored_configuration

    # Same graph (same seed draws), one planted color conflict.
    return colored_configuration(12, 3, proper=False, seed=seed)


def _cycle_length_clean(seed: int):
    from repro.graphs.generators import planted_cycle_configuration

    configuration, _witness = planted_cycle_configuration(12, 6, seed=seed)
    return configuration


def _cycle_length_fault(seed: int):
    from repro.graphs.generators import tree_only_configuration

    # A tree contains no cycle at all — cycle-at-least-c maximally false.
    return tree_only_configuration(12, seed=seed)


def _eulerian_clean(seed: int):
    from repro.graphs.workloads import eulerian_configuration

    return eulerian_configuration(10, seed=seed)


def _eulerian_fault(seed: int):
    from repro.graphs.workloads import non_eulerian_configuration

    return non_eulerian_configuration(10, seed=seed)


def _hamiltonicity_clean(seed: int):
    from repro.graphs.workloads import hamiltonian_configuration

    configuration, _order = hamiltonian_configuration(10, 4, seed=seed)
    return configuration


def _hamiltonicity_fault(seed: int):
    from repro.graphs.generators import tree_only_configuration

    return tree_only_configuration(10, seed=seed)


def _leader_clean(seed: int):
    from repro.graphs.workloads import leader_configuration

    return leader_configuration(10, 3, seed=seed)


def _leader_fault(seed: int):
    from repro.graphs.workloads import corrupt_leader_disagreement

    return corrupt_leader_disagreement(_leader_clean(seed), seed=seed + 1)


def _mis_clean(seed: int):
    from repro.graphs.workloads import mis_configuration

    return mis_configuration(10, 3, seed=seed)


def _mis_fault(seed: int):
    from repro.graphs.workloads import corrupt_mis_independence

    return corrupt_mis_independence(_mis_clean(seed), seed=seed + 1)


def _symmetry_pair(seed: int, equal: bool):
    import random

    from repro.core.bitstrings import BitString
    from repro.graphs.generators import sym_pair_configuration

    lam = 3
    rng = random.Random(seed)
    x = BitString(rng.getrandbits(lam), lam)
    y = x if equal else BitString(x.value ^ (1 << rng.randrange(lam)), lam)
    configuration, _cut, _alice, _bob = sym_pair_configuration(x, y)
    return configuration


def _symmetry_clean(seed: int):
    return _symmetry_pair(seed, equal=True)


def _symmetry_fault(seed: int):
    # G(x, y) with x != y on the same gadget nodes: Sym fails (Claim C.2).
    return _symmetry_pair(seed, equal=False)


def _vertex_connectivity_clean(seed: int):
    from repro.graphs.generators import vertex_connectivity_configuration

    return vertex_connectivity_configuration(2, path_length=3, decoy_edges=1, seed=seed)


def _vertex_connectivity_fault(seed: int):
    from repro.graphs.generators import corrupt_claimed_k

    return corrupt_claimed_k(_vertex_connectivity_clean(seed))


# base parsers / direct schemes (module-level zero-arg factories)


def _spanning_tree_pls():
    from repro.schemes.spanning_tree import SpanningTreePLS

    return SpanningTreePLS()


def _unif_scheme():
    from repro.schemes.uniformity import DirectUnifRPLS

    return DirectUnifRPLS()


def _mst_scheme():
    from repro.schemes.mst import mst_rpls

    return mst_rpls()


def _flow_scheme():
    from repro.schemes.flow import k_flow_rpls

    return k_flow_rpls()


def _distance_scheme():
    from repro.schemes.distance import distance_rpls

    return distance_rpls(weighted=True)


def _acyclicity_pls():
    from repro.schemes.acyclicity import AcyclicityPLS

    return AcyclicityPLS()


def _biconnectivity_pls():
    from repro.schemes.biconnectivity import BiconnectivityPLS

    return BiconnectivityPLS()


def _bipartiteness_pls():
    from repro.schemes.bipartiteness import BipartitenessPLS

    return BipartitenessPLS()


def _coloring_pls():
    from repro.schemes.coloring import ColoringPLS

    return ColoringPLS()


def _cycle_length_pls():
    from repro.schemes.cycle_length import CycleAtLeastPLS

    # c=4 against the planted 6-cycle; the prover searches the (planted,
    # hence cheap to find) witness itself, keeping the factory zero-arg.
    return CycleAtLeastPLS(4)


def _eulerian_pls():
    from repro.schemes.eulerian import EulerianPLS

    return EulerianPLS()


def _hamiltonicity_pls():
    from repro.schemes.hamiltonicity import HamiltonicityPLS

    return HamiltonicityPLS()


def _leader_pls():
    from repro.schemes.leader import LeaderAgreementPLS

    return LeaderAgreementPLS()


def _mis_pls():
    from repro.schemes.mis import MISPLS

    return MISPLS()


def _symmetry_scheme():
    from repro.schemes.symmetry import sym_universal_rpls

    return sym_universal_rpls()


def _vertex_connectivity_pls():
    from repro.schemes.vertex_connectivity import STVertexConnectivityPLS

    return STVertexConnectivityPLS()


# ---------------------------------------------------------------------------
# the registered zoo
# ---------------------------------------------------------------------------
#
# The seven schemes that had hand-wired engine hooks before the spec layer
# (fingerprint, uniformity, boosting, shared-coins, mst, flow, distance)
# plus the twelve that previously ran the legacy per-trial oracle only.
# tests/test_verdict_specs.py asserts this set exactly — removing an entry
# (or registering one the matrix does not expect) fails tier-1.

register(VerdictSpec(
    name="fingerprint",
    family="fingerprint",
    base=_spanning_tree_pls,
    workload=_spanning_tree_clean,
    fault=_spanning_tree_fault,
    note="Theorem 3.1 compiler exemplar (spanning-tree base)",
))
register(VerdictSpec(
    name="uniformity",
    family="fingerprint",
    scheme=_unif_scheme,
    workload=_uniform_clean,
    fault=_uniform_fault,
    note="Lemma C.3 direct Unif scheme (scalar fingerprint check)",
))
register(VerdictSpec(
    name="boosting",
    family="threshold",
    base=_spanning_tree_pls,
    repetitions=2,
    workload=_spanning_tree_clean,
    fault=_spanning_tree_fault,
    note="footnote-1 boosting, soundness error 3**-t",
))
register(VerdictSpec(
    name="shared-coins",
    family="parity",
    base=_spanning_tree_pls,
    repetitions=2,
    workload=_spanning_tree_clean,
    fault=_spanning_tree_fault,
    note="Section 6 public-coins compiler (GF(2) parity kernel)",
))
register(VerdictSpec(
    name="mst",
    family="fingerprint",
    scheme=_mst_scheme,
    workload=_mst_clean,
    fault=_mst_fault,
    note="Theorem 5.1 Borůvka-trace scheme",
))
register(VerdictSpec(
    name="flow",
    family="fingerprint",
    scheme=_flow_scheme,
    workload=_flow_clean,
    fault=_flow_fault,
    note="Section 5.2 k-flow certification",
))
register(VerdictSpec(
    name="distance",
    family="fingerprint",
    scheme=_distance_scheme,
    workload=_distance_clean,
    fault=_distance_fault,
    note="weighted SSSP distance certification",
))
register(VerdictSpec(
    name="acyclicity",
    family="fingerprint",
    base=_acyclicity_pls,
    workload=_acyclicity_clean,
    fault=_acyclicity_fault,
    note="root-distance forest certification ([31])",
))
register(VerdictSpec(
    name="biconnectivity",
    family="fingerprint",
    base=_biconnectivity_pls,
    workload=_biconnectivity_clean,
    fault=_biconnectivity_fault,
    note="Theorem 5.2 DFS/lowpoint scheme",
))
register(VerdictSpec(
    name="bipartiteness",
    family="parity",
    base=_bipartiteness_pls,
    repetitions=2,
    workload=_bipartiteness_clean,
    fault=_bipartiteness_fault,
    note="planted 2-coloring witness under public coins",
))
register(VerdictSpec(
    name="coloring",
    family="fingerprint",
    base=_coloring_pls,
    workload=_coloring_clean,
    fault=_coloring_fault,
    note="intro warm-up: proper c-coloring",
))
register(VerdictSpec(
    name="cycle-length",
    family="fingerprint",
    base=_cycle_length_pls,
    workload=_cycle_length_clean,
    fault=_cycle_length_fault,
    note="Theorem 5.3 cycle-at-least-c witness scheme",
))
register(VerdictSpec(
    name="eulerian",
    family="fingerprint",
    base=_eulerian_pls,
    workload=_eulerian_clean,
    fault=_eulerian_fault,
    note="zero-bit labels: the kappa=0 edge case of the compiler",
))
register(VerdictSpec(
    name="hamiltonicity",
    family="threshold",
    base=_hamiltonicity_pls,
    repetitions=2,
    workload=_hamiltonicity_clean,
    fault=_hamiltonicity_fault,
    note="cycle-at-least-n, boosted t=2",
))
register(VerdictSpec(
    name="leader",
    family="fingerprint",
    base=_leader_pls,
    workload=_leader_clean,
    fault=_leader_fault,
    note="leader agreement via compiled id republication",
))
register(VerdictSpec(
    name="mis",
    family="parity",
    base=_mis_pls,
    repetitions=2,
    workload=_mis_clean,
    fault=_mis_fault,
    note="1-bit MIS labels under the parity kernel",
))
register(VerdictSpec(
    name="spanning-tree",
    family="fingerprint",
    base=_spanning_tree_pls,
    workload=_spanning_tree_clean,
    fault=_spanning_tree_fault,
    note="the intro Theta(log n) scheme as a first-class zoo entry",
))
register(VerdictSpec(
    name="symmetry",
    family="fingerprint",
    scheme=_symmetry_scheme,
    workload=_symmetry_clean,
    fault=_symmetry_fault,
    note="Corollary 3.4 universal scheme on the Figure 4 Sym gadget",
))
register(VerdictSpec(
    name="vertex-connectivity",
    family="threshold",
    base=_vertex_connectivity_pls,
    repetitions=2,
    workload=_vertex_connectivity_clean,
    fault=_vertex_connectivity_fault,
    note="s-t vertex connectivity, boosted t=2",
))
