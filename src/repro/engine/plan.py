"""Compiled verification plans: everything trial-invariant, computed once.

One randomized verification round (:func:`repro.core.verifier.verify_randomized`)
mixes two kinds of work:

- **trial-invariant** — running the prover, deriving :class:`SchemeParams`
  (which encodes every node state), building per-node label views, resolving
  the port-to-port wiring of :func:`repro.simulation.network.exchange_messages`,
  and parsing labels inside scheme verifiers;
- **per-trial** — deriving RNG streams, generating certificates, and
  evaluating the randomized checks.

Monte-Carlo drivers repeat the round hundreds of times with only the
randomness changing, so :class:`VerificationPlan` hoists the first kind of
work out of the loop.  ``plan.run_trial(trial_seed)`` then performs exactly
the per-trial work and returns the round's accept/reject decision —
bit-identical (same decision for the same ``trial_seed``) to
``verify_randomized(scheme, configuration, seed=trial_seed, ...)`` in the
default ``rng_mode="compat"``.

Scheme fast paths (the hook protocol)
-------------------------------------

A scheme may additionally expose three optional methods; when present the
plan parses every label **once at compile time** and ships unpacked
certificate objects between verifier contexts instead of bit strings:

``engine_node_context(view: LabelView) -> ctx``
    Called once per node at compile time.  Returns an opaque per-node
    context holding whatever the scheme's ``certificate`` / ``verify_at``
    would otherwise re-derive from the label on every call (parsed
    replicas, fingerprinters, precomputed sub-verdicts).  Must raise
    :class:`ValueError` for labels the node cannot parse — the plan then
    treats the node exactly as the one-shot engine does: its certificates
    are malformed and the node itself rejects.

``engine_certificate(ctx, port, rng) -> message``
    Per trial, per port.  Must consume ``rng`` in the same order as
    ``certificate`` so compat mode reproduces the legacy coin sequence,
    and must return an object that ``engine_verify`` decides on exactly as
    ``verify_at`` would decide on the packed equivalent.  May raise
    :class:`ValueError` for certificates the node cannot produce; the plan
    then delivers ``None``, which receivers reject — the hook analogue of
    the one-shot engine's raise-to-empty-bit-string rule.  ``rng`` is only
    valid for the duration of the call — the plan reuses one re-seeded
    generator across calls, so hooks must not retain it.

``engine_verify(ctx, messages, shared_rng) -> bool``
    Per trial, per node.  ``messages`` are the objects the port neighbors
    produced, indexed by port.  ``shared_rng`` is a fresh public-coin
    stream under ``randomness="shared"`` and ``None`` otherwise.

A scheme whose support is conditional (wrappers like
:class:`~repro.core.boosting.BoostedRPLS`, whose fast path exists only if
the wrapped scheme has one) additionally defines ``engine_ready() -> bool``.
Schemes without hooks run through a generic path that still skips the
prover, params, views, and wiring work — and is certificate-exact, not just
decision-exact, with respect to the legacy engine.

The contract every hook implementation must honour: **for each node, the
accept/reject output must equal the legacy output for the same coins.**
The test suite enforces this property against the reference oracle for all
hook-bearing schemes and all three randomness modes.  Certificate
generators must additionally draw *only* through ``rng.randrange`` /
``rng.getrandbits`` — the two calls whose word consumption is a pure
function of the call sequence, which is what lets ``rng_mode="vector"``
substitute the counter-based :class:`~repro.core.seeding.CounterRng` (and
its whole-chunk numpy equivalent) for ``random.Random``.

Fourth, optional, for vectorization: ``engine_vector_spec(ctx)`` returns a
:class:`~repro.core.fingerprint.FingerprintVectorSpec` (or ``None``) for
schemes whose certificates are pure polynomial fingerprints; when every
context yields one, whole trial chunks execute through the batched numpy
Horner kernels of :mod:`repro.engine.kernels` with per-trial decisions
identical to the scalar hook path (``plan.vector_ready`` /
``run_trials(..., vectorize=True)``).

Compile-time constant folding
-----------------------------

A hook context that fails to parse means its node rejects every trial, so
the plan's verdict is settled before any trial runs:
``plan.constant_verdict`` is ``False`` (and ``None`` for plans whose
outcome actually depends on coins).  ``run_trial`` / ``run_trials`` return
the folded verdict immediately, and
:func:`~repro.engine.montecarlo.estimate_acceptance_fast` turns it into
the exact degenerate estimate with zero trials executed.

Plans are pure values of their inputs; drivers that repeatedly revisit the
same ``(scheme, configuration, labels, randomness)`` states (the
self-stabilization loop's fault/recovery cycle) should resolve them
through the value-keyed :class:`~repro.engine.cache.PlanCache` instead of
recompiling.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bitstrings import BitString
from repro.core.configuration import Configuration
from repro.core.scheme import (
    SHARED_RNG_SUFFIX,
    LabelView,
    RandomizedScheme,
    SchemeParams,
    VerifierView,
    engine_hooks_available,
    rng_stream_suffix,
)
from repro.core.seeding import CounterRng, derive_stream_seed
from repro.core.verifier import RandomnessMode
from repro.graphs.port_graph import Node

# "compat": legacy string-seeded streams, bit-identical to the one-shot
# oracle.  "fast": sequential SplitMix64-seeded random.Random streams.
# "vector": the counter-based SplitMix64 stream (repro.core.seeding), whose
# draws are a closed-form function of (stream seed, counter) — the only mode
# whose query points batch as one numpy array op per chunk.  The scalar and
# vectorized executions of any one mode are decision-identical per trial;
# the three modes are distinct points of the same probability space.
RngMode = str
RNG_MODES = ("compat", "fast", "vector")

_EMPTY = BitString.empty()


def _certificate(engine_certificate, context, port, rng):
    """One hook certificate call with the legacy ValueError contract.

    The one-shot engine maps a raising ``certificate()`` to an empty (hence
    rejected) message; the hook path mirrors that by mapping a raising
    ``engine_certificate`` to ``None``, which every receiver rejects.
    """
    try:
        return engine_certificate(context, port, rng)
    except ValueError:
        return None


class VerificationPlan:
    """A ``(scheme, configuration, labels, randomness)`` tuple, precompiled.

    Build with :meth:`compile`; reuse across as many trials as needed.  The
    plan is read-only after compilation and holds no per-trial state, so a
    single plan may be shared by concurrent estimators.
    """

    def __init__(
        self,
        scheme: RandomizedScheme,
        configuration: Configuration,
        labels: Dict[Node, BitString],
        randomness: RandomnessMode,
        rng_mode: RngMode = "compat",
    ):
        if rng_mode not in RNG_MODES:
            raise ValueError(f"unknown rng_mode {rng_mode!r}")
        self.scheme = scheme
        self.configuration = configuration
        self.labels = labels
        self.randomness = randomness
        # The plan's *default* rng mode: run_trial / run_trials / the
        # estimator use it when the caller passes none.  It is part of the
        # plan's identity (PlanCache keys on it) so a plan compiled for
        # vector draws is never served to a compat caller.
        self.rng_mode = rng_mode
        self.params = SchemeParams.from_configuration(configuration)

        graph = configuration.graph
        self.nodes: Tuple[Node, ...] = tuple(graph.nodes)
        node_index = {node: i for i, node in enumerate(self.nodes)}
        self.degrees: Tuple[int, ...] = tuple(graph.degree(node) for node in self.nodes)

        self.label_views: Tuple[LabelView, ...] = tuple(
            LabelView(
                node=node,
                state=configuration.state(node),
                degree=self.degrees[i],
                params=self.params,
                own_label=labels[node],
            )
            for i, node in enumerate(self.nodes)
        )

        # Half-edge layout: certificates are generated in the same order the
        # one-shot engine uses (nodes in graph order, ports ascending), and
        # half-edge (node i, port q) lives at flat index offset[i] + q.
        offsets: List[int] = []
        total = 0
        for degree in self.degrees:
            offsets.append(total)
            total += degree
        self.half_edge_count = total

        # incoming[i][q] = flat index of the half-edge whose message arrives
        # on port q of node i — the entire exchange_messages round resolved
        # to index arithmetic.
        incoming: List[List[int]] = [[0] * degree for degree in self.degrees]
        for i, node in enumerate(self.nodes):
            for port, neighbor, reverse_port in graph.ports(node):
                incoming[node_index[neighbor]][reverse_port] = offsets[i] + port
        self.incoming: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(ports) for ports in incoming
        )

        # Compat-mode RNG seed strings: derive_rng seeds with the trial seed
        # followed by a per-stream suffix and re-hashes the whole string
        # through SHA-512 per construction; at least the invariant suffixes
        # (format owned by repro.core.scheme) are built once.
        self.port_suffixes: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(
                rng_stream_suffix(node, port) for port in range(self.degrees[i])
            )
            for i, node in enumerate(self.nodes)
        )
        self.node_suffixes: Tuple[str, ...] = tuple(
            rng_stream_suffix(node, None) for node in self.nodes
        )

        # Scheme fast path: parse every label exactly once.
        self.contexts: Optional[Tuple[object, ...]] = None
        if engine_hooks_available(scheme):
            contexts: List[object] = []
            for view in self.label_views:
                try:
                    contexts.append(scheme.engine_node_context(view))
                except ValueError:
                    # Unparseable (forged) label: certificates are malformed
                    # and the node itself rejects — see run_trial.
                    contexts.append(None)
            self.contexts = tuple(contexts)

        # Compile-time constant folding: a node that cannot parse its own
        # label rejects every trial, so the whole plan's verdict is already
        # known — no trial of any seed or rng mode can accept.  Monte-Carlo
        # drivers consult this before running anything.
        self.constant_verdict: Optional[bool] = None
        if self.contexts is not None and any(
            context is None for context in self.contexts
        ):
            self.constant_verdict = False

    # -- construction ---------------------------------------------------------

    @staticmethod
    def compile(
        scheme: RandomizedScheme,
        configuration: Configuration,
        labels: Optional[Dict[Node, BitString]] = None,
        randomness: RandomnessMode = "edge",
        rng_mode: RngMode = "compat",
    ) -> "VerificationPlan":
        """Precompute the trial-invariant half of repeated verification.

        ``labels`` defaults to the honest prover's assignment, mirroring
        :func:`~repro.core.verifier.verify_randomized`.  ``rng_mode`` sets
        the plan's default randomness derivation (see :data:`RNG_MODES`);
        callers may still override it per run_trial/run_trials call.
        """
        if labels is None:
            labels = scheme.prover(configuration)
        return VerificationPlan(scheme, configuration, labels, randomness, rng_mode)

    @property
    def uses_fast_path(self) -> bool:
        """True when the scheme supplied engine hooks (labels parsed once)."""
        return self.contexts is not None

    @property
    def vector_ready(self) -> bool:
        """True when this plan can run trials through the numpy chunk kernel.

        Requires numpy, the scheme's optional ``engine_vector_spec`` hook,
        and a vector spec from every node context — see
        :mod:`repro.engine.kernels`.  A plan that is not vector-ready simply
        runs the scalar hook (or generic) path; decisions never depend on
        which kernel executes them.
        """
        from repro.engine.kernels import vector_state

        return self.constant_verdict is None and vector_state(self) is not None

    def prepare(self, vectorize: Optional[bool] = None) -> "VerificationPlan":
        """Force every lazily-built execution structure now; returns self.

        The vectorized kernel description (:func:`repro.engine.kernels.vector_state`)
        is built on first use and memoized on the plan.  A plan shared by
        concurrent shard workers (:class:`repro.parallel.ThreadExecutor`)
        would otherwise build it racily — harmlessly, since every builder
        computes the same immutable value, but redundantly, once per worker.
        Executors call ``prepare()`` once before fanning a plan out so the
        workers only ever read.  ``vectorize=True`` additionally asserts the
        plan really has a kernel (same contract as
        ``estimate_acceptance_fast(vectorize=True)``).
        """
        if self.constant_verdict is None:
            ready = self.vector_ready  # builds and memoizes the state
            if vectorize and not ready:
                raise ValueError(
                    "vectorize=True but the plan has no vectorized kernel "
                    "(numpy missing, or the scheme has no engine_vector_spec hook)"
                )
        return self

    # -- per-trial RNG derivation ---------------------------------------------

    def _edge_rngs(self, trial_seed: int, rng_mode: RngMode) -> List[random.Random]:
        """One generator per half-edge, flat-indexed, for the current mode."""
        Random = random.Random
        randomness = self.randomness
        rngs: List[random.Random] = []
        if rng_mode == "compat":
            prefix = str(trial_seed)
            if randomness == "edge":
                for suffixes in self.port_suffixes:
                    rngs.extend(Random(prefix + suffix) for suffix in suffixes)
            elif randomness == "node":
                for i, degree in enumerate(self.degrees):
                    rng = Random(prefix + self.node_suffixes[i])
                    rngs.extend(rng for _ in range(degree))
            elif randomness == "shared":
                shared_key = prefix + SHARED_RNG_SUFFIX
                rngs.extend(
                    Random(shared_key) for _ in range(self.half_edge_count)
                )
            else:  # pragma: no cover - guarded upstream
                raise ValueError(f"unknown randomness mode {randomness!r}")
        elif rng_mode == "fast":
            if randomness == "edge":
                for i, degree in enumerate(self.degrees):
                    rngs.extend(
                        Random(derive_stream_seed(trial_seed, i, port))
                        for port in range(degree)
                    )
            elif randomness == "node":
                for i, degree in enumerate(self.degrees):
                    rng = Random(derive_stream_seed(trial_seed, i, -1))
                    rngs.extend(rng for _ in range(degree))
            elif randomness == "shared":
                shared_seed = derive_stream_seed(trial_seed, -1, -1)
                rngs.extend(
                    Random(shared_seed) for _ in range(self.half_edge_count)
                )
            else:  # pragma: no cover - guarded upstream
                raise ValueError(f"unknown randomness mode {randomness!r}")
        else:
            raise ValueError(f"unknown rng_mode {rng_mode!r}")
        return rngs

    def _shared_verifier_rng(
        self, trial_seed: int, rng_mode: RngMode
    ) -> Optional[random.Random]:
        if self.randomness != "shared":
            return None
        if rng_mode == "compat":
            return random.Random(f"{trial_seed}{SHARED_RNG_SUFFIX}")
        return random.Random(derive_stream_seed(trial_seed, -1, -1))

    # -- execution -------------------------------------------------------------

    def run_trial(self, trial_seed: int, rng_mode: Optional[RngMode] = None) -> bool:
        """One verification round; True iff every node accepts.

        ``rng_mode=None`` uses the plan's compiled default (``"compat"``
        unless the plan was built otherwise).  ``"compat"`` derives the
        exact RNG streams of :func:`~repro.core.verifier.verify_randomized`,
        so the decision is bit-identical to
        ``verify_randomized(..., seed=trial_seed)``.  ``"fast"`` swaps the
        string-seeded derivation for the SplitMix64 integer mix of
        :mod:`repro.core.seeding` — statistically equivalent streams at a
        fraction of the derivation cost, but a *different* probability-space
        point for the same seed.  ``"vector"`` draws through the
        counter-based stream (:class:`~repro.core.seeding.CounterRng` here;
        one numpy array op per chunk in the vectorized kernels) — again the
        same probability space at yet another point; it requires the hook
        fast path, whose certificate generators draw only via
        ``randrange``/``getrandbits``.
        """
        if rng_mode is None:
            rng_mode = self.rng_mode
        if self.constant_verdict is not None:
            return self.constant_verdict
        if self.contexts is not None:
            return self._run_trial_hooks(trial_seed, rng_mode)
        return self._run_trial_generic(trial_seed, rng_mode)

    def _run_trial_hooks(self, trial_seed: int, rng_mode: RngMode) -> bool:
        # Hook contracts allow the plan to reuse one Random instance,
        # re-seeded per stream: hook certificate generators may not retain
        # the rng beyond the call.  Re-seeding skips ~half a microsecond of
        # object construction per half-edge, which is material at thousands
        # of derivations per trial.
        scheme = self.scheme
        contexts = self.contexts
        engine_certificate = scheme.engine_certificate
        randomness = self.randomness
        certificates: List[object] = [None] * self.half_edge_count
        # Vector mode swaps the generator class, nothing else: CounterRng
        # replays, word for word, the counter-based stream the numpy chunk
        # kernels evaluate in one array op.
        rng = CounterRng() if rng_mode == "vector" else random.Random()
        reseed = rng.seed
        shared_key: object = None

        if rng_mode == "compat":
            prefix = str(trial_seed)
            if randomness == "edge":
                flat = 0
                for context, suffixes in zip(contexts, self.port_suffixes):
                    if context is None:
                        flat += len(suffixes)  # malformed label: stays None
                        continue
                    port = 0
                    for suffix in suffixes:
                        reseed(prefix + suffix)
                        certificates[flat] = _certificate(engine_certificate, context, port, rng)
                        flat += 1
                        port += 1
            elif randomness == "node":
                flat = 0
                for i, context in enumerate(contexts):
                    degree = self.degrees[i]
                    if context is None:
                        flat += degree
                        continue
                    reseed(prefix + self.node_suffixes[i])
                    for port in range(degree):
                        certificates[flat] = _certificate(engine_certificate, context, port, rng)
                        flat += 1
            elif randomness == "shared":
                shared_key = prefix + SHARED_RNG_SUFFIX
                flat = 0
                for context, degree in zip(contexts, self.degrees):
                    if context is None:
                        flat += degree
                        continue
                    for port in range(degree):
                        reseed(shared_key)  # every sender sees the same coins
                        certificates[flat] = _certificate(engine_certificate, context, port, rng)
                        flat += 1
            else:  # pragma: no cover - guarded upstream
                raise ValueError(f"unknown randomness mode {randomness!r}")
        elif rng_mode in ("fast", "vector"):
            if randomness in ("edge", "node"):
                # One SplitMix64-seeded stream feeds every certificate in
                # sequence.  Consecutive draws of one stream are as
                # independent as draws of derived per-port streams, so the
                # round's acceptance distribution is unchanged — only the
                # (seed -> coins) mapping differs from compat mode.  Vector
                # mode keeps the identical seed addressing over the
                # counter-based stream, so its kernel draws line up with
                # this loop position for position.
                reseed(derive_stream_seed(trial_seed, 0, 0))
                flat = 0
                for context, degree in zip(contexts, self.degrees):
                    if context is None:
                        flat += degree
                        continue
                    for port in range(degree):
                        certificates[flat] = _certificate(engine_certificate, context, port, rng)
                        flat += 1
            elif randomness == "shared":
                shared_key = derive_stream_seed(trial_seed, -1, -1)
                flat = 0
                for context, degree in zip(contexts, self.degrees):
                    if context is None:
                        flat += degree
                        continue
                    for port in range(degree):
                        reseed(shared_key)
                        certificates[flat] = _certificate(engine_certificate, context, port, rng)
                        flat += 1
            else:  # pragma: no cover - guarded upstream
                raise ValueError(f"unknown randomness mode {randomness!r}")
        else:
            raise ValueError(f"unknown rng_mode {rng_mode!r}")

        engine_verify = scheme.engine_verify
        shared = randomness == "shared"
        incoming = self.incoming
        for i, context in enumerate(contexts):
            if context is None:
                return False  # the node cannot parse its own label: rejects
            messages = [certificates[j] for j in incoming[i]]
            if None in messages:
                # A neighbor's certificate call raised: the legacy engine
                # delivers an empty bit string, which every hook-bearing
                # scheme's verifier rejects.
                return False
            if shared:
                reseed(shared_key)  # a fresh view over the round's coins
                shared_rng = rng
            else:
                shared_rng = None
            if not engine_verify(context, messages, shared_rng):
                return False
        return True

    def _run_trial_generic(self, trial_seed: int, rng_mode: RngMode) -> bool:
        if rng_mode == "vector":
            # Generic-path schemes may draw through any random.Random
            # method; the counter-based stream only guarantees replayable
            # word consumption for randrange/getrandbits, which is what the
            # hook contract restricts certificate generators to.
            raise ValueError(
                "rng_mode='vector' requires the engine hook fast path "
                f"({self.scheme.name} has no engine hooks)"
            )
        scheme = self.scheme
        rngs = self._edge_rngs(trial_seed, rng_mode)
        certificate = scheme.certificate

        certificates: List[BitString] = [_EMPTY] * self.half_edge_count
        flat = 0
        for view, degree in zip(self.label_views, self.degrees):
            for port in range(degree):
                try:
                    certificates[flat] = certificate(view, port, rngs[flat])
                except ValueError:
                    certificates[flat] = _EMPTY
                flat += 1

        verify_at = scheme.verify_at
        shared = self.randomness == "shared"
        params = self.params
        for i, view in enumerate(self.label_views):
            verifier_view = VerifierView(
                node=view.node,
                state=view.state,
                degree=view.degree,
                params=params,
                own_label=view.own_label,
                messages=tuple(certificates[j] for j in self.incoming[i]),
                shared_rng=(
                    self._shared_verifier_rng(trial_seed, rng_mode)
                    if shared
                    else None
                ),
            )
            try:
                accepted = bool(verify_at(verifier_view))
            except ValueError:
                accepted = False
            if not accepted:
                return False
        return True

    def run_trials(
        self,
        trial_seeds: Sequence[int],
        rng_mode: Optional[RngMode] = None,
        vectorize: bool = False,
    ) -> int:
        """Run a chunk of trials; returns how many rounds accepted.

        ``rng_mode=None`` uses the plan's compiled default.
        ``vectorize=True`` executes the chunk through the numpy kernel of
        :mod:`repro.engine.kernels` (requires :attr:`vector_ready`); the
        per-trial decisions are identical to the scalar path in every
        ``rng_mode``, only the arithmetic (and, in vector mode, the query
        point draws) is batched.
        """
        if rng_mode is None:
            rng_mode = self.rng_mode
        if self.constant_verdict is not None:
            return len(trial_seeds) if self.constant_verdict else 0
        if vectorize:
            from repro.engine.kernels import run_chunk

            return int(run_chunk(self, trial_seeds, rng_mode).sum())
        run_trial = (
            self._run_trial_hooks
            if self.contexts is not None
            else self._run_trial_generic
        )
        return sum(1 for seed in trial_seeds if run_trial(seed, rng_mode))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        path = "fast-path" if self.uses_fast_path else "generic"
        return (
            f"<VerificationPlan {self.scheme.name!r} n={len(self.nodes)} "
            f"half_edges={self.half_edge_count} randomness={self.randomness!r} {path}>"
        )


def compile_fast_plan(
    scheme: RandomizedScheme,
    configuration: Configuration,
    labels: Optional[Dict[Node, BitString]] = None,
    randomness: RandomnessMode = "edge",
    rng_mode: RngMode = "compat",
) -> VerificationPlan:
    """Compile a plan that is *guaranteed* to take the hook fast path.

    The shared body of the per-scheme entry points (``mst_engine_plan``,
    ``k_flow_engine_plan``, ``distance_engine_plan``): benchmarks route
    through these so a scheme that silently loses its engine hooks fails
    loudly instead of quietly dropping to the generic path.
    """
    plan = VerificationPlan.compile(
        scheme, configuration, labels=labels, randomness=randomness, rng_mode=rng_mode
    )
    if not plan.uses_fast_path:
        raise RuntimeError(
            f"{scheme.name}: plan unexpectedly fell back to the generic path"
        )
    return plan
