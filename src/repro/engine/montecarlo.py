"""Batched Monte-Carlo acceptance estimation over a compiled plan.

:func:`estimate_acceptance_fast` is the drop-in high-throughput counterpart
of :func:`repro.core.verifier.estimate_acceptance`: same probability space,
same per-trial seed derivation (the SplitMix64 mix of
:mod:`repro.core.seeding`), same estimate — it just runs the trials over a
:class:`~repro.engine.plan.VerificationPlan` in chunks, with an optional
confidence-interval early exit.

Bit-for-bit equivalence with the legacy loop (default modes): trial ``i``
runs with seed ``derive_trial_seed(seed, i)`` in both paths, and
``plan.run_trial`` in ``rng_mode="compat"`` reproduces the legacy RNG
streams exactly, so the two paths agree on every individual accept/reject
decision — the property tests assert this per trial, not just on the final
counts.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.bitstrings import BitString
from repro.core.configuration import Configuration
from repro.core.scheme import RandomizedScheme
from repro.core.seeding import resolve_trial_seed
from repro.core.verifier import RandomnessMode
from repro.engine.plan import RngMode, VerificationPlan
from repro.graphs.port_graph import Node

DEFAULT_CHUNK = 64


def estimate_acceptance_fast(
    plan: VerificationPlan,
    trials: int,
    seed: int = 0,
    rng_mode: RngMode = "compat",
    seed_mode: str = "mix",
    chunk_size: int = DEFAULT_CHUNK,
    stop_halfwidth: Optional[float] = None,
    min_trials: int = 2 * DEFAULT_CHUNK,
) -> "AcceptanceEstimate":
    """Estimate ``Pr[verifier accepts]`` by running ``trials`` plan rounds.

    Trials run in chunks of ``chunk_size``.  When ``stop_halfwidth`` is
    given, the estimator stops early once the Wilson score interval of the
    running estimate is narrower than ``2 * stop_halfwidth`` (and at least
    ``min_trials`` trials have run); the returned estimate then reports the
    trials actually executed.  Early exit changes *which prefix* of the
    trial sequence is used, never the per-trial decisions.

    ``seed_mode="legacy"`` reproduces the pre-SplitMix64 per-trial seeds
    (``hash((seed, trial))``) for comparison against historical results.
    """
    from repro.simulation.metrics import AcceptanceEstimate, wilson_interval

    if trials <= 0:
        raise ValueError("trials must be positive")
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    trial_seed = resolve_trial_seed(seed_mode)

    accepted = 0
    done = 0
    while done < trials:
        chunk = min(chunk_size, trials - done)
        accepted += plan.run_trials(
            [trial_seed(seed, trial) for trial in range(done, done + chunk)],
            rng_mode=rng_mode,
        )
        done += chunk
        if stop_halfwidth is not None and done >= min_trials:
            low, high = wilson_interval(accepted, done)
            if high - low <= 2 * stop_halfwidth:
                break
    return AcceptanceEstimate(accepted=accepted, trials=done)


def estimate_acceptance_batched(
    scheme: RandomizedScheme,
    configuration: Configuration,
    trials: int,
    seed: int = 0,
    labels: Optional[Dict[Node, BitString]] = None,
    randomness: RandomnessMode = "edge",
    **options,
) -> "AcceptanceEstimate":
    """Compile a plan and estimate in one call — the convenience entry point.

    Equivalent to ``estimate_acceptance(scheme, configuration, trials, seed,
    labels, randomness)`` decision-for-decision; compile the plan yourself
    via :meth:`VerificationPlan.compile` when estimating repeatedly on the
    same pair.  Extra keyword ``options`` pass through to
    :func:`estimate_acceptance_fast`.
    """
    plan = VerificationPlan.compile(
        scheme, configuration, labels=labels, randomness=randomness
    )
    return estimate_acceptance_fast(plan, trials, seed=seed, **options)
