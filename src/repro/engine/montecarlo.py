"""Batched Monte-Carlo acceptance estimation over a compiled plan.

:func:`estimate_acceptance_fast` is the drop-in high-throughput counterpart
of :func:`repro.core.verifier.estimate_acceptance`: same probability space,
same per-trial seed derivation (the SplitMix64 mix of
:mod:`repro.core.seeding`), same estimate — it just runs the trials over a
:class:`~repro.engine.plan.VerificationPlan` in chunks, with an optional
confidence-interval early exit and, where the scheme supports it, the
vectorized numpy trial-chunk kernel of :mod:`repro.engine.kernels`.

Bit-identical vs. statistically equivalent
------------------------------------------

- **Bit-identical** (default ``rng_mode="compat"``, ``seed_mode="mix"``):
  trial ``i`` runs with seed ``derive_trial_seed(seed, i)`` in both paths,
  and ``plan.run_trial`` reproduces the legacy RNG streams exactly, so the
  two paths agree on every individual accept/reject decision — the property
  tests assert this per trial, not just on the final counts.  The vectorized
  kernel preserves this: it draws the same coins in the same order and only
  batches the (randomness-free) field arithmetic.
- **Statistically equivalent** (``rng_mode="fast"``): per-stream seeds come
  from the SplitMix64 integer mix instead of string hashing, so the same
  seed lands on a *different* point of the same probability space — every
  distributional statement (acceptance probability, soundness error) is
  unchanged, but individual decisions differ from compat mode.  Within fast
  mode, the scalar and vectorized kernels are again decision-identical to
  each other per trial.
- **Statistically equivalent, fully batched** (``rng_mode="vector"``): the
  counter-based SplitMix64 stream of :mod:`repro.core.seeding` — yet
  another point of the same space, chosen so the *draws themselves* (not
  just the arithmetic) evaluate as one numpy array op per chunk.  The
  scalar :class:`~repro.core.seeding.CounterRng` path and the numpy kernel
  are bit-identical per trial; the cross-mode consistency suite pins all
  three modes to the same acceptance probability within Wilson tolerance.

Wilson early exit
-----------------

When ``stop_halfwidth`` is given, the estimator checks the Wilson score
interval of the running estimate after each chunk (once ``min_trials`` have
run) and stops when the interval is narrower than ``2 * stop_halfwidth``.
Two guarantees make this safe to use in experiments:

- early exit changes *which prefix* of the deterministic trial sequence is
  consumed, never any individual decision — re-running with ``trials`` set
  to the reported count reproduces the estimate exactly;
- the Wilson interval is valid at the extremes (0 and 1 acceptance), where
  the one-sided schemes in this repository actually operate, so the stop
  rule cannot fire on a degenerate normal-approximation interval.

Constant-False short-circuit
----------------------------

A plan whose hook contexts contain an unparseable label has a compile-time
verdict (``plan.constant_verdict is False``): the node that cannot parse its
own label rejects every trial.  The estimator returns the exact degenerate
estimate (``0.0`` over the requested trials) without running any — the same
decisions the trial loop would have produced, minus the loop.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.bitstrings import BitString
from repro.core.configuration import Configuration
from repro.core.scheme import RandomizedScheme
from repro.core.seeding import trial_seed_slice
from repro.core.verifier import RandomnessMode
from repro.engine.plan import RngMode, VerificationPlan
from repro.graphs.port_graph import Node

DEFAULT_CHUNK = 64


def estimate_acceptance_fast(
    plan: VerificationPlan,
    trials: int,
    seed: int = 0,
    rng_mode: Optional[RngMode] = None,
    seed_mode: str = "mix",
    chunk_size: int = DEFAULT_CHUNK,
    chunk_schedule: Optional[object] = None,
    stop_halfwidth: Optional[float] = None,
    min_trials: int = 2 * DEFAULT_CHUNK,
    vectorize: Optional[bool] = None,
    first_trial: int = 0,
    should_stop: Optional[Callable[[], bool]] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    heartbeat: Optional[Callable[[], None]] = None,
) -> "AcceptanceEstimate":
    """Estimate ``Pr[verifier accepts]`` by running ``trials`` plan rounds.

    Trials run in chunks of ``chunk_size``.  When ``stop_halfwidth`` is
    given, the estimator stops early once the Wilson score interval of the
    running estimate is narrower than ``2 * stop_halfwidth`` (and at least
    ``min_trials`` trials have run); the returned estimate then reports the
    trials actually executed.  Early exit changes *which prefix* of the
    trial sequence is used, never the per-trial decisions.

    ``chunk_schedule`` is the chunk-schedule seam (see
    :mod:`repro.parallel.controller`): an object whose ``session()`` returns
    a per-run decision function ``next_chunk(accepted, done, remaining) ->
    int``, consulted before every chunk in place of the constant
    ``chunk_size``.  The schedule's decision-validity contract: chunking
    only re-partitions the same deterministic trial prefix, so any schedule
    changes *when* the stop rule is checked between chunks — never which
    seed a trial derives or what it decides.  Returned sizes are clamped to
    ``[1, remaining]``; with ``chunk_schedule=None`` the constant
    ``chunk_size`` applies, bit-for-bit the historical behaviour.

    ``rng_mode=None`` (default) uses the plan's compiled default mode.
    ``seed_mode="legacy"`` reproduces the pre-SplitMix64 per-trial seeds
    (``hash((seed, trial))``) for comparison against historical results.

    ``vectorize`` selects the numpy trial-chunk kernel: ``None`` (default)
    uses it automatically in ``rng_mode="fast"`` / ``"vector"`` whenever
    the plan supports it (``plan.vector_ready``), ``True`` requires it (raising
    :class:`ValueError` on unsupported plans — useful in tests and
    benchmarks that must not silently fall back), ``False`` forces the
    scalar path.  The kernel never changes decisions, only throughput.

    The two shard hooks (see :mod:`repro.parallel`):

    - ``first_trial`` offsets the trial counter — the call covers the
      counter range ``[first_trial, first_trial + trials)``, deriving
      exactly the seeds the unsharded run derives for those positions, so a
      partition of ``[0, N)`` across calls reproduces the single-call run
      verdict for verdict (and therefore count for count once merged);
    - ``should_stop`` is polled before every chunk; when it returns true
      the call returns the partial estimate of the chunks already run
      (possibly the empty zero-trial estimate).  Like the Wilson exit, a
      cooperative stop changes *which prefix* of the shard's deterministic
      trial sequence is consumed, never any individual decision.

    ``progress`` is the streaming channel (see :mod:`repro.parallel.progress`):
    after every chunk it receives the *cumulative* ``(accepted, done)``
    counts of this call so far.  Each update is a valid estimate of the same
    acceptance probability over the prefix already consumed — publishing it
    mid-run is what lets a sharded aggregator apply the Wilson stop rule at
    chunk granularity across all workers.  The channel is observational
    only: it never changes which trials run or what they decide, so a run
    with ``progress`` set is count-identical to the same run without it.

    ``heartbeat`` is the liveness channel of :mod:`repro.parallel.supervision`:
    it is called (with no arguments) at the top of every chunk iteration —
    including the first, before any trial runs — so a supervisor can
    distinguish a worker that is merely between progress updates from one
    that has died or hung.  Like ``progress`` it is observational only.

    Plans with a compile-time verdict (``plan.constant_verdict``) return the
    exact degenerate estimate immediately, with no trials executed (one
    ``progress`` update reports the degenerate counts).
    """
    from repro.simulation.metrics import AcceptanceEstimate, wilson_interval

    if trials <= 0:
        raise ValueError("trials must be positive")
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    if first_trial < 0:
        raise ValueError("first_trial must be non-negative")
    if rng_mode is None:
        rng_mode = plan.rng_mode
    if vectorize is None:
        use_vector = rng_mode in ("fast", "vector") and plan.vector_ready
    elif vectorize:
        if not plan.vector_ready and plan.constant_verdict is None:
            raise ValueError(
                "vectorize=True but the plan has no vectorized kernel "
                "(numpy missing, or the scheme has no engine_vector_spec hook)"
            )
        use_vector = True
    else:
        use_vector = False

    from repro.core.seeding import resolve_trial_seed

    resolve_trial_seed(seed_mode)  # validate the mode before any work

    if plan.constant_verdict is not None:
        accepted = trials if plan.constant_verdict else 0
        if progress is not None:
            progress(accepted, trials)
        return AcceptanceEstimate(accepted=accepted, trials=trials)

    next_chunk = chunk_schedule.session() if chunk_schedule is not None else None

    accepted = 0
    done = 0
    while done < trials:
        if heartbeat is not None:
            heartbeat()
        if should_stop is not None and should_stop():
            break
        # The final chunk is exactly the remaining trials — `done + chunk`
        # never overshoots `trials`, so the reported count equals the prefix
        # of the trial sequence actually consumed (pinned by the chunk-tail
        # regression tests).  A schedule's answer is clamped to the same
        # bounds, so no policy can overshoot the range or stall the loop.
        if next_chunk is not None:
            chunk = max(1, min(int(next_chunk(accepted, done, trials - done)), trials - done))
        else:
            chunk = min(chunk_size, trials - done)
        accepted += plan.run_trials(
            trial_seed_slice(
                seed, first_trial + done, first_trial + done + chunk, seed_mode
            ),
            rng_mode=rng_mode,
            vectorize=use_vector,
        )
        done += chunk
        if progress is not None:
            progress(accepted, done)
        if stop_halfwidth is not None and done >= min_trials:
            low, high = wilson_interval(accepted, done)
            if high - low <= 2 * stop_halfwidth:
                break
    return AcceptanceEstimate(accepted=accepted, trials=done)


def estimate_acceptance_batched(
    scheme: RandomizedScheme,
    configuration: Configuration,
    trials: int,
    seed: int = 0,
    labels: Optional[Dict[Node, BitString]] = None,
    randomness: RandomnessMode = "edge",
    **options,
) -> "AcceptanceEstimate":
    """Compile a plan and estimate in one call — the convenience entry point.

    Equivalent to ``estimate_acceptance(scheme, configuration, trials, seed,
    labels, randomness)`` decision-for-decision; compile the plan yourself
    via :meth:`VerificationPlan.compile` when estimating repeatedly on the
    same pair.  Extra keyword ``options`` pass through to
    :func:`estimate_acceptance_fast`.
    """
    plan = VerificationPlan.compile(
        scheme, configuration, labels=labels, randomness=randomness
    )
    return estimate_acceptance_fast(plan, trials, seed=seed, **options)
