"""Vectorized trial-chunk execution — numpy Horner passes over whole chunks.

The scalar hook path of :class:`~repro.engine.plan.VerificationPlan` spends
almost all of its per-trial time in two interpreted Horner loops (sender-side
fingerprint sampling, receiver-side checking): one multiply-add-mod step per
label bit, per query point, per half-edge, per trial.  For a scheme whose
certificates are *pure polynomial fingerprints* — the Theorem 3.1 compiler
and its boosted wrapper — those loops share their coefficient vectors across
every trial of a Monte-Carlo chunk, so the whole chunk collapses to a few
batched :func:`repro.substrates.gf.poly_eval_rows` passes:

1. **draw** — the chunk's query points are drawn with the *same*
   ``random.Random`` calls, in the *same* order, as the scalar hook path
   (Horner evaluation consumes no randomness, so deferring it cannot change
   any draw).  This is what keeps the kernel decision-identical per trial:
   in ``rng_mode="compat"`` to the legacy one-shot oracle, in
   ``rng_mode="fast"`` to the scalar fast path.
2. **evaluate** — every sender's label polynomial is evaluated at all of its
   ``trials x draws`` points in one grouped Horner pass (rows grouped by
   ``(prime, degree)``; the honest case is a single group).
3. **check** — every receiver evaluates its stored replica at the points it
   received, again as one grouped pass, and the per-trial accept bit is the
   conjunction of the elementwise comparisons plus each node's
   trial-invariant residual verdict.

Eligibility is decided once per plan (:func:`vector_state`): the scheme must
expose the optional ``engine_vector_spec`` hook
(:class:`~repro.core.fingerprint.FingerprintVectorSpec`) and every node
context must produce a spec — otherwise the plan runs the scalar hook path
unchanged.  Trial-invariant rejections (a node whose residual verdict is
False, or a sender/receiver fingerprint-format mismatch) make every trial of
the plan reject; the kernel folds them into a constant-False chunk without
touching the field arithmetic, mirroring the plan-level constant-False
short-circuit for unparseable labels.

Arithmetic is exact: coefficients and query points live below the
fingerprint prime ``p < 6 * lam``, so every Horner step stays below
``p**2 + p``, far inside int64 (enforced via
:func:`repro.substrates.gf.vectorizable_prime`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.scheme import SHARED_RNG_SUFFIX
from repro.core.seeding import derive_stream_seed
from repro.substrates.gf import numpy_available, poly_eval_rows

try:  # optional accelerator; vector_state() returns None without it
    import numpy as _np
except ImportError:  # pragma: no cover - the image ships numpy
    _np = None

_UNSET = object()


@dataclass
class _VectorState:
    """Per-plan immutable description consumed by :func:`run_chunk`."""

    draws: int                       # query points drawn per half-edge call
    primes: Tuple[int, ...]          # per node: its fingerprint field
    constant_false: bool             # some node rejects every trial
    # Sender groups: rows share (prime, degree); one row per half-edge.
    # (prime, flat half-edge indices, coefficient matrix)
    sender_groups: Tuple[Tuple[int, "object", "object"], ...]
    # Receiver groups: one row per (receiver, port) pair; ``sources`` are the
    # flat indices of the half-edges whose messages the rows check.
    # (receiver prime, source flat indices, stored-coefficient matrix)
    receiver_groups: Tuple[Tuple[int, "object", "object"], ...]


def vector_state(plan) -> Optional[_VectorState]:
    """Build (and cache on the plan) the vectorized description, if eligible.

    Returns ``None`` when the plan cannot run vectorized: numpy missing, no
    scheme hooks, a hook context without a vector spec (e.g. the shared-coins
    compiler or a non-fingerprint scheme), or an unparseable-label context —
    the latter is already a plan-level constant False and never reaches the
    kernel.
    """
    cached = getattr(plan, "_vector_state", _UNSET)
    if cached is not _UNSET:
        return cached
    state = _build_vector_state(plan)
    plan._vector_state = state
    return state


def _build_vector_state(plan) -> Optional[_VectorState]:
    if _np is None or not numpy_available():
        return None
    if plan.contexts is None:
        return None
    spec_hook = getattr(plan.scheme, "engine_vector_spec", None)
    if spec_hook is None:
        return None
    specs = []
    for context in plan.contexts:
        if context is None:
            return None  # plan.constant_verdict is False; nothing to run
        spec = spec_hook(context)
        if spec is None:
            return None
        specs.append(spec)
    draws = {spec.draws for spec in specs}
    if len(draws) != 1:  # pragma: no cover - one scheme, one draw count
        return None
    draw_count = draws.pop()

    constant_false = any(not spec.accepts_when_checks_pass for spec in specs)

    # Sender/receiver fingerprint-format mismatches (a forged label claiming
    # a different kappa) are trial-invariant: the scalar check_raw rejects on
    # packed width / point count before any arithmetic, every trial.
    offsets: List[int] = []
    total = 0
    for degree in plan.degrees:
        offsets.append(total)
        total += degree
    owner = [0] * total
    for i, offset in enumerate(offsets):
        for port in range(plan.degrees[i]):
            owner[offset + port] = i
    for i, incoming_ports in enumerate(plan.incoming):
        for j in incoming_ports:
            sender = specs[owner[j]]
            receiver = specs[i]
            if (
                sender.certificate_bits != receiver.certificate_bits
                or sender.sub_points != receiver.sub_points
            ):
                constant_false = True

    if constant_false:
        return _VectorState(
            draws=draw_count,
            primes=tuple(spec.prime for spec in specs),
            constant_false=True,
            sender_groups=(),
            receiver_groups=(),
        )

    # Group sender rows (one per half-edge) by (prime, polynomial degree) so
    # each group is a single poly_eval_rows pass.
    sender_rows: Dict[Tuple[int, int], Tuple[List[int], List["object"]]] = {}
    for i, spec in enumerate(specs):
        key = (spec.prime, len(spec.own))
        for port in range(plan.degrees[i]):
            indices, rows = sender_rows.setdefault(key, ([], []))
            indices.append(offsets[i] + port)
            rows.append(spec.own)
    sender_groups = tuple(
        (prime, _np.asarray(indices, dtype=_np.intp), _np.vstack(rows))
        for (prime, _), (indices, rows) in sender_rows.items()
    )

    # Group receiver rows (one per (receiver, port) pair) the same way; the
    # row's points come from the half-edge delivering that port's message.
    receiver_rows: Dict[Tuple[int, int], Tuple[List[int], List["object"]]] = {}
    for i, spec in enumerate(specs):
        for port, source in enumerate(plan.incoming[i]):
            stored = spec.stored[port]
            key = (spec.prime, len(stored))
            sources, rows = receiver_rows.setdefault(key, ([], []))
            sources.append(source)
            rows.append(stored)
    receiver_groups = tuple(
        (prime, _np.asarray(sources, dtype=_np.intp), _np.vstack(rows))
        for (prime, _), (sources, rows) in receiver_rows.items()
    )

    return _VectorState(
        draws=draw_count,
        primes=tuple(spec.prime for spec in specs),
        constant_false=False,
        sender_groups=sender_groups,
        receiver_groups=receiver_groups,
    )


def run_chunk(plan, trial_seeds, rng_mode: str = "compat"):
    """Run a chunk of trials vectorized; returns a per-trial bool array.

    ``accepted[t]`` equals ``plan.run_trial(trial_seeds[t], rng_mode)`` for
    every ``t`` — the kernel is a faithful re-execution of the scalar hook
    path, not an approximation.  The plan must be vector-eligible
    (:func:`vector_state` not ``None``); callers go through
    ``plan.run_trials(..., vectorize=True)`` which enforces that.
    """
    state = vector_state(plan)
    if state is None:
        raise ValueError("plan has no vectorized kernel (see VerificationPlan.vector_ready)")
    trials = len(trial_seeds)
    if state.constant_false:
        return _np.zeros(trials, dtype=bool)

    xs = _draw_points(plan, state, trial_seeds, rng_mode)
    half_edges = plan.half_edge_count
    draws = state.draws

    # Sender evaluation: values[t, j, d] = A_j(xs[t, j, d]) over the sender's
    # field, where A_j is the label polynomial of half-edge j's owner.
    values = _np.empty_like(xs)
    for prime, indices, coefficients in state.sender_groups:
        points = xs[:, indices, :].transpose(1, 0, 2).reshape(len(indices), -1)
        evaluated = poly_eval_rows(coefficients, points, prime)
        values[:, indices, :] = evaluated.reshape(
            len(indices), trials, draws
        ).transpose(1, 0, 2)

    # Receiver checks: the stored replica's evaluation must equal the claimed
    # value, and both coordinates must lie inside the receiver's field.
    accept = _np.ones(trials, dtype=bool)
    for prime, sources, coefficients in state.receiver_groups:
        rows = len(sources)
        points = xs[:, sources, :].transpose(1, 0, 2).reshape(rows, -1)
        claimed = values[:, sources, :].transpose(1, 0, 2).reshape(rows, -1)
        expected = poly_eval_rows(coefficients, points, prime)
        ok = (points < prime) & (claimed < prime) & (expected == claimed)
        per_trial = ok.reshape(rows, trials, draws).all(axis=2).all(axis=0)
        accept &= per_trial
    return accept


# -- query-point derivation -----------------------------------------------------
#
# Each helper replays the exact rng consumption of the scalar hook path for
# its (rng_mode, randomness) pair: same seeds, same reseed boundaries, same
# randrange arguments, same order.  The only difference is that the Horner
# evaluation between draws is deferred — it consumes no randomness.


def _draw_points(plan, state: _VectorState, trial_seeds, rng_mode: str):
    draws = state.draws
    primes = state.primes
    degrees = plan.degrees
    randomness = plan.randomness
    flat: List[int] = []
    append = flat.append
    rng = random.Random()
    reseed = rng.seed
    randrange = rng.randrange
    draw_range = range(draws)

    if rng_mode == "compat":
        for trial_seed in trial_seeds:
            prefix = str(trial_seed)
            if randomness == "edge":
                for suffixes, prime in zip(plan.port_suffixes, primes):
                    for suffix in suffixes:
                        reseed(prefix + suffix)
                        for _ in draw_range:
                            append(randrange(prime))
            elif randomness == "node":
                for i, prime in enumerate(primes):
                    reseed(prefix + plan.node_suffixes[i])
                    for _ in range(degrees[i] * draws):
                        append(randrange(prime))
            elif randomness == "shared":
                shared_key = prefix + SHARED_RNG_SUFFIX
                for i, prime in enumerate(primes):
                    for _ in range(degrees[i]):
                        reseed(shared_key)
                        for _ in draw_range:
                            append(randrange(prime))
            else:  # pragma: no cover - guarded upstream
                raise ValueError(f"unknown randomness mode {randomness!r}")
    elif rng_mode == "fast":
        for trial_seed in trial_seeds:
            if randomness in ("edge", "node"):
                reseed(derive_stream_seed(trial_seed, 0, 0))
                for i, prime in enumerate(primes):
                    for _ in range(degrees[i] * draws):
                        append(randrange(prime))
            elif randomness == "shared":
                shared_seed = derive_stream_seed(trial_seed, -1, -1)
                for i, prime in enumerate(primes):
                    for _ in range(degrees[i]):
                        reseed(shared_seed)
                        for _ in draw_range:
                            append(randrange(prime))
            else:  # pragma: no cover - guarded upstream
                raise ValueError(f"unknown randomness mode {randomness!r}")
    else:
        raise ValueError(f"unknown rng_mode {rng_mode!r}")

    return _np.asarray(flat, dtype=_np.int64).reshape(
        len(trial_seeds), plan.half_edge_count, draws
    )
