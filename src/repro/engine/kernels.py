"""Vectorized trial-chunk execution — numpy passes over whole chunks.

The scalar hook path of :class:`~repro.engine.plan.VerificationPlan` spends
almost all of its per-trial time in two interpreted Horner loops (sender-side
fingerprint sampling, receiver-side checking): one multiply-add-mod step per
label bit, per query point, per half-edge, per trial.  For a scheme whose
certificates are *pure polynomial fingerprints* — the Theorem 3.1 compiler
and its boosted wrapper — those loops share their coefficient vectors across
every trial of a Monte-Carlo chunk, so the whole chunk collapses to a few
batched :func:`repro.substrates.gf.poly_eval_rows` passes:

1. **draw** — in ``rng_mode="compat"`` and ``"fast"`` the chunk's query
   points are drawn with the *same* ``random.Random`` calls, in the *same*
   order, as the scalar hook path (Horner evaluation consumes no randomness,
   so deferring it cannot change any draw).  This is what keeps the kernel
   decision-identical per trial: in compat mode to the legacy one-shot
   oracle, in fast mode to the scalar fast path.  In ``rng_mode="vector"``
   the draws come from the counter-based SplitMix64 stream of
   :mod:`repro.core.seeding`, whose word ``k`` is a closed-form function of
   ``(stream seed, k)`` — the entire chunk's points evaluate as **one**
   ``uint64`` array op (:func:`repro.core.seeding.stream_words`), with zero
   per-point Python-level loop iterations; the scalar
   :class:`~repro.core.seeding.CounterRng` path replays the identical words,
   so vector mode too is decision-identical between its kernels.
2. **evaluate** — every sender's label polynomial is evaluated at all of its
   ``trials x draws`` points in one grouped Horner pass (rows grouped by
   ``(prime, degree)``; the honest case is a single group).
3. **check** — every receiver evaluates its stored replica at the points it
   received, again as one grouped pass, and the per-trial accept bit is the
   conjunction of the elementwise comparisons plus each node's
   trial-invariant residual verdict.

A second kernel family covers the shared-coins compiler
(:class:`~repro.core.shared.SharedCoinsCompiledRPLS`), whose certificates
are GF(2) inner products rather than polynomial evaluations: sender and
receiver agree on an edge exactly when ``parity((own ^ stored) & mask) ==
0`` for every public mask, so the plan compiles each (receiver, port) pair
into a packed-``uint64`` XOR-diff row and a whole chunk's checks batch as
one AND + XOR-reduce + popcount-parity pass
(:func:`repro.substrates.gf.gf2_inner_parities`).

Eligibility is decided once per plan (:func:`vector_state`): the scheme must
expose the optional ``engine_vector_spec`` hook and every node context must
produce a spec of one kind — :class:`~repro.core.fingerprint.FingerprintVectorSpec`
for the Horner kernel, :class:`~repro.core.shared.ParityVectorSpec` for the
parity kernel — otherwise the plan runs the scalar hook path unchanged.
Trial-invariant rejections (a node whose residual verdict is False, a
sender/receiver fingerprint-format mismatch, a shared-coins plan run without
public coins) make every trial of the plan reject; the kernels fold them
into a constant-False chunk without touching the arithmetic, mirroring the
plan-level constant-False short-circuit for unparseable labels.

Arithmetic is exact: coefficients and query points live below the
fingerprint prime ``p < 6 * lam``, so every Horner step stays below
``p**2 + p``, far inside int64 (enforced via
:func:`repro.substrates.gf.vectorizable_prime`); the GF(2) kernel is plain
bitwise algebra on ``uint64`` lanes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.fingerprint import FingerprintVectorSpec
from repro.core.scheme import SHARED_RNG_SUFFIX
from repro.core.seeding import (
    derive_stream_seed,
    derive_stream_seed_array,
    stream_words,
)
from repro.core.shared import ParityVectorSpec
from repro.substrates.gf import (
    WORD_BITS,
    gf2_inner_parities,
    numpy_available,
    pack_value_words,
    poly_eval_rows,
)

try:  # optional accelerator; vector_state() returns None without it
    import numpy as _np
except ImportError:  # pragma: no cover - the image ships numpy
    _np = None

_UNSET = object()
_MASK64 = (1 << 64) - 1


@dataclass
class _VectorState:
    """Per-plan immutable description consumed by the fingerprint kernel."""

    draws: int                       # query points drawn per half-edge call
    primes: Tuple[int, ...]          # per node: its fingerprint field
    constant_false: bool             # some node rejects every trial
    # Sender groups: rows share (prime, degree); one row per half-edge.
    # (prime, flat half-edge indices, coefficient matrix)
    sender_groups: Tuple[Tuple[int, "object", "object"], ...]
    # Receiver groups: one row per (receiver, port) pair; ``sources`` are the
    # flat indices of the half-edges whose messages the rows check.
    # (receiver prime, source flat indices, stored-coefficient matrix)
    receiver_groups: Tuple[Tuple[int, "object", "object"], ...]
    # Vector-mode draw layout (None on constant-False states): the flat
    # counter of each (half-edge, draw) position in its trial stream, and
    # the field each position reduces into — together they turn the whole
    # chunk's draws into stream_words(bases, counters) % flat_primes.
    counters: Optional["object"] = None       # (half_edges * draws,) uint64
    flat_primes: Optional["object"] = None    # (half_edges * draws,) uint64


@dataclass
class _ParityState:
    """Per-plan immutable description consumed by the parity kernel."""

    repetitions: int                 # public masks (= certificate bits) per trial
    width: int                       # replica width the masks are drawn at
    mask_words: int                  # ceil(width / 64)
    constant_false: bool             # some node rejects every trial
    # One packed XOR-diff row per (receiver, port) pair: the parity checks
    # of a trial pass exactly when every mask's inner product with every
    # row is 0.
    diff_words: Optional["object"] = None     # (pairs, mask_words) uint64


def vector_state(plan):
    """Build (and cache on the plan) the vectorized description, if eligible.

    Returns a :class:`_VectorState` (fingerprint Horner kernel), a
    :class:`_ParityState` (shared-coins GF(2) kernel), or ``None`` when the
    plan cannot run vectorized: numpy missing, no scheme hooks, a hook
    context without a vector spec, mixed spec kinds, or an
    unparseable-label context — the latter is already a plan-level constant
    False and never reaches the kernel.
    """
    cached = getattr(plan, "_vector_state", _UNSET)
    if cached is not _UNSET:
        return cached
    state = _build_vector_state(plan)
    plan._vector_state = state
    return state


def _half_edge_owners(plan) -> Tuple[List[int], List[int]]:
    """Flat-layout helpers: per-node offsets and per-half-edge owner index."""
    offsets: List[int] = []
    total = 0
    for degree in plan.degrees:
        offsets.append(total)
        total += degree
    owner = [0] * total
    for i, offset in enumerate(offsets):
        for port in range(plan.degrees[i]):
            owner[offset + port] = i
    return offsets, owner


def _build_vector_state(plan):
    if _np is None or not numpy_available():
        return None
    if plan.contexts is None:
        return None
    spec_hook = getattr(plan.scheme, "engine_vector_spec", None)
    if spec_hook is None:
        return None
    specs = []
    for context in plan.contexts:
        if context is None:
            return None  # plan.constant_verdict is False; nothing to run
        spec = spec_hook(context)
        if spec is None:
            return None
        specs.append(spec)
    if all(isinstance(spec, FingerprintVectorSpec) for spec in specs):
        return _build_fingerprint_state(plan, specs)
    if all(isinstance(spec, ParityVectorSpec) for spec in specs):
        return _build_parity_state(plan, specs)
    return None  # pragma: no cover - one scheme produces one spec kind


def _build_fingerprint_state(plan, specs) -> Optional[_VectorState]:
    draws = {spec.draws for spec in specs}
    if len(draws) != 1:  # pragma: no cover - one scheme, one draw count
        return None
    draw_count = draws.pop()

    constant_false = any(not spec.accepts_when_checks_pass for spec in specs)

    # Sender/receiver fingerprint-format mismatches (a forged label claiming
    # a different kappa) are trial-invariant: the scalar check_raw rejects on
    # packed width / point count before any arithmetic, every trial.
    offsets, owner = _half_edge_owners(plan)
    for i, incoming_ports in enumerate(plan.incoming):
        for j in incoming_ports:
            sender = specs[owner[j]]
            receiver = specs[i]
            if (
                sender.certificate_bits != receiver.certificate_bits
                or sender.sub_points != receiver.sub_points
            ):
                constant_false = True

    if constant_false:
        return _VectorState(
            draws=draw_count,
            primes=tuple(spec.prime for spec in specs),
            constant_false=True,
            sender_groups=(),
            receiver_groups=(),
        )

    # Group sender rows (one per half-edge) by (prime, polynomial degree) so
    # each group is a single poly_eval_rows pass.
    sender_rows: Dict[Tuple[int, int], Tuple[List[int], List["object"]]] = {}
    for i, spec in enumerate(specs):
        key = (spec.prime, len(spec.own))
        for port in range(plan.degrees[i]):
            indices, rows = sender_rows.setdefault(key, ([], []))
            indices.append(offsets[i] + port)
            rows.append(spec.own)
    sender_groups = tuple(
        (prime, _np.asarray(indices, dtype=_np.intp), _np.vstack(rows))
        for (prime, _), (indices, rows) in sender_rows.items()
    )

    # Group receiver rows (one per (receiver, port) pair) the same way; the
    # row's points come from the half-edge delivering that port's message.
    receiver_rows: Dict[Tuple[int, int], Tuple[List[int], List["object"]]] = {}
    for i, spec in enumerate(specs):
        for port, source in enumerate(plan.incoming[i]):
            stored = spec.stored[port]
            key = (spec.prime, len(stored))
            sources, rows = receiver_rows.setdefault(key, ([], []))
            sources.append(source)
            rows.append(stored)
    receiver_groups = tuple(
        (prime, _np.asarray(sources, dtype=_np.intp), _np.vstack(rows))
        for (prime, _), (sources, rows) in receiver_rows.items()
    )

    # Vector-mode layout.  Half-edge h's draw d sits at flat position
    # h * draws + d; under edge/node randomness one stream feeds every
    # position in sequence, under shared randomness every half-edge replays
    # the public stream from word 0 (each sender re-seeds per call).
    primes = tuple(spec.prime for spec in specs)
    flat_primes = _np.repeat(
        _np.asarray(primes, dtype=_np.uint64),
        _np.asarray(plan.degrees, dtype=_np.intp) * draw_count,
    )
    if plan.randomness == "shared":
        counters = _np.tile(
            _np.arange(draw_count, dtype=_np.uint64), plan.half_edge_count
        )
    else:
        counters = _np.arange(plan.half_edge_count * draw_count, dtype=_np.uint64)

    return _VectorState(
        draws=draw_count,
        primes=primes,
        constant_false=False,
        sender_groups=sender_groups,
        receiver_groups=receiver_groups,
        counters=counters,
        flat_primes=flat_primes,
    )


def _build_parity_state(plan, specs) -> Optional[_ParityState]:
    repetitions = {spec.repetitions for spec in specs}
    if len(repetitions) != 1:  # pragma: no cover - one scheme, one t
        return None
    t = repetitions.pop()

    widths = {spec.width for spec in specs}
    if len(widths) != 1:
        # Differing kappa claims across nodes draw masks at different
        # widths, so the per-edge verdicts are genuinely random *and*
        # asymmetric — the scalar hook path handles that shape; the batched
        # kernel only takes the uniform-width case every honest (and every
        # single-bit-fault) workload has.
        return None
    width = widths.pop()

    # A shared-coins plan run under a private-coin randomness mode is a
    # model mismatch: engine_verify receives no public coins and rejects,
    # every node, every trial.
    constant_false = plan.randomness != "shared" or any(
        not spec.accepts_when_checks_pass for spec in specs
    )
    mask_words = (width + WORD_BITS - 1) // WORD_BITS
    if constant_false:
        return _ParityState(
            repetitions=t,
            width=width,
            mask_words=mask_words,
            constant_false=True,
        )

    _offsets, owner = _half_edge_owners(plan)
    diffs: List[List[int]] = []
    for i, spec in enumerate(specs):
        for port, source in enumerate(plan.incoming[i]):
            diff = spec.stored_values[port] ^ specs[owner[source]].own_value
            diffs.append(pack_value_words(diff, width))
    diff_words = (
        _np.asarray(diffs, dtype=_np.uint64)
        if diffs and mask_words
        else None  # edgeless graph or width 0: every parity check passes
    )
    return _ParityState(
        repetitions=t,
        width=width,
        mask_words=mask_words,
        constant_false=False,
        diff_words=diff_words,
    )


def run_chunk(plan, trial_seeds, rng_mode: Optional[str] = None):
    """Run a chunk of trials vectorized; returns a per-trial bool array.

    ``accepted[t]`` equals ``plan.run_trial(trial_seeds[t], rng_mode)`` for
    every ``t`` — the kernel is a faithful re-execution of the scalar hook
    path, not an approximation.  The plan must be vector-eligible
    (:func:`vector_state` not ``None``); callers go through
    ``plan.run_trials(..., vectorize=True)`` which enforces that.
    """
    state = vector_state(plan)
    if state is None:
        raise ValueError("plan has no vectorized kernel (see VerificationPlan.vector_ready)")
    if rng_mode is None:
        rng_mode = plan.rng_mode
    trials = len(trial_seeds)
    if state.constant_false:
        return _np.zeros(trials, dtype=bool)
    if isinstance(state, _ParityState):
        return _run_parity_chunk(plan, state, trial_seeds, rng_mode)

    xs = _draw_points(plan, state, trial_seeds, rng_mode)
    draws = state.draws

    # Sender evaluation: values[t, j, d] = A_j(xs[t, j, d]) over the sender's
    # field, where A_j is the label polynomial of half-edge j's owner.
    values = _np.empty_like(xs)
    for prime, indices, coefficients in state.sender_groups:
        points = xs[:, indices, :].transpose(1, 0, 2).reshape(len(indices), -1)
        evaluated = poly_eval_rows(coefficients, points, prime)
        values[:, indices, :] = evaluated.reshape(
            len(indices), trials, draws
        ).transpose(1, 0, 2)

    # Receiver checks: the stored replica's evaluation must equal the claimed
    # value, and both coordinates must lie inside the receiver's field.
    accept = _np.ones(trials, dtype=bool)
    for prime, sources, coefficients in state.receiver_groups:
        rows = len(sources)
        points = xs[:, sources, :].transpose(1, 0, 2).reshape(rows, -1)
        claimed = values[:, sources, :].transpose(1, 0, 2).reshape(rows, -1)
        expected = poly_eval_rows(coefficients, points, prime)
        ok = (points < prime) & (claimed < prime) & (expected == claimed)
        per_trial = ok.reshape(rows, trials, draws).all(axis=2).all(axis=0)
        accept &= per_trial
    return accept


# -- query-point derivation -----------------------------------------------------
#
# Each helper replays the exact rng consumption of the scalar hook path for
# its (rng_mode, randomness) pair: same seeds, same reseed boundaries, same
# randrange arguments, same order.  The only difference is that the Horner
# evaluation between draws is deferred — it consumes no randomness.  Compat
# and fast modes necessarily replay random.Random call by call; vector mode
# has no sequential generator at all, so its draw stage is a single
# stream_words broadcast with zero per-point Python iterations.


def _vector_bases(plan, trial_seeds):
    """Per-trial stream seeds for vector mode — the chunk's base array.

    Edge/node randomness feeds one sequential stream per trial (the same
    ``derive_stream_seed(trial_seed, 0, 0)`` addressing as fast mode);
    shared randomness uses the public stream address.  Legacy-mode trial
    seeds may be negative, hence the mask before the uint64 conversion.
    """
    masked = [seed & _MASK64 for seed in trial_seeds]
    if plan.randomness == "shared":
        return derive_stream_seed_array(masked, -1, -1)
    return derive_stream_seed_array(masked, 0, 0)


def _draw_points(plan, state: _VectorState, trial_seeds, rng_mode: str):
    draws = state.draws
    primes = state.primes
    degrees = plan.degrees

    if rng_mode == "vector":
        words = stream_words(_vector_bases(plan, trial_seeds), state.counters)
        return (
            (words % state.flat_primes[None, :])
            .astype(_np.int64)
            .reshape(len(trial_seeds), plan.half_edge_count, draws)
        )

    randomness = plan.randomness
    flat: List[int] = []
    append = flat.append
    rng = random.Random()
    reseed = rng.seed
    randrange = rng.randrange
    draw_range = range(draws)

    if rng_mode == "compat":
        for trial_seed in trial_seeds:
            prefix = str(trial_seed)
            if randomness == "edge":
                for suffixes, prime in zip(plan.port_suffixes, primes):
                    for suffix in suffixes:
                        reseed(prefix + suffix)
                        for _ in draw_range:
                            append(randrange(prime))
            elif randomness == "node":
                for i, prime in enumerate(primes):
                    reseed(prefix + plan.node_suffixes[i])
                    for _ in range(degrees[i] * draws):
                        append(randrange(prime))
            elif randomness == "shared":
                shared_key = prefix + SHARED_RNG_SUFFIX
                for i, prime in enumerate(primes):
                    for _ in range(degrees[i]):
                        reseed(shared_key)
                        for _ in draw_range:
                            append(randrange(prime))
            else:  # pragma: no cover - guarded upstream
                raise ValueError(f"unknown randomness mode {randomness!r}")
    elif rng_mode == "fast":
        for trial_seed in trial_seeds:
            if randomness in ("edge", "node"):
                reseed(derive_stream_seed(trial_seed, 0, 0))
                for i, prime in enumerate(primes):
                    for _ in range(degrees[i] * draws):
                        append(randrange(prime))
            elif randomness == "shared":
                shared_seed = derive_stream_seed(trial_seed, -1, -1)
                for i, prime in enumerate(primes):
                    for _ in range(degrees[i]):
                        reseed(shared_seed)
                        for _ in draw_range:
                            append(randrange(prime))
            else:  # pragma: no cover - guarded upstream
                raise ValueError(f"unknown randomness mode {randomness!r}")
    else:
        raise ValueError(f"unknown rng_mode {rng_mode!r}")

    return _np.asarray(flat, dtype=_np.int64).reshape(
        len(trial_seeds), plan.half_edge_count, draws
    )


# -- shared-coins parity kernel -------------------------------------------------


def _draw_masks(plan, state: _ParityState, trial_seeds, rng_mode: str):
    """The chunk's public masks, packed: a (trials, t, words) uint64 array.

    Every sender of a trial re-derives the same masks from the shared
    stream, so one draw per trial covers the whole round.  Compat and fast
    modes replay ``random.Random.getrandbits`` mask by mask; vector mode
    evaluates the counter-based stream in one broadcast, truncating the top
    word exactly as :meth:`CounterRng.getrandbits` does.
    """
    t = state.repetitions
    width = state.width
    words = state.mask_words

    if rng_mode == "vector":
        bases = _vector_bases(plan, trial_seeds)
        packed = stream_words(bases, _np.arange(t * words, dtype=_np.uint64))
        packed = packed.reshape(len(trial_seeds), t, words)
        top = width - WORD_BITS * (words - 1)
        packed[:, :, words - 1] &= _np.uint64((1 << top) - 1)
        return packed

    masks: List[List[int]] = []
    if rng_mode == "compat":
        for trial_seed in trial_seeds:
            rng = random.Random(f"{trial_seed}{SHARED_RNG_SUFFIX}")
            for _ in range(t):
                masks.append(pack_value_words(rng.getrandbits(width), width))
    elif rng_mode == "fast":
        for trial_seed in trial_seeds:
            rng = random.Random(derive_stream_seed(trial_seed, -1, -1))
            for _ in range(t):
                masks.append(pack_value_words(rng.getrandbits(width), width))
    else:
        raise ValueError(f"unknown rng_mode {rng_mode!r}")
    return _np.asarray(masks, dtype=_np.uint64).reshape(len(trial_seeds), t, words)


def _run_parity_chunk(plan, state: _ParityState, trial_seeds, rng_mode: str):
    """The GF(2) chunk: every trial's parity checks as one popcount pass."""
    trials = len(trial_seeds)
    if state.diff_words is None:
        # No edges, or zero-width replicas: nothing randomized can fail.
        return _np.ones(trials, dtype=bool)
    masks = _draw_masks(plan, state, trial_seeds, rng_mode)
    # parities[t, m, pair] = <diff_pair, mask_{t,m}> over GF(2); a trial
    # accepts iff every inner product is 0 (all senders matched all
    # receivers' stored replicas on every public mask).
    parities = gf2_inner_parities(state.diff_words, masks)
    return ~parities.any(axis=(1, 2))
