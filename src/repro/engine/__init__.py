"""The batched verification engine — repeated verification, made cheap.

Why this package exists
-----------------------

The paper's randomized schemes carry *statistical* guarantees, so nearly
every experiment in this repository is a Monte-Carlo loop: run the same
``(scheme, configuration)`` verification round hundreds of times and count
acceptances.  The one-shot engine
(:func:`repro.core.verifier.verify_randomized`) is the faithful reference
implementation of one round, but it rebuilds everything from scratch per
call — prover labels, :class:`SchemeParams` (which re-encodes every node
state), per-node views, the message wiring, and each scheme's label parsing.
This package hoists all of that out of the trial loop.

When to use what
----------------

- ``verify_randomized(scheme, config, seed)`` — one round, full
  :class:`~repro.core.verifier.RandomizedRun` introspection (per-node
  outputs, certificates, bit accounting).  Use for single verifications,
  debugging, and anywhere certificates themselves are inspected.
- ``estimate_acceptance(scheme, config, trials, seed)`` — the legacy
  per-trial loop in :mod:`repro.core.verifier`.  It is the *reference
  oracle*: simple, obviously faithful, and kept unoptimized on purpose so
  the engine can be tested against it decision-for-decision.
- ``VerificationPlan.compile(...)`` + ``estimate_acceptance_fast(plan, ...)``
  — repeated verification of one ``(scheme, configuration, labels)`` pair.
  Same probability space and per-trial decisions as the reference oracle
  (default modes), an order of magnitude more trials per second; see
  ``BENCH_engine.json`` at the repository root for the measured trajectory.
  Schemes with engine hooks (the fingerprint compiler, ``DirectUnifRPLS``,
  ``BoostedRPLS`` over either, the shared-coins compiler) additionally
  parse labels once per plan instead of once per certificate call.

Knobs
-----

- ``rng_mode="compat"`` (default) reproduces the legacy string-seeded RNG
  streams bit-for-bit; ``rng_mode="fast"`` derives streams through the
  SplitMix64 integer mix of :mod:`repro.core.seeding` — statistically
  equivalent, measurably faster, but a different point of the probability
  space for the same seed; ``rng_mode="vector"`` draws through the
  counter-based SplitMix64 stream, whose query points batch as one numpy
  array op per Monte-Carlo chunk (scalar and vectorized executions
  bit-identical per trial; hook-path schemes only).  A plan compiled with
  ``rng_mode=...`` makes that mode its default for every run.
- ``seed_mode="mix"`` (default) derives per-trial seeds with the shared
  SplitMix64 mix; ``"legacy"`` reproduces the historical
  ``hash((seed, trial))`` derivation.
- ``stop_halfwidth=...`` enables the confidence-interval early exit of
  :func:`estimate_acceptance_fast`.
- ``vectorize=...`` selects the numpy trial-chunk kernel
  (:mod:`repro.engine.kernels`): fingerprint-certificate schemes run whole
  Monte-Carlo chunks as batched Horner passes, decision-identical to the
  scalar path.  Auto-enabled under ``rng_mode="fast"`` when supported.
- :class:`PlanCache` memoizes compiled plans by input *value* for drivers
  that revisit the same ``(scheme, configuration, labels)`` states — e.g.
  the self-stabilization loop's fault/recovery cycle.
- Plans with an unparseable hook label carry a compile-time verdict
  (``plan.constant_verdict is False``); estimators return the degenerate
  0.0 estimate without running trials.
- ``first_trial=...`` / ``should_stop=...`` are the shard hooks of the
  parallel subsystem: :mod:`repro.parallel` partitions a trial budget into
  counter ranges across serial/thread/process backends, with the merged
  estimate exactly equal to the single-process one.
- :mod:`repro.engine.specs` is the declarative scheme registry: every
  scheme in the zoo as a :class:`VerdictSpec` (label parser + kernel
  family + parameters), resolvable to a guaranteed-fast-path plan via
  :func:`spec_plan`.  The differential identity matrix
  (``tests/test_verdict_specs.py``) is generated from this registry, so
  registered schemes stay bit-identical to the legacy oracle by
  construction and unregistered ones fail tier-1.

See ``docs/engine.md`` for the full architecture and hook contract, and
``docs/parallel.md`` for multi-core sharding and experiment campaigns.
"""

from repro.engine.cache import PlanCache
from repro.engine.montecarlo import (
    estimate_acceptance_batched,
    estimate_acceptance_fast,
)
from repro.engine.plan import VerificationPlan
from repro.engine.specs import (
    FAMILIES,
    UnknownSchemeError,
    VerdictSpec,
    build_scheme,
    clean_configuration,
    fault_configuration,
    get_spec,
    iter_specs,
    register,
    scheme_for,
    spec_names,
    spec_plan,
)

__all__ = [
    "FAMILIES",
    "PlanCache",
    "UnknownSchemeError",
    "VerdictSpec",
    "VerificationPlan",
    "build_scheme",
    "clean_configuration",
    "estimate_acceptance_batched",
    "estimate_acceptance_fast",
    "fault_configuration",
    "get_spec",
    "iter_specs",
    "register",
    "scheme_for",
    "spec_names",
    "spec_plan",
]
