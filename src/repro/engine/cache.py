"""A keyed, bounded cache of compiled verification plans.

Long-running drivers — above all the self-stabilization loop of
:mod:`repro.simulation.self_stabilization` — verify a small set of
``(scheme, configuration, labels)`` states over and over: the legal state
between faults, each recurring corrupted state, the repaired state recovery
rebuilds after every detection.  Compiling a
:class:`~repro.engine.plan.VerificationPlan` is the expensive half of that
work (prover-label parsing, per-node base verification, coefficient
extraction), and it is a pure function of the inputs, so a cache turns every
fault/recovery cycle after the first into a lookup.

Keying is **by value**, not identity: two configurations built
independently but carrying the same graph wiring, the same node states, and
the same labels produce the same key.  That is exactly the shape of the
self-stabilization loop, where recovery constructs a *fresh* legal
configuration each cycle that is equal to — but not the same object as —
the previous one.  Mutating anything that feeds the key (a state field, a
label bit, the port wiring, the randomness mode, the plan's default
``rng_mode``) changes the key and misses, so a cached plan can never be
replayed against inputs it was not compiled for — in particular a plan
compiled for counter-based vector draws is never served to a compat
caller expecting the legacy coin streams.  (State fields holding *mutable* containers — which a later
in-place mutation could drift out from under a cached plan — make a
configuration uncacheable and simply compile fresh; see
:class:`Uncacheable`.)  Schemes are the one exception: they are keyed by identity
(``id``), because scheme instances are stateful objects with no value
semantics — reuse the same instance to share cache entries, as every driver
in this repository does.  (Entries hold a strong reference to their scheme
through the plan, so a live entry's ``id`` cannot be recycled.)

The cache is bounded LRU; ``hits`` / ``misses`` counters make reuse
observable in tests and experiment logs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from types import MappingProxyType
from typing import Dict, Optional, Tuple

from repro.core.bitstrings import BitString
from repro.core.configuration import Configuration
from repro.core.scheme import RandomizedScheme
from repro.core.verifier import RandomnessMode
from repro.engine.plan import VerificationPlan
from repro.graphs.port_graph import Node
from repro.obs.runtime import get_metrics


class Uncacheable(Exception):
    """Raised while keying a configuration that must not be cached.

    A compiled plan aliases the node states it was built from, so a *shared
    mutable container* inside a state field (a list a fault injector could
    later mutate in place) would let a key hit return a plan whose captured
    state no longer matches the key's value.  Immutable leaves cannot drift
    that way; mutable ones make the configuration uncacheable, and
    :meth:`PlanCache.get` then compiles fresh every time instead of risking
    a stale replay.  (Every generator in this repository uses tuples for
    per-port fields, so real workloads always cache.)
    """


def _freeze(value):
    """Recursively convert a state-field value into a hashable equivalent.

    The field *mapping* itself is safe to walk — :class:`NodeState` copies
    it at construction — but mutable leaf containers are rejected, see
    :class:`Uncacheable`.
    """
    if isinstance(value, MappingProxyType):
        return tuple(sorted((key, _freeze(value[key])) for key in value))
    if isinstance(value, tuple):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, frozenset):
        return frozenset(_freeze(item) for item in value)
    if isinstance(value, (list, set, dict, bytearray)):
        raise Uncacheable(f"mutable state-field container {type(value).__name__}")
    return value


def configuration_key(configuration: Configuration) -> Tuple:
    """A hashable value-key of a configuration: wiring plus node states.

    Covers everything a plan compiles against — the port-numbered edge set
    (ports included: rewired edges change certificates' message routing) and
    every node's full state.  Cost is ``O(n + m)`` plus state sizes, orders
    of magnitude below one plan compilation.
    """
    graph = configuration.graph
    return (
        configuration.anonymous,
        tuple(
            (
                node,
                tuple(graph.ports(node)),
                configuration.state(node).node_id,
                _freeze(configuration.state(node).fields),
            )
            for node in graph.nodes
        ),
    )


class PlanCache:
    """Bounded LRU cache of compiled plans, keyed by input values.

    >>> cache = PlanCache(maxsize=4)
    >>> # plan_a is compiled, plan_b is the same object (value-equal inputs)
    >>> # plan_a = cache.get(scheme, config, labels=labels)
    >>> # plan_b = cache.get(scheme, config, labels=labels)
    """

    def __init__(self, maxsize: int = 8):
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._plans: "OrderedDict[Tuple, VerificationPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        # Shard workers of repro.parallel.ThreadExecutor resolve plans
        # through one shared cache concurrently; the lock covers the
        # lookup/insert/evict critical sections (compilation itself runs
        # unlocked — plans are pure values, so two racing compiles of the
        # same key just produce two equal plans and the second insert wins).
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()

    def stats(self) -> Dict[str, int]:
        """A snapshot of the cache counters, for experiment telemetry.

        >>> PlanCache(maxsize=2).stats()
        {'size': 0, 'maxsize': 2, 'hits': 0, 'misses': 0}
        """
        with self._lock:
            return {
                "size": len(self._plans),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
            }

    def key(
        self,
        scheme: RandomizedScheme,
        configuration: Configuration,
        labels: Dict[Node, BitString],
        randomness: RandomnessMode,
        rng_mode: str = "compat",
    ) -> Tuple:
        """The cache key for one compile request (see module docstring).

        ``rng_mode`` is part of the key because it is part of the *plan*: a
        plan's compiled default rng mode decides which probability-space
        point ``plan.run_trial(seed)`` lands on, so a plan compiled for
        vector draws must never be served to a compat caller (or vice
        versa) — they would silently get each other's coin streams.
        """
        nodes = configuration.graph.nodes
        return (
            id(scheme),
            randomness,
            rng_mode,
            configuration_key(configuration),
            tuple((node, labels[node]) for node in nodes),
        )

    def get(
        self,
        scheme: RandomizedScheme,
        configuration: Configuration,
        labels: Optional[Dict[Node, BitString]] = None,
        randomness: RandomnessMode = "edge",
        rng_mode: str = "compat",
    ) -> VerificationPlan:
        """Return a plan for the inputs, compiling only on a key miss.

        ``labels`` defaults to the honest prover's assignment — note the
        prover then runs on *every* call (its output feeds the key); pass
        labels explicitly when the caller already holds them, as repeated-
        verification loops invariably do.
        """
        if labels is None:
            labels = scheme.prover(configuration)
        try:
            key = self.key(scheme, configuration, labels, randomness, rng_mode)
        except Uncacheable:
            # See Uncacheable: a state field holds a shared mutable
            # container, so memoizing would risk replaying a stale plan.
            with self._lock:
                self.misses += 1
            get_metrics().counter("plan_cache.misses").inc()
            return VerificationPlan(scheme, configuration, labels, randomness, rng_mode)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.hits += 1
                self._plans.move_to_end(key)
                get_metrics().counter("plan_cache.hits").inc()
                return plan
            self.misses += 1
        get_metrics().counter("plan_cache.misses").inc()
        plan = VerificationPlan(scheme, configuration, labels, randomness, rng_mode)
        with self._lock:
            self._plans[key] = plan
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
        return plan

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PlanCache {len(self._plans)}/{self.maxsize} plans "
            f"hits={self.hits} misses={self.misses}>"
        )
