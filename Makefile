# Convenience targets; everything runs from the repository root with the
# in-tree package on PYTHONPATH (no install required).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-smoke

# Tier-1: the full test suite (includes the benchmark smoke harness).
test:
	$(PYTHON) -m pytest -x -q

# All experiments: regenerates benchmarks/results/*.txt and BENCH_engine.json.
# (bench_*.py does not match pytest's default test-file pattern, so the
# files are passed explicitly.)
bench:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q

# Fast wiring check for every engine-hooked benchmark workload (~seconds):
# fast-path compilation, oracle bit-identity, vectorized-kernel identity.
bench-smoke:
	$(PYTHON) benchmarks/smoke.py
