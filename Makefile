# Convenience targets; everything runs from the repository root with the
# in-tree package on PYTHONPATH (no install required).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-specs test-stats test-parallel test-stream test-chaos test-controller test-obs bench bench-smoke bench-record bench-diff bench-gate

# Tier-1: the full test suite (includes the benchmark smoke harness and
# the verdict-spec differential matrix, see test-specs).  Heavy statistical
# tests (marker: slow_stats) are skipped here; run them with
# `make test-stats`.  Process-executor tests (marker: parallel_proc) skip
# themselves on single-CPU boxes; `make test-parallel` forces them.
test:
	$(PYTHON) -m pytest -x -q

# The verdict-spec tier on its own: the registry-generated differential
# identity matrix (every registered scheme x rng mode x workload kind,
# pinned per trial against the legacy oracle) plus the registry property
# tests.  Runs inside tier-1 too; this target is the fast loop when
# iterating on repro/engine/specs.py.  slow_stats stays excluded.
test-specs:
	$(PYTHON) -m pytest tests/test_verdict_specs.py -q

# The parallel tier: the sharded executor / campaign suites with the
# process-executor tests forced on even where cpu_count() < 2, plus the
# workload-pattern and chunk-tail regression suites.
test-parallel:
	REPRO_FORCE_PARALLEL_PROC=1 $(PYTHON) -m pytest \
		tests/test_parallel.py tests/test_chunk_tail.py \
		tests/test_workload_patterns.py -q

# The streaming tier: progressive shard-progress + concurrent-cell suites
# with the process-backend streaming tests forced on (mirrors test-parallel).
test-stream:
	REPRO_FORCE_PARALLEL_PROC=1 $(PYTHON) -m pytest \
		tests/test_streaming.py tests/test_parallel.py -q

# The robustness tier: worker supervision, deterministic retry, and the
# chaos-injection harness, with the process-backend chaos tests (markers:
# chaos, parallel_proc — real worker kills, pool repair) forced on even
# where cpu_count() < 2.
test-chaos:
	REPRO_FORCE_PARALLEL_PROC=1 $(PYTHON) -m pytest \
		tests/test_supervision.py tests/test_chaos.py -q

# The adaptive-budget tier: chunk-schedule policies, the campaign
# allocator, and the installment seam, plus the chunk-tail suite that pins
# the decision-validity contract (any chunk policy -> per-trial verdicts
# bit-identical to the fixed-chunk run), with process-backend tests forced
# on (mirrors test-parallel).
test-controller:
	REPRO_FORCE_PARALLEL_PROC=1 $(PYTHON) -m pytest \
		tests/test_controller.py tests/test_chunk_tail.py -q

# The observability tier: trace/metrics primitives, the router piggyback,
# the traced-chaos flight recorder, and the traced-vs-untraced bit-identity
# matrix, with the process-backend and chaos-marked tests forced on even
# where cpu_count() < 2 (mirrors test-parallel / test-chaos).
test-obs:
	REPRO_FORCE_PARALLEL_PROC=1 $(PYTHON) -m pytest \
		tests/test_obs.py tests/test_obs_identity.py -q

# The full statistical harness: RNG-quality chi-square / serial-correlation
# sweeps and the deep cross-mode (compat/fast/vector) decision-consistency
# comparisons, plus the engine wiring smoke run.
test-stats:
	$(PYTHON) -m pytest tests/test_rng_quality.py tests/test_cross_mode_consistency.py --slow-stats -q
	$(PYTHON) benchmarks/smoke.py

# All experiments: regenerates benchmarks/results/*.txt and BENCH_engine.json.
# (bench_*.py does not match pytest's default test-file pattern, so the
# files are passed explicitly.)
bench:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q

# Fast wiring check for every engine-hooked benchmark workload (~seconds):
# fast-path compilation, oracle bit-identity, vectorized-kernel identity,
# and the bench-history regression gate (committed snapshot vs the last
# recorded benchmarks/history/ profile — a pure file comparison).
bench-smoke:
	$(PYTHON) benchmarks/smoke.py

# Append the current BENCH_engine.json snapshot to benchmarks/history/ as a
# per-commit profile.  `make bench` records one automatically after
# regenerating the snapshot; this target (re-)records by hand.
bench-record:
	$(PYTHON) -m repro.benchhistory record

# The perf-history diff: the latest recorded profile vs the one before it
# (pass args via the module directly for other pairs / --input snapshots).
bench-diff:
	$(PYTHON) -m repro.benchhistory diff

# The noise-aware regression gate on its own (also runs inside bench-smoke
# and tier-1): exit 1 if the snapshot degraded any recorded kernel.
bench-gate:
	$(PYTHON) -m repro.benchhistory gate
