"""Structural tests for the gadget/workload generators."""

import networkx as nx
import pytest

from repro.core.bitstrings import BitString
from repro.graphs.generators import (
    chain_of_cycles_configuration,
    colored_configuration,
    corrupt_mst_swap,
    corrupt_spanning_tree,
    cycle_configuration,
    cycle_with_chords_configuration,
    flow_configuration,
    line_configuration,
    long_cycle_with_spokes_configuration,
    mst_configuration,
    planted_cycle_configuration,
    random_biconnected_configuration,
    random_connected_configuration,
    reindex_ids,
    spanning_tree_configuration,
    sym_gadget_edges,
    sym_pair_configuration,
    tree_only_configuration,
    two_blocks_configuration,
    two_node_configuration,
    uniform_configuration,
    unmark_tree_edge,
)
from repro.schemes.acyclicity import AcyclicityPredicate
from repro.schemes.coloring import ProperColoringPredicate
from repro.schemes.mst import MSTPredicate
from repro.schemes.spanning_tree import SpanningTreePredicate
from repro.schemes.uniformity import UnifPredicate
from repro.substrates.cycles import girth_and_circumference, has_cycle_at_least
from repro.substrates.dfs import is_biconnected


class TestBasicFamilies:
    def test_line_and_cycle(self):
        line = line_configuration(9)
        cyc = cycle_configuration(9)
        assert AcyclicityPredicate().holds(line)
        assert not AcyclicityPredicate().holds(cyc)
        line.graph.validate()
        cyc.graph.validate()

    @pytest.mark.parametrize("seed", range(4))
    def test_random_connected(self, seed):
        config = random_connected_configuration(25, extra_edges=8, seed=seed)
        config.graph.validate()
        assert config.graph.is_connected()
        assert config.graph.edge_count == 24 + 8

    def test_reindex_ids(self):
        config = line_configuration(5)
        shifted = reindex_ids(config, 100)
        assert sorted(s.node_id for s in shifted.states.values()) == list(
            range(100, 105)
        )


class TestSpanningTreeFamily:
    @pytest.mark.parametrize("seed", range(4))
    def test_legal(self, seed):
        config = spanning_tree_configuration(30, extra_edges=10, seed=seed)
        assert SpanningTreePredicate().holds(config)
        # Tree marks agree with parent pointers.
        marked = sum(
            1 for _ in config.tree_edges()
        )
        assert marked == 29

    @pytest.mark.parametrize("seed", range(4))
    def test_corruption_breaks_predicate(self, seed):
        config = spanning_tree_configuration(30, extra_edges=10, seed=seed)
        corrupted = corrupt_spanning_tree(config, seed=seed + 1)
        assert not SpanningTreePredicate().holds(corrupted)


class TestMSTFamily:
    @pytest.mark.parametrize("seed", range(4))
    def test_legal_matches_networkx(self, seed):
        config = mst_configuration(24, seed=seed)
        assert MSTPredicate().holds(config)
        graph = nx.Graph()
        big = 10**6
        for u, pu, v, _pv in config.graph.edges():
            w, a, b = config.weight_key(u, pu)
            graph.add_edge(u, v, weight=(w * big + a) * big + b)
        nx_tree = {
            frozenset((u, v))
            for u, v in nx.minimum_spanning_tree(graph).edges()
        }
        ours = {frozenset((u, v)) for u, _pu, v, _pv in config.tree_edges()}
        assert ours == nx_tree

    @pytest.mark.parametrize("seed", range(4))
    def test_swap_corruption(self, seed):
        config = mst_configuration(24, seed=seed)
        corrupted = corrupt_mst_swap(config, seed=seed)
        assert not MSTPredicate().holds(corrupted)
        # Still a spanning tree though — that is the point of the corruption.
        marked = {frozenset((u, v)) for u, _pu, v, _pv in corrupted.tree_edges()}
        assert len(marked) == 23

    def test_unmark_corruption(self):
        config = mst_configuration(20, seed=1)
        corrupted = unmark_tree_edge(config, seed=2)
        assert not MSTPredicate().holds(corrupted)

    def test_weights_symmetric(self):
        config = mst_configuration(20, seed=3)
        for u, pu, v, pv in config.graph.edges():
            assert config.edge_weight(u, pu) == config.edge_weight(v, pv)
            assert config.weight_key(u, pu) == config.weight_key(v, pv)


class TestFigureGadgets:
    def test_cycle_with_chords_biconnected(self):
        config = cycle_with_chords_configuration(15)
        assert is_biconnected(config.graph)
        assert config.graph.degree(0) == 2 + 12  # cycle + chords to 2..13

    def test_two_blocks_not_biconnected(self):
        config = two_blocks_configuration(5)
        assert config.graph.is_connected()
        assert not is_biconnected(config.graph)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_biconnected(self, seed):
        config = random_biconnected_configuration(14, seed=seed)
        assert is_biconnected(config.graph)

    def test_spokes_gadget(self):
        config, cycle = long_cycle_with_spokes_configuration(20, 8)
        assert cycle == list(range(8))
        assert has_cycle_at_least(config.graph, 8)
        assert config.graph.is_connected()
        # v0 has no chord to v_{c-1} (the E0 exclusion).
        assert config.graph.port_to(0, 7) is not None  # cycle edge exists...
        chord_targets = set(config.graph.neighbors(0))
        assert 7 in chord_targets  # via cycle edge only

    def test_chain_of_cycles(self):
        config = chain_of_cycles_configuration(30, 6)
        stats = girth_and_circumference(config.graph)
        assert stats["girth"] == 6
        assert stats["circumference"] == 6
        assert config.graph.is_connected()

    @pytest.mark.parametrize("n,c", [(20, 5), (30, 9)])
    def test_planted_cycle_is_max(self, n, c):
        config, cycle = planted_cycle_configuration(n, c, seed=1)
        assert len(cycle) == c
        assert has_cycle_at_least(config.graph, c)
        assert not has_cycle_at_least(config.graph, c + 1)

    def test_tree_only(self):
        config = tree_only_configuration(20, seed=2)
        assert AcyclicityPredicate().holds(config)


class TestSymGadgets:
    def test_gadget_size(self):
        z = BitString.from_int(0b1010, 4)
        nodes, edges = sym_gadget_edges(z, side=0)
        assert len(nodes) == 2 * 4 + 3  # the nu = 2*lam + 3 of Appendix C
        # Eu (lam-1) + triangle (3) + anchor (1) + Ew (lam)
        assert len(edges) == (4 - 1) + 3 + 1 + 4

    def test_pair_structure(self):
        x = BitString.from_int(0b101, 3)
        config, cut, alice, bob = sym_pair_configuration(x, x)
        assert config.graph.is_connected()
        assert len(alice) == len(bob) == 9
        assert config.graph.has_edge(*cut)
        # The cut is the only Alice-Bob edge.
        crossing_edges = [
            (u, v)
            for u, _pu, v, _pv in config.graph.edges()
            if (u in alice) != (v in alice)
        ]
        assert len(crossing_edges) == 1

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            sym_pair_configuration(
                BitString.from_int(1, 2), BitString.from_int(1, 3)
            )


class TestStateFamilies:
    def test_uniform_equal(self):
        config = uniform_configuration(12, 64, equal=True, seed=1)
        assert UnifPredicate().holds(config)

    def test_uniform_unequal(self):
        config = uniform_configuration(12, 64, equal=False, seed=1)
        assert not UnifPredicate().holds(config)

    def test_two_node(self):
        x = BitString.from_int(5, 4)
        y = BitString.from_int(6, 4)
        assert UnifPredicate().holds(two_node_configuration(x, x))
        assert not UnifPredicate().holds(two_node_configuration(x, y))

    def test_coloring(self):
        good = colored_configuration(20, 4, proper=True, seed=2)
        bad = colored_configuration(20, 4, proper=False, seed=2)
        assert ProperColoringPredicate().holds(good)
        assert not ProperColoringPredicate().holds(bad)


class TestFlowFamily:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_max_flow_is_exactly_k(self, k):
        config = flow_configuration(k, path_length=3, decoy_edges=6, seed=k)
        graph = nx.Graph()
        for u, _pu, v, _pv in config.graph.edges():
            graph.add_edge(u, v, capacity=1)
        value, _ = nx.maximum_flow(graph, 0, 1)
        assert value == k

    def test_state_fields(self):
        config = flow_configuration(2, seed=0)
        assert config.state(0).get("source")
        assert config.state(1).get("target")
        assert config.state(0).get("k") == 2
