"""Edge cases: anonymous networks, tiny graphs, degenerate parameters.

The paper notes that "the definition of proof-labeling scheme does not need
the presence of identities" (Section 2.1) — ``Unif`` and coloring work on
anonymous networks, while identity-based schemes (spanning tree, MST) must
reject or fail loudly, never silently accept.
"""

import pytest

from repro.core.bitstrings import BitString
from repro.core.configuration import Configuration, NodeState
from repro.core.verifier import verify_deterministic, verify_randomized
from repro.graphs.port_graph import PortGraph, cycle_graph, path_graph
from repro.schemes.coloring import ColoringPLS
from repro.schemes.uniformity import DirectUnifRPLS, UnifPLS


def anonymous_cycle(n: int, payload: BitString) -> Configuration:
    graph = cycle_graph(n)
    states = {
        node: NodeState(0, {"payload": payload, "color": node % 2})
        for node in graph.nodes
    }
    return Configuration(graph, states, anonymous=True)


class TestAnonymousNetworks:
    def test_unif_pls_works_without_ids(self):
        config = anonymous_cycle(6, BitString.from_int(9, 6))
        assert verify_deterministic(UnifPLS(), config).accepted

    def test_unif_rpls_works_without_ids(self):
        config = anonymous_cycle(6, BitString.from_int(9, 6))
        assert verify_randomized(DirectUnifRPLS(), config, seed=0).accepted

    def test_coloring_works_without_ids(self):
        # Even cycle, 2-coloring by parity — proper, and id-free.
        config = anonymous_cycle(6, BitString.empty())
        assert verify_deterministic(ColoringPLS(), config).accepted

    def test_coloring_rejects_odd_anonymous_cycle(self):
        config = anonymous_cycle(5, BitString.empty())
        scheme = ColoringPLS()
        # Parity coloring of an odd cycle is improper at the seam.
        assert not scheme.predicate.holds(config)
        assert not verify_deterministic(scheme, config).accepted


class TestTinyGraphs:
    def test_single_node_configurations(self):
        graph = PortGraph()
        graph.add_node(0)
        config = Configuration(graph, {0: NodeState(0, {"payload": BitString.empty()})})
        assert verify_deterministic(UnifPLS(), config).accepted
        assert verify_randomized(DirectUnifRPLS(), config, seed=0).accepted

    def test_single_edge_mst(self):
        from repro.schemes.mst import MSTPLS

        graph = path_graph(2)
        states = {
            0: NodeState(0, {"weights": (3,), "tree": (1,)}),
            1: NodeState(1, {"weights": (3,), "tree": (1,)}),
        }
        config = Configuration(graph, states)
        scheme = MSTPLS()
        assert scheme.predicate.holds(config)
        run = verify_deterministic(scheme, config)
        assert run.accepted, run.rejecting_nodes

    def test_single_edge_unmarked_mst_rejected(self):
        from repro.schemes.mst import MSTPLS

        graph = path_graph(2)
        states = {
            0: NodeState(0, {"weights": (3,), "tree": (0,)}),
            1: NodeState(1, {"weights": (3,), "tree": (0,)}),
        }
        config = Configuration(graph, states)
        scheme = MSTPLS()
        assert not scheme.predicate.holds(config)
        assert not verify_deterministic(
            scheme, config, labels=scheme.prover(config)
        ).accepted

    def test_two_node_spanning_tree(self):
        from repro.schemes.spanning_tree import SpanningTreePLS

        graph = path_graph(2)
        states = {
            0: NodeState(0, {"parent_port": None, "tree": (1,)}),
            1: NodeState(1, {"parent_port": 0, "tree": (1,)}),
        }
        config = Configuration(graph, states)
        assert verify_deterministic(SpanningTreePLS(), config).accepted


class TestDegenerateParameters:
    def test_empty_payload_unif(self):
        graph = path_graph(3)
        states = {
            node: NodeState(node, {"payload": BitString.empty()})
            for node in graph.nodes
        }
        config = Configuration(graph, states)
        assert verify_deterministic(UnifPLS(), config).accepted
        assert verify_randomized(DirectUnifRPLS(), config, seed=1).accepted

    def test_mixed_payload_widths_rejected(self):
        graph = path_graph(2)
        states = {
            0: NodeState(0, {"payload": BitString.from_int(0, 3)}),
            1: NodeState(1, {"payload": BitString.from_int(0, 5)}),
        }
        config = Configuration(graph, states)
        assert not UnifPLS().predicate.holds(config)
        assert not verify_deterministic(
            UnifPLS(), config, labels=UnifPLS().prover(config)
        ).accepted

    def test_missing_payload_raises_and_rejects(self):
        graph = path_graph(2)
        states = {0: NodeState(0), 1: NodeState(1)}
        config = Configuration(graph, states)
        with pytest.raises(ValueError):
            UnifPLS().predicate.holds(config)
        # The engine maps the verifier's ValueError to rejection.
        labels = {0: BitString.empty(), 1: BitString.empty()}
        assert not verify_deterministic(UnifPLS(), config, labels=labels).accepted
