"""Tests for the batched verification engine (repro.engine).

The engine's load-bearing promise is *decision equivalence*: in the default
compat/mix modes, ``VerificationPlan.run_trial`` must reproduce the exact
accept/reject decision of the one-shot reference engine for every trial
seed, scheme, randomness mode, and label assignment — including forged and
outright malformed labels.  The property tests here drive that promise per
trial (not just on aggregate counts) across hook-bearing and generic-path
schemes.
"""

import random

import pytest

from repro.core.bitstrings import BitString
from repro.core.boosting import BoostedRPLS
from repro.core.compiler import FingerprintCompiledRPLS
from repro.core.noise import NoisyChannelRPLS
from repro.core.seeding import (
    derive_stream_seed,
    derive_trial_seed,
    legacy_trial_seed,
    splitmix64,
)
from repro.core.shared import SharedCoinsCompiledRPLS
from repro.core.verifier import estimate_acceptance, verify_randomized
from repro.engine import (
    PlanCache,
    VerificationPlan,
    estimate_acceptance_batched,
    estimate_acceptance_fast,
)
from repro.graphs.generators import (
    corrupt_mst_swap,
    corrupt_spanning_tree,
    flow_configuration,
    mst_configuration,
    spanning_tree_configuration,
    uniform_configuration,
)
from repro.graphs.workloads import corrupt_distance, distance_configuration
from repro.schemes.distance import distance_engine_plan, distance_rpls
from repro.schemes.flow import k_flow_engine_plan, k_flow_rpls
from repro.schemes.mst import mst_engine_plan, mst_rpls
from repro.schemes.spanning_tree import SpanningTreePLS
from repro.schemes.uniformity import DirectUnifRPLS
from repro.substrates.gf import numpy_available

TRIALS = 30
MASTER_SEEDS = (0, 7)
ALL_MODES = ("edge", "node", "shared")


def _assert_trialwise_identical(scheme, configuration, labels, randomness, trials=TRIALS):
    """Every individual trial decision matches the reference oracle."""
    plan = VerificationPlan.compile(
        scheme, configuration, labels=labels, randomness=randomness
    )
    for master in MASTER_SEEDS:
        for trial in range(trials):
            trial_seed = derive_trial_seed(master, trial)
            reference = verify_randomized(
                scheme,
                configuration,
                seed=trial_seed,
                labels=labels,
                randomness=randomness,
            ).accepted
            assert plan.run_trial(trial_seed) == reference, (
                scheme.name,
                randomness,
                master,
                trial,
            )


class TestDecisionEquivalence:
    """Bit-identical accept/reject versus the legacy per-trial path."""

    @pytest.mark.parametrize("randomness", ALL_MODES)
    def test_compiled_scheme_legal(self, randomness):
        config = spanning_tree_configuration(18, 6, seed=1)
        scheme = FingerprintCompiledRPLS(SpanningTreePLS())
        labels = scheme.prover(config)
        _assert_trialwise_identical(scheme, config, labels, randomness)

    @pytest.mark.parametrize("randomness", ALL_MODES)
    def test_compiled_scheme_stale_labels(self, randomness):
        """Legal labels on a corrupted configuration — the soundness side."""
        config = spanning_tree_configuration(18, 6, seed=2)
        corrupted = corrupt_spanning_tree(config, seed=3)
        scheme = FingerprintCompiledRPLS(SpanningTreePLS())
        labels = scheme.prover(config)
        _assert_trialwise_identical(scheme, corrupted, labels, randomness)

    @pytest.mark.parametrize("randomness", ALL_MODES)
    def test_unif_scheme_unequal_payloads(self, randomness):
        config = uniform_configuration(12, 6, equal=False, seed=4)
        scheme = DirectUnifRPLS()
        labels = scheme.prover(config)
        _assert_trialwise_identical(scheme, config, labels, randomness)

    @pytest.mark.parametrize("randomness", ALL_MODES)
    def test_boosted_scheme(self, randomness):
        config = uniform_configuration(10, 6, equal=False, seed=5)
        scheme = BoostedRPLS(DirectUnifRPLS(), repetitions=3)
        labels = scheme.prover(config)
        _assert_trialwise_identical(scheme, config, labels, randomness)

    @pytest.mark.parametrize("randomness", ALL_MODES)
    def test_boosted_compiled_scheme(self, randomness):
        config = spanning_tree_configuration(14, 4, seed=6)
        scheme = BoostedRPLS(FingerprintCompiledRPLS(SpanningTreePLS()), 2)
        labels = scheme.prover(config)
        _assert_trialwise_identical(scheme, config, labels, randomness)

    def test_shared_coins_scheme(self):
        config = spanning_tree_configuration(16, 5, seed=7)
        scheme = SharedCoinsCompiledRPLS(SpanningTreePLS())
        labels = scheme.prover(config)
        _assert_trialwise_identical(scheme, config, labels, "shared")

    def test_shared_coins_scheme_wrong_mode_rejects(self):
        """Model mismatch rejects identically through both paths."""
        config = spanning_tree_configuration(10, 3, seed=8)
        scheme = SharedCoinsCompiledRPLS(SpanningTreePLS())
        labels = scheme.prover(config)
        plan = VerificationPlan.compile(scheme, config, labels=labels, randomness="edge")
        trial_seed = derive_trial_seed(0, 0)
        assert plan.run_trial(trial_seed) is False
        assert not verify_randomized(
            scheme, config, seed=trial_seed, labels=labels, randomness="edge"
        ).accepted

    @pytest.mark.parametrize("randomness", ALL_MODES)
    def test_generic_path_scheme(self, randomness):
        """A scheme without hooks exercises the generic (certificate-exact)
        path: the noisy-channel wrapper has no fast path by design."""
        config = uniform_configuration(10, 16, equal=True, seed=9)
        scheme = NoisyChannelRPLS(DirectUnifRPLS(), flip_probability=0.02)
        labels = scheme.prover(config)
        plan = VerificationPlan.compile(
            scheme, config, labels=labels, randomness=randomness
        )
        assert not plan.uses_fast_path
        _assert_trialwise_identical(scheme, config, labels, randomness)

    def test_fast_path_flags(self):
        config = uniform_configuration(6, 8, equal=True, seed=10)
        compiled = DirectUnifRPLS()
        assert VerificationPlan.compile(compiled, config).uses_fast_path
        noisy = NoisyChannelRPLS(compiled, 0.0)  # noiseless: one-sided, hook-less
        assert not VerificationPlan.compile(noisy, config).uses_fast_path
        # A wrapper is only as fast as what it wraps.
        boosted_noisy = BoostedRPLS(noisy, 2)
        assert not VerificationPlan.compile(boosted_noisy, config).uses_fast_path
        boosted = BoostedRPLS(compiled, 2)
        assert VerificationPlan.compile(boosted, config).uses_fast_path

    @pytest.mark.parametrize("randomness", ALL_MODES)
    def test_mst_scheme_hooks(self, randomness):
        """Theorem 5.1's compiled MST RPLS through the engine fast path."""
        config = mst_configuration(12, seed=40)
        scheme = mst_rpls()
        labels = scheme.prover(config)
        plan = VerificationPlan.compile(
            scheme, config, labels=labels, randomness=randomness
        )
        assert plan.uses_fast_path
        _assert_trialwise_identical(scheme, config, labels, randomness, trials=10)

    @pytest.mark.parametrize("randomness", ("edge", "shared"))
    def test_mst_scheme_stale_labels(self, randomness):
        """Soundness side: honest labels on a tree-swapped configuration."""
        config = mst_configuration(12, seed=41)
        corrupted = corrupt_mst_swap(config, seed=42)
        scheme = mst_rpls()
        labels = scheme.prover(config)
        _assert_trialwise_identical(scheme, corrupted, labels, randomness, trials=10)

    @pytest.mark.parametrize("randomness", ALL_MODES)
    def test_flow_scheme_hooks(self, randomness):
        """Section 5.2's compiled k-flow RPLS through the engine fast path."""
        config = flow_configuration(2, path_length=3, decoy_edges=2, seed=43)
        scheme = k_flow_rpls()
        labels = scheme.prover(config)
        plan = VerificationPlan.compile(
            scheme, config, labels=labels, randomness=randomness
        )
        assert plan.uses_fast_path
        _assert_trialwise_identical(scheme, config, labels, randomness, trials=10)

    @pytest.mark.parametrize("randomness", ALL_MODES)
    def test_distance_scheme_hooks(self, randomness):
        """The compiled SSSP-distance RPLS through the engine fast path."""
        config = distance_configuration(14, 5, seed=44, weighted=True)
        scheme = distance_rpls(weighted=True)
        labels = scheme.prover(config)
        plan = VerificationPlan.compile(
            scheme, config, labels=labels, randomness=randomness
        )
        assert plan.uses_fast_path
        _assert_trialwise_identical(scheme, config, labels, randomness, trials=10)

    @pytest.mark.parametrize("randomness", ("edge", "node"))
    def test_distance_scheme_stale_labels(self, randomness):
        """Honest relabeling of a corrupted distance claim — the engine must
        reproduce the oracle's (deterministic-reject) decisions exactly."""
        config = distance_configuration(14, 5, seed=45)
        corrupted = corrupt_distance(config, seed=46)
        scheme = distance_rpls()
        labels = scheme.prover(corrupted)
        _assert_trialwise_identical(scheme, corrupted, labels, randomness, trials=10)

    def test_engine_plan_helpers_take_fast_path(self):
        """The scheme-module plan helpers never fall back to the generic
        path — this is what keeps the MST/flow/distance benchmarks off the
        legacy oracle."""
        mst_plan = mst_engine_plan(mst_configuration(10, seed=47))
        flow_plan = k_flow_engine_plan(
            flow_configuration(2, path_length=3, decoy_edges=1, seed=48)
        )
        dist_plan = distance_engine_plan(distance_configuration(10, 3, seed=49))
        for plan in (mst_plan, flow_plan, dist_plan):
            assert plan.uses_fast_path
            assert plan.constant_verdict is None
            assert plan.run_trial(derive_trial_seed(0, 0)) is True


class TestMalformedLabels:
    """Forged labels that do not even parse must reject, not crash."""

    @pytest.mark.parametrize("randomness", ALL_MODES)
    def test_garbage_labels_rejected_identically(self, randomness):
        config = spanning_tree_configuration(12, 4, seed=11)
        scheme = FingerprintCompiledRPLS(SpanningTreePLS())
        labels = scheme.prover(config)
        rng = random.Random(12)
        victim = config.graph.nodes[rng.randrange(config.node_count)]
        forged = dict(labels)
        forged[victim] = BitString.from_int(rng.getrandbits(11), 17)
        plan = VerificationPlan.compile(
            scheme, config, labels=forged, randomness=randomness
        )
        for trial in range(10):
            trial_seed = derive_trial_seed(13, trial)
            reference = verify_randomized(
                scheme, config, seed=trial_seed, labels=forged, randomness=randomness
            )
            assert plan.run_trial(trial_seed) == reference.accepted
            assert not reference.accepted

    def test_malformed_certificate_rejects_through_engine(self):
        """Regression: a node whose label cannot produce certificates makes
        the engine reject the round (legacy semantics: the node ships empty
        certificates, neighbors reject them, and the node rejects itself)."""
        config = uniform_configuration(8, 8, equal=True, seed=14)
        scheme = DirectUnifRPLS()
        labels = scheme.prover(config)
        # A payload that is not a BitString breaks both the certificate
        # generator and the node's own verifier.
        victim = config.graph.nodes[0]
        broken = config.with_state(
            victim, config.state(victim).with_fields(payload="not-bits")
        )
        plan = VerificationPlan.compile(scheme, broken, labels=labels)
        assert plan.uses_fast_path
        for trial in range(5):
            trial_seed = derive_trial_seed(15, trial)
            assert plan.run_trial(trial_seed) is False
            assert not verify_randomized(
                scheme, broken, seed=trial_seed, labels=labels
            ).accepted


class TestEstimators:
    def test_estimate_matches_reference_counts(self):
        config = uniform_configuration(10, 6, equal=False, seed=16)
        scheme = DirectUnifRPLS()
        labels = scheme.prover(config)
        reference = estimate_acceptance(
            scheme, config, trials=60, seed=17, labels=labels
        )
        batched = estimate_acceptance_batched(
            scheme, config, trials=60, seed=17, labels=labels
        )
        assert (batched.accepted, batched.trials) == (
            reference.accepted,
            reference.trials,
        )

    def test_legacy_seed_mode_matches_legacy_derivation(self):
        config = uniform_configuration(8, 6, equal=False, seed=18)
        scheme = DirectUnifRPLS()
        labels = scheme.prover(config)
        reference = estimate_acceptance(
            scheme, config, trials=40, seed=19, labels=labels, seed_mode="legacy"
        )
        plan = VerificationPlan.compile(scheme, config, labels=labels)
        batched = estimate_acceptance_fast(plan, 40, seed=19, seed_mode="legacy")
        assert batched.accepted == reference.accepted

    def test_chunking_is_invisible(self):
        config = uniform_configuration(8, 6, equal=False, seed=20)
        scheme = DirectUnifRPLS()
        plan = VerificationPlan.compile(scheme, config)
        coarse = estimate_acceptance_fast(plan, 50, seed=21, chunk_size=50)
        fine = estimate_acceptance_fast(plan, 50, seed=21, chunk_size=7)
        assert (coarse.accepted, coarse.trials) == (fine.accepted, fine.trials)

    def test_early_exit_stops_on_tight_interval(self):
        # Completeness of a one-sided scheme: every trial accepts, the
        # Wilson interval collapses quickly, and the estimator stops at the
        # first eligible checkpoint.
        config = uniform_configuration(10, 32, equal=True, seed=22)
        scheme = DirectUnifRPLS()
        plan = VerificationPlan.compile(scheme, config)
        estimate = estimate_acceptance_fast(
            plan,
            10_000,
            seed=23,
            chunk_size=25,
            min_trials=50,
            stop_halfwidth=0.1,
        )
        assert estimate.trials == 50
        assert estimate.probability == 1.0

    def test_early_exit_decisions_are_a_prefix(self):
        config = uniform_configuration(10, 6, equal=False, seed=24)
        scheme = DirectUnifRPLS()
        plan = VerificationPlan.compile(scheme, config)
        full = estimate_acceptance_fast(plan, 200, seed=25, chunk_size=50)
        stopped = estimate_acceptance_fast(
            plan, 200, seed=25, chunk_size=50, min_trials=50, stop_halfwidth=0.2
        )
        assert stopped.trials <= full.trials
        # Re-running exactly stopped.trials trials reproduces the count.
        again = estimate_acceptance_fast(plan, stopped.trials, seed=25, chunk_size=50)
        assert again.accepted == stopped.accepted

    def test_validation(self):
        config = uniform_configuration(6, 4, equal=True, seed=26)
        plan = VerificationPlan.compile(DirectUnifRPLS(), config)
        with pytest.raises(ValueError):
            estimate_acceptance_fast(plan, 0)
        with pytest.raises(ValueError):
            estimate_acceptance_fast(plan, 10, chunk_size=0)
        with pytest.raises(ValueError):
            estimate_acceptance_fast(plan, 10, seed_mode="nope")
        with pytest.raises(ValueError):
            plan.run_trial(0, rng_mode="nope")
        with pytest.raises(ValueError):
            estimate_acceptance(DirectUnifRPLS(), config, trials=10, seed_mode="nope")


class TestFastRngMode:
    """The integer-mix mode trades bit-compat for speed, not correctness."""

    @pytest.mark.parametrize("randomness", ALL_MODES)
    def test_one_sided_completeness_preserved(self, randomness):
        config = spanning_tree_configuration(16, 5, seed=27)
        scheme = FingerprintCompiledRPLS(SpanningTreePLS())
        plan = VerificationPlan.compile(scheme, config, randomness=randomness)
        estimate = estimate_acceptance_fast(plan, 40, seed=28, rng_mode="fast")
        assert estimate.probability == 1.0

    def test_soundness_statistics_preserved(self):
        config = uniform_configuration(10, 64, equal=False, seed=29)
        scheme = DirectUnifRPLS()
        plan = VerificationPlan.compile(scheme, config)
        estimate = estimate_acceptance_fast(plan, 150, seed=30, rng_mode="fast")
        assert estimate.probability < 1 / 3 + 0.1


class TestRawFingerprints:
    """The unpacked fingerprint forms the engine ships between contexts."""

    def test_make_raw_matches_make(self):
        from repro.core.fingerprint import Fingerprinter

        fingerprinter = Fingerprinter(24, repetitions=3)
        data = BitString.from_int(0xABCDE5, 24)
        packed = fingerprinter.make(data, random.Random(9))
        packed_bits, points = fingerprinter.make_raw(data, random.Random(9))
        assert packed_bits == packed.length == fingerprinter.certificate_bits
        # Repacking the raw points reproduces make()'s output exactly.
        width = fingerprinter.params.coordinate_bits
        repacked = BitString.concat(
            [
                BitString.from_int(x, width) + BitString.from_int(value, width)
                for x, value in points
            ]
        )
        assert repacked == packed
        assert fingerprinter.check(data, packed)
        assert fingerprinter.check_raw(
            fingerprinter.reversed_coefficients(data), (packed_bits, points)
        )

    def test_check_raw_rejects_wrong_point_count(self):
        from repro.core.fingerprint import Fingerprinter

        fingerprinter = Fingerprinter(16, repetitions=2)
        data = BitString.from_int(0xBEEF, 16)
        coefficients = fingerprinter.reversed_coefficients(data)
        _bits, points = fingerprinter.make_raw(data, random.Random(3))
        assert fingerprinter.check_raw(coefficients, (fingerprinter.certificate_bits, points))
        # A certificate claiming the right packed width but carrying the
        # wrong number of points must not pass vacuously.
        assert not fingerprinter.check_raw(coefficients, (fingerprinter.certificate_bits, ()))
        assert not fingerprinter.check_raw(
            coefficients, (fingerprinter.certificate_bits, points[:1])
        )

    def test_raising_engine_certificate_is_a_rejection(self):
        """A hook whose certificate generator raises ValueError mid-trial is
        treated like the legacy raise-to-empty-message rule, not a crash."""
        config = uniform_configuration(6, 8, equal=True, seed=31)
        scheme = DirectUnifRPLS()

        class RaisingCertificates(DirectUnifRPLS):
            def engine_certificate(self, context, port, rng):
                raise ValueError("cannot produce a certificate")

        plan = VerificationPlan.compile(RaisingCertificates(), config,
                                        labels=scheme.prover(config))
        assert plan.uses_fast_path
        assert plan.run_trial(derive_trial_seed(0, 0)) is False


needs_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")


def _assert_vector_identical(plan, seeds, rng_modes=("compat", "fast", "vector")):
    """The vectorized kernel reproduces the scalar path's decision per trial."""
    for rng_mode in rng_modes:
        scalar = [plan.run_trial(seed, rng_mode) for seed in seeds]
        singles = [
            bool(plan.run_trials([seed], rng_mode=rng_mode, vectorize=True))
            for seed in seeds
        ]
        assert singles == scalar, rng_mode
        # Chunking across the whole seed list is equally invisible.
        assert plan.run_trials(seeds, rng_mode=rng_mode, vectorize=True) == sum(scalar)


@needs_numpy
class TestVectorizedKernels:
    """The numpy trial-chunk kernel: pure speed, identical decisions."""

    def test_vector_ready_flags(self):
        config = spanning_tree_configuration(10, 3, seed=50)
        compiled = FingerprintCompiledRPLS(SpanningTreePLS())
        assert VerificationPlan.compile(compiled, config).vector_ready
        boosted = BoostedRPLS(FingerprintCompiledRPLS(SpanningTreePLS()), 2)
        assert VerificationPlan.compile(boosted, config).vector_ready
        # Parity certificates run the packed-uint64 GF(2) kernel.
        shared = SharedCoinsCompiledRPLS(SpanningTreePLS())
        shared_plan = VerificationPlan.compile(
            shared, config, randomness="shared"
        )
        assert shared_plan.uses_fast_path and shared_plan.vector_ready
        # Boosting a parity scheme is a degenerate always-reject (the
        # boosted verifier runs the base without public coins); it stays on
        # the scalar path rather than pretending to have a kernel.
        boosted_shared = BoostedRPLS(SharedCoinsCompiledRPLS(SpanningTreePLS()), 2)
        boosted_shared_plan = VerificationPlan.compile(
            boosted_shared, config, randomness="shared"
        )
        assert boosted_shared_plan.uses_fast_path
        assert not boosted_shared_plan.vector_ready
        assert boosted_shared_plan.run_trial(derive_trial_seed(0, 0)) is False
        # Hooks without a vector spec stay scalar.
        unif_config = uniform_configuration(6, 8, equal=True, seed=51)
        unif_plan = VerificationPlan.compile(DirectUnifRPLS(), unif_config)
        assert unif_plan.uses_fast_path and not unif_plan.vector_ready

    @pytest.mark.parametrize("randomness", ALL_MODES)
    def test_compiled_scheme_vectorized_matches_oracle(self, randomness):
        config = spanning_tree_configuration(14, 5, seed=52)
        scheme = FingerprintCompiledRPLS(SpanningTreePLS())
        labels = scheme.prover(config)
        plan = VerificationPlan.compile(
            scheme, config, labels=labels, randomness=randomness
        )
        assert plan.vector_ready
        seeds = [derive_trial_seed(0, trial) for trial in range(15)]
        # Compat + vectorized reproduces the one-shot oracle per trial.
        for seed in seeds:
            reference = verify_randomized(
                scheme, config, seed=seed, labels=labels, randomness=randomness
            ).accepted
            assert bool(plan.run_trials([seed], vectorize=True)) == reference
        # Fast mode: vectorized and scalar share their probability point.
        _assert_vector_identical(plan, seeds)

    @pytest.mark.parametrize("randomness", ("edge", "node"))
    def test_boosted_scheme_vectorized(self, randomness):
        config = spanning_tree_configuration(12, 4, seed=53)
        scheme = BoostedRPLS(FingerprintCompiledRPLS(SpanningTreePLS()), 3)
        labels = scheme.prover(config)
        plan = VerificationPlan.compile(
            scheme, config, labels=labels, randomness=randomness
        )
        assert plan.vector_ready
        _assert_vector_identical(plan, [derive_trial_seed(1, t) for t in range(12)])

    def test_scheme_plans_vectorized(self):
        """MST, flow, and distance plans all run the numpy kernel with
        decisions identical to the scalar hook path."""
        plans = (
            mst_engine_plan(mst_configuration(10, seed=54)),
            k_flow_engine_plan(
                flow_configuration(2, path_length=3, decoy_edges=1, seed=55)
            ),
            distance_engine_plan(distance_configuration(10, 3, seed=56)),
        )
        seeds = [derive_trial_seed(2, trial) for trial in range(8)]
        for plan in plans:
            assert plan.vector_ready
            _assert_vector_identical(plan, seeds)

    def test_proof_fault_vectorized_matches_oracle(self):
        """A flipped stored-replica bit (the E19 proof-fault model) is only
        caught by the fingerprint test, so decisions are genuinely random —
        the vectorized kernel must reproduce every one of them."""
        config = spanning_tree_configuration(12, 4, seed=57)
        scheme = FingerprintCompiledRPLS(SpanningTreePLS())
        labels = scheme.prover(config)
        victim = config.graph.nodes[3]
        label = labels[victim]
        flipped = dict(labels)
        flipped[victim] = BitString(label.value ^ (1 << (label.length // 2)), label.length)
        plan = VerificationPlan.compile(scheme, config, labels=flipped)
        if plan.constant_verdict is not None:  # pragma: no cover - bit landed in framing
            pytest.skip("flip corrupted the label framing; nothing randomized to test")
        assert plan.vector_ready
        seeds = [derive_trial_seed(3, trial) for trial in range(25)]
        for seed in seeds:
            reference = verify_randomized(
                scheme, config, seed=seed, labels=flipped
            ).accepted
            assert bool(plan.run_trials([seed], vectorize=True)) == reference
        _assert_vector_identical(plan, seeds)

    def test_estimator_vectorize_knob(self):
        config = spanning_tree_configuration(12, 4, seed=58)
        scheme = FingerprintCompiledRPLS(SpanningTreePLS())
        plan = VerificationPlan.compile(scheme, config)
        scalar = estimate_acceptance_fast(plan, 30, seed=59, rng_mode="fast", vectorize=False)
        vector = estimate_acceptance_fast(plan, 30, seed=59, rng_mode="fast", vectorize=True)
        auto = estimate_acceptance_fast(plan, 30, seed=59, rng_mode="fast")
        assert scalar.accepted == vector.accepted == auto.accepted
        # Explicitly requesting the kernel on an unsupported plan fails loudly.
        unif_plan = VerificationPlan.compile(
            DirectUnifRPLS(), uniform_configuration(6, 8, equal=True, seed=60)
        )
        with pytest.raises(ValueError):
            estimate_acceptance_fast(unif_plan, 10, vectorize=True)

    def test_fingerprinter_eval_chunk_matches_scalar(self):
        from repro.core.fingerprint import Fingerprinter

        fingerprinter = Fingerprinter(24, repetitions=2)
        data = BitString.from_int(0xF00DED, 24)
        coefficients = fingerprinter.reversed_coefficients(data)
        xs = [[1, 5, 19], [0, 7, fingerprinter.params.prime - 1]]
        chunk = fingerprinter.eval_chunk(coefficients, xs)
        expected = fingerprinter.field.poly_eval_many(
            tuple(reversed(coefficients)), [x for row in xs for x in row]
        )
        assert chunk.reshape(-1).tolist() == expected


class TestConstantFalseShortCircuit:
    """Plans with an unparseable hook label have a compile-time verdict."""

    def _garbage_plan(self):
        config = spanning_tree_configuration(10, 3, seed=61)
        scheme = FingerprintCompiledRPLS(SpanningTreePLS())
        labels = dict(scheme.prover(config))
        victim = config.graph.nodes[2]
        labels[victim] = BitString.from_int(0b1011, 13)  # unparseable forgery
        return scheme, config, labels

    def test_constant_verdict_is_compiled(self):
        scheme, config, labels = self._garbage_plan()
        plan = VerificationPlan.compile(scheme, config, labels=labels)
        assert plan.constant_verdict is False
        assert plan.run_trial(derive_trial_seed(0, 0)) is False
        # A healthy plan has no compile-time verdict.
        healthy = VerificationPlan.compile(scheme, config)
        assert healthy.constant_verdict is None

    def test_estimator_returns_zero_without_running_trials(self):
        scheme, config, labels = self._garbage_plan()
        plan = VerificationPlan.compile(scheme, config, labels=labels)
        calls = []
        scheme.engine_certificate = lambda *args, **kwargs: calls.append(1)  # type: ignore[method-assign]
        plan._run_trial_hooks = None  # any trial execution would now crash
        plan._run_trial_generic = None
        estimate = estimate_acceptance_fast(plan, 200, seed=62)
        assert (estimate.accepted, estimate.trials) == (0, 200)
        assert estimate.probability == 0.0
        assert not calls

    def test_short_circuit_decisions_match_oracle(self):
        scheme, config, labels = self._garbage_plan()
        plan = VerificationPlan.compile(scheme, config, labels=labels)
        for trial in range(5):
            trial_seed = derive_trial_seed(63, trial)
            assert not verify_randomized(
                scheme, config, seed=trial_seed, labels=labels
            ).accepted
            assert plan.run_trial(trial_seed) is False
        assert plan.run_trials([derive_trial_seed(63, t) for t in range(5)]) == 0


class TestPlanCache:
    def _workload(self, seed=64):
        config = spanning_tree_configuration(10, 3, seed=seed)
        scheme = FingerprintCompiledRPLS(SpanningTreePLS())
        labels = scheme.prover(config)
        return scheme, config, labels

    def test_same_inputs_hit(self):
        scheme, config, labels = self._workload()
        cache = PlanCache(maxsize=4)
        first = cache.get(scheme, config, labels=labels)
        second = cache.get(scheme, config, labels=labels)
        assert first is second
        assert (cache.hits, cache.misses) == (1, 1)

    def test_value_equal_configuration_hits(self):
        """Recovery in the self-stabilization loop rebuilds an *equal* but
        distinct configuration; the cache must treat it as the same state."""
        from repro.core.configuration import Configuration

        scheme, config, labels = self._workload()
        rebuilt = Configuration(config.graph, dict(config.states))
        relabeled = dict(labels)
        cache = PlanCache(maxsize=4)
        first = cache.get(scheme, config, labels=labels)
        second = cache.get(scheme, rebuilt, labels=relabeled)
        assert first is second
        assert (cache.hits, cache.misses) == (1, 1)

    def test_mutated_configuration_misses(self):
        scheme, config, labels = self._workload()
        cache = PlanCache(maxsize=4)
        first = cache.get(scheme, config, labels=labels)
        victim = config.graph.nodes[0]
        mutated = config.with_state(
            victim, config.state(victim).with_fields(corrupted_marker=1)
        )
        second = cache.get(scheme, mutated, labels=labels)
        assert first is not second
        assert (cache.hits, cache.misses) == (0, 2)

    def test_mutated_labels_and_randomness_miss(self):
        scheme, config, labels = self._workload()
        cache = PlanCache(maxsize=8)
        first = cache.get(scheme, config, labels=labels)
        flipped = dict(labels)
        victim = config.graph.nodes[1]
        label = labels[victim]
        flipped[victim] = BitString(label.value ^ 1, label.length)
        assert cache.get(scheme, config, labels=flipped) is not first
        assert cache.get(scheme, config, labels=labels, randomness="node") is not first
        # The original is still cached.
        assert cache.get(scheme, config, labels=labels) is first
        assert cache.misses == 3

    def test_distinct_scheme_instances_miss(self):
        scheme, config, labels = self._workload()
        other = FingerprintCompiledRPLS(SpanningTreePLS())
        cache = PlanCache(maxsize=4)
        assert cache.get(scheme, config, labels=labels) is not cache.get(
            other, config, labels=labels
        )

    def test_lru_eviction(self):
        scheme, config, labels = self._workload()
        cache = PlanCache(maxsize=1)
        cache.get(scheme, config, labels=labels)
        cache.get(scheme, config, labels=labels, randomness="node")
        assert len(cache) == 1
        cache.get(scheme, config, labels=labels)  # evicted above: a miss
        assert cache.misses == 3 and cache.hits == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)

    def test_mutable_field_values_are_never_cached(self):
        """A state field holding a shared mutable container could be mutated
        in place after compilation, drifting a cached plan away from its
        key — such configurations compile fresh on every call."""
        scheme, config, labels = self._workload()
        victim = config.graph.nodes[0]
        mutable = config.with_state(
            victim, config.state(victim).with_fields(audit_log=[1, 2])
        )
        cache = PlanCache(maxsize=4)
        first = cache.get(scheme, mutable, labels=labels)
        second = cache.get(scheme, mutable, labels=labels)
        assert first is not second
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (0, 2)
        # The returned plans still verify normally.
        assert first.run_trial(derive_trial_seed(0, 0)) == second.run_trial(
            derive_trial_seed(0, 0)
        )

    def test_self_stabilization_reuses_plans(self):
        """The fault/recovery cycle hits the cache after the first cycle and
        produces the exact trace of the uncached loop."""
        from repro.graphs.generators import corrupt_spanning_tree as corrupt
        from repro.simulation.self_stabilization import (
            periodic_faults,
            run_self_stabilization,
        )
        from repro.substrates.bfs import bfs_layers

        config = spanning_tree_configuration(10, 3, seed=65)
        scheme = FingerprintCompiledRPLS(SpanningTreePLS())

        def recovery(corrupted):
            graph = corrupted.graph
            tree = bfs_layers(graph, graph.nodes[0])
            from repro.core.configuration import Configuration

            states = {
                node: corrupted.state(node).with_fields(
                    parent_port=tree.parent_port[node]
                )
                for node in graph.nodes
            }
            repaired = Configuration(graph, states)
            return repaired, scheme.prover(repaired)

        def run(plan_cache=None):
            return run_self_stabilization(
                scheme,
                config,
                recovery,
                fault_rounds=periodic_faults(
                    lambda c, r: corrupt(c, seed=7), period=6, total_rounds=36
                ),
                total_rounds=36,
                seed=66,
                plan_cache=plan_cache,
            )

        cache = PlanCache(maxsize=8)
        cached_trace = run(plan_cache=cache)
        baseline = run()
        assert cache.hits > 0
        assert [r.__dict__ for r in cached_trace.records] == [
            r.__dict__ for r in baseline.records
        ]


@needs_numpy
class TestVectorRngMode:
    """``rng_mode="vector"``: counter-based draws, scalar == numpy per trial."""

    def test_stream_scalar_matches_numpy(self):
        """The load-bearing identity: stream_word and the uint64 array
        kernel are the same function, including at the wraparound edges."""
        import numpy

        from repro.core.seeding import splitmix64_array, stream_word, stream_words

        seeds = [0, 1, 977, 2**63, 2**64 - 1]
        counters = list(range(9)) + [2**32, 2**63 - 1]
        table = stream_words(seeds, counters)
        for i, seed in enumerate(seeds):
            for j, counter in enumerate(counters):
                assert int(table[i, j]) == stream_word(seed, counter), (seed, counter)
        xs = [0, 5, 2**64 - 1, 2**63 + 12345]
        assert splitmix64_array(numpy.asarray(xs, dtype=numpy.uint64)).tolist() == [
            splitmix64(x) for x in xs
        ]

    def test_counter_rng_word_accounting(self):
        """randrange consumes one word, getrandbits ceil(k/64), and both
        read the stream at the address the vectorized kernels compute."""
        from repro.core.seeding import CounterRng, stream_word

        rng = CounterRng(404)
        assert rng.randrange(101) == stream_word(404, 0) % 101
        value = rng.getrandbits(130)  # words 1, 2, 3
        expected = (
            stream_word(404, 1)
            | (stream_word(404, 2) << 64)
            | (stream_word(404, 3) << 128)
        ) & ((1 << 130) - 1)
        assert value == expected
        assert rng.counter == 4
        assert rng.getrandbits(64) == stream_word(404, 4)
        rng.seed(404)  # re-seeding restarts the counter
        assert rng.randrange(101) == stream_word(404, 0) % 101
        with pytest.raises(ValueError):
            rng.randrange(0)
        with pytest.raises(ValueError):
            rng.getrandbits(0)

    @pytest.mark.parametrize("randomness", ALL_MODES)
    def test_scalar_and_kernel_decisions_identical(self, randomness):
        """Legal workload, all randomness modes: CounterRng path == kernel."""
        config = spanning_tree_configuration(14, 5, seed=70)
        scheme = FingerprintCompiledRPLS(SpanningTreePLS())
        plan = VerificationPlan.compile(scheme, config, randomness=randomness)
        seeds = [derive_trial_seed(4, t) for t in range(10)]
        _assert_vector_identical(plan, seeds, rng_modes=("vector",))
        # One-sided completeness holds at the vector probability point too.
        assert all(plan.run_trial(seed, "vector") for seed in seeds)

    def test_proof_fault_scalar_and_kernel_identical(self):
        """Under a randomized-only fault the decisions are genuinely random;
        the kernel must reproduce every one of the CounterRng path's."""
        config = spanning_tree_configuration(12, 4, seed=71)
        scheme = FingerprintCompiledRPLS(SpanningTreePLS())
        labels = dict(scheme.prover(config))
        victim = config.graph.nodes[3]
        label = labels[victim]
        labels[victim] = BitString(label.value ^ (1 << (label.length // 2)), label.length)
        plan = VerificationPlan.compile(scheme, config, labels=labels)
        if plan.constant_verdict is not None:  # pragma: no cover - framing hit
            pytest.skip("flip corrupted the label framing")
        _assert_vector_identical(plan, [derive_trial_seed(5, t) for t in range(25)])

    def test_boosted_scheme_vector_mode(self):
        config = spanning_tree_configuration(12, 4, seed=72)
        scheme = BoostedRPLS(FingerprintCompiledRPLS(SpanningTreePLS()), 3)
        plan = VerificationPlan.compile(scheme, config)
        _assert_vector_identical(
            plan, [derive_trial_seed(6, t) for t in range(8)], rng_modes=("vector",)
        )

    def test_legacy_seed_mode_negative_seeds(self):
        """hash((seed, trial)) can be negative; the uint64 kernels must mask
        exactly like the scalar derivation."""
        config = spanning_tree_configuration(10, 3, seed=73)
        scheme = FingerprintCompiledRPLS(SpanningTreePLS())
        plan = VerificationPlan.compile(scheme, config)
        seeds = [legacy_trial_seed(-9, t) for t in range(8)]
        assert any(seed < 0 for seed in seeds)
        _assert_vector_identical(plan, seeds, rng_modes=("vector",))

    def test_generic_path_rejects_vector_mode(self):
        from repro.core.noise import NoisyChannelRPLS

        config = uniform_configuration(8, 8, equal=True, seed=74)
        scheme = NoisyChannelRPLS(DirectUnifRPLS(), flip_probability=0.01)
        plan = VerificationPlan.compile(scheme, config, labels=scheme.prover(config))
        assert not plan.uses_fast_path
        with pytest.raises(ValueError, match="engine hook fast path"):
            plan.run_trial(derive_trial_seed(0, 0), "vector")

    def test_plan_default_rng_mode(self):
        """A plan compiled for vector draws runs vector by default — and
        refuses unknown modes at compile time."""
        config = spanning_tree_configuration(10, 3, seed=75)
        scheme = FingerprintCompiledRPLS(SpanningTreePLS())
        plan = VerificationPlan.compile(scheme, config, rng_mode="vector")
        seed = derive_trial_seed(7, 0)
        assert plan.run_trial(seed) == plan.run_trial(seed, "vector")
        default = estimate_acceptance_fast(plan, 20, seed=8)
        explicit = estimate_acceptance_fast(plan, 20, seed=8, rng_mode="vector")
        assert default.accepted == explicit.accepted
        with pytest.raises(ValueError):
            VerificationPlan.compile(scheme, config, rng_mode="nope")

    def test_estimator_consumes_vector_mode(self):
        config = spanning_tree_configuration(12, 4, seed=76)
        scheme = FingerprintCompiledRPLS(SpanningTreePLS())
        plan = VerificationPlan.compile(scheme, config)
        scalar = estimate_acceptance_fast(
            plan, 30, seed=9, rng_mode="vector", vectorize=False
        )
        vector = estimate_acceptance_fast(
            plan, 30, seed=9, rng_mode="vector", vectorize=True
        )
        auto = estimate_acceptance_fast(plan, 30, seed=9, rng_mode="vector")
        assert scalar.accepted == vector.accepted == auto.accepted == 30


@needs_numpy
class TestParityKernel:
    """The shared-coins packed-uint64 popcount kernel."""

    def _fault_workload(self, seed=80, repetitions=2):
        """A shared-coins workload whose verdicts are genuinely random."""
        config = spanning_tree_configuration(12, 4, seed=seed)
        scheme = SharedCoinsCompiledRPLS(SpanningTreePLS(), repetitions=repetitions)
        honest = scheme.prover(config)
        seeds = [derive_trial_seed(1, t) for t in range(30)]
        for victim in config.graph.nodes:
            label = honest[victim]
            for bit in range(label.length):
                labels = dict(honest)
                labels[victim] = BitString(label.value ^ (1 << bit), label.length)
                plan = VerificationPlan.compile(
                    scheme, config, labels=labels, randomness="shared"
                )
                if plan.constant_verdict is not None:
                    continue
                accepted = sum(plan.run_trial(s) for s in seeds)
                if 0 < accepted < len(seeds):
                    return scheme, config, labels, plan
        raise AssertionError("no nondegenerate shared-coins fault found")  # pragma: no cover

    def test_legal_state_all_modes(self):
        config = spanning_tree_configuration(14, 5, seed=81)
        scheme = SharedCoinsCompiledRPLS(SpanningTreePLS())
        plan = VerificationPlan.compile(scheme, config, randomness="shared")
        assert plan.vector_ready
        seeds = [derive_trial_seed(2, t) for t in range(10)]
        _assert_vector_identical(plan, seeds)
        for seed in seeds:
            assert plan.run_trial(seed) is True

    def test_compat_kernel_matches_one_shot_oracle(self):
        scheme, config, labels, plan = self._fault_workload()
        for trial in range(15):
            trial_seed = derive_trial_seed(3, trial)
            reference = verify_randomized(
                scheme, config, seed=trial_seed, labels=labels, randomness="shared"
            ).accepted
            assert bool(plan.run_trials([trial_seed], vectorize=True)) == reference

    def test_proof_fault_verdicts_identical_per_trial(self):
        """The satellite property: scalar vs popcount verdicts per trial,
        under proof-fault randomness, in all three rng modes."""
        _scheme, _config, _labels, plan = self._fault_workload()
        _assert_vector_identical(plan, [derive_trial_seed(4, t) for t in range(40)])

    def test_wide_masks_span_words(self):
        """Replicas wider than 64 bits exercise the multi-word packing and
        the top-word truncation; t=3 exercises mask-block addressing."""
        config = uniform_configuration(8, 90, equal=True, seed=82)
        # A >64-bit replica via the compiled spanning tree would need a big
        # graph; the Unif payload width is free, so compile Unif's PLS.
        from repro.schemes.uniformity import UnifPLS

        scheme = SharedCoinsCompiledRPLS(UnifPLS(), repetitions=3)
        plan = VerificationPlan.compile(scheme, config, randomness="shared")
        assert plan.vector_ready
        state = plan._vector_state
        assert state.mask_words >= 2
        _assert_vector_identical(plan, [derive_trial_seed(5, t) for t in range(8)])

    def test_private_coin_mismatch_folds_constant_false(self):
        """A shared-coins plan under edge randomness rejects every trial;
        the kernel must fold that, not crash or accept."""
        config = spanning_tree_configuration(10, 3, seed=83)
        scheme = SharedCoinsCompiledRPLS(SpanningTreePLS())
        plan = VerificationPlan.compile(scheme, config, randomness="edge")
        assert plan.vector_ready
        seeds = [derive_trial_seed(6, t) for t in range(6)]
        assert plan.run_trials(seeds, vectorize=True) == 0
        _assert_vector_identical(plan, seeds)

    def test_forged_kappa_width_mismatch_falls_back_to_scalar(self):
        """A parseable label claiming a different kappa draws masks at a
        different width, so the uniform-width kernel must decline (scalar
        fallback) rather than compute the wrong masks."""
        from repro.core.bitstrings import BitWriter, bits_for_max

        config = spanning_tree_configuration(10, 3, seed=84)
        scheme = SharedCoinsCompiledRPLS(SpanningTreePLS())
        labels = dict(scheme.prover(config))
        victim = config.graph.nodes[1]
        degree = config.graph.degree(victim)
        kappa, _replicas = scheme._parse_label(
            # Borrow the plan's view machinery via a fresh compile.
            VerificationPlan.compile(
                scheme, config, labels=labels, randomness="shared"
            ).label_views[1]
        )
        forged_kappa = kappa + 1
        width = bits_for_max(forged_kappa) + forged_kappa
        writer = BitWriter()
        writer.write_varuint(forged_kappa)
        for _ in range(degree + 1):
            writer.write_uint(0, width)  # claims a 0-length base label
        labels[victim] = writer.finish()
        plan = VerificationPlan.compile(
            scheme, config, labels=labels, randomness="shared"
        )
        if plan.constant_verdict is None:
            assert not plan.vector_ready
            for trial in range(5):
                trial_seed = derive_trial_seed(7, trial)
                reference = verify_randomized(
                    scheme, config, seed=trial_seed, labels=labels,
                    randomness="shared",
                ).accepted
                assert plan.run_trial(trial_seed) == reference


class TestPlanCacheRngMode:
    """rng_mode is plan state, so it must be cache-key state."""

    def _workload(self, seed=90):
        config = spanning_tree_configuration(10, 3, seed=seed)
        scheme = FingerprintCompiledRPLS(SpanningTreePLS())
        return scheme, config, scheme.prover(config)

    def test_rng_mode_keys_separately(self):
        scheme, config, labels = self._workload()
        cache = PlanCache(maxsize=8)
        compat = cache.get(scheme, config, labels=labels)
        vector = cache.get(scheme, config, labels=labels, rng_mode="vector")
        fast = cache.get(scheme, config, labels=labels, rng_mode="fast")
        assert compat is not vector and compat is not fast and vector is not fast
        assert (compat.rng_mode, fast.rng_mode, vector.rng_mode) == (
            "compat",
            "fast",
            "vector",
        )
        # Same mode hits.
        assert cache.get(scheme, config, labels=labels, rng_mode="vector") is vector
        assert cache.get(scheme, config, labels=labels) is compat
        assert (cache.hits, cache.misses) == (2, 3)

    def test_vector_plan_never_served_to_compat_caller(self):
        """The regression the key fix exists for: a shared cache must not
        let a vector-mode self-stabilization run poison a later compat run
        — the compat trace must equal the uncached compat baseline."""
        from repro.graphs.generators import corrupt_spanning_tree as corrupt
        from repro.simulation.self_stabilization import (
            periodic_faults,
            run_self_stabilization,
        )
        from repro.substrates.bfs import bfs_layers

        config = spanning_tree_configuration(10, 3, seed=91)
        scheme = FingerprintCompiledRPLS(SpanningTreePLS())

        def recovery(corrupted):
            from repro.core.configuration import Configuration

            graph = corrupted.graph
            tree = bfs_layers(graph, graph.nodes[0])
            states = {
                node: corrupted.state(node).with_fields(
                    parent_port=tree.parent_port[node]
                )
                for node in graph.nodes
            }
            repaired = Configuration(graph, states)
            return repaired, scheme.prover(repaired)

        def run(rng_mode, plan_cache=None):
            return run_self_stabilization(
                scheme,
                config,
                recovery,
                fault_rounds=periodic_faults(
                    lambda c, r: corrupt(c, seed=5), period=6, total_rounds=24
                ),
                total_rounds=24,
                seed=92,
                rng_mode=rng_mode,
                plan_cache=plan_cache,
            )

        shared_cache = PlanCache(maxsize=16)
        vector_trace = run("vector", plan_cache=shared_cache)
        compat_cached = run("compat", plan_cache=shared_cache)
        compat_baseline = run("compat")
        assert [r.__dict__ for r in compat_cached.records] == [
            r.__dict__ for r in compat_baseline.records
        ]
        # Both modes detect the injected faults (sanity: the vector run is a
        # real run, not a vacuous pass-through).
        assert vector_trace.detection_latencies
        assert compat_cached.detection_latencies
        # And the shared cache did serve both modes from distinct entries.
        assert shared_cache.hits > 0
        modes = {plan.rng_mode for plan in shared_cache._plans.values()}
        assert {"compat", "vector"} <= modes


class TestSeeding:
    def test_splitmix64_reference_vector(self):
        # First outputs of the SplitMix64 stream seeded with 0 — the
        # published reference sequence (e.g. the xoshiro seeding test
        # vectors): mixing state 0, gamma, 2*gamma...
        assert splitmix64(0) == 0xE220A8397B1DCDAF

    def test_splitmix64_range_and_determinism(self):
        for x in (0, 1, 2**63, 2**64 - 1, 12345):
            value = splitmix64(x)
            assert 0 <= value < 2**64
            assert splitmix64(x) == value

    def test_trial_seeds_distinct(self):
        seeds = {derive_trial_seed(seed, trial) for seed in range(8) for trial in range(200)}
        assert len(seeds) == 8 * 200

    def test_trial_seed_negative_master(self):
        assert derive_trial_seed(-5, 3) == derive_trial_seed(-5, 3)
        assert derive_trial_seed(-5, 3) != derive_trial_seed(-5, 4)

    def test_stream_seeds_distinct_across_address_spaces(self):
        trial = derive_trial_seed(0, 0)
        seeds = {derive_stream_seed(trial, -1, -1)}
        for node_index in range(10):
            seeds.add(derive_stream_seed(trial, node_index, -1))
            for port in range(6):
                seeds.add(derive_stream_seed(trial, node_index, port))
        assert len(seeds) == 1 + 10 + 60

    def test_legacy_trial_seed_is_the_old_expression(self):
        assert legacy_trial_seed(3, 9) == hash((3, 9))
