"""Cross-mode decision-consistency: compat / fast / vector agree statistically.

The three ``rng_mode`` settings are *different points of the same
probability space*: the per-trial decisions legitimately differ, but the
acceptance probability they estimate must not.  A fast path that quietly
changed the distribution — a biased draw, a dropped check, a misaligned
counter — is exactly the "fast but wrong" regression these tests exist to
catch: for every scheme with an engine hook, the three modes estimate the
same acceptance probability on a shared workload, asserted via
Wilson-interval overlap (each mode's interval must contain a point the
others' intervals contain too).

Three workload classes per scheme where they apply:

- **legal** — one-sided completeness: every mode must measure exactly 1.0
  (no tolerance: a single rejecting trial in any mode is a bug);
- **proof fault** — a replica bit-flip detectable only by the randomized
  checks, so acceptance is strictly between 0 and 1 and the comparison is
  a real statistical statement;
- **illegal payloads** (Unif) — the classic nondegenerate soundness case.

The tier-1 core runs a few hundred trials per mode (the vector/fast modes
are vectorized, so this is cheap); the ``slow_stats`` tier re-runs the
comparison at 10x depth with tighter intervals via ``make test-stats``.
"""

import pytest

from repro.core.bitstrings import BitString
from repro.core.boosting import BoostedRPLS
from repro.core.compiler import FingerprintCompiledRPLS
from repro.core.seeding import derive_trial_seed
from repro.core.shared import SharedCoinsCompiledRPLS
from repro.engine import VerificationPlan, estimate_acceptance_fast
from repro.engine.specs import clean_configuration, iter_specs, scheme_for
from repro.graphs.generators import (
    spanning_tree_configuration,
    uniform_configuration,
)
from repro.schemes.spanning_tree import SpanningTreePLS
from repro.schemes.uniformity import DirectUnifRPLS
from repro.simulation.metrics import wilson_interval

MODES = ("compat", "fast", "vector")


def proof_fault_labels(scheme, configuration, trial_count=80, seed=1):
    """Flip one label bit so acceptance is nondegenerate (0 < p < 1).

    Searches low bit positions of each node's label for a flip that leaves
    the plan randomized (no constant verdict) and produces a mixed
    accept/reject pattern — the regime where cross-mode comparison is a
    real statistical statement.  Deterministic for fixed inputs.
    """
    honest = scheme.prover(configuration)
    seeds = [derive_trial_seed(seed, t) for t in range(trial_count)]
    randomness = getattr(scheme, "_cross_mode_randomness", "edge")
    for victim in configuration.graph.nodes:
        label = honest[victim]
        for bit in range(min(label.length, 48)):
            labels = dict(honest)
            labels[victim] = BitString(label.value ^ (1 << bit), label.length)
            plan = VerificationPlan.compile(
                scheme, configuration, labels=labels, randomness=randomness
            )
            if plan.constant_verdict is not None:
                continue
            accepted = sum(plan.run_trial(s) for s in seeds)
            if 0 < accepted < trial_count:
                return labels
    raise AssertionError("no nondegenerate proof fault found")  # pragma: no cover


def estimates_by_mode(scheme, configuration, labels, randomness, trials, seed=3):
    plan = VerificationPlan.compile(
        scheme, configuration, labels=labels, randomness=randomness
    )
    assert plan.uses_fast_path, scheme.name
    return {
        mode: estimate_acceptance_fast(plan, trials, seed=seed, rng_mode=mode)
        for mode in MODES
    }


def assert_wilson_consistent(estimates, context):
    """Every pair of mode intervals overlaps — same underlying probability."""
    intervals = {
        mode: wilson_interval(est.accepted, est.trials)
        for mode, est in estimates.items()
    }
    for mode_a, (low_a, high_a) in intervals.items():
        for mode_b, (low_b, high_b) in intervals.items():
            assert low_a <= high_b and low_b <= high_a, (
                context,
                mode_a,
                intervals[mode_a],
                mode_b,
                intervals[mode_b],
            )


def hook_workloads():
    """Every registered verdict spec on its clean workload, plus the one
    randomness mode no spec covers.

    Iterating :func:`repro.engine.specs.iter_specs` (not a hand-maintained
    list) means a newly registered scheme joins the cross-mode comparison
    automatically.  The single manual row keeps ``randomness="node"``
    covered: the spec layer pins each kernel family to one randomness mode
    (fingerprint→edge), so node randomness is only reachable by compiling
    a scheme directly.
    """
    rows = [
        (spec.name, scheme_for(spec), clean_configuration(spec, seed=11), spec.randomness)
        for spec in iter_specs()
    ]
    rows.append(
        (
            "compiled-node",
            FingerprintCompiledRPLS(SpanningTreePLS()),
            spanning_tree_configuration(14, 4, seed=11),
            "node",
        )
    )
    return rows


class TestLegalCompleteness:
    """One-sided schemes accept legal states with probability exactly 1 in
    every rng mode — no statistical tolerance applies."""

    @pytest.mark.parametrize(
        "name,scheme,configuration,randomness",
        hook_workloads(),
        ids=[w[0] for w in hook_workloads()],
    )
    def test_all_modes_accept_legal_state(self, name, scheme, configuration, randomness):
        labels = scheme.prover(configuration)
        estimates = estimates_by_mode(
            scheme, configuration, labels, randomness, trials=60
        )
        for mode, estimate in estimates.items():
            assert estimate.probability == 1.0, (name, mode, estimate)


class TestNondegenerateConsistency:
    """Workloads with 0 < p < 1: the modes' Wilson intervals must overlap."""

    def test_compiled_proof_fault(self):
        config = spanning_tree_configuration(12, 4, seed=21)
        scheme = FingerprintCompiledRPLS(SpanningTreePLS())
        labels = proof_fault_labels(scheme, config)
        estimates = estimates_by_mode(scheme, config, labels, "edge", trials=300)
        assert_wilson_consistent(estimates, "compiled-proof-fault")

    def test_shared_coins_proof_fault(self):
        config = spanning_tree_configuration(12, 4, seed=22)
        scheme = SharedCoinsCompiledRPLS(SpanningTreePLS(), repetitions=2)
        scheme._cross_mode_randomness = "shared"
        labels = proof_fault_labels(scheme, config)
        estimates = estimates_by_mode(scheme, config, labels, "shared", trials=300)
        assert_wilson_consistent(estimates, "shared-coins-proof-fault")

    def test_unif_unequal_payloads(self):
        config = uniform_configuration(10, 24, equal=False, seed=23)
        scheme = DirectUnifRPLS()
        labels = scheme.prover(config)
        estimates = estimates_by_mode(scheme, config, labels, "edge", trials=300)
        assert_wilson_consistent(estimates, "unif-unequal")

    def test_boosted_stale_state_rejects_in_every_mode(self):
        """Boosting squares the already-tiny single-bit collision rate
        (~1/p per repetition), so no proof fault yields a measurably
        nondegenerate p — instead pin the exact-zero side: honest labels on
        a corrupted state reject deterministically in every mode.  (The
        boosted wrapper's randomized behaviour is covered per trial by the
        bit-identity suite in test_engine.py.)"""
        from repro.graphs.generators import corrupt_spanning_tree

        config = spanning_tree_configuration(12, 4, seed=24)
        corrupted = corrupt_spanning_tree(config, seed=25)
        scheme = BoostedRPLS(FingerprintCompiledRPLS(SpanningTreePLS()), 2)
        labels = scheme.prover(config)
        estimates = estimates_by_mode(scheme, corrupted, labels, "edge", trials=60)
        for mode, estimate in estimates.items():
            assert estimate.probability == 0.0, (mode, estimate)


@pytest.mark.slow_stats
class TestDeepConsistency:
    """The same comparisons at 10x trials: tighter intervals, harder test."""

    @pytest.mark.parametrize(
        "name,scheme,configuration,randomness",
        hook_workloads(),
        ids=[w[0] for w in hook_workloads()],
    )
    def test_all_modes_accept_legal_state_deep(
        self, name, scheme, configuration, randomness
    ):
        labels = scheme.prover(configuration)
        estimates = estimates_by_mode(
            scheme, configuration, labels, randomness, trials=600
        )
        for mode, estimate in estimates.items():
            assert estimate.probability == 1.0, (name, mode, estimate)

    @pytest.mark.parametrize("master_seed", (5, 6, 7))
    def test_compiled_proof_fault_deep(self, master_seed):
        config = spanning_tree_configuration(14, 5, seed=25)
        scheme = FingerprintCompiledRPLS(SpanningTreePLS())
        labels = proof_fault_labels(scheme, config)
        estimates = estimates_by_mode(
            scheme, config, labels, "edge", trials=3000, seed=master_seed
        )
        assert_wilson_consistent(estimates, ("compiled-deep", master_seed))

    @pytest.mark.parametrize("master_seed", (8, 9))
    def test_shared_coins_proof_fault_deep(self, master_seed):
        config = spanning_tree_configuration(14, 5, seed=26)
        scheme = SharedCoinsCompiledRPLS(SpanningTreePLS(), repetitions=3)
        scheme._cross_mode_randomness = "shared"
        labels = proof_fault_labels(scheme, config)
        estimates = estimates_by_mode(
            scheme, config, labels, "shared", trials=3000, seed=master_seed
        )
        assert_wilson_consistent(estimates, ("shared-coins-deep", master_seed))
