"""Tests for the Theorem 3.1 compiler (PLS -> RPLS)."""

import math
import random

import pytest

from repro.core.bitstrings import BitString
from repro.core.compiler import FingerprintCompiledRPLS
from repro.core.configuration import Configuration, simple_states
from repro.core.predicate import FunctionPredicate
from repro.core.scheme import ProofLabelingScheme
from repro.core.verifier import estimate_acceptance, verify_deterministic, verify_randomized
from repro.graphs.generators import (
    corrupt_spanning_tree,
    line_configuration,
    mst_configuration,
    spanning_tree_configuration,
    uniform_configuration,
)
from repro.graphs.port_graph import cycle_graph
from repro.schemes.acyclicity import AcyclicityPLS
from repro.schemes.mst import MSTPLS
from repro.schemes.spanning_tree import SpanningTreePLS
from repro.schemes.uniformity import UnifPLS
from repro.simulation.adversary import perturb_labels


class WidthKPLS(ProofLabelingScheme):
    """Synthetic scheme with exactly kappa-bit labels (for size sweeps)."""

    def __init__(self, kappa: int):
        super().__init__(FunctionPredicate("always", lambda config: True))
        self.kappa = kappa
        self.name = f"width-{kappa}"

    def prover(self, configuration):
        return {
            node: BitString.from_int(0, self.kappa)
            for node in configuration.graph.nodes
        }

    def verify_at(self, view):
        return all(message.length == self.kappa for message in view.messages)


class TestCompleteness:
    @pytest.mark.parametrize(
        "scheme_factory,config_factory",
        [
            (SpanningTreePLS, lambda: spanning_tree_configuration(30, 12, seed=1)),
            (AcyclicityPLS, lambda: line_configuration(25)),
            (MSTPLS, lambda: mst_configuration(20, seed=2)),
            (UnifPLS, lambda: uniform_configuration(15, 80, equal=True, seed=3)),
        ],
    )
    def test_compiled_accepts_legal(self, scheme_factory, config_factory):
        configuration = config_factory()
        compiled = FingerprintCompiledRPLS(scheme_factory())
        for seed in range(5):
            run = verify_randomized(compiled, configuration, seed=seed)
            assert run.accepted, (scheme_factory.__name__, run.rejecting_nodes)

    def test_one_sided_flag(self):
        compiled = FingerprintCompiledRPLS(SpanningTreePLS())
        assert compiled.one_sided
        assert compiled.edge_independent


class TestSoundness:
    def test_rejects_corrupted_configuration(self):
        configuration = spanning_tree_configuration(30, 12, seed=4)
        corrupted = corrupt_spanning_tree(configuration, seed=5)
        compiled = FingerprintCompiledRPLS(SpanningTreePLS())
        labels = compiled.prover(configuration)  # labels for the *legal* one
        estimate = estimate_acceptance(
            compiled, corrupted, trials=40, labels=labels
        )
        assert estimate.probability < 0.4

    def test_detects_inconsistent_replicas(self):
        """Tampering with a stored neighbor-copy must be caught probabilistically."""
        configuration = line_configuration(12)
        compiled = FingerprintCompiledRPLS(AcyclicityPLS())
        labels = compiled.prover(configuration)
        tampered = perturb_labels(labels, flips=3, seed=7)
        if tampered == labels:  # extremely unlikely; keep the test honest
            pytest.skip("perturbation was a no-op")
        accepts = sum(
            1
            for seed in range(60)
            if verify_randomized(
                compiled, configuration, seed=seed, labels=tampered
            ).accepted
        )
        assert accepts / 60 < 0.75  # a single flipped bit is caught w.p. >= 2/3 at one edge

    def test_base_verifier_still_consulted(self):
        """Consistent replicas of *wrong* base labels must be rejected deterministically."""
        configuration = line_configuration(8)
        base = AcyclicityPLS()
        compiled = FingerprintCompiledRPLS(base)
        # Build compiled labels from forged base labels (all-zero distances).
        forged_base = {
            node: BitString.from_int(0, 4) for node in configuration.graph.nodes
        }

        class ForgingBase(AcyclicityPLS):
            def prover(self, config):
                return forged_base

        forged_compiled = FingerprintCompiledRPLS(ForgingBase()).prover(configuration)
        run = verify_randomized(
            compiled, configuration, seed=0, labels=forged_compiled
        )
        assert not run.accepted


class TestSizes:
    @pytest.mark.parametrize("kappa", [1, 8, 64, 512, 4096])
    def test_logarithmic_certificates(self, kappa):
        graph = cycle_graph(6)
        configuration = Configuration(graph, simple_states(graph))
        compiled = FingerprintCompiledRPLS(WidthKPLS(kappa))
        bits = compiled.verification_complexity(configuration)
        # 2 * ceil(log2 p) with p < 6 * (kappa + len field)
        assert bits <= 2 * math.ceil(math.log2(6 * (kappa + math.ceil(math.log2(kappa + 1)) + 1)))
        run = verify_randomized(compiled, configuration, seed=1)
        assert run.accepted

    def test_exponential_gap(self):
        graph = cycle_graph(8)
        configuration = Configuration(graph, simple_states(graph))
        for kappa in (64, 1024, 16384):
            compiled = FingerprintCompiledRPLS(WidthKPLS(kappa))
            assert compiled.verification_complexity(configuration) < kappa / 2

    def test_label_complexity_reported(self):
        configuration = line_configuration(10)
        compiled = FingerprintCompiledRPLS(AcyclicityPLS())
        base_bits = AcyclicityPLS().verification_complexity(configuration)
        # Compiled labels replicate deg+1 base labels (plus framing).
        assert compiled.label_complexity(configuration) >= 3 * base_bits

    def test_repetitions_scale_certificates(self):
        configuration = line_configuration(10)
        single = FingerprintCompiledRPLS(AcyclicityPLS(), repetitions=1)
        triple = FingerprintCompiledRPLS(AcyclicityPLS(), repetitions=3)
        assert (
            triple.verification_complexity(configuration)
            == 3 * single.verification_complexity(configuration)
        )

    def test_soundness_error_decreases_with_repetitions(self):
        configuration = line_configuration(10)
        single = FingerprintCompiledRPLS(AcyclicityPLS(), repetitions=1)
        triple = FingerprintCompiledRPLS(AcyclicityPLS(), repetitions=3)
        assert triple.soundness_error(configuration) < single.soundness_error(configuration)

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            FingerprintCompiledRPLS(AcyclicityPLS(), repetitions=0)
